//! Figure 1 — "Comparison of the seven algorithms on different platforms".
//!
//! For each panel (a–d: homogeneous, communication-homogeneous,
//! computation-homogeneous, fully heterogeneous), the paper creates ten
//! random platforms, sends 1000 tasks, and plots each algorithm's average
//! makespan / sum-flow / max-flow **normalized to SRPT** (SRPT ≡ 1).

use crate::report::{fmt3, write_csv, write_json, AsciiTable, ExperimentScale};
use mss_core::{Algorithm, InfoTier, PlatformClass};
use mss_sweep::{run_cells, Cell, PlatformCell, SweepConfig};
use mss_workload::ArrivalProcess;

/// One algorithm's bars in one panel.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig1Row {
    /// The algorithm (paper order: SRPT, LS, RR, RRC, RRP, SLJF, SLJFWC).
    pub algorithm: Algorithm,
    /// Mean normalized [makespan, max-flow, sum-flow] (SRPT ≡ 1).
    pub normalized: [f64; 3],
    /// Mean absolute values, seconds (for EXPERIMENTS.md).
    pub absolute: [f64; 3],
}

/// One panel of Figure 1.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig1Panel {
    /// Which platform class the panel draws (a–d).
    pub class: PlatformClass,
    /// Run scale.
    pub scale: ExperimentScale,
    /// Arrival regime (the paper's main reading: bag-of-tasks).
    pub arrival: ArrivalProcess,
    /// Rows in the paper's algorithm order.
    pub rows: Vec<Fig1Row>,
}

/// Panel letter for a platform class, following the paper's layout.
pub fn panel_letter(class: PlatformClass) -> char {
    match class {
        PlatformClass::Homogeneous => 'a',
        PlatformClass::CommHomogeneous => 'b',
        PlatformClass::CompHomogeneous => 'c',
        PlatformClass::Heterogeneous => 'd',
    }
}

/// The panel's grid as sweep cells: `scale.platforms` platform draws × the
/// seven algorithms, with the harness's historical seed derivation so the
/// emitted tables stay identical to the pre-sweep serial implementation.
pub fn panel_cells(
    class: PlatformClass,
    scale: ExperimentScale,
    arrival: ArrivalProcess,
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(scale.platforms * Algorithm::ALL.len());
    for pi in 0..scale.platforms {
        for &algorithm in &Algorithm::ALL {
            cells.push(Cell {
                platform: PlatformCell::Class {
                    class,
                    slaves: 5,
                    seed: scale.seed,
                    index: pi,
                },
                arrival,
                perturbation: None,
                scenario: None,
                tasks: scale.tasks,
                algorithm,
                information: InfoTier::Clairvoyant,
                replicate: 0,
                task_seed: scale.seed ^ (pi as u64) << 17,
            });
        }
    }
    cells
}

/// Runs one Figure 1 panel through `mss-sweep` with the given runtime.
pub fn run_panel_with(
    class: PlatformClass,
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    config: &SweepConfig,
) -> Fig1Panel {
    let outcome = run_cells(panel_cells(class, scale, arrival), config);

    // Accumulate normalized and absolute sums per algorithm per objective,
    // folding per-cell metrics in (platform, algorithm) order.
    let mut norm_sum = vec![[0.0f64; 3]; Algorithm::ALL.len()];
    let mut abs_sum = vec![[0.0f64; 3]; Algorithm::ALL.len()];

    for chunk in outcome.metrics.chunks(Algorithm::ALL.len()) {
        let triple = |m: &mss_sweep::CellMetrics| [m.makespan, m.max_flow, m.sum_flow];
        let srpt = triple(&chunk[0]); // Algorithm::ALL[0] == Srpt
        for (ai, m) in chunk.iter().enumerate() {
            let v = triple(m);
            for k in 0..3 {
                norm_sum[ai][k] += v[k] / srpt[k];
                abs_sum[ai][k] += v[k];
            }
        }
    }

    let nplat = scale.platforms as f64;
    let rows = Algorithm::ALL
        .iter()
        .enumerate()
        .map(|(ai, &algorithm)| Fig1Row {
            algorithm,
            normalized: [
                norm_sum[ai][0] / nplat,
                norm_sum[ai][1] / nplat,
                norm_sum[ai][2] / nplat,
            ],
            absolute: [
                abs_sum[ai][0] / nplat,
                abs_sum[ai][1] / nplat,
                abs_sum[ai][2] / nplat,
            ],
        })
        .collect();

    Fig1Panel {
        class,
        scale,
        arrival,
        rows,
    }
}

/// Runs one Figure 1 panel with the default parallel runtime.
pub fn run_panel(
    class: PlatformClass,
    scale: ExperimentScale,
    arrival: ArrivalProcess,
) -> Fig1Panel {
    run_panel_with(class, scale, arrival, &SweepConfig::default())
}

/// Runs all four panels (Figure 1 a–d).
pub fn run_all(scale: ExperimentScale, arrival: ArrivalProcess) -> Vec<Fig1Panel> {
    [
        PlatformClass::Homogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::CompHomogeneous,
        PlatformClass::Heterogeneous,
    ]
    .into_iter()
    .map(|class| run_panel(class, scale, arrival))
    .collect()
}

impl Fig1Panel {
    /// Renders the panel as an ASCII table mirroring the paper's bars.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "#".to_string(),
            "algorithm".to_string(),
            "makespan".to_string(),
            "max-flow".to_string(),
            "sum-flow".to_string(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.algorithm.figure_index().to_string(),
                row.algorithm.name().to_string(),
                fmt3(row.normalized[0]),
                fmt3(row.normalized[1]),
                fmt3(row.normalized[2]),
            ]);
        }
        format!(
            "Figure 1({}) — {} platforms, m = 5, {} tasks, {}, normalized to SRPT\n{}",
            panel_letter(self.class),
            self.scale.platforms,
            self.scale.tasks,
            self.arrival.label(),
            t.render()
        )
    }

    /// Writes `fig1<letter>.csv` and `.json`; returns the CSV path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        let name = format!("fig1{}", panel_letter(self.class));
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.name().to_string(),
                    fmt3(r.normalized[0]),
                    fmt3(r.normalized[1]),
                    fmt3(r.normalized[2]),
                    fmt3(r.absolute[0]),
                    fmt3(r.absolute[1]),
                    fmt3(r.absolute[2]),
                ]
            })
            .collect();
        write_json(&name, self);
        write_csv(
            &name,
            &[
                "algorithm",
                "norm_makespan",
                "norm_maxflow",
                "norm_sumflow",
                "abs_makespan",
                "abs_maxflow",
                "abs_sumflow",
            ],
            &rows,
        )
    }

    /// The normalized triple for one algorithm.
    pub fn normalized(&self, a: Algorithm) -> [f64; 3] {
        self.rows
            .iter()
            .find(|r| r.algorithm == a)
            .expect("algorithm present")
            .normalized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(class: PlatformClass) -> Fig1Panel {
        run_panel(class, ExperimentScale::quick(), ArrivalProcess::AllAtZero)
    }

    #[test]
    fn srpt_is_the_unit() {
        let panel = quick(PlatformClass::Heterogeneous);
        let srpt = panel.normalized(Algorithm::Srpt);
        for v in srpt {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn homogeneous_statics_beat_srpt() {
        // Figure 1(a): all static algorithms equal, better than SRPT.
        let panel = quick(PlatformClass::Homogeneous);
        for a in [
            Algorithm::ListScheduling,
            Algorithm::RoundRobin,
            Algorithm::RoundRobinComm,
            Algorithm::RoundRobinProc,
            Algorithm::Sljf,
            Algorithm::Sljfwc,
        ] {
            let n = panel.normalized(a);
            assert!(
                n[0] <= 1.0 + 1e-9,
                "{a} normalized makespan {} on homogeneous platforms",
                n[0]
            );
        }
        // And the RR family coincides exactly.
        assert_eq!(
            panel.normalized(Algorithm::RoundRobin),
            panel.normalized(Algorithm::RoundRobinComm)
        );
    }

    #[test]
    fn comm_homogeneous_rrc_is_worst_rr() {
        // Figure 1(b): RRC ignores speed heterogeneity and trails RRP/RR.
        let panel = quick(PlatformClass::CommHomogeneous);
        let rrc = panel.normalized(Algorithm::RoundRobinComm);
        let rrp = panel.normalized(Algorithm::RoundRobinProc);
        // 1% tolerance: at quick scale (3 platforms) the two can tie within
        // sampling noise; the paper-scale gap is checked in paper_claims.rs.
        assert!(
            rrc[0] >= rrp[0] - 0.01,
            "RRC {} should not beat RRP {} on comm-homogeneous",
            rrc[0],
            rrp[0]
        );
    }

    #[test]
    fn comp_homogeneous_rrp_trails_rrc() {
        // Figure 1(c): RRP (and SLJF) ignore link heterogeneity.
        let panel = quick(PlatformClass::CompHomogeneous);
        let rrc = panel.normalized(Algorithm::RoundRobinComm);
        let rrp = panel.normalized(Algorithm::RoundRobinProc);
        assert!(
            rrp[0] >= rrc[0] - 1e-9,
            "RRP {} should not beat RRC {} on comp-homogeneous",
            rrp[0],
            rrc[0]
        );
    }

    #[test]
    fn renders_and_writes() {
        let panel = quick(PlatformClass::Homogeneous);
        let rendered = panel.render();
        assert!(rendered.contains("Figure 1(a)"));
        assert!(rendered.contains("SLJFWC"));
        let path = panel.write_artifacts();
        assert!(path.exists());
    }
}
