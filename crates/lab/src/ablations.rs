//! Ablation studies for the design choices documented in DESIGN.md.
//!
//! * **A1 — RR dispatch**: the paper leaves the Round-Robin dispatch rule
//!   unspecified; we chose buffer-bounded demand-driven dispatch (buffer 1).
//!   This ablation sweeps the buffer bound and the cyclic/priority mode and
//!   shows why: buffer 0 degenerates to SRPT-like behaviour, large buffers
//!   to blind flooding.
//! * **A2 — SLJF/SLJFWC quality**: our reconstructions of the two planned
//!   heuristics (the companion report \[23\] being unavailable) are compared
//!   against the exhaustive optimum on small instances.
//! * **A3 — arrival regime**: Figure 1(d) under bag-of-tasks vs streamed
//!   arrivals at several loads.
//! * **A4 — heterogeneity degree**: the title question as a curve —
//!   platforms interpolating from homogeneous to the paper's heterogeneous
//!   distribution, per axis, measuring how much algorithm choice matters.

use crate::report::{fmt3, fmt4, write_csv, write_json, AsciiTable, ExperimentScale};
use mss_core::{
    simulate, Algorithm, InfoTier, Objective, Platform, PlatformClass, RoundRobin, RrDispatch,
    RrOrder, SimConfig,
};
use mss_opt::schedule::{Goal, Instance};
use mss_sweep::{parallel_map, run_cells, Cell, PlatformCell, SweepConfig};
use mss_workload::{ArrivalProcess, PlatformSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------- A1 ----

/// One configuration of the RR dispatch ablation.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BufferRow {
    /// Buffer bound swept.
    pub buffer: usize,
    /// Dispatch mode label (`priority` or `cyclic`).
    pub mode: String,
    /// Mean makespan normalized to SRPT, on [comm-homog, comp-homog] panels.
    pub normalized_makespan: [f64; 2],
}

/// Report of ablation A1.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BufferAblation {
    /// Scale used.
    pub scale: ExperimentScale,
    /// All swept configurations.
    pub rows: Vec<BufferRow>,
}

/// Sweeps the RR buffer bound and dispatch mode (order fixed to the RR
/// key). The ten (mode, buffer) configurations are independent and run in
/// parallel through `mss-sweep`'s executor; each configuration's inner
/// fold is unchanged, so the report matches the serial implementation.
pub fn buffer_sweep(scale: ExperimentScale) -> BufferAblation {
    buffer_sweep_with(scale, &SweepConfig::default())
}

/// [`buffer_sweep`] with an explicit runtime (thread count).
pub fn buffer_sweep_with(scale: ExperimentScale, config: &SweepConfig) -> BufferAblation {
    let sampler = PlatformSampler::default();
    let classes = [
        PlatformClass::CommHomogeneous,
        PlatformClass::CompHomogeneous,
    ];
    let platform_sets: Vec<Vec<Platform>> = classes
        .iter()
        .map(|&c| sampler.sample_many(c, scale.platforms, scale.seed))
        .collect();

    let configs: Vec<(RrDispatch, usize)> = [RrDispatch::Priority, RrDispatch::Cyclic]
        .into_iter()
        .flat_map(|d| [0usize, 1, 2, 4, 16].into_iter().map(move |b| (d, b)))
        .collect();

    let rows = parallel_map(&configs, config.threads, |_, &(dispatch, buffer)| {
        let mut norm = [0.0f64; 2];
        for (ci, platforms) in platform_sets.iter().enumerate() {
            for (pi, platform) in platforms.iter().enumerate() {
                let tasks = ArrivalProcess::AllAtZero.generate(
                    scale.tasks,
                    platform,
                    scale.seed ^ (pi as u64),
                );
                let cfg = SimConfig::with_horizon(scale.tasks);
                let srpt = simulate(platform, &tasks, &cfg, &mut Algorithm::Srpt.build())
                    .unwrap()
                    .makespan();
                let mut rr = RoundRobin::new(RrOrder::SumCp, dispatch, buffer);
                let rr_makespan = simulate(platform, &tasks, &cfg, &mut rr)
                    .unwrap()
                    .makespan();
                norm[ci] += rr_makespan / srpt;
            }
            norm[ci] /= platforms.len() as f64;
        }
        BufferRow {
            buffer,
            mode: match dispatch {
                RrDispatch::Priority => "priority".into(),
                RrDispatch::Cyclic => "cyclic".into(),
            },
            normalized_makespan: norm,
        }
    });
    BufferAblation { scale, rows }
}

impl BufferAblation {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "mode".to_string(),
            "buffer".to_string(),
            "comm-homog".to_string(),
            "comp-homog".to_string(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.mode.clone(),
                r.buffer.to_string(),
                fmt3(r.normalized_makespan[0]),
                fmt3(r.normalized_makespan[1]),
            ]);
        }
        format!(
            "Ablation A1 — RR dispatch (makespan normalized to SRPT, lower is better)\n{}",
            t.render()
        )
    }

    /// Writes artifacts; returns the CSV path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    r.buffer.to_string(),
                    fmt3(r.normalized_makespan[0]),
                    fmt3(r.normalized_makespan[1]),
                ]
            })
            .collect();
        write_json("ablation_buffer", self);
        write_csv(
            "ablation_buffer",
            &["mode", "buffer", "comm_homog_norm", "comp_homog_norm"],
            &rows,
        )
    }
}

// ---------------------------------------------------------------- A2 ----

/// Report of ablation A2: planned heuristics vs the exhaustive optimum.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SljfQuality {
    /// Mean and max SLJF/OPT makespan ratio on comm-homogeneous bags.
    pub sljf_comm: (f64, f64),
    /// Mean and max SLJFWC/OPT makespan ratio on comp-homogeneous bags.
    pub sljfwc_comp: (f64, f64),
    /// Mean and max SLJFWC/OPT makespan ratio on heterogeneous bags.
    pub sljfwc_het: (f64, f64),
    /// Number of random instances per cell.
    pub instances: usize,
}

/// Measures plan quality against `mss-opt`'s exhaustive optimum
/// (n ≤ 5 tasks, m = 2 slaves so the search stays exact and fast).
///
/// The instance parameters are drawn up front from the single sequential
/// RNG stream (exactly as the serial implementation consumed it), then all
/// `3 × instances` simulate-vs-exhaustive comparisons run in parallel and
/// the summary folds in draw order — same numbers, parallel wall-clock.
pub fn sljf_quality(instances: usize, seed: u64) -> SljfQuality {
    sljf_quality_with(instances, seed, &SweepConfig::default())
}

/// [`sljf_quality`] with an explicit runtime (thread count).
pub fn sljf_quality_with(instances: usize, seed: u64, config: &SweepConfig) -> SljfQuality {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = [
        (PlatformClass::CommHomogeneous, Algorithm::Sljf),
        (PlatformClass::CompHomogeneous, Algorithm::Sljfwc),
        (PlatformClass::Heterogeneous, Algorithm::Sljfwc),
    ];

    // Draw phase: consumes the RNG in the historical order.
    let mut jobs: Vec<(Vec<f64>, Vec<f64>, usize, Algorithm)> = Vec::new();
    for &(class, alg) in &cells {
        for _ in 0..instances {
            let c1: f64 = rng.gen_range(0.05..1.0);
            let c2: f64 = rng.gen_range(0.05..1.0);
            let p1: f64 = rng.gen_range(0.2..4.0);
            let p2: f64 = rng.gen_range(0.2..4.0);
            let (c, p) = match class {
                PlatformClass::CommHomogeneous => (vec![c1, c1], vec![p1, p2]),
                PlatformClass::CompHomogeneous => (vec![c1, c2], vec![p1, p1]),
                _ => (vec![c1, c2], vec![p1, p2]),
            };
            let n = rng.gen_range(2..=5);
            jobs.push((c, p, n, alg));
        }
    }

    // Evaluation phase: independent, parallel.
    let ratios = parallel_map(&jobs, config.threads, |_, (c, p, n, alg)| {
        let platform = Platform::from_vectors(c, p);
        let tasks = mss_core::bag_of_tasks(*n);
        let trace = simulate(
            &platform,
            &tasks,
            &SimConfig::with_horizon(*n),
            &mut alg.build(),
        )
        .unwrap();
        let inst = Instance {
            c: c.clone(),
            p: p.clone(),
            r: vec![0.0; *n],
        };
        let opt = mss_opt::best_f64(&inst, Goal::Makespan).value;
        Objective::Makespan.evaluate(&trace) / opt
    });

    let summarize = |slot: usize| -> (f64, f64) {
        let chunk = &ratios[slot * instances..(slot + 1) * instances];
        let sum: f64 = chunk.iter().sum();
        let max = chunk.iter().copied().fold(0.0f64, f64::max);
        (sum / instances as f64, max)
    };

    SljfQuality {
        sljf_comm: summarize(0),
        sljfwc_comp: summarize(1),
        sljfwc_het: summarize(2),
        instances,
    }
}

impl SljfQuality {
    /// Renders the quality table.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "cell".to_string(),
            "mean ratio".to_string(),
            "max ratio".to_string(),
        ]);
        t.row(vec![
            "SLJF / OPT, comm-homog".to_string(),
            fmt4(self.sljf_comm.0),
            fmt4(self.sljf_comm.1),
        ]);
        t.row(vec![
            "SLJFWC / OPT, comp-homog".to_string(),
            fmt4(self.sljfwc_comp.0),
            fmt4(self.sljfwc_comp.1),
        ]);
        t.row(vec![
            "SLJFWC / OPT, heterogeneous".to_string(),
            fmt4(self.sljfwc_het.0),
            fmt4(self.sljfwc_het.1),
        ]);
        format!(
            "Ablation A2 — planned heuristics vs exhaustive optimum ({} bags each, makespan)\n{}",
            self.instances,
            t.render()
        )
    }

    /// Writes artifacts; returns the JSON path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        write_json("ablation_sljf", self)
    }
}

// ---------------------------------------------------------------- A3 ----

/// Report of ablation A3: Figure 1(d) across arrival regimes.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ArrivalAblation {
    /// Scale used.
    pub scale: ExperimentScale,
    /// Per regime: label and per-algorithm normalized makespans.
    pub regimes: Vec<(String, Vec<(String, f64)>)>,
}

/// Runs Figure 1(d) under several arrival regimes.
pub fn arrival_sweep(scale: ExperimentScale) -> ArrivalAblation {
    arrival_sweep_with(scale, &SweepConfig::default())
}

/// [`arrival_sweep`] with an explicit runtime (thread count).
pub fn arrival_sweep_with(scale: ExperimentScale, config: &SweepConfig) -> ArrivalAblation {
    let regimes = [
        ArrivalProcess::AllAtZero,
        ArrivalProcess::UniformStream { load: 0.5 },
        ArrivalProcess::UniformStream { load: 0.9 },
        ArrivalProcess::UniformStream { load: 1.2 },
    ];
    let out = regimes
        .iter()
        .map(|&arrival| {
            let panel =
                crate::fig1::run_panel_with(PlatformClass::Heterogeneous, scale, arrival, config);
            let rows = panel
                .rows
                .iter()
                .map(|r| (r.algorithm.name().to_string(), r.normalized[0]))
                .collect();
            (arrival.label(), rows)
        })
        .collect();
    ArrivalAblation {
        scale,
        regimes: out,
    }
}

impl ArrivalAblation {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut header = vec!["algorithm".to_string()];
        header.extend(self.regimes.iter().map(|(l, _)| l.clone()));
        let mut t = AsciiTable::new(header);
        for (ai, a) in Algorithm::ALL.iter().enumerate() {
            let mut row = vec![a.name().to_string()];
            for (_, rows) in &self.regimes {
                row.push(fmt3(rows[ai].1));
            }
            t.row(row);
        }
        format!(
            "Ablation A3 — Figure 1(d) normalized makespan across arrival regimes\n{}",
            t.render()
        )
    }

    /// Writes artifacts; returns the JSON path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        write_json("ablation_arrivals", self)
    }
}

// ---------------------------------------------------------------- A4 ----

/// Report of ablation A4: the impact of the *degree* of heterogeneity.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct HeterogeneityImpact {
    /// Degrees swept.
    pub degrees: Vec<f64>,
    /// Per axis: label and, per degree, the mean normalized makespan of the
    /// best static heuristic and of the *worst* static heuristic — the
    /// spread between them is "the impact of heterogeneity" on algorithm
    /// choice.
    pub rows: Vec<(String, Vec<(f64, f64)>)>,
    /// Tasks per run.
    pub tasks: usize,
    /// Families (seeds) averaged.
    pub families: usize,
}

/// Sweeps the heterogeneity degree along all three axes (DESIGN.md A4,
/// `examples/heterogeneity_impact.rs`): as heterogeneity grows, the spread
/// between the best and worst static heuristic widens — the experimental
/// mirror of the theory section, where heterogeneity raises every lower
/// bound.
pub fn heterogeneity_impact(tasks: usize, families: usize, seed: u64) -> HeterogeneityImpact {
    heterogeneity_impact_with(tasks, families, seed, &SweepConfig::default())
}

/// [`heterogeneity_impact`] with an explicit runtime (thread count).
pub fn heterogeneity_impact_with(
    tasks: usize,
    families: usize,
    seed: u64,
    config: &SweepConfig,
) -> HeterogeneityImpact {
    use mss_workload::HeterogeneityAxis;
    let degrees = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    let axes = [
        HeterogeneityAxis::Communication,
        HeterogeneityAxis::Computation,
        HeterogeneityAxis::Both,
    ];

    // The full (axis × degree × family × algorithm) grid as sweep cells;
    // `Algorithm::ALL` puts SRPT first, so each chunk of 7 metrics is one
    // (axis, degree, family) point with its normalization baseline first.
    let mut cells = Vec::new();
    for axis in axes {
        for &h in &degrees {
            for f in 0..families {
                for &algorithm in &Algorithm::ALL {
                    cells.push(Cell {
                        platform: PlatformCell::Heterogeneity {
                            axis,
                            level: h,
                            slaves: 5,
                            seed: seed ^ (f as u64 * 7919),
                            family: f as u64,
                        },
                        arrival: ArrivalProcess::AllAtZero,
                        perturbation: None,
                        scenario: None,
                        tasks,
                        algorithm,
                        information: InfoTier::Clairvoyant,
                        replicate: f as u64,
                        task_seed: seed,
                    });
                }
            }
        }
    }
    let outcome = run_cells(cells, config);

    let per_point = Algorithm::ALL.len();
    let mut chunks = outcome.metrics.chunks(per_point);
    let mut rows = Vec::new();
    for axis in axes {
        let mut per_degree = Vec::new();
        for _ in &degrees {
            let (mut best_sum, mut worst_sum) = (0.0f64, 0.0f64);
            for _ in 0..families {
                let chunk = chunks.next().expect("one chunk per (axis, degree, family)");
                let srpt = chunk[0].makespan;
                let normalized = chunk[1..].iter().map(|m| m.makespan / srpt);
                best_sum += normalized.clone().fold(f64::INFINITY, f64::min);
                worst_sum += normalized.fold(0.0f64, f64::max);
            }
            per_degree.push((best_sum / families as f64, worst_sum / families as f64));
        }
        rows.push((axis.label().to_string(), per_degree));
    }

    HeterogeneityImpact {
        degrees,
        rows,
        tasks,
        families,
    }
}

impl HeterogeneityImpact {
    /// Renders best/worst normalized makespan per axis and degree.
    pub fn render(&self) -> String {
        let mut header = vec!["axis".to_string()];
        header.extend(self.degrees.iter().map(|h| format!("h={h}")));
        let mut t = AsciiTable::new(header);
        for (label, per_degree) in &self.rows {
            let mut row = vec![label.clone()];
            row.extend(
                per_degree
                    .iter()
                    .map(|(best, worst)| format!("{} / {}", fmt3(*best), fmt3(*worst))),
            );
            t.row(row);
        }
        format!(
            "Ablation A4 — impact of heterogeneity degree (best / worst static, makespan vs SRPT)\n{}",
            t.render()
        )
    }

    /// Writes artifacts; returns the JSON path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        write_json("ablation_heterogeneity", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneity_widens_the_static_spread() {
        let report = heterogeneity_impact(100, 2, 5);
        // At h = 0 all statics coincide; at h = 1 (both axes) they do not.
        let both = &report.rows.iter().find(|(l, _)| l == "both").unwrap().1;
        let (b0, w0) = both[0];
        let (b1, w1) = both[both.len() - 1];
        // A small residual spread exists even at h = 0 (the RR family's
        // bounded buffer costs a little at the end of a bag); heterogeneity
        // must widen it substantially.
        assert!(w0 - b0 < 0.05, "homogeneous spread {b0}..{w0}");
        assert!(
            w1 - b1 > (w0 - b0) + 0.01,
            "spread did not widen: h=0 {b0}..{w0} vs h=1 {b1}..{w1}"
        );
        assert!(report.render().contains("Ablation A4"));
    }

    #[test]
    fn buffer_zero_matches_srpt_like_behaviour() {
        // Buffer 0 forbids queueing entirely; on homogeneous-ish platforms
        // the RR family then loses its pipelining edge and the normalized
        // makespan rises towards (or above) 1.
        // Scale matters: with very few tasks the end-game stranding of a
        // queued task on a slow slave can dominate; at ≥100 tasks the
        // pipelining gain is reliable.
        let report = buffer_sweep(ExperimentScale {
            platforms: 4,
            tasks: 120,
            seed: 7,
        });
        let b0 = report
            .rows
            .iter()
            .find(|r| r.buffer == 0 && r.mode == "priority")
            .unwrap();
        let b1 = report
            .rows
            .iter()
            .find(|r| r.buffer == 1 && r.mode == "priority")
            .unwrap();
        assert!(
            b1.normalized_makespan[0] <= b0.normalized_makespan[0] + 1e-9,
            "buffer 1 ({}) should beat buffer 0 ({}) on comm-homog",
            b1.normalized_makespan[0],
            b0.normalized_makespan[0]
        );
        assert!(report.render().contains("Ablation A1"));
    }

    #[test]
    fn sljf_quality_close_to_optimal_in_its_design_domain() {
        let q = sljf_quality(40, 3);
        assert!(
            q.sljf_comm.1 < 1.0 + 1e-6,
            "SLJF max ratio {} on comm-homog bags (expected optimal)",
            q.sljf_comm.1
        );
        assert!(
            q.sljfwc_comp.0 < 1.15,
            "SLJFWC mean ratio {} on comp-homog bags",
            q.sljfwc_comp.0
        );
        assert!(q.render().contains("Ablation A2"));
    }

    #[test]
    fn arrival_sweep_has_all_regimes() {
        let report = arrival_sweep(ExperimentScale {
            platforms: 2,
            tasks: 60,
            seed: 5,
        });
        assert_eq!(report.regimes.len(), 4);
        assert!(report.render().contains("bag(t=0)"));
        assert!(report.write_artifacts().exists());
    }
}
