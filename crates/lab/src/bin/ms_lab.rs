//! `ms-lab` — regenerate the paper's tables and figures, or run arbitrary
//! scenario grids, on top of the `mss-sweep` orchestrator.
//!
//! ```text
//! ms-lab <command> [--quick] [--seed N] [--tasks N] [--platforms N]
//!                  [--threads N]
//!
//! commands:
//!   table1             Table 1 (nine bounds, machine-verified)
//!   fig1a..fig1d       Figure 1 panels (heuristic comparison)
//!   fig1               all four Figure 1 panels
//!   fig2               Figure 2 (robustness, ±10 % task sizes)
//!   ablation-buffer    A1: RR dispatch buffer sweep
//!   ablation-sljf      A2: SLJF/SLJFWC vs exhaustive optimum
//!   ablation-arrivals  A3: arrival-regime sweep
//!   ablation-heterogeneity  A4: heterogeneity-degree sweep
//!   resilience         degradation of all algorithms vs failure rate
//!                      (Poisson failures, fault-aware redispatch). Extra
//!                      flag: [--scenario FILE] runs a scenario file (see
//!                      examples/failure_scenario.toml) against the static
//!                      baseline instead of the built-in rate ladder
//!   oblivion           degradation of all algorithms vs information tier
//!                      (clairvoyant / speed-oblivious / non-clairvoyant)
//!                      across the paper's platform-class ladder, each
//!                      normalized to its own clairvoyant run
//!   sweep <spec>       run a user-defined grid (TOML or JSON spec; see
//!                      examples/sweep_grid.toml). Extra flags:
//!                      [--cache-dir DIR] [--no-cache] [--baseline ALG]
//!                      [--quiet] (suppress the live progress line)
//!   metrics <spec>     run a grid with telemetry probes and report
//!                      flow/wait/transfer/compute quantiles, per-slave
//!                      utilization splits and master-queue pressure per
//!                      (scenario, algorithm); writes metrics.csv and
//!                      metrics.json, byte-identical for any --threads.
//!                      Extra flags: [--cache-dir DIR] [--quick] (alias
//!                      for --no-cache: always simulate fresh)
//!   diff <spec>        replay one grid cell with the decision-digest
//!                      auditor. Alone: print the run's event count and
//!                      64-bit digest. [--dump PATH] also writes the
//!                      per-event JSONL ledger. [--against REF] compares
//!                      to a dumped ledger file or to another ms-lab
//!                      binary and reports the first divergent event
//!                      (exit 1 on divergence). [--cell N] picks the cell
//!   profile            phase breakdown (expand / materialize / simulate /
//!                      store / aggregate) of a representative sweep run
//!                      with counting probes attached; writes profile.json,
//!                      profile.csv and the per-worker Chrome-trace
//!                      timeline profile_workers.json
//!   trace <spec>       replay one grid cell with a trace recorder and
//!                      write a Chrome-trace-event JSON (open it at
//!                      ui.perfetto.dev): per-slave send/compute/downtime
//!                      tracks with failure instants. Extra flags:
//!                      [--cell N] [--out PATH]
//!   bench              time the engine and sweep hot loops and write the
//!                      schema-stable BENCH_engine.json perf-trajectory
//!                      point: the reference sweep at 1 thread and at max
//!                      threads, plus a larger multi-algorithm grid.
//!                      Extra flags: [--out PATH] (default
//!                      ./BENCH_engine.json); [--threads N] caps the
//!                      max-threads entries; [--compare OLD.json] prints
//!                      per-metric deltas vs a previous point and exits 1
//!                      on a regression beyond [--threshold PCT] (default
//!                      20) unless [--warn-only]
//!   all                everything above except `sweep` and `bench`
//! ```

use mss_core::{Algorithm, PlatformClass};
use mss_lab::report::{fmt3, fmt4, write_csv, write_json, AsciiTable, ExperimentScale};
use mss_lab::{ablations, fig1, fig2, oblivion, resilience, table1};
use mss_sweep::{default_threads, SweepConfig};
use mss_workload::{ArrivalProcess, Perturbation};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: ms-lab <table1|fig1|fig1a|fig1b|fig1c|fig1d|fig2|ablation-buffer|\
         ablation-sljf|ablation-arrivals|ablation-heterogeneity|resilience|oblivion|\
         sweep <spec.toml>|metrics <spec.toml>|diff <spec.toml>|profile|\
         trace <spec.toml>|bench|all>\n\
         \x20       [--quick] [--seed N] [--tasks N] [--platforms N] [--threads N]\n\
         \x20       sweep only: [--cache-dir DIR] [--no-cache] [--baseline ALG] [--quiet]\n\
         \x20                   [--streamed] (bounded-memory task streaming; same results)\n\
         \x20                   [--split-events N] (batch-split threshold; same results)\n\
         \x20       metrics only: [--cache-dir DIR] (--quick = always simulate fresh)\n\
         \x20       diff only: [--cell N] [--dump PATH] [--against LEDGER-OR-BINARY]\n\
         \x20       resilience only: [--scenario FILE]\n\
         \x20       trace only: [--cell N] [--out PATH]\n\
         \x20       bench only: [--out PATH] [--compare OLD.json] [--threshold PCT]\n\
         \x20                   [--warn-only] (--threads caps the max-thread entries)"
    );
    std::process::exit(2);
}

fn parse_scale(args: &[String]) -> ExperimentScale {
    let mut scale = if args.iter().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tasks" | "--platforms" | "--seed" => {
                let Some(v) = args.get(i + 1) else { usage() };
                match args[i].as_str() {
                    "--tasks" => scale.tasks = v.parse().unwrap_or_else(|_| usage()),
                    "--platforms" => scale.platforms = v.parse().unwrap_or_else(|_| usage()),
                    _ => scale.seed = v.parse().unwrap_or_else(|_| usage()),
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    scale
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_runtime(args: &[String]) -> SweepConfig {
    let threads = parse_flag(args, "--threads")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or_else(|| default_threads(64));
    SweepConfig {
        threads,
        cache_dir: None,
        // Additionally gated on stderr being a terminal and no CI
        // environment inside `mss_obs::Progress`.
        progress: !args.iter().any(|a| a == "--quiet"),
        count_events: false,
        collect_metrics: false,
        // Pull task streams lazily instead of materializing instances;
        // results and cache contents are bit-identical (contract #13).
        streamed: args.iter().any(|a| a == "--streamed"),
        // Batch-splitting threshold in estimated events; results are
        // bit-identical for any value (contract #14).
        split_events: parse_flag(args, "--split-events")
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(mss_sweep::DEFAULT_SPLIT_EVENTS),
    }
}

fn run_fig1_panel(class: PlatformClass, scale: ExperimentScale, config: &SweepConfig) {
    let panel = fig1::run_panel_with(class, scale, ArrivalProcess::AllAtZero, config);
    println!("{}", panel.render());
    let path = panel.write_artifacts();
    println!("artifacts: {}\n", path.display());
}

fn run_table1(config: &SweepConfig) {
    let report = table1::run_with(config);
    println!("{}", report.render());
    let path = report.write_artifacts();
    println!("artifacts: {}\n", path.display());
    assert!(report.all_verified(), "a bound was violated — see above");
}

fn run_fig2(scale: ExperimentScale, config: &SweepConfig) {
    // Physical reading of the paper's "size of the matrix ... by a factor
    // of up to 10 %": the linear dimension jitters by ±10 %, so shipping
    // (N² entries) scales quadratically and the determinant (O(N³))
    // cubically. `Perturbation::linear` is the conservative alternative.
    let report = fig2::run_with(
        scale,
        ArrivalProcess::UniformStream { load: 0.9 },
        Perturbation::matrix(0.1),
        config,
    );
    println!("{}", report.render());
    let path = report.write_artifacts();
    println!("artifacts: {}\n", path.display());
}

fn run_sweep(args: &[String]) {
    let Some(spec_path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("sweep: missing spec path");
        usage();
    };
    let spec = match mss_sweep::spec_from_path(std::path::Path::new(spec_path)) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(2);
        }
    };

    let mut config = parse_runtime(args);
    if !args.iter().any(|a| a == "--no-cache") {
        let dir = parse_flag(args, "--cache-dir")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .join("../../target/sweep-cache")
                    .join(&spec.name)
            });
        config.cache_dir = Some(dir);
    }
    let baseline = match parse_flag(args, "--baseline") {
        Some(name) => match Algorithm::from_name(&name) {
            Some(a) => Some(a),
            None => {
                eprintln!("sweep: unknown baseline algorithm `{name}`");
                std::process::exit(2);
            }
        },
        None => Some(Algorithm::Srpt),
    };

    let cells = match spec.expand() {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "sweep `{}`: {} cells on {} threads{}",
        spec.name,
        cells.len(),
        config.threads,
        match &config.cache_dir {
            Some(d) => format!(", cache at {}", d.display()),
            None => ", cache disabled".to_string(),
        }
    );
    let outcome = mss_sweep::run_cells(cells, &config);
    let rows = outcome.aggregate(baseline);

    let mut table = AsciiTable::new(vec![
        "scenario".to_string(),
        "alg".to_string(),
        "makespan (mean±ci95)".to_string(),
        "vs LB".to_string(),
        "vs base".to_string(),
    ]);
    for row in &rows {
        table.row(vec![
            row.group.clone(),
            row.algorithm.clone(),
            format!("{}±{}", fmt3(row.makespan.mean), fmt3(row.makespan.ci95)),
            fmt4(row.ratio_vs_lb.mean),
            row.normalized
                .as_ref()
                .map(|s| fmt3(s.mean))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", table.render());

    let name = format!("sweep_{}", spec.name);
    write_json(&name, &rows);
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.group.clone(),
                r.algorithm.clone(),
                format!("{}", r.makespan.mean),
                format!("{}", r.makespan.min),
                format!("{}", r.makespan.max),
                format!("{}", r.makespan.ci95),
                format!("{}", r.ratio_vs_lb.mean),
                r.normalized
                    .as_ref()
                    .map(|s| format!("{}", s.mean))
                    .unwrap_or_default(),
            ]
        })
        .collect();
    let path = write_csv(
        &name,
        &[
            "scenario",
            "algorithm",
            "makespan_mean",
            "makespan_min",
            "makespan_max",
            "makespan_ci95",
            "ratio_vs_lb_mean",
            "normalized_mean",
        ],
        &csv_rows,
    );
    println!(
        "executed {} cells, {} from cache{}; artifacts: {}",
        outcome.executed,
        outcome.cached,
        if outcome.dropped > 0 {
            format!(" ({} torn records re-run)", outcome.dropped)
        } else {
            String::new()
        },
        path.display()
    );
}

fn spec_arg(args: &[String], cmd: &str) -> (mss_sweep::SweepSpec, PathBuf) {
    let Some(spec_path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{cmd}: missing spec path");
        usage();
    };
    match mss_sweep::spec_from_path(std::path::Path::new(spec_path)) {
        Ok(spec) => (spec, PathBuf::from(spec_path)),
        Err(e) => {
            eprintln!("{cmd}: {e}");
            std::process::exit(2);
        }
    }
}

fn run_metrics_cmd(args: &[String]) {
    let (spec, _) = spec_arg(args, "metrics");
    let mut config = parse_runtime(args);
    // `--quick` forces a fresh simulation (the CI smoke path); otherwise
    // cache under the same per-spec directory the sweep command uses —
    // cached records without telemetry payloads re-run automatically.
    if !args.iter().any(|a| a == "--quick" || a == "--no-cache") {
        let dir = parse_flag(args, "--cache-dir")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .join("../../target/sweep-cache")
                    .join(&spec.name)
            });
        config.cache_dir = Some(dir);
    }
    match mss_lab::metrics::run_spec_metrics(&spec, &config) {
        Ok(report) => {
            println!("{}", report.render());
            let path = report.write_artifacts();
            println!("artifacts: {} (+ metrics.json)", path.display());
        }
        Err(e) => {
            eprintln!("metrics: {e}");
            std::process::exit(2);
        }
    }
}

fn run_diff(args: &[String]) {
    use mss_lab::diff;
    let (spec, spec_path) = spec_arg(args, "diff");
    let index = parse_flag(args, "--cell")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let outcome = match diff::audit_cell(&spec, index) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("diff: {e}");
            std::process::exit(2);
        }
    };
    println!("audited {}", outcome.cell);
    println!("{} events, digest {:016x}", outcome.events, outcome.digest);
    if let Some(i) = args.iter().position(|a| a == "--dump") {
        let path = args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .map(PathBuf::from)
            .unwrap_or_else(|| diff::default_dump_path(&spec.name, index));
        std::fs::write(&path, diff::ledger_to_jsonl(&outcome.ledger))
            .unwrap_or_else(|e| panic!("write ledger {}: {e}", path.display()));
        println!("ledger: {}", path.display());
    }
    if let Some(against) = parse_flag(args, "--against") {
        let theirs = match diff::reference_ledger(std::path::Path::new(&against), &spec_path, index)
        {
            Ok(l) => l,
            Err(e) => {
                eprintln!("diff: {e}");
                std::process::exit(2);
            }
        };
        let ours: Vec<diff::LedgerLine> = outcome.ledger.iter().map(diff::LedgerLine::of).collect();
        let verdict = diff::first_divergence(&ours, &theirs);
        println!("{}", verdict.render());
        if !verdict.is_identical() {
            std::process::exit(1);
        }
    }
}

fn run_profile(args: &[String], config: &SweepConfig) {
    let quick = args.iter().any(|a| a == "--quick");
    let report = mss_lab::profile::run_with(quick, config.threads);
    println!("{}", report.render());
    let dir = report.write_artifacts();
    println!(
        "\nartifacts: {} (profile.json, profile.csv, profile_workers.json)",
        dir.display()
    );
}

fn run_trace(args: &[String]) {
    let Some(spec_path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("trace: missing spec path");
        usage();
    };
    let spec = match mss_sweep::spec_from_path(std::path::Path::new(spec_path)) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("trace: {e}");
            std::process::exit(2);
        }
    };
    let index = parse_flag(args, "--cell")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let out = parse_flag(args, "--out").map(PathBuf::from);
    match mss_lab::profile::trace_cell(&spec, index, out) {
        Ok(t) => {
            println!("traced {}", t.cell);
            match &t.result {
                Ok(m) => println!(
                    "run completed: makespan {} ({} engine events, {} spans)",
                    fmt3(m.makespan),
                    t.counters.events(),
                    t.spans
                ),
                Err(e) => println!(
                    "run aborted ({e}); partial trace still written ({} spans)",
                    t.spans
                ),
            }
            println!(
                "trace: {} (load it at ui.perfetto.dev or chrome://tracing)",
                t.path.display()
            );
        }
        Err(e) => {
            eprintln!("trace: {e}");
            std::process::exit(2);
        }
    }
}

fn run_bench(args: &[String], config: &SweepConfig) {
    let quick = args.iter().any(|a| a == "--quick");
    let report = mss_lab::bench::run(quick, config.threads);
    println!("{}", report.render());
    let out = parse_flag(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_engine.json"));
    let path = report.write(&out);
    println!("perf-trajectory point: {}", path.display());
    if let Some(old_path) = parse_flag(args, "--compare") {
        let old = match mss_lab::bench::load_report(std::path::Path::new(&old_path)) {
            Ok(old) => old,
            Err(e) => {
                eprintln!("bench: {e}");
                std::process::exit(2);
            }
        };
        let threshold = parse_flag(args, "--threshold")
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(20.0);
        let cmp = mss_lab::bench::compare(&old, &report, threshold);
        println!("\nvs {}:\n{}", old_path, cmp.render());
        if !cmp.regressions().is_empty() && !args.iter().any(|a| a == "--warn-only") {
            std::process::exit(1);
        }
    }
}

fn run_oblivion(scale: ExperimentScale, config: &SweepConfig) {
    let arrival = ArrivalProcess::UniformStream { load: 0.9 };
    let report = oblivion::run_with(scale, arrival, config);
    println!("{}", report.render());
    println!("artifacts: {}\n", report.write_artifacts().display());
}

fn run_resilience(args: &[String], scale: ExperimentScale, config: &SweepConfig) {
    let arrival = ArrivalProcess::UniformStream { load: 0.9 };
    let report = match parse_flag(args, "--scenario") {
        Some(path) => {
            let spec = match mss_sweep::scenario_from_path(std::path::Path::new(&path)) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("resilience: {e}");
                    std::process::exit(2);
                }
            };
            resilience::run_scenario_file(scale, arrival, &spec, config)
        }
        None => resilience::run_with(scale, arrival, config),
    };
    println!("{}", report.render());
    println!("artifacts: {}\n", report.write_artifacts().display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let rest = &args[1..];
    let scale = parse_scale(rest);
    let runtime = parse_runtime(rest);

    match command.as_str() {
        "table1" => run_table1(&runtime),
        "fig1a" => run_fig1_panel(PlatformClass::Homogeneous, scale, &runtime),
        "fig1b" => run_fig1_panel(PlatformClass::CommHomogeneous, scale, &runtime),
        "fig1c" => run_fig1_panel(PlatformClass::CompHomogeneous, scale, &runtime),
        "fig1d" => run_fig1_panel(PlatformClass::Heterogeneous, scale, &runtime),
        "fig1" => {
            for class in [
                PlatformClass::Homogeneous,
                PlatformClass::CommHomogeneous,
                PlatformClass::CompHomogeneous,
                PlatformClass::Heterogeneous,
            ] {
                run_fig1_panel(class, scale, &runtime);
            }
        }
        "fig2" => run_fig2(scale, &runtime),
        "sweep" => run_sweep(rest),
        "metrics" => run_metrics_cmd(rest),
        "diff" => run_diff(rest),
        "profile" => run_profile(rest, &runtime),
        "trace" => run_trace(rest),
        "bench" => run_bench(rest, &runtime),
        "ablation-buffer" => {
            let report = ablations::buffer_sweep_with(scale, &runtime);
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "ablation-sljf" => {
            let report = ablations::sljf_quality_with(200, scale.seed, &runtime);
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "ablation-arrivals" => {
            let report = ablations::arrival_sweep_with(scale, &runtime);
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "ablation-heterogeneity" => {
            let report = ablations::heterogeneity_impact_with(
                scale.tasks,
                scale.platforms,
                scale.seed,
                &runtime,
            );
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "resilience" => run_resilience(rest, scale, &runtime),
        "oblivion" => run_oblivion(scale, &runtime),
        "all" => {
            run_table1(&runtime);
            for class in [
                PlatformClass::Homogeneous,
                PlatformClass::CommHomogeneous,
                PlatformClass::CompHomogeneous,
                PlatformClass::Heterogeneous,
            ] {
                run_fig1_panel(class, scale, &runtime);
            }
            run_fig2(scale, &runtime);
            let a1 = ablations::buffer_sweep_with(scale, &runtime);
            println!("{}", a1.render());
            a1.write_artifacts();
            let a2 = ablations::sljf_quality_with(200, scale.seed, &runtime);
            println!("{}", a2.render());
            a2.write_artifacts();
            let a3 = ablations::arrival_sweep_with(scale, &runtime);
            println!("{}", a3.render());
            a3.write_artifacts();
            let a4 = ablations::heterogeneity_impact_with(
                scale.tasks,
                scale.platforms,
                scale.seed,
                &runtime,
            );
            println!("{}", a4.render());
            a4.write_artifacts();
            run_resilience(rest, scale, &runtime);
            run_oblivion(scale, &runtime);
        }
        _ => usage(),
    }
}
