//! `ms-lab` — regenerate the paper's tables and figures from the terminal.
//!
//! ```text
//! ms-lab <command> [--quick] [--seed N] [--tasks N] [--platforms N]
//!
//! commands:
//!   table1             Table 1 (nine bounds, machine-verified)
//!   fig1a..fig1d       Figure 1 panels (heuristic comparison)
//!   fig1               all four Figure 1 panels
//!   fig2               Figure 2 (robustness, ±10 % task sizes)
//!   ablation-buffer    A1: RR dispatch buffer sweep
//!   ablation-sljf      A2: SLJF/SLJFWC vs exhaustive optimum
//!   ablation-arrivals  A3: arrival-regime sweep
//!   all                everything above
//! ```

use mss_core::PlatformClass;
use mss_lab::report::ExperimentScale;
use mss_lab::{ablations, fig1, fig2, table1};
use mss_workload::{ArrivalProcess, Perturbation};

fn usage() -> ! {
    eprintln!(
        "usage: ms-lab <table1|fig1|fig1a|fig1b|fig1c|fig1d|fig2|ablation-buffer|\
         ablation-sljf|ablation-arrivals|ablation-heterogeneity|all> [--quick] [--seed N] [--tasks N] [--platforms N]"
    );
    std::process::exit(2);
}

fn parse_scale(args: &[String]) -> ExperimentScale {
    let mut scale = if args.iter().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tasks" | "--platforms" | "--seed" => {
                let Some(v) = args.get(i + 1) else { usage() };
                match args[i].as_str() {
                    "--tasks" => scale.tasks = v.parse().unwrap_or_else(|_| usage()),
                    "--platforms" => scale.platforms = v.parse().unwrap_or_else(|_| usage()),
                    _ => scale.seed = v.parse().unwrap_or_else(|_| usage()),
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    scale
}

fn run_fig1_panel(class: PlatformClass, scale: ExperimentScale) {
    let panel = fig1::run_panel(class, scale, ArrivalProcess::AllAtZero);
    println!("{}", panel.render());
    let path = panel.write_artifacts();
    println!("artifacts: {}\n", path.display());
}

fn run_table1() {
    let report = table1::run();
    println!("{}", report.render());
    let path = report.write_artifacts();
    println!("artifacts: {}\n", path.display());
    assert!(report.all_verified(), "a bound was violated — see above");
}

fn run_fig2(scale: ExperimentScale) {
    // Physical reading of the paper's "size of the matrix ... by a factor
    // of up to 10 %": the linear dimension jitters by ±10 %, so shipping
    // (N² entries) scales quadratically and the determinant (O(N³))
    // cubically. `Perturbation::linear` is the conservative alternative.
    let report = fig2::run(
        scale,
        ArrivalProcess::UniformStream { load: 0.9 },
        Perturbation::matrix(0.1),
    );
    println!("{}", report.render());
    let path = report.write_artifacts();
    println!("artifacts: {}\n", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let scale = parse_scale(&args[1..]);

    match command.as_str() {
        "table1" => run_table1(),
        "fig1a" => run_fig1_panel(PlatformClass::Homogeneous, scale),
        "fig1b" => run_fig1_panel(PlatformClass::CommHomogeneous, scale),
        "fig1c" => run_fig1_panel(PlatformClass::CompHomogeneous, scale),
        "fig1d" => run_fig1_panel(PlatformClass::Heterogeneous, scale),
        "fig1" => {
            for class in [
                PlatformClass::Homogeneous,
                PlatformClass::CommHomogeneous,
                PlatformClass::CompHomogeneous,
                PlatformClass::Heterogeneous,
            ] {
                run_fig1_panel(class, scale);
            }
        }
        "fig2" => run_fig2(scale),
        "ablation-buffer" => {
            let report = ablations::buffer_sweep(scale);
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "ablation-sljf" => {
            let report = ablations::sljf_quality(200, scale.seed);
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "ablation-arrivals" => {
            let report = ablations::arrival_sweep(scale);
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "ablation-heterogeneity" => {
            let report = ablations::heterogeneity_impact(scale.tasks, scale.platforms, scale.seed);
            println!("{}", report.render());
            println!("artifacts: {}\n", report.write_artifacts().display());
        }
        "all" => {
            run_table1();
            for class in [
                PlatformClass::Homogeneous,
                PlatformClass::CommHomogeneous,
                PlatformClass::CompHomogeneous,
                PlatformClass::Heterogeneous,
            ] {
                run_fig1_panel(class, scale);
            }
            run_fig2(scale);
            let a1 = ablations::buffer_sweep(scale);
            println!("{}", a1.render());
            a1.write_artifacts();
            let a2 = ablations::sljf_quality(200, scale.seed);
            println!("{}", a2.render());
            a2.write_artifacts();
            let a3 = ablations::arrival_sweep(scale);
            println!("{}", a3.render());
            a3.write_artifacts();
            let a4 = ablations::heterogeneity_impact(scale.tasks, scale.platforms, scale.seed);
            println!("{}", a4.render());
            a4.write_artifacts();
        }
        _ => usage(),
    }
}
