//! `ms-lab metrics` — distributional run telemetry for a sweep grid.
//!
//! Runs a user spec with [`SweepConfig::collect_metrics`] so every cell
//! carries a telemetry payload, merges the payloads per (group,
//! algorithm) in expansion order, and reports flow/wait/transfer/compute
//! quantiles plus per-slave utilization splits and master-queue pressure.
//! This is the distributional companion to the scalar objectives: the
//! paper's max-flow objective is exactly the flow histogram's maximum,
//! and the p50/p90/p99 ladder shows how far the tail sits from the bulk.
//!
//! Everything here is deterministic and thread-count independent
//! (contract #12): histograms carry integer bucket counts that merge
//! exactly, utilization is stored as seconds and divided only at render
//! time, and the lab-side merge runs in expansion order. `metrics.csv` /
//! `metrics.json` are byte-identical for any `--threads` value.

use crate::report::{fmt3, write_csv, write_json, AsciiTable};
use mss_sweep::{aggregate_metrics, try_run_cells, MetricsRow, SweepConfig, SweepSpec};
use std::path::PathBuf;

/// A completed telemetry run over a spec's grid.
pub struct MetricsReport {
    /// Spec name (labels the artifacts).
    pub name: String,
    /// Merged telemetry rows in first-seen (group, algorithm) order.
    pub rows: Vec<MetricsRow>,
    /// Cells in the grid.
    pub cells: usize,
    /// Cells that completed (aborted cells carry no telemetry).
    pub completed: usize,
    /// Cells actually simulated this run.
    pub executed: usize,
    /// Cells served from the result store with payloads intact.
    pub cached: usize,
}

/// Expands and runs `spec` with telemetry collection on, then merges the
/// per-cell payloads. Cell failures (e.g. budget aborts of fault-oblivious
/// algorithms) are tolerated: their cells simply drop out of the merge.
pub fn run_spec_metrics(spec: &SweepSpec, config: &SweepConfig) -> Result<MetricsReport, String> {
    let config = SweepConfig {
        collect_metrics: true,
        ..config.clone()
    };
    let cells = spec.expand().map_err(|e| e.to_string())?;
    let n = cells.len();
    let checked = try_run_cells(&cells, &config);

    let mut ok_cells = Vec::with_capacity(n);
    let mut ok_metrics = Vec::with_capacity(n);
    for (cell, result) in cells.iter().zip(checked.results) {
        if let Ok(m) = result {
            ok_cells.push(cell.clone());
            ok_metrics.push(m);
        }
    }
    let completed = ok_cells.len();
    let rows = aggregate_metrics(&ok_cells, &ok_metrics);
    Ok(MetricsReport {
        name: spec.name.clone(),
        rows,
        cells: n,
        completed,
        executed: checked.executed,
        cached: checked.cached,
    })
}

impl MetricsReport {
    /// Human-readable telemetry table: flow quantiles, utilization split,
    /// queue pressure.
    pub fn render(&self) -> String {
        let mut out = format!(
            "telemetry `{}`: {} cells ({} completed, {} executed, {} cached)\n\n",
            self.name, self.cells, self.completed, self.executed, self.cached
        );
        let mut table = AsciiTable::new(vec![
            "scenario".to_string(),
            "alg".to_string(),
            "tasks".to_string(),
            "flow p50".to_string(),
            "p90".to_string(),
            "p99".to_string(),
            "max".to_string(),
            "busy%".to_string(),
            "blocked%".to_string(),
            "idle%".to_string(),
            "port%".to_string(),
            "q mean".to_string(),
        ]);
        for r in &self.rows {
            table.row(vec![
                r.group.clone(),
                r.algorithm.clone(),
                r.tasks.to_string(),
                fmt3(r.flow.p50),
                fmt3(r.flow.p90),
                fmt3(r.flow.p99),
                fmt3(r.flow.max),
                format!("{:.1}", r.busy_frac * 100.0),
                format!("{:.1}", r.blocked_frac * 100.0),
                format!("{:.1}", r.idle_frac * 100.0),
                format!("{:.1}", r.recv_frac * 100.0),
                fmt3(r.queue_mean),
            ]);
        }
        out.push_str(&table.render());
        out
    }

    /// Writes `metrics.csv` and `metrics.json` (full-precision row dump)
    /// to the artifact directory; returns the CSV path.
    pub fn write_artifacts(&self) -> PathBuf {
        write_json("metrics", &self.rows);
        let csv_rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![
                    r.group.clone(),
                    r.algorithm.clone(),
                    r.cells.to_string(),
                    r.tasks.to_string(),
                ];
                for h in [&r.flow, &r.wait, &r.transfer, &r.compute] {
                    for v in [h.p50, h.p90, h.p99, h.max] {
                        row.push(format!("{v}"));
                    }
                }
                for v in [
                    r.busy_frac,
                    r.blocked_frac,
                    r.idle_frac,
                    r.recv_frac,
                    r.queue_mean,
                ] {
                    row.push(format!("{v}"));
                }
                row.push(r.queue_max.to_string());
                row
            })
            .collect();
        write_csv(
            "metrics",
            &[
                "scenario",
                "algorithm",
                "cells",
                "tasks",
                "flow_p50",
                "flow_p90",
                "flow_p99",
                "flow_max",
                "wait_p50",
                "wait_p90",
                "wait_p99",
                "wait_max",
                "transfer_p50",
                "transfer_p90",
                "transfer_p99",
                "transfer_max",
                "compute_p50",
                "compute_p90",
                "compute_p99",
                "compute_max",
                "busy_frac",
                "blocked_frac",
                "idle_frac",
                "recv_frac",
                "queue_mean",
                "queue_max",
            ],
            &csv_rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sweep::spec_from_toml;

    fn spec() -> SweepSpec {
        spec_from_toml(
            r#"
            name = "metrics-test"
            seed = 9
            tasks = [30]
            algorithms = ["SRPT", "LS"]

            [[platforms]]
            kind = "class"
            class = "heterogeneous"
            count = 2
            slaves = 3

            [[arrivals]]
            kind = "bag"
            "#,
        )
        .unwrap()
    }

    fn config(threads: usize) -> SweepConfig {
        SweepConfig {
            threads,
            cache_dir: None,
            progress: false,
            count_events: false,
            collect_metrics: false,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn report_rows_are_sane_and_thread_count_independent() {
        let spec = spec();
        let one = run_spec_metrics(&spec, &config(1)).unwrap();
        let four = run_spec_metrics(&spec, &config(4)).unwrap();
        assert_eq!(one.rows, four.rows, "telemetry is thread-count independent");
        assert_eq!(one.rows.len(), 2, "one row per algorithm");
        for r in &one.rows {
            // 2 platform draws × 30 tasks per cell.
            assert_eq!(r.cells, 2);
            assert_eq!(r.tasks, 60);
            assert_eq!(r.flow.count, r.tasks);
            assert!(r.flow.p50 <= r.flow.p90 && r.flow.p90 <= r.flow.p99);
            assert!(r.flow.p99 <= r.flow.max);
            for f in [r.busy_frac, r.blocked_frac, r.idle_frac, r.recv_frac] {
                assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
            }
            // The three states partition slave time.
            let total = r.busy_frac + r.blocked_frac + r.idle_frac;
            assert!((total - 1.0).abs() < 1e-9, "partition sums to {total}");
            assert!(r.queue_mean >= 0.0 && r.queue_max >= 1);
        }
        assert!(one.render().contains("flow p50"));
    }
}
