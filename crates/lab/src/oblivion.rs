//! Oblivion — degradation under withdrawn information.
//!
//! The paper's seven heuristics assume a fully clairvoyant master; this
//! experiment (new with the information-model refactor) measures what each
//! algorithm loses when that knowledge is withdrawn. Across the paper's
//! §4.2 heterogeneity ladder — homogeneous, communication-homogeneous,
//! computation-homogeneous, fully heterogeneous — every algorithm runs the
//! *identical* instances at all three [`InfoTier`]s, and the report gives
//! its makespan/max-flow ratio against **its own clairvoyant self**
//! (column `clairvoyant` ≡ 1).
//!
//! Two readings fall out. Memoryless heuristics (SRPT, LS, the RR family)
//! differ between `speed-oblivious` and `non-clairvoyant` only through
//! knowledge they never use, so their two sub-clairvoyant columns
//! coincide on identical-task workloads — the cost of oblivion for them
//! is pure estimator warm-up, and it grows with the rung's
//! heterogeneity (on the homogeneous rung the neutral prior is already
//! correct). The planners separate the tiers: at `speed-oblivious` they
//! still see the horizon and commit a *whole-instance* plan built on the
//! not-yet-informed prior — SLJFWC's reversed greedy then spreads work
//! uniformly over slaves that are anything but uniform, and no later
//! observation can undo it — while at `non-clairvoyant` the withdrawn
//! horizon shrinks the plan window to the first release batch and the
//! learned-estimate List-Scheduling tail takes over. Withdrawing *more*
//! information can therefore help a misinformed planner: confident plans
//! on wrong beliefs lose to humble reactivity.

use crate::report::{fmt3, write_csv, write_json, AsciiTable, ExperimentScale};
use mss_core::{Algorithm, InfoTier, PlatformClass};
use mss_sweep::{run_cells, Cell, PlatformCell, SweepConfig};
use mss_workload::ArrivalProcess;

/// The ladder rungs, in the paper's Figure 1 panel order (a–d).
pub const LADDER: [PlatformClass; 4] = [
    PlatformClass::Homogeneous,
    PlatformClass::CommHomogeneous,
    PlatformClass::CompHomogeneous,
    PlatformClass::Heterogeneous,
];

/// One (platform class, algorithm) pair's measurements across the tiers.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct OblivionRow {
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// The ladder rung the row was measured on.
    pub class: PlatformClass,
    /// Mean makespan per tier (column order: [`InfoTier::ALL`]), seconds.
    pub makespan: Vec<f64>,
    /// Mean max-flow per tier, seconds.
    pub max_flow: Vec<f64>,
    /// `makespan[i] / makespan[clairvoyant]` per tier.
    pub deg_makespan: Vec<f64>,
    /// `max_flow[i] / max_flow[clairvoyant]` per tier.
    pub deg_max_flow: Vec<f64>,
}

/// The oblivion report.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct OblivionReport {
    /// Run scale.
    pub scale: ExperimentScale,
    /// Arrival regime (near-saturated stream by default, so max-flow is
    /// arrival-bound and meaningful).
    pub arrival: ArrivalProcess,
    /// Tier labels, in column order (index 0 is the clairvoyant baseline).
    pub tiers: Vec<String>,
    /// Rows, ladder-major then the paper's algorithm order.
    pub rows: Vec<OblivionRow>,
}

/// The experiment grid: ladder rung × platform draw × tier × algorithm,
/// with one task seed per (rung, draw) so every tier and every algorithm
/// of a point faces the identical instance.
pub fn report_cells(scale: ExperimentScale, arrival: ArrivalProcess) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(
        LADDER.len() * scale.platforms * InfoTier::ALL.len() * Algorithm::ALL.len(),
    );
    for &class in &LADDER {
        for pi in 0..scale.platforms {
            for &information in &InfoTier::ALL {
                for &algorithm in &Algorithm::ALL {
                    cells.push(Cell {
                        platform: PlatformCell::Class {
                            class,
                            slaves: 5,
                            seed: scale.seed,
                            index: pi,
                        },
                        arrival,
                        perturbation: None,
                        scenario: None,
                        tasks: scale.tasks,
                        algorithm,
                        information,
                        replicate: 0,
                        task_seed: scale.seed ^ (pi as u64) << 17,
                    });
                }
            }
        }
    }
    cells
}

/// Folds the grid (layout of [`report_cells`]) into per-(class, algorithm)
/// rows: mean over platform draws per tier, normalized to tier 0.
fn fold_rows(metrics: &[mss_sweep::CellMetrics], scale: ExperimentScale) -> Vec<OblivionRow> {
    let n_tier = InfoTier::ALL.len();
    let n_alg = Algorithm::ALL.len();
    let nplat = scale.platforms as f64;
    debug_assert_eq!(
        metrics.len(),
        LADDER.len() * scale.platforms * n_tier * n_alg
    );
    let mut rows: Vec<OblivionRow> = LADDER
        .iter()
        .flat_map(|&class| {
            Algorithm::ALL.iter().map(move |&algorithm| OblivionRow {
                algorithm,
                class,
                makespan: vec![0.0; n_tier],
                max_flow: vec![0.0; n_tier],
                deg_makespan: vec![0.0; n_tier],
                deg_max_flow: vec![0.0; n_tier],
            })
        })
        .collect();
    for (ci, m) in metrics.iter().enumerate() {
        let ai = ci % n_alg;
        let ti = (ci / n_alg) % n_tier;
        let cls = ci / (n_alg * n_tier * scale.platforms);
        let row = &mut rows[cls * n_alg + ai];
        row.makespan[ti] += m.makespan / nplat;
        row.max_flow[ti] += m.max_flow / nplat;
    }
    for row in &mut rows {
        for ti in 0..n_tier {
            row.deg_makespan[ti] = row.makespan[ti] / row.makespan[0];
            row.deg_max_flow[ti] = row.max_flow[ti] / row.max_flow[0];
        }
    }
    rows
}

/// Runs the oblivion experiment.
pub fn run_with(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    config: &SweepConfig,
) -> OblivionReport {
    let outcome = run_cells(report_cells(scale, arrival), config);
    OblivionReport {
        scale,
        arrival,
        tiers: InfoTier::ALL
            .iter()
            .map(|t| t.label().to_string())
            .collect(),
        rows: fold_rows(&outcome.metrics, scale),
    }
}

impl OblivionReport {
    /// Renders the degradation tables (makespan, then max-flow).
    pub fn render(&self) -> String {
        let mut header = vec![
            "#".to_string(),
            "algorithm".to_string(),
            "platforms".to_string(),
        ];
        header.extend(self.tiers.iter().cloned());

        let mut mk = AsciiTable::new(header.clone());
        let mut mf = AsciiTable::new(header);
        for row in &self.rows {
            let lead = vec![
                row.algorithm.figure_index().to_string(),
                row.algorithm.name().to_string(),
                format!("{}", row.class),
            ];
            let mut mk_cells = lead.clone();
            mk_cells.extend(row.deg_makespan.iter().map(|v| fmt3(*v)));
            mk.row(mk_cells);
            let mut mf_cells = lead;
            mf_cells.extend(row.deg_max_flow.iter().map(|v| fmt3(*v)));
            mf.row(mf_cells);
        }
        format!(
            "Oblivion — degradation vs information tier, {} platforms/class, {} tasks, {}\n\
             (per algorithm, normalized to its own clairvoyant run on the \
             identical instances)\n\n\
             makespan:\n{}\nmax-flow:\n{}",
            self.scale.platforms,
            self.scale.tasks,
            self.arrival.label(),
            mk.render(),
            mf.render()
        )
    }

    /// Writes `oblivion.csv` and `.json`; returns the CSV path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        let mut rows = Vec::new();
        for row in &self.rows {
            for (ti, tier) in self.tiers.iter().enumerate() {
                rows.push(vec![
                    row.algorithm.name().to_string(),
                    format!("{}", row.class),
                    tier.clone(),
                    format!("{}", row.makespan[ti]),
                    format!("{}", row.max_flow[ti]),
                    format!("{}", row.deg_makespan[ti]),
                    format!("{}", row.deg_max_flow[ti]),
                ]);
            }
        }
        write_json("oblivion", self);
        write_csv(
            "oblivion",
            &[
                "algorithm",
                "class",
                "tier",
                "makespan_mean",
                "maxflow_mean",
                "deg_makespan",
                "deg_maxflow",
            ],
            &rows,
        )
    }

    /// Degradation columns for one (class, algorithm) pair:
    /// `(makespan, max_flow)`.
    pub fn degradation(&self, class: PlatformClass, a: Algorithm) -> (&[f64], &[f64]) {
        let row = self
            .rows
            .iter()
            .find(|r| r.class == class && r.algorithm == a)
            .expect("(class, algorithm) present");
        (&row.deg_makespan, &row.deg_max_flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OblivionReport {
        run_with(
            ExperimentScale::quick(),
            ArrivalProcess::UniformStream { load: 0.9 },
            &SweepConfig::default(),
        )
    }

    #[test]
    fn covers_the_full_grid_with_clairvoyant_as_the_unit() {
        let report = quick();
        assert_eq!(report.tiers.len(), 3);
        assert_eq!(report.tiers[0], "clairvoyant");
        assert_eq!(report.rows.len(), LADDER.len() * Algorithm::ALL.len());
        for row in &report.rows {
            assert!((row.deg_makespan[0] - 1.0).abs() < 1e-12);
            assert!((row.deg_max_flow[0] - 1.0).abs() < 1e-12);
            for ti in 0..3 {
                assert!(
                    row.deg_makespan[ti].is_finite() && row.deg_makespan[ti] > 0.2,
                    "{} on {}: nonsensical degradation {}",
                    row.algorithm,
                    row.class,
                    row.deg_makespan[ti]
                );
            }
        }
        // Every (class, algorithm) pair is addressable.
        for &class in &LADDER {
            for a in Algorithm::ALL {
                let (mk, mf) = report.degradation(class, a);
                assert_eq!((mk.len(), mf.len()), (3, 3));
            }
        }
    }

    #[test]
    fn memoryless_heuristics_coincide_across_sub_clairvoyant_tiers() {
        // SRPT/LS/RR* never read task sizes or the horizon, so on
        // identical-task workloads the speed-oblivious and non-clairvoyant
        // runs are the same schedule.
        let report = quick();
        for row in &report.rows {
            if matches!(
                row.algorithm,
                Algorithm::Srpt
                    | Algorithm::ListScheduling
                    | Algorithm::RoundRobin
                    | Algorithm::RoundRobinComm
                    | Algorithm::RoundRobinProc
            ) {
                assert_eq!(
                    row.makespan[1].to_bits(),
                    row.makespan[2].to_bits(),
                    "{} on {}: tiers 1 and 2 must coincide",
                    row.algorithm,
                    row.class
                );
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let scale = ExperimentScale::quick();
        let arrival = ArrivalProcess::UniformStream { load: 0.9 };
        let a = run_with(
            scale,
            arrival,
            &SweepConfig {
                threads: 1,
                cache_dir: None,
                ..SweepConfig::default()
            },
        );
        let b = run_with(
            scale,
            arrival,
            &SweepConfig {
                threads: 8,
                cache_dir: None,
                ..SweepConfig::default()
            },
        );
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn renders_and_writes() {
        let report = quick();
        let rendered = report.render();
        assert!(rendered.contains("Oblivion"));
        assert!(rendered.contains("non-clairvoyant"));
        assert!(report.write_artifacts().exists());
    }
}
