//! # mss-lab — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | paper artifact | module | binary subcommand |
//! |---|---|---|
//! | Table 1 (nine lower bounds) | [`table1`] | `ms-lab table1` |
//! | Figure 1(a–d) (heuristic comparison) | [`fig1`] | `ms-lab fig1a` … `fig1d` |
//! | Figure 2 (robustness) | [`fig2`] | `ms-lab fig2` |
//! | Ablations A1–A3 (DESIGN.md) | [`ablations`] | `ms-lab ablation-*` |
//! | Resilience (failures, new) | [`resilience`] | `ms-lab resilience` |
//! | Oblivion (information tiers, new) | [`oblivion`] | `ms-lab oblivion` |
//! | user-defined scenario grids | `mss_sweep` | `ms-lab sweep <spec.toml>` |
//! | run telemetry (flow quantiles, utilization) | [`metrics`] | `ms-lab metrics <spec.toml>` |
//! | first-divergence audit | [`diff`] | `ms-lab diff <spec.toml>` |
//! | perf baseline (`BENCH_engine.json`) | [`bench`](mod@bench) | `ms-lab bench` |
//!
//! Each experiment prints an ASCII table mirroring the paper's layout and
//! writes CSV + JSON artifacts under `target/lab/`. EXPERIMENTS.md records
//! the paper-vs-measured comparison for every cell.
//!
//! Every experiment expresses its grid as `mss_sweep` cells and runs them
//! through the sweep executor (parallel, deterministic for any thread
//! count); the emitted tables and CSVs are identical to the original
//! serial implementation's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bench;
pub mod diff;
pub mod fig1;
pub mod fig2;
pub mod metrics;
pub mod oblivion;
pub mod profile;
pub mod report;
pub mod resilience;
pub mod table1;

pub use report::ExperimentScale;
