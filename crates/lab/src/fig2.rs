//! Figure 2 — "Assessing the robustness of the algorithms".
//!
//! The paper perturbs the size of each task by up to ±10 % and compares the
//! obtained average makespan / sum-flow / max-flow against the run with
//! identical sizes on the same platforms. Heuristics keep planning with
//! *nominal* sizes (they do not know the jitter), so their load estimates
//! drift — flow objectives suffer far more than the makespan, which is the
//! paper's observation.
//!
//! Flow-time robustness is only informative when flows are arrival-bound,
//! so this experiment defaults to a near-saturated stream (ρ = 0.9); the
//! bag-of-tasks regime is available for comparison (DESIGN.md,
//! arrival-process note).

use crate::report::{fmt3, write_csv, write_json, AsciiTable, ExperimentScale};
use mss_core::{Algorithm, InfoTier, PlatformClass};
use mss_sweep::{run_cells, Cell, PerturbCell, PlatformCell, SweepConfig};
use mss_workload::{ArrivalProcess, Perturbation};

/// One algorithm's robustness ratios.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig2Row {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Mean ratio perturbed / identical for [makespan, max-flow, sum-flow].
    pub ratio: [f64; 3],
}

/// The Figure 2 report.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Fig2Report {
    /// Run scale.
    pub scale: ExperimentScale,
    /// Arrival regime used.
    pub arrival: ArrivalProcess,
    /// Size jitter applied.
    pub perturbation: Perturbation,
    /// Rows in the paper's algorithm order.
    pub rows: Vec<Fig2Row>,
}

/// The robustness grid as sweep cells: each platform draw × each algorithm
/// appears twice — once with exact sizes and once perturbed — with the
/// harness's historical seed derivation.
pub fn report_cells(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    perturbation: Perturbation,
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(scale.platforms * 2 * Algorithm::ALL.len());
    for pi in 0..scale.platforms {
        for perturbed in [false, true] {
            for &algorithm in &Algorithm::ALL {
                cells.push(Cell {
                    platform: PlatformCell::Class {
                        class: PlatformClass::Heterogeneous,
                        slaves: 5,
                        seed: scale.seed,
                        index: pi,
                    },
                    arrival,
                    perturbation: perturbed.then_some(PerturbCell {
                        delta: perturbation.delta,
                        comm_exponent: perturbation.comm_exponent,
                        comp_exponent: perturbation.comp_exponent,
                        seed: scale.seed ^ 0x9e37 ^ (pi as u64) << 9,
                    }),
                    scenario: None,
                    tasks: scale.tasks,
                    algorithm,
                    information: InfoTier::Clairvoyant,
                    replicate: 0,
                    task_seed: scale.seed ^ (pi as u64) << 17,
                });
            }
        }
    }
    cells
}

/// Runs the robustness experiment through `mss-sweep` with the given
/// runtime.
pub fn run_with(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    perturbation: Perturbation,
    config: &SweepConfig,
) -> Fig2Report {
    let outcome = run_cells(report_cells(scale, arrival, perturbation), config);

    let mut ratio_sum = vec![[0.0f64; 3]; Algorithm::ALL.len()];

    // Cells per platform: 7 nominal then 7 perturbed.
    let per_platform = 2 * Algorithm::ALL.len();
    for chunk in outcome.metrics.chunks(per_platform) {
        let (nominal, perturbed) = chunk.split_at(Algorithm::ALL.len());
        for (ai, (base, pert)) in nominal.iter().zip(perturbed).enumerate() {
            ratio_sum[ai][0] += pert.makespan / base.makespan;
            ratio_sum[ai][1] += pert.max_flow / base.max_flow;
            ratio_sum[ai][2] += pert.sum_flow / base.sum_flow;
        }
    }

    let nplat = scale.platforms as f64;
    let rows = Algorithm::ALL
        .iter()
        .enumerate()
        .map(|(ai, &algorithm)| Fig2Row {
            algorithm,
            ratio: [
                ratio_sum[ai][0] / nplat,
                ratio_sum[ai][1] / nplat,
                ratio_sum[ai][2] / nplat,
            ],
        })
        .collect();

    Fig2Report {
        scale,
        arrival,
        perturbation,
        rows,
    }
}

/// Runs the robustness experiment with the default parallel runtime.
pub fn run(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    perturbation: Perturbation,
) -> Fig2Report {
    run_with(scale, arrival, perturbation, &SweepConfig::default())
}

impl Fig2Report {
    /// Renders the report mirroring the paper's bar groups.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "#".to_string(),
            "algorithm".to_string(),
            "makespan".to_string(),
            "max-flow".to_string(),
            "sum-flow".to_string(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.algorithm.figure_index().to_string(),
                row.algorithm.name().to_string(),
                fmt3(row.ratio[0]),
                fmt3(row.ratio[1]),
                fmt3(row.ratio[2]),
            ]);
        }
        format!(
            "Figure 2 — perturbed(±{:.0}%) / identical, {} platforms, {} tasks, {}\n{}",
            self.perturbation.delta * 100.0,
            self.scale.platforms,
            self.scale.tasks,
            self.arrival.label(),
            t.render()
        )
    }

    /// Writes `fig2.csv` and `.json`; returns the CSV path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.name().to_string(),
                    fmt3(r.ratio[0]),
                    fmt3(r.ratio[1]),
                    fmt3(r.ratio[2]),
                ]
            })
            .collect();
        write_json("fig2", self);
        write_csv(
            "fig2",
            &[
                "algorithm",
                "makespan_ratio",
                "maxflow_ratio",
                "sumflow_ratio",
            ],
            &rows,
        )
    }

    /// Ratios for one algorithm.
    pub fn ratio(&self, a: Algorithm) -> [f64; 3] {
        self.rows
            .iter()
            .find(|r| r.algorithm == a)
            .expect("algorithm present")
            .ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_is_robust_flows_are_not() {
        // The paper's headline: "our algorithms are quite robust for
        // makespan minimization problems, but not as much for sum-flow or
        // max-flow problems."
        let report = run(
            ExperimentScale::quick(),
            ArrivalProcess::UniformStream { load: 0.9 },
            Perturbation::linear(0.1),
        );
        for row in &report.rows {
            assert!(
                (row.ratio[0] - 1.0).abs() < 0.25,
                "{}: makespan ratio {} far from 1",
                row.algorithm,
                row.ratio[0]
            );
        }
        // At least one algorithm shows visibly amplified flow sensitivity.
        let worst_flow = report
            .rows
            .iter()
            .map(|r| r.ratio[1].max(r.ratio[2]))
            .fold(0.0f64, f64::max);
        let worst_makespan = report
            .rows
            .iter()
            .map(|r| (r.ratio[0] - 1.0).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst_flow - 1.0 > worst_makespan,
            "flows (worst {worst_flow}) should be less robust than makespan (worst dev {worst_makespan})"
        );
    }

    #[test]
    fn renders_and_writes() {
        let report = run(
            ExperimentScale::quick(),
            ArrivalProcess::UniformStream { load: 0.9 },
            Perturbation::linear(0.1),
        );
        assert!(report.render().contains("Figure 2"));
        assert!(report.write_artifacts().exists());
    }

    #[test]
    fn zero_perturbation_is_identity() {
        let report = run(
            ExperimentScale::quick(),
            ArrivalProcess::AllAtZero,
            Perturbation::linear(0.0),
        );
        for row in &report.rows {
            for k in 0..3 {
                assert!(
                    (row.ratio[k] - 1.0).abs() < 1e-9,
                    "{}: ratio {} with zero jitter",
                    row.algorithm,
                    row.ratio[k]
                );
            }
        }
    }
}
