//! Table 1 — "Lower bounds on the competitive ratio of on-line algorithms,
//! depending on the platform type and on the objective function".
//!
//! The paper's table is purely theoretical; our reproduction regenerates it
//! *and* machine-checks it: for each of the nine cells the corresponding
//! adversary game is played against all seven heuristics, and the smallest
//! measured competitive ratio is reported next to the proven bound. The
//! theorems say `min ≥ bound` (up to the documented `certified` slack of
//! the limit theorems) — the harness fails loudly if any algorithm ever
//! beats its bound.

use crate::report::{fmt4, write_csv, write_json, AsciiTable};
use mss_adversary::{play, TheoremId};
use mss_core::{Algorithm, Objective, PlatformClass};

/// One cell of Table 1, with its verification data.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Table1Cell {
    /// Which theorem proves this cell.
    pub theorem: TheoremId,
    /// Row (platform class).
    pub class: PlatformClass,
    /// Column (objective).
    pub objective: Objective,
    /// Exact bound, rendered (e.g. `5/4`, `1√2`).
    pub bound_exact: String,
    /// Bound as a decimal (the number printed in the paper).
    pub bound: f64,
    /// Ratio certified by the concrete game parameters (== bound for the
    /// ε-free theorems).
    pub certified: f64,
    /// Measured ratio per algorithm `(name, ratio)`.
    pub measured: Vec<(String, f64)>,
    /// The smallest measured ratio across the seven heuristics.
    pub min_measured: f64,
    /// Whether every algorithm respected the certified bound.
    pub verified: bool,
}

/// The regenerated Table 1.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Table1Report {
    /// All nine cells, in theorem order.
    pub cells: Vec<Table1Cell>,
}

/// Plays all nine games against all seven heuristics with the default
/// parallel runtime.
pub fn run() -> Table1Report {
    run_with(&mss_sweep::SweepConfig::default())
}

/// Plays all nine games against all seven heuristics. The 63 games are
/// independent, so they run through `mss-sweep`'s deterministic parallel
/// executor; the fold below consumes them in (theorem, algorithm) order so
/// the report is identical to a serial run.
pub fn run_with(config: &mss_sweep::SweepConfig) -> Table1Report {
    let pairs: Vec<(TheoremId, Algorithm)> = TheoremId::ALL
        .iter()
        .flat_map(|&id| Algorithm::ALL.iter().map(move |&a| (id, a)))
        .collect();
    let played = mss_sweep::parallel_map(&pairs, config.threads, |_, &(id, a)| {
        let factory = move || a.build();
        play(id, &factory)
    });

    let cells = TheoremId::ALL
        .iter()
        .enumerate()
        .map(|(ti, &id)| {
            let mut measured = Vec::new();
            let mut min_measured = f64::INFINITY;
            let mut verified = true;
            let mut info = None;
            for (ai, a) in Algorithm::ALL.iter().enumerate() {
                let result = &played[ti * Algorithm::ALL.len() + ai];
                min_measured = min_measured.min(result.ratio);
                verified &= result.holds();
                measured.push((a.name().to_string(), result.ratio));
                info = Some(result.info.clone());
            }
            let info = info.expect("at least one algorithm");
            Table1Cell {
                theorem: id,
                class: info.platform_class,
                objective: info.objective,
                bound_exact: format!("{}", info.bound),
                bound: info.bound.to_f64(),
                certified: info.certified.to_f64(),
                measured,
                min_measured,
                verified,
            }
        })
        .collect();
    Table1Report { cells }
}

impl Table1Report {
    /// The cell proved by a theorem.
    pub fn cell(&self, id: TheoremId) -> &Table1Cell {
        self.cells
            .iter()
            .find(|c| c.theorem == id)
            .expect("all nine cells present")
    }

    /// `true` iff every algorithm respected every bound.
    pub fn all_verified(&self) -> bool {
        self.cells.iter().all(|c| c.verified)
    }

    /// Renders the paper's 3×3 grid (bounds) plus the verification columns.
    pub fn render(&self) -> String {
        // The 3×3 grid exactly as printed in the paper.
        let mut grid = AsciiTable::new(vec![
            "Platform type".to_string(),
            "Makespan".to_string(),
            "Max-flow".to_string(),
            "Sum-flow".to_string(),
        ]);
        for class in [
            PlatformClass::CommHomogeneous,
            PlatformClass::CompHomogeneous,
            PlatformClass::Heterogeneous,
        ] {
            let get = |o: Objective| {
                self.cells
                    .iter()
                    .find(|c| c.class == class && c.objective == o)
                    .map(|c| format!("{} ≈ {}", c.bound_exact, fmt4(c.bound)))
                    .unwrap_or_default()
            };
            grid.row(vec![
                class.to_string(),
                get(Objective::Makespan),
                get(Objective::MaxFlow),
                get(Objective::SumFlow),
            ]);
        }

        // Verification appendix: measured worst-case ratios per theorem.
        let mut verify = AsciiTable::new(vec![
            "theorem".to_string(),
            "bound".to_string(),
            "certified".to_string(),
            "min ratio (7 algs)".to_string(),
            "status".to_string(),
        ]);
        for c in &self.cells {
            verify.row(vec![
                format!("{}", c.theorem),
                fmt4(c.bound),
                fmt4(c.certified),
                fmt4(c.min_measured),
                if c.verified {
                    "verified".into()
                } else {
                    "VIOLATED".to_string()
                },
            ]);
        }

        format!(
            "Table 1 — lower bounds on the competitive ratio of on-line algorithms\n{}\n\
             Machine verification (adversary games vs all seven heuristics):\n{}",
            grid.render(),
            verify.render()
        )
    }

    /// Writes `table1.csv` and `.json`; returns the CSV path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    format!("{}", c.theorem),
                    c.class.to_string(),
                    c.objective.label().to_string(),
                    fmt4(c.bound),
                    fmt4(c.certified),
                    fmt4(c.min_measured),
                    c.verified.to_string(),
                ]
            })
            .collect();
        write_json("table1", self);
        write_csv(
            "table1",
            &[
                "theorem",
                "platform_class",
                "objective",
                "bound",
                "certified",
                "min_measured_ratio",
                "verified",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::approx_constant)] // Table 1's printed decimal for √2
    fn regenerates_and_verifies_table1() {
        let report = run();
        assert_eq!(report.cells.len(), 9);
        assert!(report.all_verified(), "{}", report.render());
        // The paper's decimals.
        for (id, dec) in [
            (TheoremId::T1, 1.250),
            (TheoremId::T4, 1.200),
            (TheoremId::T6, 1.0455),
            (TheoremId::T9, 1.4142),
        ] {
            assert!((report.cell(id).bound - dec).abs() < 5e-4);
        }
        // Rendering mentions the exact forms.
        let rendered = report.render();
        assert!(rendered.contains("5/4"));
        assert!(rendered.contains("verified"));
    }

    #[test]
    fn artifacts_written() {
        let report = run();
        assert!(report.write_artifacts().exists());
    }
}
