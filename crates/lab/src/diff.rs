//! `ms-lab diff` — the first-divergence auditor.
//!
//! Replays one grid cell with a [`DigestProbe`] ledger attached: every
//! engine decision and event folds into a running 64-bit FNV digest, and
//! the ledger records `(index, kind, t, a, b, digest)` per event. Two
//! runs of the same cell are bit-identical if and only if their ledgers
//! are, so comparing ledgers pinpoints **the first event where two builds
//! or two revisions disagree** — index, kind, and both payloads — instead
//! of leaving you to bisect a multi-gigabyte trace by hand.
//!
//! Comparison targets (`--against`):
//! * a **ledger file** written earlier by `ms-lab diff --dump` (JSONL,
//!   one event per line) — compare across machines or revisions;
//! * another **ms-lab binary** — the auditor invokes
//!   `<binary> diff <spec> --cell N --dump <tmp>` and compares against
//!   the ledger it produces, which is how the acceptance check replays a
//!   cell under the pre-change build.

use mss_core::SimWorkspace;
use mss_obs::{DigestEvent, DigestProbe};
use mss_sweep::SweepSpec;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A replayed cell's audit trail.
pub struct AuditOutcome {
    /// Running digest over every event (order- and payload-sensitive).
    pub digest: u64,
    /// Total events folded.
    pub events: u64,
    /// The per-event ledger.
    pub ledger: Vec<DigestEvent>,
    /// One-line description of the audited cell.
    pub cell: String,
}

/// Replays cell `index` of `spec` with a ledger-keeping [`DigestProbe`].
/// The run is bit-identical to the cell's sweep execution (probes are
/// observers only); an aborted run still yields its partial ledger.
pub fn audit_cell(spec: &SweepSpec, index: usize) -> Result<AuditOutcome, String> {
    let cells = spec.expand().map_err(|e| e.to_string())?;
    let Some(cell) = cells.get(index) else {
        return Err(format!(
            "cell index {index} out of range: spec `{}` expands to {} cells",
            spec.name,
            cells.len()
        ));
    };
    let mat = cell.materialize();
    let mut ws = SimWorkspace::new();
    let mut scheduler = cell.build_scheduler();
    let mut probe = DigestProbe::with_ledger();
    let _ = cell.try_run_probed(&mat, &mut ws, scheduler.as_mut(), &mut probe);
    let label = format!(
        "{} cell {index}: {} ({:?} info) on {} slaves",
        spec.name,
        cell.algorithm,
        cell.information,
        mat.platform.num_slaves()
    );
    Ok(AuditOutcome {
        digest: probe.digest(),
        events: probe.events(),
        ledger: probe.into_ledger(),
        cell: label,
    })
}

/// Serializes a ledger as JSONL: one `{"index":..,"kind":..,"t_bits":..,
/// "a":..,"b":..,"digest":..}` object per line. `t_bits` keeps the event
/// time exact; a human-readable `t` rides along for grepping.
pub fn ledger_to_jsonl(ledger: &[DigestEvent]) -> String {
    let mut out = String::new();
    for e in ledger {
        let _ = writeln!(
            out,
            "{{\"index\":{},\"kind\":\"{}\",\"t\":{},\"t_bits\":{},\"a\":{},\"b\":{},\"digest\":{}}}",
            e.index,
            e.kind,
            e.time(),
            e.t_bits,
            e.a,
            e.b,
            e.digest
        );
    }
    out
}

/// A parsed ledger line: everything needed to localize a divergence.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerLine {
    /// Event index (0-based fold order).
    pub index: u64,
    /// Event kind (probe hook name).
    pub kind: String,
    /// Event time as raw bits (exact).
    pub t_bits: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Running digest after folding this event.
    pub digest: u64,
}

impl LedgerLine {
    /// A ledger line from an in-memory digest event.
    pub fn of(e: &DigestEvent) -> Self {
        LedgerLine {
            index: e.index,
            kind: e.kind.to_string(),
            t_bits: e.t_bits,
            a: e.a,
            b: e.b,
            digest: e.digest,
        }
    }

    /// Event time (exact reconstruction from `t_bits`).
    pub fn time(&self) -> f64 {
        f64::from_bits(self.t_bits)
    }

    fn render(&self) -> String {
        format!(
            "#{} {} at t={} (a={}, b={}, digest={:016x})",
            self.index,
            self.kind,
            self.time(),
            self.a,
            self.b,
            self.digest
        )
    }
}

/// Parses a `--dump`-format JSONL ledger.
pub fn parse_ledger(body: &str) -> Result<Vec<LedgerLine>, String> {
    let mut out = Vec::new();
    for (ln, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            serde_json::parse_value(line).map_err(|e| format!("ledger line {}: {e}", ln + 1))?;
        let field = |name: &str| -> Result<u64, String> {
            match serde::field(&v, name) {
                Ok(serde::Value::U64(n)) => Ok(*n),
                _ => Err(format!("ledger line {}: missing integer `{name}`", ln + 1)),
            }
        };
        let kind = match serde::field(&v, "kind") {
            Ok(serde::Value::Str(s)) => s.clone(),
            _ => return Err(format!("ledger line {}: missing `kind`", ln + 1)),
        };
        out.push(LedgerLine {
            index: field("index")?,
            kind,
            t_bits: field("t_bits")?,
            a: field("a")?,
            b: field("b")?,
            digest: field("digest")?,
        });
    }
    Ok(out)
}

/// How two audited runs of the same cell relate.
pub enum DiffVerdict {
    /// Every event matched, digests agree.
    Identical {
        /// Shared digest.
        digest: u64,
        /// Events compared.
        events: u64,
    },
    /// A first divergent event exists.
    Diverged {
        /// Index of the first disagreement.
        index: u64,
        /// This build's event at that index (`None` = its run ended early).
        ours: Option<LedgerLine>,
        /// The reference's event at that index (`None` = it ended early).
        theirs: Option<LedgerLine>,
    },
}

/// Compares two ledgers event by event and reports the first divergence.
/// Payloads are compared exactly (times via `t_bits`); the running digest
/// is redundant with the payloads but cross-checks the fold itself.
pub fn first_divergence(ours: &[LedgerLine], theirs: &[LedgerLine]) -> DiffVerdict {
    let n = ours.len().max(theirs.len());
    for i in 0..n {
        let a = ours.get(i);
        let b = theirs.get(i);
        if a != b {
            return DiffVerdict::Diverged {
                index: i as u64,
                ours: a.cloned(),
                theirs: b.cloned(),
            };
        }
    }
    DiffVerdict::Identical {
        digest: ours
            .last()
            .map(|e| e.digest)
            .unwrap_or(0xcbf2_9ce4_8422_2325),
        events: ours.len() as u64,
    }
}

impl DiffVerdict {
    /// Human-readable verdict (multi-line on divergence).
    pub fn render(&self) -> String {
        match self {
            DiffVerdict::Identical { digest, events } => {
                format!("identical: {events} events, digest {digest:016x}")
            }
            DiffVerdict::Diverged {
                index,
                ours,
                theirs,
            } => {
                let show = |side: &Option<LedgerLine>| match side {
                    Some(e) => e.render(),
                    None => "<run ended>".to_string(),
                };
                format!(
                    "first divergence at event {index}:\n  ours:   {}\n  theirs: {}",
                    show(ours),
                    show(theirs)
                )
            }
        }
    }

    /// `true` when the runs matched.
    pub fn is_identical(&self) -> bool {
        matches!(self, DiffVerdict::Identical { .. })
    }
}

/// Obtains the reference ledger for `--against`: a path whose content
/// starts with `{` is read as a dumped ledger; anything else is treated
/// as another `ms-lab` binary, which is invoked as
/// `<binary> diff <spec> --cell N --dump <tmp>` to produce one.
pub fn reference_ledger(
    against: &Path,
    spec_path: &Path,
    index: usize,
) -> Result<Vec<LedgerLine>, String> {
    let sniff = std::fs::read(against)
        .map_err(|e| format!("cannot read --against {}: {e}", against.display()))?;
    if sniff.first() == Some(&b'{') {
        let body =
            String::from_utf8(sniff).map_err(|_| format!("{}: not UTF-8", against.display()))?;
        return parse_ledger(&body);
    }
    let tmp =
        std::env::temp_dir().join(format!("mss-diff-ref-{}-{index}.jsonl", std::process::id()));
    let out = std::process::Command::new(against)
        .arg("diff")
        .arg(spec_path)
        .arg("--cell")
        .arg(index.to_string())
        .arg("--dump")
        .arg(&tmp)
        .output()
        .map_err(|e| format!("cannot run {}: {e}", against.display()))?;
    if !out.status.success() {
        let _ = std::fs::remove_file(&tmp);
        return Err(format!(
            "{} diff exited with {}: {}",
            against.display(),
            out.status,
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    let body = std::fs::read_to_string(&tmp)
        .map_err(|e| format!("reference binary wrote no ledger: {e}"))?;
    let _ = std::fs::remove_file(&tmp);
    parse_ledger(&body)
}

/// Default dump path for `--dump` without an argument-provided location.
pub fn default_dump_path(spec_name: &str, index: usize) -> PathBuf {
    crate::report::artifact_dir().join(format!("ledger_{spec_name}_cell{index}.jsonl"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sweep::spec_from_toml;

    fn spec() -> SweepSpec {
        spec_from_toml(
            r#"
            name = "diff-test"
            seed = 3
            tasks = [25]
            algorithms = ["SRPT"]

            [[platforms]]
            kind = "class"
            class = "heterogeneous"
            count = 1
            slaves = 3

            [[arrivals]]
            kind = "poisson"
            load = 0.9
            "#,
        )
        .unwrap()
    }

    #[test]
    fn audit_is_reproducible_and_ledger_round_trips() {
        let spec = spec();
        let a = audit_cell(&spec, 0).unwrap();
        let b = audit_cell(&spec, 0).unwrap();
        assert_eq!(a.digest, b.digest);
        assert!(a.events > 0);
        assert_eq!(a.ledger.len() as u64, a.events);
        assert_eq!(a.ledger.last().unwrap().digest, a.digest);

        let ours: Vec<LedgerLine> = a.ledger.iter().map(LedgerLine::of).collect();
        let parsed = parse_ledger(&ledger_to_jsonl(&a.ledger)).unwrap();
        assert_eq!(parsed, ours, "JSONL round-trip is exact");
        assert!(first_divergence(&ours, &parsed).is_identical());

        // Out-of-range index is a message, not a panic.
        assert!(audit_cell(&spec, 99).is_err());
    }

    #[test]
    fn divergence_reports_first_mismatch() {
        let spec = spec();
        let a = audit_cell(&spec, 0).unwrap();
        let ours: Vec<LedgerLine> = a.ledger.iter().map(LedgerLine::of).collect();

        // Perturb one payload word mid-ledger.
        let mut theirs = ours.clone();
        let k = theirs.len() / 2;
        theirs[k].b ^= 1;
        match first_divergence(&ours, &theirs) {
            DiffVerdict::Diverged {
                index,
                ours: o,
                theirs: t,
            } => {
                assert_eq!(index, k as u64);
                assert_eq!(o.unwrap().b ^ 1, t.unwrap().b);
            }
            _ => panic!("perturbed ledger must diverge"),
        }

        // A truncated reference diverges at its end.
        let short = &ours[..ours.len() - 2];
        match first_divergence(&ours, short) {
            DiffVerdict::Diverged {
                index, theirs: t, ..
            } => {
                assert_eq!(index, short.len() as u64);
                assert!(t.is_none());
            }
            _ => panic!("truncation must diverge"),
        }
        assert!(first_divergence(&ours, &ours)
            .render()
            .starts_with("identical"));
    }
}
