//! `ms-lab bench` — the reproducible performance baseline.
//!
//! Runs the two hot loops the Criterion suite tracks (`bench_engine`'s
//! task-scaling loop and `bench_sweep`'s cells/second grid) with plain
//! wall-clock timing and emits a schema-stable `BENCH_engine.json`, so the
//! repository records a perf trajectory point per change instead of only
//! printing transient bench output. CI's `bench-smoke` job runs
//! `ms-lab bench --quick` and uploads the JSON as an artifact.
//!
//! Metrics (schema v5):
//!
//! * **events/sec** — discrete events through [`mss_core::simulate_in`] on
//!   the reference workload (5-slave heterogeneous platform, bag of tasks,
//!   List Scheduling, reused [`SimWorkspace`]). A static run processes
//!   exactly `3·n` events (release, send-complete, compute-complete per
//!   task), so the count is deterministic and comparable across machines
//!   of the same class. Best-of-`iters` timing (robust to scheduler noise).
//! * **cells/sec** — sweep-grid cells through [`mss_sweep::run_cells`]
//!   (cache disabled, instance-major batched execution), reported three
//!   ways: the 56-cell reference grid at **1 thread** (directly comparable
//!   with every earlier trajectory point), the same grid at **max
//!   threads** (`--threads`; captures parallel scaling), and a larger
//!   multi-algorithm grid (two task counts, eight platform draws) at max
//!   threads.
//! * **scaling curve** — the reference grid re-run with a live result
//!   store at threads 1, 2, and max: cells/sec, parallel efficiency
//!   against the 1-thread point, and the sharded store's lock-contention
//!   ratio per point. Work distribution is observationally pure (contract
//!   #14), so every point produces byte-identical store records — the
//!   curve measures pure scheduling overhead.
//! * **tasks/sec (streamed)** — the `stream/1M-tasks-100-slaves` entry: a
//!   million-task uniform stream pulled lazily from a seeded
//!   [`mss_workload::GeneratedSource`] on a 100-slave platform through the
//!   bounded-memory engine ([`mss_core::simulate_streamed_objectives_in`]),
//!   recording throughput plus the live/resident task-slot high-water
//!   marks the streaming contract (#13) caps at O(slaves + outstanding).
//! * **allocs_per_event_steady_state** — the engine's zero-allocation
//!   contract. Not measured here (a global counting allocator would tax
//!   every run); it is *enforced* at 0 by
//!   `crates/sim/tests/zero_alloc.rs` and recorded for the schema (CI's
//!   bench-smoke job fails if it ever reads non-zero or the schema tag
//!   drifts from the committed BENCH_engine.json).

use mss_core::{
    bag_of_tasks, simulate_in, simulate_streamed_objectives_in, simulate_with_probe_in, Algorithm,
    Platform, RunCounters, SimConfig, SimWorkspace, Timeline,
};
use mss_sweep::{run_cells, spec_from_toml, SweepConfig};
use mss_workload::{ArrivalProcess, GeneratedSource, TaskSource};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema identifier written into the JSON (bump on layout changes).
/// v2: sweep timings split into 1-thread / max-threads / large-grid.
/// v3: adds `elided_callback_ratio` (probed reference engine run) and
/// `batch_reuse_ratio` (instance-major materialization sharing on the
/// reference grid).
/// v4: adds the `stream` entry (`stream/1M-tasks-100-slaves`): tasks/sec
/// through the bounded-memory streamed engine plus its task-slot
/// high-water marks.
/// v5: adds the `scaling` curve — the reference grid re-run with a live
/// result store at threads 1, 2, and max, each point recording cells/sec,
/// parallel efficiency against the 1-thread point, and the store's
/// lock-contention ratio.
/// v6: adds the `kernel_scaling` ladder — the streamed SRPT workload at
/// m = 5/100/1k/10k slaves on the incremental decision kernel vs the
/// historical linear scan (objectives asserted bit-equal inline) — and
/// annotates every `scaling` point with the detected CPU count plus an
/// `advisory` flag (`threads > cpus`: the point oversubscribes the
/// machine, so its parallel efficiency is not meaningful and `--compare`
/// skips it).
pub const BENCH_SCHEMA: &str = "mss-bench/v6";

/// Timing of the engine hot loop.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct EngineBench {
    /// Tasks per run.
    pub tasks: usize,
    /// Slaves on the reference platform.
    pub slaves: usize,
    /// Timed iterations (after one warm-up).
    pub iters: usize,
    /// Events processed per iteration (`3 · tasks`, exact).
    pub events_per_iter: u64,
    /// Best iteration wall time, seconds.
    pub best_secs: f64,
    /// Mean iteration wall time, seconds.
    pub mean_secs: f64,
    /// `events_per_iter / best_secs`.
    pub events_per_sec: f64,
}

/// Timing of the sweep-orchestrator hot loop.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SweepBench {
    /// Cells in the reference grid.
    pub cells: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Timed iterations (after one warm-up).
    pub iters: usize,
    /// Best iteration wall time, seconds.
    pub best_secs: f64,
    /// `cells / best_secs`.
    pub cells_per_sec: f64,
}

/// One point of the parallel-scaling curve: the reference grid executed
/// with a live (initially empty) result store at a fixed thread count.
///
/// Unlike the `sweep*` entries — which run storeless so their cells/sec
/// stays comparable with pre-v5 trajectory points — the scaling points
/// include the store's serialize-and-flush work, so the curve reflects the
/// full parallel pipeline: work-stealing execution plus sharded persists.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ScalingPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Cells in the reference grid.
    pub cells: usize,
    /// Best iteration wall time, seconds.
    pub best_secs: f64,
    /// `cells / best_secs`.
    pub cells_per_sec: f64,
    /// Speedup over the curve's 1-thread point divided by `threads`
    /// (`1.0` for the 1-thread point by construction; near `1.0` at higher
    /// thread counts means linear scaling, `1/threads` means none).
    pub parallel_efficiency: f64,
    /// The run's store-contention ratio (contended flushes per append,
    /// [`mss_obs::StoreStats::contention_ratio`]); near zero means the
    /// sharded store never made a worker wait.
    pub store_contention_ratio: f64,
    /// CPUs detected on the machine that produced the point
    /// (`std::thread::available_parallelism`; `1` when undetectable).
    pub cpus: usize,
    /// `threads > cpus`: the point oversubscribed the machine, so its
    /// throughput and parallel efficiency measure contention, not scaling
    /// (a 2-thread point on a 1-CPU container reports efficiency ≈ 0.5
    /// without any real regression). Advisory points are kept for the
    /// record but skipped by [`compare`].
    pub advisory: bool,
}

/// One rung of the slave-count scaling ladder (schema v6): the same
/// streamed SRPT workload timed on the incremental decision kernel
/// ([`mss_core::Srpt::new`]) and on the historical linear-scan reference
/// ([`mss_core::Srpt::scan_reference`]). The two runs' objectives are
/// asserted bit-equal inline — the ladder measures pure decision-path
/// speed, never a behavioral difference.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct KernelScalingPoint {
    /// Slaves on the ladder platform.
    pub slaves: usize,
    /// Tasks pulled through the stream per iteration.
    pub tasks: usize,
    /// Timed iterations (after one warm-up), per path.
    pub iters: usize,
    /// Events per iteration (`3 · tasks`, exact for a static run).
    pub events_per_iter: u64,
    /// Events/sec through the incremental kernel path.
    pub kernel_events_per_sec: f64,
    /// Events/sec through the linear-scan reference path.
    pub scan_events_per_sec: f64,
    /// `kernel_events_per_sec / scan_events_per_sec`.
    pub speedup: f64,
    /// Kernel argmin queries over the timed kernel runs.
    pub kernel_queries: u64,
    /// Full tree rebuilds among those queries.
    pub kernel_rebuilds: u64,
    /// Journal entries replayed into the tree (incremental updates).
    pub kernel_replayed: u64,
    /// Queries answered by the scan fallback (small `m` or no journal).
    pub kernel_scans: u64,
    /// Fraction of queries answered incrementally (no rebuild, no scan).
    pub kernel_hit_ratio: f64,
}

/// Timing of the bounded-memory streamed engine loop
/// (`stream/1M-tasks-100-slaves` at full scale).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct StreamBench {
    /// Entry name (`stream/<tasks>-tasks-<slaves>-slaves`).
    pub name: String,
    /// Tasks pulled through the stream per iteration.
    pub tasks: usize,
    /// Slaves on the streaming platform.
    pub slaves: usize,
    /// Timed iterations (after one warm-up).
    pub iters: usize,
    /// Best iteration wall time, seconds.
    pub best_secs: f64,
    /// `tasks / best_secs`.
    pub tasks_per_sec: f64,
    /// High-water mark of *live* task slots — the bounded-memory contract
    /// (#13) caps this at O(slaves + outstanding), independent of `tasks`.
    pub peak_live_slots: usize,
    /// High-water mark of *resident* task slots (live plus finalized slots
    /// the recycler had not yet reclaimed).
    pub peak_resident_slots: usize,
}

/// The full `BENCH_engine.json` payload.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchReport {
    /// Schema tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// `true` for `--quick` (reduced workload; numbers are not comparable
    /// with full-scale entries).
    pub quick: bool,
    /// Engine hot-loop timing.
    pub engine: EngineBench,
    /// Reference sweep at 1 thread (the trajectory-comparable number).
    pub sweep: SweepBench,
    /// Reference sweep at max threads (parallel scaling).
    pub sweep_max: SweepBench,
    /// Larger multi-algorithm grid at max threads.
    pub sweep_large: SweepBench,
    /// Parallel-scaling curve over the reference grid with a live result
    /// store: threads 1, 2, and max (deduplicated, ascending).
    pub scaling: Vec<ScalingPoint>,
    /// Slave-count scaling ladder: streamed SRPT at m = 5/100/1k/10k
    /// (truncated under `--quick`), incremental kernel vs linear scan.
    pub kernel_scaling: Vec<KernelScalingPoint>,
    /// Bounded-memory streamed engine loop: a million-task instance pulled
    /// lazily from a seeded [`GeneratedSource`] on a 100-slave platform
    /// (scaled down under `--quick`).
    pub stream: StreamBench,
    /// Steady-state heap allocations per engine event — the contract
    /// enforced by `crates/sim/tests/zero_alloc.rs`.
    pub allocs_per_event_steady_state: f64,
    /// Fraction of scheduler callbacks the engine elided on the (poll-
    /// driven) reference workload, measured by a probed re-run of the
    /// engine bench — the callback-elision optimization in one number.
    pub elided_callback_ratio: f64,
    /// Fraction of the reference grid's executed cells that reused a
    /// batch-mate's materialization (instance-major batching win).
    pub batch_reuse_ratio: f64,
}

fn time_loop<F: FnMut()>(iters: usize, mut f: F) -> (f64, f64) {
    f(); // warm-up (also sizes reusable buffers)
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        total += secs;
    }
    (best, total / iters as f64)
}

fn engine_bench(quick: bool) -> (EngineBench, f64) {
    // The reference workload of `bench_engine`'s task-scaling group.
    let platform = Platform::from_vectors(&[0.1, 0.3, 0.5, 0.7, 0.9], &[1.0, 2.0, 3.0, 4.0, 5.0]);
    let (tasks_n, iters) = if quick { (500, 5) } else { (2000, 15) };
    let tasks = bag_of_tasks(tasks_n);
    let cfg = SimConfig::with_horizon(tasks_n);
    let mut ws = SimWorkspace::new();
    let (best, mean) = time_loop(iters, || {
        let trace = simulate_in(
            &mut ws,
            &platform,
            &tasks,
            &cfg,
            &mut Algorithm::ListScheduling.build(),
        )
        .expect("reference workload simulates");
        assert_eq!(trace.len(), tasks_n);
    });
    // One probed re-run (outside the timed loop, so timings stay
    // comparable with earlier trajectory points) measures callback elision
    // on the same workload.
    let mut counters = RunCounters::new();
    simulate_with_probe_in(
        &mut ws,
        &platform,
        &tasks,
        &cfg,
        &Timeline::EMPTY,
        &mut Algorithm::ListScheduling.build(),
        &mut counters,
    )
    .expect("probed reference workload simulates");
    let events = 3 * tasks_n as u64;
    (
        EngineBench {
            tasks: tasks_n,
            slaves: platform.num_slaves(),
            iters,
            events_per_iter: events,
            best_secs: best,
            mean_secs: mean,
            events_per_sec: events as f64 / best,
        },
        counters.elided_callback_ratio(),
    )
}

fn stream_bench(quick: bool) -> StreamBench {
    // 100 mildly heterogeneous slaves, compute-bound (cheap links) so the
    // one-port master never saturates; a 0.7-load uniform stream keeps the
    // outstanding set small and stationary — the live task-slot peak must
    // stay O(slaves + outstanding) no matter how many tasks flow through.
    let slaves = 100;
    let c: Vec<f64> = (0..slaves).map(|j| 0.01 + 0.0001 * j as f64).collect();
    let p: Vec<f64> = (0..slaves).map(|j| 2.0 + 0.03 * j as f64).collect();
    let platform = Platform::from_vectors(&c, &p);
    let (n, iters, name) = if quick {
        (50_000, 2, "stream/50k-tasks-100-slaves")
    } else {
        (1_000_000, 3, "stream/1M-tasks-100-slaves")
    };
    let cfg = SimConfig::with_horizon(n);
    let mut ws = SimWorkspace::new();
    let mut source = GeneratedSource::new(
        ArrivalProcess::UniformStream { load: 0.7 },
        n,
        &platform,
        42,
    );
    let mut scheduler = Algorithm::ListScheduling.build();
    let mut peak_live = 0usize;
    let mut peak_resident = 0usize;
    let (best, _) = time_loop(iters, || {
        source.reset();
        let stats = simulate_streamed_objectives_in(
            &mut ws,
            &platform,
            &mut source,
            &cfg,
            &Timeline::EMPTY,
            scheduler.as_mut(),
        )
        .expect("streamed reference workload simulates");
        assert_eq!(stats.tasks, n);
        peak_live = stats.peak_live_slots;
        peak_resident = stats.peak_resident_slots;
    });
    StreamBench {
        name: name.to_string(),
        tasks: n,
        slaves,
        iters,
        best_secs: best,
        tasks_per_sec: n as f64 / best,
        peak_live_slots: peak_live,
        peak_resident_slots: peak_resident,
    }
}

/// CPUs visible to this process (1 when the platform cannot say).
fn detected_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One rung of the slave-count ladder: a streamed SRPT run at `m` slaves,
/// timed on the incremental kernel and on the linear-scan reference, with
/// the objectives of the two paths asserted bit-equal.
fn kernel_point(m: usize, quick: bool) -> KernelScalingPoint {
    // Mildly heterogeneous, compute-bound (cheap links) — same family as
    // the `stream` entry, scaled in m. Moduli keep the rate spread fixed
    // as m grows so rungs differ only in slave count.
    let c: Vec<f64> = (0..m).map(|j| 0.01 + 1e-4 * (j % 97) as f64).collect();
    let p: Vec<f64> = (0..m).map(|j| 2.0 + 0.03 * (j % 89) as f64).collect();
    let platform = Platform::from_vectors(&c, &p);
    let (tasks, iters) = if quick {
        ((2 * m).clamp(500, 2_000), 1)
    } else {
        ((4 * m).clamp(5_000, 40_000), 2)
    };
    let cfg = SimConfig::with_horizon(tasks);
    let mut ws = SimWorkspace::new();
    let mut source = GeneratedSource::new(
        ArrivalProcess::UniformStream { load: 0.7 },
        tasks,
        &platform,
        42,
    );
    let mut run_path = |scheduler: &mut dyn mss_core::OnlineScheduler| {
        let mut objectives = None;
        let (best, _) = time_loop(iters, || {
            source.reset();
            let stats = simulate_streamed_objectives_in(
                &mut ws,
                &platform,
                &mut source,
                &cfg,
                &Timeline::EMPTY,
                scheduler,
            )
            .expect("ladder workload simulates");
            assert_eq!(stats.tasks, tasks);
            objectives = Some(stats.objectives);
        });
        (best, objectives.expect("at least one timed iteration"))
    };
    let (scan_best, scan_obj) = run_path(&mut mss_core::Srpt::scan_reference());
    mss_obs::kernel_stats_reset();
    let (kernel_best, kernel_obj) = run_path(&mut mss_core::Srpt::new());
    let stats = mss_obs::kernel_stats_snapshot();
    assert_eq!(
        kernel_obj, scan_obj,
        "kernel and scan paths must be bit-identical at m = {m}"
    );
    let events = 3 * tasks as u64;
    KernelScalingPoint {
        slaves: m,
        tasks,
        iters,
        events_per_iter: events,
        kernel_events_per_sec: events as f64 / kernel_best,
        scan_events_per_sec: events as f64 / scan_best,
        speedup: scan_best / kernel_best,
        kernel_queries: stats.queries,
        kernel_rebuilds: stats.rebuilds,
        kernel_replayed: stats.replayed,
        kernel_scans: stats.scans,
        kernel_hit_ratio: stats.hit_ratio().unwrap_or(0.0),
    }
}

fn kernel_ladder(quick: bool) -> Vec<KernelScalingPoint> {
    let rungs: &[usize] = if quick {
        &[5, 100, 1_000]
    } else {
        &[5, 100, 1_000, 10_000]
    };
    rungs.iter().map(|&m| kernel_point(m, quick)).collect()
}

fn grid_spec(name: &str, tasks: &str, count: usize) -> mss_sweep::SweepSpec {
    spec_from_toml(&format!(
        r#"
        name = "{name}"
        seed = 42
        tasks = {tasks}
        algorithms = ["all"]

        [[platforms]]
        kind = "class"
        class = "heterogeneous"
        count = {count}
        slaves = 5

        [[arrivals]]
        kind = "bag"

        [[arrivals]]
        kind = "poisson"
        load = 0.9
        "#
    ))
    .expect("bench grid parses")
}

fn sweep_bench(spec: &mss_sweep::SweepSpec, iters: usize, threads: usize) -> (SweepBench, f64) {
    let cells = spec.expand().expect("bench grid expands");
    let n = cells.len();
    let config = SweepConfig {
        threads,
        cache_dir: None,
        ..SweepConfig::default()
    };
    let mut reuse = 0.0;
    let (best, _) = time_loop(iters, || {
        let outcome = run_cells(cells.clone(), &config);
        assert_eq!(outcome.executed, n);
        reuse = outcome.stats.batch_reuse_ratio();
    });
    (
        SweepBench {
            cells: n,
            threads,
            iters,
            best_secs: best,
            cells_per_sec: n as f64 / best,
        },
        reuse,
    )
}

/// Measures one scaling point: the reference grid with a live result
/// store at `threads` workers. Every iteration starts from an empty store
/// directory so all cells execute (nothing is served from cache) and the
/// flush path — where shard-lock contention can appear — is exercised.
/// `parallel_efficiency` is filled in by the caller once the 1-thread
/// point is known.
fn scaling_bench(spec: &mss_sweep::SweepSpec, iters: usize, threads: usize) -> ScalingPoint {
    let cells = spec.expand().expect("bench grid expands");
    let n = cells.len();
    let base = std::env::temp_dir().join(format!(
        "mss-bench-scaling-{}-t{}",
        std::process::id(),
        threads
    ));
    let mut iteration = 0usize;
    let mut contention = 0.0;
    let (best, _) = time_loop(iters, || {
        let dir = base.join(iteration.to_string());
        iteration += 1;
        let config = SweepConfig {
            threads,
            cache_dir: Some(dir),
            ..SweepConfig::default()
        };
        let outcome = run_cells(cells.clone(), &config);
        assert_eq!(outcome.executed, n, "empty store: every cell executes");
        contention = outcome.stats.store.contention_ratio();
    });
    let _ = std::fs::remove_dir_all(&base);
    let cpus = detected_cpus();
    ScalingPoint {
        threads,
        cells: n,
        best_secs: best,
        cells_per_sec: n as f64 / best,
        parallel_efficiency: 1.0,
        store_contention_ratio: contention,
        cpus,
        advisory: threads > cpus,
    }
}

/// Runs the hot loops and assembles the report. `threads` is the "max
/// threads" used for the parallel-scaling entries (the 1-thread reference
/// entry is always measured as well).
pub fn run(quick: bool, threads: usize) -> BenchReport {
    // The reference grid of `bench_sweep` (56 cells at full scale, the
    // grid every BENCH_engine.json trajectory point reports), scaled down
    // under --quick; plus a larger multi-algorithm grid.
    let (reference, large, iters) = if quick {
        (
            grid_spec("bench-grid", "[60]", 2),
            grid_spec("bench-grid-large", "[60, 120]", 4),
            2,
        )
    } else {
        (
            grid_spec("bench-grid", "[120]", 4),
            grid_spec("bench-grid-large", "[120, 240]", 8),
            3,
        )
    };
    let (engine, elided_callback_ratio) = engine_bench(quick);
    let (sweep, batch_reuse_ratio) = sweep_bench(&reference, iters, 1);
    let (sweep_max, _) = sweep_bench(&reference, iters, threads);
    let (sweep_large, _) = sweep_bench(&large, iters, threads);
    let stream = stream_bench(quick);
    let mut curve_threads = vec![1, 2, threads.max(1)];
    curve_threads.sort_unstable();
    curve_threads.dedup();
    let mut scaling: Vec<ScalingPoint> = curve_threads
        .into_iter()
        .map(|t| scaling_bench(&reference, iters, t))
        .collect();
    let base_cps = scaling[0].cells_per_sec;
    for point in &mut scaling {
        point.parallel_efficiency = point.cells_per_sec / (point.threads as f64 * base_cps);
    }
    let kernel_scaling = kernel_ladder(quick);
    BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        quick,
        engine,
        sweep,
        sweep_max,
        sweep_large,
        scaling,
        kernel_scaling,
        stream,
        allocs_per_event_steady_state: 0.0,
        elided_callback_ratio,
        batch_reuse_ratio,
    }
}

impl BenchReport {
    /// Human-readable summary for the terminal.
    pub fn render(&self) -> String {
        let sweep_line = |label: &str, s: &SweepBench| {
            format!(
                "{label} {} cells on {} threads, best {:.3} s -> {:.1} cells/sec",
                s.cells, s.threads, s.best_secs, s.cells_per_sec
            )
        };
        let scaling_lines = self
            .scaling
            .iter()
            .map(|p| {
                format!(
                    "scaling: {:>2} threads ({} cpus{}) -> {:>8.1} cells/sec, efficiency {:.2}, \
                     store contention {:.3}",
                    p.threads,
                    p.cpus,
                    if p.advisory { ", ADVISORY" } else { "" },
                    p.cells_per_sec,
                    p.parallel_efficiency,
                    p.store_contention_ratio
                )
            })
            .collect::<Vec<_>>()
            .join("\n");
        let kernel_lines = self
            .kernel_scaling
            .iter()
            .map(|k| {
                format!(
                    "kernel:  m = {:>5} -> {:>10.0} events/sec (scan {:>10.0}), speedup {:.2}x, \
                     hit ratio {:.3}",
                    k.slaves,
                    k.kernel_events_per_sec,
                    k.scan_events_per_sec,
                    k.speedup,
                    k.kernel_hit_ratio
                )
            })
            .collect::<Vec<_>>()
            .join("\n");
        format!(
            "engine: {} tasks x {} slaves, {} events/iter, best {:.3} ms -> {:.0} events/sec\n\
             {}\n{}\n{}\n{scaling_lines}\n{kernel_lines}\n\
             {}: {} tasks x {} slaves, best {:.3} s -> {:.0} tasks/sec \
             (peak slots: {} live / {} resident)\n\
             allocs/event (steady state): {} (enforced by crates/sim/tests/zero_alloc.rs)\n\
             elided callbacks (reference engine run): {:.1}%; batch reuse (reference grid): {:.1}%",
            self.engine.tasks,
            self.engine.slaves,
            self.engine.events_per_iter,
            self.engine.best_secs * 1e3,
            self.engine.events_per_sec,
            sweep_line("sweep:      ", &self.sweep),
            sweep_line("sweep(max): ", &self.sweep_max),
            sweep_line("sweep(large):", &self.sweep_large),
            self.stream.name,
            self.stream.tasks,
            self.stream.slaves,
            self.stream.best_secs,
            self.stream.tasks_per_sec,
            self.stream.peak_live_slots,
            self.stream.peak_resident_slots,
            self.allocs_per_event_steady_state,
            self.elided_callback_ratio * 100.0,
            self.batch_reuse_ratio * 100.0,
        )
    }

    /// Writes the report as pretty JSON to `path`; returns the path.
    ///
    /// # Panics
    /// Panics if the file cannot be written.
    pub fn write(&self, path: &Path) -> PathBuf {
        let body = serde_json::to_string_pretty(self).expect("serialize bench report");
        std::fs::write(path, body).expect("write bench report");
        path.to_path_buf()
    }
}

/// One tracked metric's movement between two bench reports.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchDelta {
    /// Metric name (`engine.events_per_sec`, `sweep.cells_per_sec`, …).
    pub metric: String,
    /// Previous value (throughput; higher is better).
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// `(new - old) / old · 100` — negative means slower.
    pub change_pct: f64,
}

/// The result of `ms-lab bench --compare OLD.json`.
pub struct BenchComparison {
    /// Per-metric deltas in schema order.
    pub deltas: Vec<BenchDelta>,
    /// Regression threshold in percent (a metric this much slower fails).
    pub threshold_pct: f64,
    /// Caveats that make the comparison unreliable (schema or scale
    /// mismatch between the two reports).
    pub caveats: Vec<String>,
}

/// Compares the throughput metrics of two bench reports: the five scalar
/// entries, the non-advisory `scaling` points (matched by thread count),
/// and the `kernel_scaling` rungs (matched by slave count).
/// `threshold_pct` is how many percent *slower* a metric may run before
/// it counts as a regression (wall-clock benches are noisy; the CI
/// default of 20 % tolerates machine jitter while catching real cliffs).
///
/// Advisory scaling points (threads > detected CPUs on either side) are
/// skipped with a caveat: an oversubscribed point measures contention on
/// that particular machine, so a delta against it flags phantom
/// regressions whenever the CPU count changes between runs.
pub fn compare(old: &BenchReport, new: &BenchReport, threshold_pct: f64) -> BenchComparison {
    let mut caveats = Vec::new();
    if old.schema != new.schema {
        caveats.push(format!(
            "schema mismatch: old {} vs new {}",
            old.schema, new.schema
        ));
    }
    if old.quick != new.quick {
        caveats.push(
            "scale mismatch: one report is --quick — throughputs are not comparable".to_string(),
        );
    }
    let mut pairs: Vec<(String, f64, f64)> = vec![
        (
            "engine.events_per_sec".into(),
            old.engine.events_per_sec,
            new.engine.events_per_sec,
        ),
        (
            "sweep.cells_per_sec".into(),
            old.sweep.cells_per_sec,
            new.sweep.cells_per_sec,
        ),
        (
            "sweep_max.cells_per_sec".into(),
            old.sweep_max.cells_per_sec,
            new.sweep_max.cells_per_sec,
        ),
        (
            "sweep_large.cells_per_sec".into(),
            old.sweep_large.cells_per_sec,
            new.sweep_large.cells_per_sec,
        ),
        (
            "stream.tasks_per_sec".into(),
            old.stream.tasks_per_sec,
            new.stream.tasks_per_sec,
        ),
    ];
    for np in &new.scaling {
        let Some(op) = old.scaling.iter().find(|o| o.threads == np.threads) else {
            continue;
        };
        if np.advisory || op.advisory {
            caveats.push(format!(
                "scaling@{}t skipped: advisory (threads exceed detected CPUs)",
                np.threads
            ));
            continue;
        }
        pairs.push((
            format!("scaling@{}t.cells_per_sec", np.threads),
            op.cells_per_sec,
            np.cells_per_sec,
        ));
    }
    for np in &new.kernel_scaling {
        let Some(op) = old.kernel_scaling.iter().find(|o| o.slaves == np.slaves) else {
            continue;
        };
        pairs.push((
            format!("kernel@m{}.events_per_sec", np.slaves),
            op.kernel_events_per_sec,
            np.kernel_events_per_sec,
        ));
    }
    let deltas = pairs
        .into_iter()
        .map(|(metric, o, n)| BenchDelta {
            metric,
            old: o,
            new: n,
            change_pct: if o > 0.0 { (n - o) / o * 100.0 } else { 0.0 },
        })
        .collect();
    BenchComparison {
        deltas,
        threshold_pct,
        caveats,
    }
}

impl BenchComparison {
    /// Metrics that regressed past the threshold.
    pub fn regressions(&self) -> Vec<&BenchDelta> {
        self.deltas
            .iter()
            .filter(|d| d.change_pct < -self.threshold_pct)
            .collect()
    }

    /// Human-readable delta table plus the verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.caveats {
            out.push_str(&format!("warning: {c}\n"));
        }
        out.push_str("metric                      old          new       change\n");
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<24} {:>12.1} {:>12.1}  {:>+7.1}%\n",
                d.metric, d.old, d.new, d.change_pct
            ));
        }
        let regs = self.regressions();
        if regs.is_empty() {
            out.push_str(&format!(
                "no regression beyond {:.0}% threshold",
                self.threshold_pct
            ));
        } else {
            out.push_str(&format!(
                "REGRESSION (>{:.0}% slower): {}",
                self.threshold_pct,
                regs.iter()
                    .map(|d| d.metric.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out
    }
}

/// Loads a previously written `BENCH_engine.json`.
pub fn load_report(path: &Path) -> Result<BenchReport, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&body).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_round_trips() {
        let report = run(true, 2);
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert!(report.quick);
        assert_eq!(
            report.engine.events_per_iter,
            3 * report.engine.tasks as u64
        );
        assert!(report.engine.events_per_sec > 0.0);
        assert!(report.sweep.cells_per_sec > 0.0);
        assert_eq!(report.allocs_per_event_steady_state, 0.0);
        // The scaling curve covers threads 1, 2 and max (deduplicated,
        // ascending), anchored at an efficiency of exactly 1.0.
        assert!(report.scaling.len() >= 2);
        assert_eq!(report.scaling[0].threads, 1);
        assert_eq!(report.scaling[1].threads, 2);
        assert!(report
            .scaling
            .windows(2)
            .all(|w| w[0].threads < w[1].threads));
        assert_eq!(report.scaling[0].parallel_efficiency, 1.0);
        for p in &report.scaling {
            assert!(p.cells_per_sec > 0.0);
            assert!(p.parallel_efficiency > 0.0);
            assert!(p.store_contention_ratio >= 0.0);
            assert!(p.cpus >= 1, "detected CPU count is annotated");
            assert_eq!(p.advisory, p.threads > p.cpus);
        }
        // The kernel ladder (truncated under --quick) runs both decision
        // paths at every rung; objectives are asserted bit-equal inside
        // the bench itself, so reaching here means the paths agreed.
        assert_eq!(
            report
                .kernel_scaling
                .iter()
                .map(|k| k.slaves)
                .collect::<Vec<_>>(),
            vec![5, 100, 1_000],
            "--quick ladder rungs"
        );
        for k in &report.kernel_scaling {
            assert!(k.kernel_events_per_sec > 0.0);
            assert!(k.scan_events_per_sec > 0.0);
            assert!(k.speedup > 0.0);
            assert_eq!(k.events_per_iter, 3 * k.tasks as u64);
            assert!((0.0..=1.0).contains(&k.kernel_hit_ratio));
        }
        // Above the tree threshold the kernel must actually answer
        // incrementally, not via the scan fallback.
        let top = report.kernel_scaling.last().unwrap();
        assert!(
            top.kernel_queries > 0 && top.kernel_hit_ratio > 0.5,
            "m = {} should be tree-served: {top:?}",
            top.slaves
        );
        // The streamed entry completes the whole instance in bounded
        // memory: the live-slot peak is O(slaves + outstanding), nowhere
        // near the task count.
        assert_eq!(report.stream.tasks, 50_000, "--quick scale");
        assert!(report.stream.tasks_per_sec > 0.0);
        assert!(
            report.stream.peak_live_slots <= 16 * report.stream.slaves + 256,
            "live task-slot peak {} is not O(slaves + outstanding)",
            report.stream.peak_live_slots
        );
        assert!(report.stream.peak_resident_slots >= report.stream.peak_live_slots);
        // LS is poll-driven: most callbacks on the reference run are
        // elided; and the 7-algorithm grid shares each materialization.
        assert!(report.elided_callback_ratio > 0.0 && report.elided_callback_ratio <= 1.0);
        assert!(report.batch_reuse_ratio > 0.5 && report.batch_reuse_ratio < 1.0);

        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.engine.tasks, report.engine.tasks);
        assert_eq!(back.scaling.len(), report.scaling.len());
        assert!(report.render().contains("events/sec"));
        assert!(report.render().contains("store contention"));
        assert!(report.render().contains("speedup"));
    }

    #[test]
    fn comparison_flags_only_past_threshold_regressions() {
        let new = run(true, 2);
        let same = compare(&new, &new, 20.0);
        assert!(same.regressions().is_empty());
        assert!(same.render().contains("no regression"));
        // Five scalar metrics, plus one per non-advisory scaling point,
        // plus one per kernel-ladder rung; advisory points are skipped
        // with a caveat instead of compared.
        let advisory = new.scaling.iter().filter(|p| p.advisory).count();
        let expected = 5 + (new.scaling.len() - advisory) + new.kernel_scaling.len();
        assert_eq!(same.deltas.len(), expected);
        assert_eq!(same.caveats.len(), advisory);
        for p in new.scaling.iter().filter(|p| p.advisory) {
            let name = format!("scaling@{}t.cells_per_sec", p.threads);
            assert!(
                same.deltas.iter().all(|d| d.metric != name),
                "advisory point {name} must not be compared"
            );
        }
        assert!(same.deltas.iter().all(|d| d.change_pct == 0.0));

        // A 50 % faster "old" engine makes the new one a 33 % regression.
        let mut old = new.clone();
        old.engine.events_per_sec *= 1.5;
        let cmp = compare(&old, &new, 20.0);
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "engine.events_per_sec");
        assert!(cmp.render().contains("REGRESSION"));
        // The same slowdown passes under a 40 % threshold.
        assert!(compare(&old, &new, 40.0).regressions().is_empty());

        // Mismatched scales are called out (on top of any advisory skips).
        let mut quick_old = new.clone();
        quick_old.quick = false;
        let advisory = new.scaling.iter().filter(|p| p.advisory).count();
        assert_eq!(compare(&quick_old, &new, 20.0).caveats.len(), 1 + advisory);
    }
}
