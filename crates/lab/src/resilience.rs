//! Resilience — makespan/max-flow degradation under slave failures.
//!
//! The paper's platforms never fail; this experiment (new in the
//! `mss-scenario` subsystem) measures how gracefully each of the seven
//! algorithms — wrapped in the fault-aware [`mss_core::Redispatch`] policy
//! so they stay live — degrades as the failure rate grows. For each failure level,
//! each of the `scale.platforms` random heterogeneous platforms runs a
//! Poisson-failure scenario (exponential repair, at least one slave always
//! up); results are normalized per algorithm to its own run on the static
//! platform (level `static` ≡ 1).
//!
//! The static level uses `scenario: None` cells, i.e. exactly the engine
//! path of Figure 1/2 — a regression guard asserts those numbers stay
//! byte-identical to the static harness.

use crate::report::{fmt3, write_csv, write_json, AsciiTable, ExperimentScale};
use mss_core::{Algorithm, InfoTier, PlatformClass};
use mss_scenario::{GeneratorSpec, ScenarioSpec};
use mss_sweep::{run_cells, Cell, PlatformCell, ScenarioCell, SweepConfig};
use mss_workload::ArrivalProcess;

/// One failure-rate level of the experiment.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FailureLevel {
    /// Row label (e.g. `static`, `mtbf=480s`).
    pub label: String,
    /// Mean time between failures per slave; `None` is the static level.
    pub mtbf: Option<f64>,
    /// Mean (exponential) repair time, ignored for the static level.
    pub repair_mean: f64,
}

impl FailureLevel {
    /// The default ladder, scaled with the run length so quick and full
    /// scales see comparable failure counts: static, then MTBF of 4×, 1×
    /// and 0.25× the task count (in seconds), with repair 5% of it.
    pub fn default_ladder(scale: ExperimentScale) -> Vec<FailureLevel> {
        let t = scale.tasks as f64;
        let mut levels = vec![FailureLevel {
            label: "static".into(),
            mtbf: None,
            repair_mean: 0.0,
        }];
        for factor in [4.0, 1.0, 0.25] {
            levels.push(FailureLevel {
                label: format!("mtbf={}s", t * factor),
                mtbf: Some(t * factor),
                repair_mean: t * 0.05,
            });
        }
        levels
    }
}

/// One algorithm's measurements across the failure levels.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ResilienceRow {
    /// The algorithm (always run under `Redispatch`).
    pub algorithm: Algorithm,
    /// Mean makespan per level, seconds.
    pub makespan: Vec<f64>,
    /// Mean max-flow per level, seconds.
    pub max_flow: Vec<f64>,
    /// `makespan[i] / makespan[static]` per level.
    pub degradation_makespan: Vec<f64>,
    /// `max_flow[i] / max_flow[static]` per level.
    pub degradation_max_flow: Vec<f64>,
}

/// The resilience report.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ResilienceReport {
    /// Run scale.
    pub scale: ExperimentScale,
    /// Arrival regime (near-saturated stream by default, so max-flow is
    /// arrival-bound and meaningful).
    pub arrival: ArrivalProcess,
    /// Level labels, in column order (index 0 is the static baseline).
    pub levels: Vec<String>,
    /// Rows in the paper's algorithm order.
    pub rows: Vec<ResilienceRow>,
}

fn scenario_for(
    scale: ExperimentScale,
    level_idx: usize,
    level: &FailureLevel,
    pi: usize,
) -> Option<ScenarioCell> {
    let mtbf = level.mtbf?;
    Some(ScenarioCell {
        spec: ScenarioSpec {
            name: Some(level.label.clone()),
            // Same seed across algorithms (head-to-head comparability),
            // distinct across platform draws and levels.
            seed: scale.seed ^ 0xFA11 ^ ((level_idx as u64) << 11) ^ ((pi as u64) << 23),
            horizon: Some(scale.tasks as f64 * 20.0),
            min_up: Some(1),
            events: None,
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(mtbf),
                repair_mean: Some(level.repair_mean),
                ..GeneratorSpec::default()
            }]),
        },
        fault_aware: true,
    })
}

/// The experiment grid: levels × platform draws × the seven algorithms,
/// reusing Figure 1's platform stream and task seeds so the static level is
/// cell-for-cell the static harness.
pub fn report_cells(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    levels: &[FailureLevel],
) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(levels.len() * scale.platforms * Algorithm::ALL.len());
    for (li, level) in levels.iter().enumerate() {
        for pi in 0..scale.platforms {
            for &algorithm in &Algorithm::ALL {
                cells.push(Cell {
                    platform: PlatformCell::Class {
                        class: PlatformClass::Heterogeneous,
                        slaves: 5,
                        seed: scale.seed,
                        index: pi,
                    },
                    arrival,
                    perturbation: None,
                    scenario: scenario_for(scale, li, level, pi),
                    tasks: scale.tasks,
                    algorithm,
                    information: InfoTier::Clairvoyant,
                    replicate: 0,
                    task_seed: scale.seed ^ (pi as u64) << 17,
                });
            }
        }
    }
    cells
}

/// Folds level-major metrics (`levels × platforms × algorithms`, the
/// layout of [`report_cells`]) into per-algorithm rows: mean over platform
/// draws per level, normalized to level 0 (the static baseline).
fn fold_rows(
    metrics: &[mss_sweep::CellMetrics],
    n_levels: usize,
    scale: ExperimentScale,
) -> Vec<ResilienceRow> {
    let n_alg = Algorithm::ALL.len();
    let nplat = scale.platforms as f64;
    debug_assert_eq!(metrics.len(), n_levels * scale.platforms * n_alg);
    let mut mk = vec![vec![0.0f64; n_levels]; n_alg];
    let mut mf = vec![vec![0.0f64; n_levels]; n_alg];
    for (ci, m) in metrics.iter().enumerate() {
        let li = ci / (scale.platforms * n_alg);
        let ai = ci % n_alg;
        mk[ai][li] += m.makespan / nplat;
        mf[ai][li] += m.max_flow / nplat;
    }
    Algorithm::ALL
        .iter()
        .enumerate()
        .map(|(ai, &algorithm)| ResilienceRow {
            algorithm,
            degradation_makespan: mk[ai].iter().map(|v| v / mk[ai][0]).collect(),
            degradation_max_flow: mf[ai].iter().map(|v| v / mf[ai][0]).collect(),
            makespan: mk[ai].clone(),
            max_flow: mf[ai].clone(),
        })
        .collect()
}

/// Runs the resilience experiment over the given failure ladder.
pub fn run_with_levels(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    levels: &[FailureLevel],
    config: &SweepConfig,
) -> ResilienceReport {
    assert!(
        levels.first().is_some_and(|l| l.mtbf.is_none()),
        "resilience: the first level must be the static baseline"
    );
    let outcome = run_cells(report_cells(scale, arrival, levels), config);
    ResilienceReport {
        scale,
        arrival,
        levels: levels.iter().map(|l| l.label.clone()).collect(),
        rows: fold_rows(&outcome.metrics, levels.len(), scale),
    }
}

/// Runs the default ladder (static + three Poisson failure rates).
pub fn run_with(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    config: &SweepConfig,
) -> ResilienceReport {
    run_with_levels(scale, arrival, &FailureLevel::default_ladder(scale), config)
}

/// Runs static vs one user-supplied scenario (e.g. parsed from
/// `examples/failure_scenario.toml`). Each platform draw perturbs the
/// scenario seed so draws see independent failure patterns.
pub fn run_scenario_file(
    scale: ExperimentScale,
    arrival: ArrivalProcess,
    scenario: &ScenarioSpec,
    config: &SweepConfig,
) -> ResilienceReport {
    let levels = vec![
        FailureLevel {
            label: "static".into(),
            mtbf: None,
            repair_mean: 0.0,
        },
        FailureLevel {
            label: scenario.label(),
            mtbf: Some(f64::NAN), // placeholder: cells below override
            repair_mean: 0.0,
        },
    ];
    // Build the grid manually: the second level embeds the user scenario.
    let mut cells = report_cells(scale, arrival, &levels[..1]);
    for pi in 0..scale.platforms {
        for &algorithm in &Algorithm::ALL {
            let mut spec = scenario.clone();
            spec.seed ^= (pi as u64) << 23;
            cells.push(Cell {
                platform: PlatformCell::Class {
                    class: PlatformClass::Heterogeneous,
                    slaves: 5,
                    seed: scale.seed,
                    index: pi,
                },
                arrival,
                perturbation: None,
                scenario: Some(ScenarioCell {
                    spec,
                    fault_aware: true,
                }),
                tasks: scale.tasks,
                algorithm,
                information: InfoTier::Clairvoyant,
                replicate: 0,
                task_seed: scale.seed ^ (pi as u64) << 17,
            });
        }
    }
    let outcome = run_cells(cells, config);
    ResilienceReport {
        scale,
        arrival,
        rows: fold_rows(&outcome.metrics, levels.len(), scale),
        levels: levels.into_iter().map(|l| l.label).collect(),
    }
}

impl ResilienceReport {
    /// Renders the degradation tables (makespan, then max-flow).
    pub fn render(&self) -> String {
        let mut header = vec!["#".to_string(), "algorithm".to_string()];
        header.extend(self.levels.iter().cloned());

        let mut mk = AsciiTable::new(header.clone());
        let mut mf = AsciiTable::new(header);
        for row in &self.rows {
            let lead = vec![
                row.algorithm.figure_index().to_string(),
                format!("{}+RD", row.algorithm.name()),
            ];
            let mut mk_cells = lead.clone();
            mk_cells.extend(row.degradation_makespan.iter().map(|v| fmt3(*v)));
            mk.row(mk_cells);
            let mut mf_cells = lead;
            mf_cells.extend(row.degradation_max_flow.iter().map(|v| fmt3(*v)));
            mf.row(mf_cells);
        }
        format!(
            "Resilience — degradation vs failure rate, {} platforms, {} tasks, {}\n\
             (per algorithm, normalized to its static run; fault-aware \
             redispatch, at least one slave up)\n\n\
             makespan:\n{}\nmax-flow:\n{}",
            self.scale.platforms,
            self.scale.tasks,
            self.arrival.label(),
            mk.render(),
            mf.render()
        )
    }

    /// Writes `resilience.csv` and `.json`; returns the CSV path.
    pub fn write_artifacts(&self) -> std::path::PathBuf {
        let mut rows = Vec::new();
        for row in &self.rows {
            for (li, label) in self.levels.iter().enumerate() {
                rows.push(vec![
                    row.algorithm.name().to_string(),
                    label.clone(),
                    format!("{}", row.makespan[li]),
                    format!("{}", row.max_flow[li]),
                    format!("{}", row.degradation_makespan[li]),
                    format!("{}", row.degradation_max_flow[li]),
                ]);
            }
        }
        write_json("resilience", self);
        write_csv(
            "resilience",
            &[
                "algorithm",
                "level",
                "makespan_mean",
                "maxflow_mean",
                "deg_makespan",
                "deg_maxflow",
            ],
            &rows,
        )
    }

    /// Degradation columns for one algorithm: `(makespan, max_flow)`.
    pub fn degradation(&self, a: Algorithm) -> (&[f64], &[f64]) {
        let row = self
            .rows
            .iter()
            .find(|r| r.algorithm == a)
            .expect("algorithm present");
        (&row.degradation_makespan, &row.degradation_max_flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ResilienceReport {
        run_with(
            ExperimentScale::quick(),
            ArrivalProcess::UniformStream { load: 0.9 },
            &SweepConfig::default(),
        )
    }

    #[test]
    fn static_level_is_the_unit_and_failures_degrade() {
        let report = quick();
        assert_eq!(report.levels.len(), 4);
        for row in &report.rows {
            assert!((row.degradation_makespan[0] - 1.0).abs() < 1e-12);
            assert!((row.degradation_max_flow[0] - 1.0).abs() < 1e-12);
            for li in 1..report.levels.len() {
                let d = row.degradation_makespan[li];
                assert!(
                    d.is_finite() && d > 0.5,
                    "{}: nonsensical degradation {d}",
                    row.algorithm
                );
            }
        }
        // The stormiest level visibly hurts at least one algorithm.
        let worst = report
            .rows
            .iter()
            .map(|r| r.degradation_makespan[3])
            .fold(0.0f64, f64::max);
        assert!(worst > 1.01, "no degradation at the highest rate: {worst}");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let scale = ExperimentScale::quick();
        let arrival = ArrivalProcess::UniformStream { load: 0.9 };
        let a = run_with(
            scale,
            arrival,
            &SweepConfig {
                threads: 1,
                cache_dir: None,
                ..SweepConfig::default()
            },
        );
        let b = run_with(
            scale,
            arrival,
            &SweepConfig {
                threads: 8,
                cache_dir: None,
                ..SweepConfig::default()
            },
        );
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn custom_scenario_runs_against_static_baseline() {
        let scenario = ScenarioSpec {
            name: Some("maint".into()),
            seed: 5,
            horizon: Some(2000.0),
            min_up: Some(1),
            events: None,
            generators: Some(vec![GeneratorSpec {
                kind: "maintenance".into(),
                period: Some(100.0),
                duration: Some(10.0),
                ..GeneratorSpec::default()
            }]),
        };
        let report = run_scenario_file(
            ExperimentScale::quick(),
            ArrivalProcess::AllAtZero,
            &scenario,
            &SweepConfig::default(),
        );
        assert_eq!(report.levels, vec!["static".to_string(), "maint".into()]);
        for row in &report.rows {
            assert!((row.degradation_makespan[0] - 1.0).abs() < 1e-12);
            assert!(row.degradation_makespan[1].is_finite());
        }
    }

    #[test]
    fn renders_and_writes() {
        let report = quick();
        let rendered = report.render();
        assert!(rendered.contains("Resilience"));
        assert!(rendered.contains("SLJFWC+RD"));
        assert!(report.write_artifacts().exists());
    }
}
