//! Report plumbing shared by every experiment: scales, ASCII tables, and
//! CSV/JSON artifacts under `target/lab/`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// How big an experiment run is.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentScale {
    /// Number of random platforms per panel (the paper uses 10).
    pub platforms: usize,
    /// Number of tasks per run (the paper uses 1000).
    pub tasks: usize,
    /// Master seed; every derived RNG is seeded from it.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's scale: 10 platforms × 1000 tasks.
    pub fn full() -> Self {
        ExperimentScale {
            platforms: 10,
            tasks: 1000,
            seed: 42,
        }
    }

    /// A reduced scale for tests and quick looks (same shapes, ~100× faster).
    pub fn quick() -> Self {
        ExperimentScale {
            platforms: 3,
            tasks: 120,
            seed: 42,
        }
    }
}

/// A plain ASCII table builder (fixed-width columns, right-aligned numbers).
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        AsciiTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with column separators, suitable for terminals and logs.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let _ = write!(line, " {:<width$} ", cells[i], width = widths[i]);
                if i + 1 < cols {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Directory where experiment artifacts land (`target/lab/`).
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/lab");
    std::fs::create_dir_all(&dir).expect("create target/lab");
    dir
}

/// Writes `name.csv` with the given header and stringified rows; returns the
/// path. Fields are comma-joined; callers guarantee field contents are
/// comma-free (labels and numbers only).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = artifact_dir().join(format!("{name}.csv"));
    let mut body = header.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    path
}

/// Serializes any report as pretty JSON next to the CSVs; returns the path.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> PathBuf {
    let path = artifact_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, body).expect("write json");
    path
}

/// Rounds for display.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Rounds for display (4 decimals, used for ratios near 1).
pub fn fmt4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_renders_aligned() {
        let mut t = AsciiTable::new(vec!["alg", "makespan"]);
        t.row(vec!["SRPT", "1.000"]);
        t.row(vec!["LS", "0.873"]);
        let s = t.render();
        assert!(s.contains("alg"));
        assert!(s.contains("SRPT"));
        assert_eq!(s.lines().count(), 4);
        // All lines have the same width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_written_to_artifact_dir() {
        let path = write_csv(
            "unit_test_artifact",
            &["x", "y"],
            &[vec!["1".into(), "2".into()]],
        );
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "x,y\n1,2\n");
    }

    #[test]
    fn scales() {
        assert_eq!(ExperimentScale::full().tasks, 1000);
        assert!(ExperimentScale::quick().tasks < 200);
    }
}
