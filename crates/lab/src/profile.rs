//! `ms-lab profile` and `ms-lab trace` — where does the wall-clock go?
//!
//! * [`run_with`] replays a representative multi-algorithm sweep with
//!   counting probes attached and breaks the cost into the pipeline's five
//!   phases (expand / materialize / simulate / store / aggregate). This is
//!   the measurement behind the paper-era folklore that simulation
//!   dominates everything else: the report's headline is the simulate
//!   share of measured phase time, and `profile.json` / `profile.csv`
//!   record it machine-readably.
//! * [`trace_cell`] replays one grid cell with a
//!   [`TraceRecorder`] attached and writes a
//!   Chrome-trace-event JSON (load it at `ui.perfetto.dev` or
//!   `chrome://tracing`): per-slave tracks of send/compute spans, downtime
//!   bands, and failure/loss instants.
//!
//! Probes are observers only, so both commands reproduce exactly the runs
//! the sweep executor performs (bit-identical metrics), just with the
//! engine narrating what it does.

use crate::report::artifact_dir;
use mss_core::{Algorithm, SimWorkspace};
use mss_obs::{PhaseProfile, RunCounters, SweepMetrics, TraceRecorder};
use mss_sweep::{run_cells, spec_from_toml, CellError, CellMetrics, SweepConfig, SweepSpec};
use std::path::PathBuf;

/// The representative grid the profiler replays: every algorithm over
/// heterogeneous platform draws, bag and Poisson arrivals — the same shape
/// as the bench reference grid, sized so the phase fractions are stable.
fn profile_spec(quick: bool) -> SweepSpec {
    let (tasks, count) = if quick {
        ("[60]", 2)
    } else {
        ("[120, 240]", 6)
    };
    spec_from_toml(&format!(
        r#"
        name = "profile-grid"
        seed = 42
        tasks = {tasks}
        algorithms = ["all"]

        [[platforms]]
        kind = "class"
        class = "heterogeneous"
        count = {count}
        slaves = 5

        [[arrivals]]
        kind = "bag"

        [[arrivals]]
        kind = "poisson"
        load = 0.9
        "#
    ))
    .expect("profile grid parses")
}

/// A completed profiling run: the phase breakdown plus the sweep's own
/// execution accounting (probe counters, batch-reuse ratio, worker
/// timelines).
pub struct ProfileReport {
    /// Phase timings in pipeline order.
    pub profile: PhaseProfile,
    /// The profiled sweep's execution accounting.
    pub stats: SweepMetrics,
    /// Cells in the profiled grid.
    pub cells: usize,
    /// Worker threads used.
    pub threads: usize,
}

/// Runs the representative grid with counting probes and a throwaway
/// result store, and attributes the cost to phases. `materialize` /
/// `simulate` are CPU seconds summed across workers; `expand` / `store` /
/// `aggregate` are wall seconds of inherently serial steps — fractions are
/// therefore shares of *measured work*, not of wall time.
pub fn run_with(quick: bool, threads: usize) -> ProfileReport {
    let spec = profile_spec(quick);
    let mut profile = PhaseProfile::new();
    let cells = profile.time("expand", || spec.expand().expect("profile grid expands"));
    let n = cells.len();

    let cache_dir = std::env::temp_dir().join(format!("mss-profile-{}", std::process::id()));
    let config = SweepConfig {
        threads,
        cache_dir: Some(cache_dir.clone()),
        progress: false,
        count_events: true,
        collect_metrics: false,
        ..SweepConfig::default()
    };
    let outcome = run_cells(cells, &config);
    profile.add("materialize", outcome.stats.materialize_secs);
    profile.add("simulate", outcome.stats.simulate_secs);
    profile.add("store", outcome.stats.store_secs);
    let rows = profile.time("aggregate", || outcome.aggregate(Some(Algorithm::Srpt)));
    assert!(!rows.is_empty(), "profiled sweep aggregates");
    let _ = std::fs::remove_dir_all(&cache_dir);

    ProfileReport {
        profile,
        stats: outcome.stats,
        cells: n,
        threads,
    }
}

impl ProfileReport {
    /// Human-readable phase table plus the headline simulate share and the
    /// probe-counter summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profiled {} cells on {} threads ({:.3} s wall)\n\n",
            self.cells, self.threads, self.stats.wall_secs
        ));
        out.push_str("phase         seconds   share\n");
        for (name, secs) in self.profile.phases() {
            out.push_str(&format!(
                "{name:<12} {secs:>9.4}  {:>5.1}%\n",
                self.profile.fraction(name) * 100.0
            ));
        }
        let c = &self.stats.counters;
        out.push_str(&format!(
            "\nsimulation is {:.1}% of measured phase time\n\
             engine events: {} ({} sends, {} computes, {} callbacks, {:.1}% elided)\n\
             batch reuse: {:.1}% of cells shared a materialization ({} batches)\n\
             store: {} appends, {} bytes, {} contended locks (ratio {:.3})",
            self.profile.fraction("simulate") * 100.0,
            c.events(),
            c.sends_started,
            c.computes_started,
            c.callbacks + c.callbacks_elided,
            c.elided_callback_ratio() * 100.0,
            self.stats.batch_reuse_ratio() * 100.0,
            self.stats.batches,
            self.stats.store.appends,
            self.stats.store.bytes,
            self.stats.store.lock_contended,
            self.stats.store.contention_ratio(),
        ));
        // Per-shard contention: which of the 16 store shards made workers
        // wait (also exported as the "store shard contention" counter track
        // of profile_workers.json).
        out.push_str("\nstore shard contention:");
        for (i, &n) in self.stats.store.shard_contended.iter().enumerate() {
            if i % 8 == 0 {
                out.push_str("\n  ");
            }
            out.push_str(&format!("{i:02x}:{n:<4} "));
        }
        out.push('\n');
        out
    }

    /// Writes `profile.json`, `profile.csv`, and the per-worker sweep
    /// timeline `profile_workers.json` (Chrome trace) to the artifact
    /// directory; returns that directory.
    pub fn write_artifacts(&self) -> PathBuf {
        let dir = artifact_dir();
        std::fs::write(dir.join("profile.json"), self.profile.to_json())
            .expect("write profile.json");
        std::fs::write(dir.join("profile.csv"), self.profile.to_csv()).expect("write profile.csv");
        std::fs::write(
            dir.join("profile_workers.json"),
            self.stats.to_chrome("profile sweep").render(),
        )
        .expect("write profile_workers.json");
        dir
    }
}

/// A completed single-cell trace.
pub struct TraceOutcome {
    /// Where the Chrome-trace JSON was written.
    pub path: PathBuf,
    /// Engine event counters of the traced run.
    pub counters: RunCounters,
    /// Spans recorded (sends + computes + downtime bands).
    pub spans: usize,
    /// The traced cell's own result (a budget abort still yields a trace).
    pub result: Result<CellMetrics, CellError>,
    /// One-line description of the traced cell.
    pub cell: String,
}

/// Replays cell `index` of `spec` with a `(RunCounters, TraceRecorder)`
/// probe pair and writes the Perfetto-loadable trace to `out` (default:
/// `trace_<spec>_cell<index>.json` in the artifact directory). The run is
/// bit-identical to the cell's sweep execution; errors (bad index) are
/// returned as messages for the CLI to print.
pub fn trace_cell(
    spec: &SweepSpec,
    index: usize,
    out: Option<PathBuf>,
) -> Result<TraceOutcome, String> {
    let cells = spec.expand().map_err(|e| e.to_string())?;
    let Some(cell) = cells.get(index) else {
        return Err(format!(
            "cell index {index} out of range: spec `{}` expands to {} cells",
            spec.name,
            cells.len()
        ));
    };
    let mat = cell.materialize();
    let mut ws = SimWorkspace::new();
    let mut scheduler = cell.build_scheduler();
    let mut probe = (RunCounters::new(), TraceRecorder::new());
    let result = cell.try_run_probed(&mat, &mut ws, scheduler.as_mut(), &mut probe);
    let (counters, mut recorder) = probe;
    recorder.finalize(recorder.end_time());

    let label = format!(
        "{} cell {index}: {} ({:?} info) on {} slaves",
        spec.name,
        cell.algorithm,
        cell.information,
        mat.platform.num_slaves()
    );
    let chrome = recorder.to_chrome(&label, 1e6);
    let path =
        out.unwrap_or_else(|| artifact_dir().join(format!("trace_{}_cell{index}.json", spec.name)));
    std::fs::write(&path, chrome.render()).map_err(|e| format!("write trace: {e}"))?;
    Ok(TraceOutcome {
        path,
        counters,
        spans: recorder.spans.len(),
        result,
        cell: label,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_attributes_phases() {
        let report = run_with(true, 2);
        assert!(report.cells > 0);
        // All five phases are present, in pipeline order.
        let names: Vec<&str> = report
            .profile
            .phases()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            names,
            ["expand", "materialize", "simulate", "store", "aggregate"]
        );
        // Simulation dominates the measured phases (the claim the command
        // exists to quantify) and the counters actually counted.
        assert!(report.profile.fraction("simulate") > 0.5);
        assert!(report.stats.counters.events() > 0);
        assert!(report.render().contains("% of measured phase time"));
        // The per-shard store contention breakdown is part of the report
        // (all 16 shards, hex-labelled).
        assert!(report.render().contains("store shard contention"));
        assert!(report.render().contains("0f:"));
    }

    #[test]
    fn trace_of_failure_cell_records_downtime() {
        let spec = spec_from_toml(
            r#"
            name = "trace-test"
            seed = 11
            tasks = [40]
            algorithms = ["LS"]

            [[platforms]]
            kind = "class"
            class = "heterogeneous"
            count = 1
            slaves = 4

            [[arrivals]]
            kind = "bag"

            [[scenarios]]
            kind = "dynamic"
            horizon = 500.0

            [[scenarios.generators]]
            kind = "poisson-failures"
            mtbf = 40.0
            repair_mean = 10.0
            "#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("mss-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.json");
        let got = trace_cell(&spec, 0, Some(out.clone())).unwrap();
        assert!(got.result.is_ok(), "fault-aware cell completes");
        assert!(got.spans > 0);
        assert!(got.counters.failures > 0, "scenario produced failures");
        let body = std::fs::read_to_string(&out).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"fail\""));
        let _ = std::fs::remove_dir_all(&dir);

        // Out-of-range index is a message, not a panic.
        assert!(trace_cell(&spec, 99, None).is_err());
    }
}
