//! The serializable per-cell run-telemetry payload.
//!
//! [`CellRunMetrics`] is the store-facing mirror of
//! [`mss_obs::RunMetrics`]: histograms flatten to sparse parallel
//! `(bucket, count)` arrays (schema salt `mss-sweep-v6`), everything else
//! carries over field-for-field. The round-trip is exact — bucket counts
//! are integers and the extremes are stored as the `f64`s they are — so a
//! payload loaded from the JSONL store merges bit-identically to one that
//! never left memory.
//!
//! Per-slave utilization is stored as **seconds**, not fractions:
//! fractions don't merge (a weighted mean needs the weights), while
//! seconds add. `ms-lab metrics` divides by the summed duration at render
//! time, which also keeps every stored number independent of how many
//! cells end up in an aggregation group.

use mss_obs::{Histogram, RunHistograms, RunMetrics};

/// A [`Histogram`] in wire form: sparse parallel arrays plus the exact
/// extremes. See [`Histogram::to_sparse`] for the index scheme.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramData {
    /// Occupied bucket indices, ascending.
    pub bucket: Vec<u32>,
    /// Counts parallel to `bucket`.
    pub count: Vec<u64>,
    /// Total samples (equals the sum of `count`).
    pub total: u64,
    /// Exact minimum observed (0.0 if empty).
    pub min: f64,
    /// Exact maximum observed (0.0 if empty).
    pub max: f64,
}

impl HistogramData {
    /// Flattens a histogram to wire form.
    pub fn from_hist(h: &Histogram) -> Self {
        let (bucket, count) = h.to_sparse();
        HistogramData {
            bucket,
            count,
            total: h.count(),
            min: h.min(),
            max: h.max(),
        }
    }

    /// Rebuilds the histogram (exact round-trip).
    pub fn to_hist(&self) -> Histogram {
        Histogram::from_sparse(&self.bucket, &self.count, self.min, self.max)
    }
}

/// One cell's run telemetry as stored in the sweep's JSONL result store
/// (the `run_metrics` field of a stored record, present only when the
/// sweep ran with `collect_metrics`).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellRunMetrics {
    /// Completed tasks (= flow histogram samples).
    pub tasks: u64,
    /// Accounted run duration (the cell's makespan), seconds.
    pub duration: f64,
    /// Flow-time histogram (release → compute done).
    pub flow: HistogramData,
    /// Master-queue wait histogram (release → last send start).
    pub wait: HistogramData,
    /// Transfer-time histogram (last send start → delivery).
    pub transfer: HistogramData,
    /// Compute-time histogram (compute start → done).
    pub compute: HistogramData,
    /// Seconds each slave spent computing.
    pub slave_busy: Vec<f64>,
    /// Seconds each slave spent not computing while the port was busy.
    pub slave_blocked: Vec<f64>,
    /// Seconds each slave spent neither computing nor port-blocked.
    pub slave_idle: Vec<f64>,
    /// Seconds the port spent sending to each slave.
    pub slave_recv: Vec<f64>,
    /// Time-weighted master queue depth: `∫ depth dt`.
    pub queue_depth_secs: f64,
    /// Maximum master queue depth observed.
    pub queue_max: u64,
}

impl CellRunMetrics {
    /// Flattens finished probe telemetry to wire form.
    pub fn from_run(m: &RunMetrics) -> Self {
        CellRunMetrics {
            tasks: m.tasks,
            duration: m.duration,
            flow: HistogramData::from_hist(&m.hists.flow),
            wait: HistogramData::from_hist(&m.hists.wait),
            transfer: HistogramData::from_hist(&m.hists.transfer),
            compute: HistogramData::from_hist(&m.hists.compute),
            slave_busy: m.busy_secs.clone(),
            slave_blocked: m.blocked_secs.clone(),
            slave_idle: m.idle_secs.clone(),
            slave_recv: m.recv_secs.clone(),
            queue_depth_secs: m.queue_depth_secs,
            queue_max: m.queue_max,
        }
    }

    /// Rebuilds the in-memory telemetry (exact round-trip), e.g. for
    /// lab-side merging across cells.
    pub fn to_run(&self) -> RunMetrics {
        RunMetrics {
            tasks: self.tasks,
            duration: self.duration,
            hists: RunHistograms {
                flow: self.flow.to_hist(),
                wait: self.wait.to_hist(),
                transfer: self.transfer.to_hist(),
                compute: self.compute.to_hist(),
            },
            busy_secs: self.slave_busy.clone(),
            blocked_secs: self.slave_blocked.clone(),
            idle_secs: self.slave_idle.clone(),
            recv_secs: self.slave_recv.clone(),
            queue_depth_secs: self.queue_depth_secs,
            queue_max: self.queue_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> RunMetrics {
        let mut h = RunHistograms::default();
        for v in [0.5, 1.5, 1.5, 40.0] {
            h.flow.observe(v);
            h.wait.observe(v / 10.0);
            h.transfer.observe(v / 100.0);
            h.compute.observe(v / 2.0);
        }
        RunMetrics {
            tasks: 4,
            duration: 40.0,
            hists: h,
            busy_secs: vec![10.0, 30.0],
            blocked_secs: vec![5.0, 2.0],
            idle_secs: vec![25.0, 8.0],
            recv_secs: vec![1.0, 2.0],
            queue_depth_secs: 12.5,
            queue_max: 3,
        }
    }

    #[test]
    fn wire_roundtrip_is_exact() {
        let run = sample_run();
        let wire = CellRunMetrics::from_run(&run);
        assert_eq!(wire.to_run(), run);
        // And through the serde value tree too.
        let v = serde::Serialize::to_value(&wire);
        let back: CellRunMetrics = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, wire);
        assert_eq!(back.to_run(), run);
    }

    #[test]
    fn quantiles_survive_the_wire() {
        let run = sample_run();
        let back = CellRunMetrics::from_run(&run).to_run();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                back.hists.flow.quantile(q).to_bits(),
                run.hists.flow.quantile(q).to_bits()
            );
        }
        assert_eq!(back.hists.flow.max(), 40.0);
    }
}
