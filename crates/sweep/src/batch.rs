//! Instance-major batched execution.
//!
//! A sweep grid is algorithm-innermost: the cells of one *instance* — same
//! platform recipe, arrival process, perturbation, scenario, task count,
//! replicate and task seed, differing only in `algorithm` — sit next to
//! each other in expansion order. Cell-major execution rebuilt that
//! instance from scratch for every algorithm; this module groups
//! consecutive same-instance cells into batches, materializes the
//! platform, task streams, compiled timeline and the three certified lower
//! bounds **once** per batch, and fans the algorithms out against the
//! shared [`MaterializedInstance`](crate::cell::MaterializedInstance). With the paper's seven algorithms this
//! removes ~6/7 of all instance-construction and bound work.
//!
//! **Batching is observationally pure** (the contract the executor and its
//! property tests enforce): per-cell results, cache keys, store contents
//! and every downstream artifact are bit-identical to cell-major execution
//! for any thread count and any batch grouping. It holds because a batch
//! only shares *inputs* that are themselves bit-identical to what the cell
//! would have built alone: the memoized sampler stream replays the exact
//! `sample_many` sequence ([`mss_workload::PlatformStream`]), and the
//! engine re-initializes its [`SimWorkspace`] per run.

use crate::cell::{Cell, CellError, CellMetrics};
use crate::run_metrics::CellRunMetrics;
use mss_core::{
    Algorithm, NoopProbe, OnlineScheduler, Platform, PlatformClass, Redispatch, SimWorkspace,
};
use mss_obs::{BatchSpan, MetricsProbe, WorkerMetrics};
use mss_workload::{PlatformSampler, PlatformStream};
use std::collections::HashMap;
use std::ops::Range;
use std::time::Instant;

/// Per-worker memoized platform-sampler streams, keyed by
/// `(class, slaves, seed)`. Each stream extends lazily to the highest
/// index requested and replays [`PlatformSampler::sample_many`] bit for
/// bit, so cached and from-scratch realizations are interchangeable.
#[derive(Default)]
pub struct SamplerCache {
    streams: HashMap<(PlatformClass, usize, u64), PlatformStream>,
}

impl SamplerCache {
    /// An empty cache.
    pub fn new() -> Self {
        SamplerCache::default()
    }

    /// Platform `index` of the `(class, slaves, seed)` sampler stream.
    pub fn get(
        &mut self,
        class: PlatformClass,
        slaves: usize,
        seed: u64,
        index: usize,
    ) -> Platform {
        self.streams
            .entry((class, slaves, seed))
            .or_insert_with(|| {
                PlatformSampler {
                    num_slaves: slaves,
                    ..PlatformSampler::default()
                }
                .stream(class, seed)
            })
            .get(index)
            .clone()
    }

    /// Number of distinct streams opened so far.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }
}

/// Per-worker scratch of the batched executor: the reusable simulator
/// buffers plus the memoized sampler streams. Scratch never influences
/// results (the workspace re-initializes per run; the cache is
/// bit-transparent), so the executor's any-thread-count determinism is
/// untouched.
pub struct BatchWorker {
    /// Reusable simulator buffers (one per worker thread).
    pub ws: SimWorkspace,
    /// Memoized sampler streams (one set per worker thread).
    pub samplers: SamplerCache,
    /// Reusable scheduler instances keyed by `(algorithm, fault_aware)`.
    /// The engine calls `init` before every run (the documented full-reset
    /// point of [`OnlineScheduler`]), so reuse is bit-transparent.
    schedulers: HashMap<(Algorithm, bool), Box<dyn OnlineScheduler>>,
    /// This worker's thread-local tally: cells, batch timeline, phase
    /// seconds. Purely observational — nothing in the run path reads it.
    pub metrics: WorkerMetrics,
    /// When `true`, cells run with a counting probe and engine events
    /// accumulate into `metrics.counters` (the `ms-lab profile` path).
    /// When `false` (the default), cells run with [`NoopProbe`] — the
    /// unchanged zero-cost hot path.
    pub count_events: bool,
    /// When `true`, cells run with a [`MetricsProbe`] and each `Ok` result
    /// carries a [`CellRunMetrics`] payload (the `ms-lab metrics` path);
    /// the run's histograms also merge into `metrics.hists`. Scalar results
    /// are bit-identical either way (contract #12).
    pub collect_metrics: bool,
    /// Reusable telemetry probe (reset per cell when `collect_metrics`).
    metrics_probe: MetricsProbe,
    /// Shared sweep epoch that batch-span offsets are measured from.
    epoch: Instant,
}

impl Default for BatchWorker {
    fn default() -> Self {
        BatchWorker::with_epoch(Instant::now())
    }
}

impl BatchWorker {
    /// Fresh worker scratch (its own epoch).
    pub fn new() -> Self {
        BatchWorker::default()
    }

    /// Fresh worker scratch measuring batch spans from `epoch` — the sweep
    /// passes one shared epoch to every worker so their timelines align.
    pub fn with_epoch(epoch: Instant) -> Self {
        BatchWorker {
            ws: SimWorkspace::default(),
            samplers: SamplerCache::default(),
            schedulers: HashMap::new(),
            metrics: WorkerMetrics::new(),
            count_events: false,
            collect_metrics: false,
            metrics_probe: MetricsProbe::new(),
            epoch,
        }
    }
}

/// The (reused) scheduler instance a cell runs under.
fn scheduler_for<'a>(
    schedulers: &'a mut HashMap<(Algorithm, bool), Box<dyn OnlineScheduler>>,
    cell: &Cell,
) -> &'a mut dyn OnlineScheduler {
    let fault_aware = cell.scenario.as_ref().is_some_and(|s| s.fault_aware);
    schedulers
        .entry((cell.algorithm, fault_aware))
        .or_insert_with(|| {
            if fault_aware {
                Box::new(Redispatch::wrap(cell.algorithm))
            } else {
                cell.algorithm.build()
            }
        })
        .as_mut()
}

/// Default [`split_batches`] threshold, in estimated events: batches that
/// cost more are chopped into smaller same-instance sub-units. The default
/// is far above the reference grids (a full 8-algorithm batch of 120-task
/// cells is ~3k events, so nothing splits) but turns one hypothetical
/// 1M-task batch into per-algorithm units so it cannot pin a worker while
/// the others idle.
pub const DEFAULT_SPLIT_EVENTS: u64 = 1 << 18;

/// Estimated engine events for one cell with `tasks` tasks — the batch
/// cost model. Every task costs a send, a compute and a completion
/// callback (~3 events); the constant covers per-run setup. The estimate
/// only steers scheduling (seeding order and split points), so its
/// absolute scale is irrelevant — relative ordering is what matters.
pub fn estimated_cell_events(tasks: usize) -> u64 {
    3 * tasks as u64 + 16
}

/// Cost of one batch range under the event model: cells × estimated
/// per-cell events (all cells of a batch share one instance, hence one
/// task count).
pub fn batch_cost(cells: &[Cell], indices: &[usize], batch: &Range<usize>) -> u64 {
    let head = &cells[indices[batch.start]];
    batch.len() as u64 * estimated_cell_events(head.tasks)
}

/// Splits every batch whose [`batch_cost`] exceeds `max_events` into
/// consecutive same-instance sub-units of at most
/// `max_events / estimated_cell_events` cells (at least one — a single
/// cell never splits further). Sub-units partition the original ranges in
/// order, so downstream index-ordered flattening is untouched; each
/// sub-unit re-materializes the shared instance (a few percent of a cell's
/// cost), which is bit-transparent, so results stay identical for any
/// threshold (the equivalence proptests force tiny thresholds to pin
/// this).
pub fn split_batches(
    cells: &[Cell],
    indices: &[usize],
    batches: Vec<Range<usize>>,
    max_events: u64,
) -> Vec<Range<usize>> {
    let mut out = Vec::with_capacity(batches.len());
    for batch in batches {
        if batch_cost(cells, indices, &batch) <= max_events {
            out.push(batch);
            continue;
        }
        let per_cell = estimated_cell_events(cells[indices[batch.start]].tasks);
        let unit = ((max_events / per_cell) as usize).max(1);
        let mut start = batch.start;
        while start < batch.end {
            let end = (start + unit).min(batch.end);
            out.push(start..end);
            start = end;
        }
    }
    out
}

/// Groups `indices` (ascending positions into `cells`, e.g. the not-yet-
/// cached subset) into maximal consecutive runs of same-instance cells.
/// Returned ranges index into `indices`, partition it, and preserve order —
/// the grouping is a pure function of the cell list, independent of thread
/// count.
pub fn group_instances(cells: &[Cell], indices: &[usize]) -> Vec<Range<usize>> {
    let mut batches = Vec::new();
    let mut start = 0usize;
    for k in 1..indices.len() {
        if !cells[indices[k - 1]].same_instance(&cells[indices[k]]) {
            batches.push(start..k);
            start = k;
        }
    }
    if start < indices.len() {
        batches.push(start..indices.len());
    }
    batches
}

/// Runs one batch (a `group_instances` range over `indices`): materializes
/// the shared instance once, then every cell of the batch against it, in
/// order. Each result is bit-identical to the cell's own
/// [`Cell::try_run_in`].
pub fn run_batch(
    cells: &[Cell],
    indices: &[usize],
    batch: Range<usize>,
    worker: &mut BatchWorker,
    out: &mut Vec<Result<CellMetrics, CellError>>,
) {
    let BatchWorker {
        ws,
        samplers,
        schedulers,
        metrics,
        count_events,
        collect_metrics,
        metrics_probe,
        epoch,
    } = worker;
    let batch_t0 = Instant::now();
    let head = &cells[indices[batch.start]];
    let mat = head.materialize_with(samplers);
    let sim_t0 = Instant::now();
    metrics.materialize_secs += sim_t0.duration_since(batch_t0).as_secs_f64();
    metrics.materializations += 1;
    metrics.batches += 1;
    let batch_cells = batch.len() as u64;
    for k in batch {
        let cell = &cells[indices[k]];
        let scheduler = scheduler_for(schedulers, cell);
        let result = if *collect_metrics {
            metrics_probe.reset();
            metrics_probe.preallocate(mat.platform.num_slaves());
            let mut result = if *count_events {
                let mut probe = (&mut metrics.counters, &mut *metrics_probe);
                cell.try_run_probed(&mat, ws, scheduler, &mut probe)
            } else {
                cell.try_run_probed(&mat, ws, scheduler, &mut *metrics_probe)
            };
            if let Ok(m) = &mut result {
                let run = metrics_probe.finish(m.makespan);
                metrics.hists.merge(&run.hists);
                m.run_metrics = Some(CellRunMetrics::from_run(&run));
            }
            result
        } else if *count_events {
            cell.try_run_probed(&mat, ws, scheduler, &mut metrics.counters)
        } else {
            cell.try_run_probed(&mat, ws, scheduler, &mut NoopProbe)
        };
        if result.is_err() {
            metrics.aborted += 1;
        }
        out.push(result);
    }
    let batch_t1 = Instant::now();
    metrics.cells += batch_cells;
    metrics.simulate_secs += batch_t1.duration_since(sim_t0).as_secs_f64();
    metrics.spans.push(BatchSpan {
        start: batch_t0.duration_since(*epoch).as_secs_f64(),
        end: batch_t1.duration_since(*epoch).as_secs_f64(),
        cells: batch_cells as usize,
    });
}

/// The streamed counterpart of [`run_batch`]: materializes the O(slaves)
/// [`StreamedInstance`](crate::cell::StreamedInstance) once per batch,
/// then runs every cell of the batch against it in bounded memory, each
/// arm pulling from a *fresh* [`Cell::source`] rebuilt from its seeds —
/// the stream is never cloned across arms. Every result is bit-identical
/// to [`run_batch`] (and hence to [`Cell::try_run_in`]), so cache keys
/// and store contents are shared between the two execution strategies.
pub fn run_batch_streamed(
    cells: &[Cell],
    indices: &[usize],
    batch: Range<usize>,
    worker: &mut BatchWorker,
    out: &mut Vec<Result<CellMetrics, CellError>>,
) {
    let BatchWorker {
        ws,
        samplers,
        schedulers,
        metrics,
        count_events,
        collect_metrics,
        metrics_probe,
        epoch,
    } = worker;
    let batch_t0 = Instant::now();
    let head = &cells[indices[batch.start]];
    let inst = head.materialize_streamed_with(samplers);
    let sim_t0 = Instant::now();
    metrics.materialize_secs += sim_t0.duration_since(batch_t0).as_secs_f64();
    metrics.materializations += 1;
    metrics.batches += 1;
    let batch_cells = batch.len() as u64;
    for k in batch {
        let cell = &cells[indices[k]];
        let scheduler = scheduler_for(schedulers, cell);
        let result = if *collect_metrics {
            metrics_probe.reset();
            metrics_probe.preallocate(inst.platform.num_slaves());
            let mut result = if *count_events {
                let mut probe = (&mut metrics.counters, &mut *metrics_probe);
                cell.try_run_streamed_probed(&inst, ws, scheduler, &mut probe)
            } else {
                cell.try_run_streamed_probed(&inst, ws, scheduler, &mut *metrics_probe)
            }
            .map(|(m, _)| m);
            if let Ok(m) = &mut result {
                let run = metrics_probe.finish(m.makespan);
                metrics.hists.merge(&run.hists);
                m.run_metrics = Some(CellRunMetrics::from_run(&run));
            }
            result
        } else if *count_events {
            cell.try_run_streamed_probed(&inst, ws, scheduler, &mut metrics.counters)
                .map(|(m, _)| m)
        } else {
            cell.try_run_streamed_probed(&inst, ws, scheduler, &mut NoopProbe)
                .map(|(m, _)| m)
        };
        if result.is_err() {
            metrics.aborted += 1;
        }
        out.push(result);
    }
    let batch_t1 = Instant::now();
    metrics.cells += batch_cells;
    metrics.simulate_secs += batch_t1.duration_since(sim_t0).as_secs_f64();
    metrics.spans.push(BatchSpan {
        start: batch_t0.duration_since(*epoch).as_secs_f64(),
        end: batch_t1.duration_since(*epoch).as_secs_f64(),
        cells: batch_cells as usize,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::PlatformCell;
    use mss_core::{Algorithm, InfoTier};
    use mss_workload::ArrivalProcess;

    fn cell(index: usize, algorithm: Algorithm) -> Cell {
        Cell {
            platform: PlatformCell::Class {
                class: PlatformClass::Heterogeneous,
                slaves: 3,
                seed: 42,
                index,
            },
            arrival: ArrivalProcess::AllAtZero,
            perturbation: None,
            scenario: None,
            tasks: 20,
            algorithm,
            information: InfoTier::Clairvoyant,
            replicate: 0,
            task_seed: 7,
        }
    }

    #[test]
    fn sampler_cache_matches_direct_realization() {
        let mut cache = SamplerCache::new();
        // Deliberately access indices out of order and twice.
        for &i in &[2usize, 0, 3, 2] {
            let c = cell(i, Algorithm::Srpt);
            assert_eq!(c.platform.realize_with(&mut cache), c.platform.realize());
        }
        assert_eq!(cache.streams(), 1, "one (class, slaves, seed) stream");
    }

    #[test]
    fn grouping_is_maximal_consecutive_runs() {
        let cells = vec![
            cell(0, Algorithm::Srpt),
            cell(0, Algorithm::ListScheduling),
            cell(0, Algorithm::RoundRobin),
            cell(1, Algorithm::Srpt),
            cell(1, Algorithm::ListScheduling),
            cell(0, Algorithm::Sljf), // same instance as the first run, but not adjacent
        ];
        let all: Vec<usize> = (0..cells.len()).collect();
        assert_eq!(group_instances(&cells, &all), vec![0..3, 3..5, 5..6]);
        // A cached hole in the middle must not split the run.
        let holey = [0usize, 2, 3, 5];
        assert_eq!(group_instances(&cells, &holey), vec![0..2, 2..3, 3..4]);
        assert!(group_instances(&cells, &[]).is_empty());
    }

    #[test]
    fn splitting_respects_threshold_and_partitions_in_order() {
        let cells: Vec<Cell> = Algorithm::ALL.iter().map(|&a| cell(1, a)).collect();
        let all: Vec<usize> = (0..cells.len()).collect();
        let batches = group_instances(&cells, &all);
        assert_eq!(batches, vec![0..cells.len()]);
        let per_cell = estimated_cell_events(20);

        // A generous threshold leaves the grouping alone.
        let whole = split_batches(&cells, &all, batches.clone(), u64::MAX);
        assert_eq!(whole, vec![0..cells.len()]);

        // A threshold of two cells' events chops into pairs.
        let pairs = split_batches(&cells, &all, batches.clone(), 2 * per_cell);
        assert!(pairs.iter().all(|r| r.len() <= 2));
        // Sub-units partition the original range in order.
        let mut next = 0usize;
        for r in &pairs {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, cells.len());

        // A threshold below one cell still floors at singleton units.
        let singles = split_batches(&cells, &all, batches, 1);
        assert_eq!(singles.len(), cells.len());
        assert!(singles.iter().all(|r| r.len() == 1));
        for r in &singles {
            assert_eq!(batch_cost(&cells, &all, r), per_cell);
        }
    }

    #[test]
    fn split_batches_run_bit_identical_to_whole_batches() {
        // Splitting re-materializes per sub-unit; every result must still
        // be bit-identical to the unsplit batch run.
        let cells: Vec<Cell> = Algorithm::ALL.iter().map(|&a| cell(1, a)).collect();
        let all: Vec<usize> = (0..cells.len()).collect();
        let (mut whole_out, mut split_out) = (Vec::new(), Vec::new());
        let mut whole_worker = BatchWorker::new();
        let mut split_worker = BatchWorker::new();
        for b in group_instances(&cells, &all) {
            run_batch(&cells, &all, b, &mut whole_worker, &mut whole_out);
        }
        let split = split_batches(&cells, &all, group_instances(&cells, &all), 1);
        assert_eq!(split.len(), cells.len());
        for b in split {
            run_batch(&cells, &all, b, &mut split_worker, &mut split_out);
        }
        assert_eq!(
            split_worker.metrics.materializations,
            cells.len() as u64,
            "each singleton sub-unit re-materializes"
        );
        for ((c, w), s) in cells.iter().zip(&whole_out).zip(&split_out) {
            let (w, s) = (w.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(
                w.makespan.to_bits(),
                s.makespan.to_bits(),
                "{}",
                c.algorithm
            );
            assert_eq!(w.max_flow.to_bits(), s.max_flow.to_bits());
            assert_eq!(w.sum_flow.to_bits(), s.sum_flow.to_bits());
            assert_eq!(w.ratio_makespan.to_bits(), s.ratio_makespan.to_bits());
        }
    }

    #[test]
    fn batch_results_match_per_cell_runs() {
        let cells: Vec<Cell> = Algorithm::ALL.iter().map(|&a| cell(1, a)).collect();
        let all: Vec<usize> = (0..cells.len()).collect();
        let batches = group_instances(&cells, &all);
        assert_eq!(batches, vec![0..cells.len()]);
        let mut worker = BatchWorker::new();
        let mut out = Vec::new();
        for b in batches {
            run_batch(&cells, &all, b, &mut worker, &mut out);
        }
        for (c, r) in cells.iter().zip(&out) {
            assert_eq!(r.as_ref().unwrap(), &c.run(), "{}", c.algorithm);
        }
    }

    #[test]
    fn streamed_batch_is_bit_identical_to_materialized() {
        // Algorithms × a perturbed variant × a Poisson-arrival variant:
        // the streamed executor must reproduce every bit of the
        // materialized one.
        let mut cells: Vec<Cell> = Algorithm::ALL.iter().map(|&a| cell(1, a)).collect();
        for c in &mut cells {
            c.arrival = ArrivalProcess::Poisson { load: 0.8 };
            c.perturbation = Some(crate::cell::PerturbCell {
                delta: 0.1,
                comm_exponent: 1.0,
                comp_exponent: 1.0,
                seed: 13,
            });
        }
        let all: Vec<usize> = (0..cells.len()).collect();
        let batches = group_instances(&cells, &all);
        let (mut mat_out, mut str_out) = (Vec::new(), Vec::new());
        let mut mat_worker = BatchWorker::new();
        let mut str_worker = BatchWorker::new();
        for b in batches {
            run_batch(&cells, &all, b.clone(), &mut mat_worker, &mut mat_out);
            run_batch_streamed(&cells, &all, b, &mut str_worker, &mut str_out);
        }
        for ((c, m), s) in cells.iter().zip(&mat_out).zip(&str_out) {
            let (m, s) = (m.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(
                m.makespan.to_bits(),
                s.makespan.to_bits(),
                "{}",
                c.algorithm
            );
            assert_eq!(m.max_flow.to_bits(), s.max_flow.to_bits());
            assert_eq!(m.sum_flow.to_bits(), s.sum_flow.to_bits());
            assert_eq!(m.lb_makespan.to_bits(), s.lb_makespan.to_bits());
            assert_eq!(m.ratio_makespan.to_bits(), s.ratio_makespan.to_bits());
        }
    }

    #[test]
    fn one_materialization_per_batch_across_algorithms_and_tiers() {
        // Regression: a batch arm must never re-materialize (or clone) the
        // instance — algorithms *and* information tiers share one
        // materialization. RunCounters proves each arm really simulated.
        let mut cells: Vec<Cell> = Algorithm::ALL.iter().map(|&a| cell(1, a)).collect();
        let mut oblivious = cell(1, Algorithm::ListScheduling);
        oblivious.information = InfoTier::SpeedOblivious;
        let mut blind = cell(1, Algorithm::ListScheduling);
        blind.information = InfoTier::NonClairvoyant;
        cells.push(oblivious);
        cells.push(blind);
        assert!(cells.windows(2).all(|w| w[0].same_instance(&w[1])));

        let all: Vec<usize> = (0..cells.len()).collect();
        let batches = group_instances(&cells, &all);
        assert_eq!(batches, vec![0..cells.len()], "one instance, one batch");
        for streamed in [false, true] {
            let mut worker = BatchWorker::new();
            worker.count_events = true;
            let mut out = Vec::new();
            for b in group_instances(&cells, &all) {
                if streamed {
                    run_batch_streamed(&cells, &all, b, &mut worker, &mut out);
                } else {
                    run_batch(&cells, &all, b, &mut worker, &mut out);
                }
            }
            let ok = out.iter().filter(|r| r.is_ok()).count() as u64;
            assert_eq!(
                ok,
                cells.len() as u64,
                "all arms complete (streamed={streamed})"
            );
            assert_eq!(worker.metrics.materializations, 1, "streamed={streamed}");
            assert_eq!(worker.metrics.batches, 1);
            assert_eq!(worker.metrics.cells, cells.len() as u64);
            // Every arm really drove the engine over the whole instance.
            assert_eq!(worker.metrics.counters.computes_completed, ok * 20);
        }
    }

    #[test]
    fn collect_metrics_attaches_payload_without_changing_scalars() {
        let cells: Vec<Cell> = Algorithm::ALL.iter().map(|&a| cell(1, a)).collect();
        let all: Vec<usize> = (0..cells.len()).collect();
        let mut worker = BatchWorker::new();
        worker.collect_metrics = true;
        let mut out = Vec::new();
        for b in group_instances(&cells, &all) {
            run_batch(&cells, &all, b, &mut worker, &mut out);
        }
        for (c, r) in cells.iter().zip(&out) {
            let got = r.as_ref().unwrap();
            let plain = c.run();
            // Scalar results are bit-identical to the unprobed run.
            assert_eq!(got.makespan.to_bits(), plain.makespan.to_bits());
            assert_eq!(got.max_flow.to_bits(), plain.max_flow.to_bits());
            let m = got.run_metrics.as_ref().expect("payload attached");
            assert_eq!(m.tasks, c.tasks as u64, "{}", c.algorithm);
            assert_eq!(m.flow.total, m.tasks);
            assert_eq!(m.slave_busy.len(), 3);
            assert!(m.duration > 0.0);
        }
        // The worker-level histogram tally absorbed every completed task.
        let expected: u64 = cells.iter().map(|c| c.tasks as u64).sum();
        assert_eq!(worker.metrics.hists.flow.count(), expected);
    }
}
