//! Strict key validation for TOML/JSON spec files.
//!
//! The vendored value-tree deserializer reads absent fields as `None`, so a
//! typo (`platfroms`, `repar_mean`, …) would silently degrade a spec to
//! defaults. Every spec entry point therefore walks the parsed value tree
//! first and rejects any key outside the documented schema, naming the
//! offending key, its location, and the allowed set.

use crate::spec::SpecError;
use serde::Value;

/// Per-element validator for array-of-tables entries.
type SubValidator = fn(&Value, &str) -> Result<(), SpecError>;

/// One allowed key, optionally with a validator for its table elements.
struct Key {
    name: &'static str,
    sub: Option<SubValidator>,
}

const fn leaf(name: &'static str) -> Key {
    Key { name, sub: None }
}

const fn table(name: &'static str, sub: SubValidator) -> Key {
    Key {
        name,
        sub: Some(sub),
    }
}

/// Checks that every key of the object `v` (if it is one — type mismatches
/// are left to the deserializer, which reports them with field context) is
/// in `allowed`, recursing into array-of-tables entries.
fn check_table(v: &Value, ctx: &str, allowed: &[Key]) -> Result<(), SpecError> {
    let Some(entries) = v.as_object() else {
        return Ok(());
    };
    for (key, value) in entries {
        let Some(spec) = allowed.iter().find(|k| k.name == key) else {
            let names: Vec<&str> = allowed.iter().map(|k| k.name).collect();
            return Err(SpecError(format!(
                "unknown key `{key}` in {ctx} (allowed: {}) — \
                 unknown keys are rejected so typos cannot silently \
                 degrade to defaults",
                names.join(", ")
            )));
        };
        if let Some(sub) = spec.sub {
            match value {
                Value::Array(items) => {
                    for (i, item) in items.iter().enumerate() {
                        sub(item, &format!("{ctx}.{key}[{i}]"))?;
                    }
                }
                other => sub(other, &format!("{ctx}.{key}"))?,
            }
        }
    }
    Ok(())
}

fn check_platform(v: &Value, ctx: &str) -> Result<(), SpecError> {
    check_table(
        v,
        ctx,
        &[
            leaf("kind"),
            leaf("class"),
            leaf("count"),
            leaf("slaves"),
            leaf("axis"),
            leaf("levels"),
            leaf("families"),
            leaf("c"),
            leaf("p"),
        ],
    )
}

fn check_arrival(v: &Value, ctx: &str) -> Result<(), SpecError> {
    check_table(v, ctx, &[leaf("kind"), leaf("load")])
}

fn check_perturbation(v: &Value, ctx: &str) -> Result<(), SpecError> {
    check_table(v, ctx, &[leaf("mode"), leaf("delta")])
}

fn check_event(v: &Value, ctx: &str) -> Result<(), SpecError> {
    check_table(
        v,
        ctx,
        &[leaf("at"), leaf("slave"), leaf("kind"), leaf("factor")],
    )
}

fn check_generator(v: &Value, ctx: &str) -> Result<(), SpecError> {
    check_table(
        v,
        ctx,
        &[
            leaf("kind"),
            leaf("slaves"),
            leaf("mtbf"),
            leaf("repair"),
            leaf("repair_mean"),
            leaf("repair_scale"),
            leaf("shape"),
            leaf("period"),
            leaf("duration"),
            leaf("offset"),
            leaf("stagger"),
            leaf("step"),
            leaf("sigma"),
            leaf("min_factor"),
            leaf("max_factor"),
        ],
    )
}

fn check_scenario_axis(v: &Value, ctx: &str) -> Result<(), SpecError> {
    check_table(
        v,
        ctx,
        &[
            leaf("kind"),
            leaf("fault"),
            leaf("name"),
            leaf("horizon"),
            leaf("min_up"),
            table("events", check_event),
            table("generators", check_generator),
        ],
    )
}

/// Validates a parsed sweep spec against the `SweepSpec` schema.
pub fn validate_sweep_spec(v: &Value) -> Result<(), SpecError> {
    check_table(
        v,
        "the sweep spec",
        &[
            leaf("name"),
            leaf("seed"),
            leaf("replicates"),
            leaf("tasks"),
            leaf("algorithms"),
            leaf("information"),
            table("platforms", check_platform),
            table("arrivals", check_arrival),
            table("perturbations", check_perturbation),
            table("scenarios", check_scenario_axis),
        ],
    )
}

/// Validates a parsed standalone scenario file against the `ScenarioSpec`
/// schema (`examples/failure_scenario.toml`).
pub fn validate_scenario_spec(v: &Value) -> Result<(), SpecError> {
    check_table(
        v,
        "the scenario spec",
        &[
            leaf("name"),
            leaf("seed"),
            leaf("horizon"),
            leaf("min_up"),
            table("events", check_event),
            table("generators", check_generator),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml_lite;

    #[test]
    fn accepts_the_documented_schema() {
        let v = toml_lite::parse(
            r#"
            name = "ok"
            seed = 1
            tasks = [10]
            algorithms = ["all"]
            [[platforms]]
            kind = "class"
            class = "het"
            [[arrivals]]
            kind = "bag"
            [[perturbations]]
            mode = "linear"
            delta = 0.1
            [[scenarios]]
            kind = "dynamic"
            horizon = 100.0
            [[scenarios.generators]]
            kind = "poisson-failures"
            mtbf = 50.0
            repair_mean = 5.0
            [[scenarios.events]]
            at = 3.0
            slave = 0
            kind = "fail"
            "#,
        )
        .unwrap();
        validate_sweep_spec(&v).unwrap();
    }

    #[test]
    fn rejects_top_level_typo_with_context() {
        let v = toml_lite::parse("name = \"x\"\nseed = 1\ntasks = [1]\nplatfroms = 2").unwrap();
        let err = validate_sweep_spec(&v).unwrap_err();
        assert!(err.0.contains("platfroms"), "{err}");
        assert!(err.0.contains("allowed"), "{err}");
    }

    #[test]
    fn rejects_nested_typo_with_location() {
        let v = toml_lite::parse(
            r#"
            name = "x"
            [[platforms]]
            kind = "class"
            clas = "het"
            "#,
        )
        .unwrap();
        let err = validate_sweep_spec(&v).unwrap_err();
        assert!(err.0.contains("clas"), "{err}");
        assert!(err.0.contains("platforms[0]"), "{err}");
    }

    #[test]
    fn rejects_generator_typo_in_scenario_file() {
        let v = toml_lite::parse(
            r#"
            seed = 1
            horizon = 10.0
            [[generators]]
            kind = "poisson-failures"
            mtfb = 5.0
            "#,
        )
        .unwrap();
        let err = validate_scenario_spec(&v).unwrap_err();
        assert!(err.0.contains("mtfb"), "{err}");
        assert!(err.0.contains("generators[0]"), "{err}");
    }
}
