//! Grid cells: the independent unit of sweep execution.
//!
//! A [`Cell`] carries everything needed to rebuild its scenario from
//! scratch — platform recipe, arrival process, optional perturbation, task
//! count, algorithm, and explicit seeds. Two properties follow:
//!
//! * **determinism** — running a cell is a pure function of the cell, so
//!   results are identical for any thread count and any execution order;
//! * **cacheability** — the cell's canonical JSON is content-hashed into
//!   the result-store key, so a re-run of an unchanged cell is a lookup.

use crate::batch::SamplerCache;
use crate::run_metrics::CellRunMetrics;
use mss_core::{
    simulate_objectives_with_probe_in, simulate_streamed_objectives_with_probe_in, Algorithm,
    InfoTier, NoopProbe, OnlineScheduler, Platform, PlatformClass, Probe, Redispatch, SimConfig,
    SimError, SimWorkspace, StreamStats, TaskArrival, TaskSource, Timeline,
};
use mss_opt::bounds::{
    makespan_lower_bound, max_flow_lower_bound, sum_flow_lower_bound, StreamingBounds,
};
use mss_opt::schedule::Instance;
use mss_scenario::ScenarioSpec;
use mss_workload::{
    ArrivalProcess, GeneratedSource, HeterogeneityAxis, HeterogeneityFamily, Perturbation,
    PlatformSampler,
};

/// How a cell's platform is produced.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PlatformCell {
    /// The paper's §4.2 random platform of a prescribed class: platform
    /// `index` of the stream `PlatformSampler::sample_many(class, …, seed)`.
    Class {
        /// Platform class to sample.
        class: PlatformClass,
        /// Number of slaves (the paper uses 5).
        slaves: usize,
        /// Sampler stream seed.
        seed: u64,
        /// Index within the sampled stream.
        index: usize,
    },
    /// A platform from a [`HeterogeneityFamily`] at a given degree.
    Heterogeneity {
        /// Which resource the degree perturbs.
        axis: HeterogeneityAxis,
        /// Heterogeneity degree `h ∈ [0, 1]`.
        level: f64,
        /// Number of slaves.
        slaves: usize,
        /// Family seed (fixes the per-slave directions).
        seed: u64,
        /// Replicate identity of this family within its group (the axis
        /// entry's family counter). [`PlatformCell::replicate_index`]
        /// returns this — never the raw `seed`, which two families may
        /// legitimately share and which would then collapse their
        /// per-point aggregation joins.
        family: u64,
    },
    /// An explicit platform (e.g. calibrated from a real testbed).
    Explicit {
        /// Communication times `c_j`.
        c: Vec<f64>,
        /// Computation times `p_j`.
        p: Vec<f64>,
    },
}

impl PlatformCell {
    /// Materializes the platform without a sampler cache.
    ///
    /// For `Class` recipes this draws `index + 1` platforms and keeps the
    /// last, exactly reproducing the paper harness's sequential stream
    /// while staying a pure function of the cell — at the cost of
    /// O(index) redundant draws. The sweep executor avoids that cost with
    /// [`PlatformCell::realize_with`], which resumes a memoized
    /// [`mss_workload::PlatformStream`] instead; both produce bit-identical
    /// platforms.
    pub fn realize(&self) -> Platform {
        match self {
            PlatformCell::Class {
                class,
                slaves,
                seed,
                index,
            } => {
                let sampler = PlatformSampler {
                    num_slaves: *slaves,
                    ..PlatformSampler::default()
                };
                sampler
                    .sample_many(*class, *index + 1, *seed)
                    .pop()
                    .expect("sample_many returns index+1 platforms")
            }
            PlatformCell::Heterogeneity {
                axis,
                level,
                slaves,
                seed,
                ..
            } => HeterogeneityFamily::paper_ranges(*slaves, *seed).platform(*axis, *level),
            PlatformCell::Explicit { c, p } => Platform::from_vectors(c, p),
        }
    }

    /// [`PlatformCell::realize`] through a per-worker [`SamplerCache`]:
    /// `Class` recipes resume the memoized sampler stream for
    /// `(class, slaves, seed)` (no redundant draws), the other recipes
    /// realize directly. Bit-identical to [`PlatformCell::realize`].
    pub fn realize_with(&self, cache: &mut SamplerCache) -> Platform {
        match self {
            PlatformCell::Class {
                class,
                slaves,
                seed,
                index,
            } => cache.get(*class, *slaves, *seed, *index),
            _ => self.realize(),
        }
    }

    /// Label used to group aggregation rows (excludes the within-group
    /// replication index).
    pub fn group_label(&self) -> String {
        match self {
            PlatformCell::Class { class, slaves, .. } => {
                format!("{class}(m={slaves})")
            }
            PlatformCell::Heterogeneity {
                axis,
                level,
                slaves,
                ..
            } => format!("h={level:.2}:{}(m={slaves})", axis.label()),
            PlatformCell::Explicit { c, .. } => format!("explicit(m={})", c.len()),
        }
    }

    /// Index distinguishing replicated platforms within a group: the
    /// stream index for `Class` recipes and the family counter for
    /// `Heterogeneity` ones (a replicate identity — *not* the raw seed,
    /// which may coincide across families and would merge their points in
    /// per-point aggregation joins).
    pub fn replicate_index(&self) -> u64 {
        match self {
            PlatformCell::Class { index, .. } => *index as u64,
            PlatformCell::Heterogeneity { family, .. } => *family,
            PlatformCell::Explicit { .. } => 0,
        }
    }
}

/// Task-size perturbation applied to a cell (the Figure-2 robustness axis,
/// which also models schedulers planning with wrong/oblivious speed
/// estimates: the engine bills actual sizes while schedulers plan nominal).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerturbCell {
    /// Maximum relative deviation of the linear size factor.
    pub delta: f64,
    /// Exponent on the communication phase.
    pub comm_exponent: f64,
    /// Exponent on the computation phase.
    pub comp_exponent: f64,
    /// Jitter stream seed.
    pub seed: u64,
}

impl PerturbCell {
    fn to_perturbation(&self) -> Perturbation {
        Perturbation {
            delta: self.delta,
            comm_exponent: self.comm_exponent,
            comp_exponent: self.comp_exponent,
        }
    }

    /// Label for grouping.
    pub fn label(&self) -> String {
        format!(
            "±{:.0}%(^{:.0}/^{:.0})",
            self.delta * 100.0,
            self.comm_exponent,
            self.comp_exponent
        )
    }
}

/// Dynamic-platform axis of a cell: a failure/drift scenario plus the
/// fault policy the algorithm runs under.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioCell {
    /// The scenario, compiled against the cell's platform at run time. Its
    /// `seed` is derived from the cell identity (like perturbation seeds),
    /// and the whole spec is content-hashed into the cache key.
    pub spec: ScenarioSpec,
    /// `true` wraps the algorithm in [`Redispatch`] (the default; plain
    /// fault-oblivious algorithms may livelock against a down slave and
    /// abort the cell with a budget error).
    pub fault_aware: bool,
}

impl ScenarioCell {
    /// Label for grouping.
    pub fn label(&self) -> String {
        let policy = if self.fault_aware { "+RD" } else { "plain" };
        format!("{}[{policy}]", self.spec.label())
    }
}

/// One grid cell: a fully specified scenario for one algorithm.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    /// Platform recipe.
    pub platform: PlatformCell,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Optional task-size jitter.
    pub perturbation: Option<PerturbCell>,
    /// Optional dynamic-platform scenario (`None` = the static model).
    pub scenario: Option<ScenarioCell>,
    /// Number of tasks.
    pub tasks: usize,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Information tier the scheduler's views filter at
    /// (`Clairvoyant` is the historical, fully informed cell). Like the
    /// algorithm, the tier does not change the *instance* — only what the
    /// scheduler is allowed to see of it — so cells differing only here
    /// share a materialization and their seeds.
    pub information: InfoTier,
    /// Replicate number (seeds differ per replicate).
    pub replicate: u64,
    /// Seed for the arrival-process stream.
    pub task_seed: u64,
}

/// Machine-readable classification of why a cell's simulation aborted.
/// Stored verbatim in the sweep result store (as its serialized variant
/// name), so resumed sweeps skip known-aborting cells and reports can
/// count aborts by kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AbortKind {
    /// The step budget ran out (e.g. a fault-oblivious algorithm
    /// livelocking against a down slave).
    BudgetExhausted,
    /// The scheduler idled with tasks unfinished and no events pending.
    Stalled,
    /// The scheduler returned a model-violating decision.
    InvalidDecision,
    /// The run's information tier is below the scheduler's declared
    /// minimum.
    InsufficientInformation,
}

impl From<&SimError> for AbortKind {
    fn from(e: &SimError) -> Self {
        match e {
            SimError::Stalled { .. } => AbortKind::Stalled,
            SimError::InvalidDecision { .. } => AbortKind::InvalidDecision,
            SimError::BudgetExhausted { .. } => AbortKind::BudgetExhausted,
            SimError::InsufficientInformation { .. } => AbortKind::InsufficientInformation,
        }
    }
}

/// A cell whose simulation could not complete (e.g. a fault-oblivious
/// algorithm livelocking against a down slave until the step budget
/// aborts). Carries a machine-readable [`AbortKind`] plus the
/// human-readable description the legacy panicking API raises.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellError {
    /// Why the simulation aborted.
    pub kind: AbortKind,
    /// Human-readable description (algorithm, platform, engine error).
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CellError {}

/// Everything shareable across the cells of one *instance* — cells that
/// differ only in `algorithm` (see [`Cell::same_instance`]): the realized
/// platform, the nominal and perturbed task streams, the compiled platform
/// timeline, and the three certified lower bounds. Materialized **once**
/// per instance by the batched executor instead of once per cell; running
/// a cell against it is bit-identical to [`Cell::try_run_in`].
pub struct MaterializedInstance {
    /// The realized platform.
    pub platform: Platform,
    /// Nominal-size task stream (what schedulers and bounds see).
    pub nominal: Vec<TaskArrival>,
    /// Perturbed task stream, when the cell carries a perturbation (the
    /// engine bills these; `None` means the nominal sizes are billed).
    pub perturbed: Option<Vec<TaskArrival>>,
    /// Compiled platform-event timeline (empty for static cells).
    pub timeline: Timeline,
    /// Certified lower bound on the optimal makespan (nominal sizes).
    pub lb_makespan: f64,
    /// Certified lower bound on the optimal max-flow.
    pub lb_max_flow: f64,
    /// Certified lower bound on the optimal sum-flow.
    pub lb_sum_flow: f64,
}

/// The streamed counterpart of [`MaterializedInstance`]: everything
/// shareable across one instance's cells *except* the task streams, which
/// each fan-out arm re-instantiates from its seeds as a
/// [`GeneratedSource`] instead of cloning ([`Cell::source`]). Memory is
/// O(slaves) regardless of the task count; results are bit-identical to
/// the materialized path (the engine's streaming contract plus the
/// bit-identity of [`StreamingBounds`] and [`GeneratedSource`]).
pub struct StreamedInstance {
    /// The realized platform.
    pub platform: Platform,
    /// Compiled platform-event timeline (empty for static cells).
    pub timeline: Timeline,
    /// Certified lower bound on the optimal makespan (nominal sizes).
    pub lb_makespan: f64,
    /// Certified lower bound on the optimal max-flow.
    pub lb_max_flow: f64,
    /// Certified lower bound on the optimal sum-flow.
    pub lb_sum_flow: f64,
}

/// Measured objectives of one cell, with certified lower bounds.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellMetrics {
    /// Makespan, seconds.
    pub makespan: f64,
    /// Max-flow, seconds.
    pub max_flow: f64,
    /// Sum-flow, seconds.
    pub sum_flow: f64,
    /// Certified lower bound on the optimal makespan (nominal sizes).
    pub lb_makespan: f64,
    /// `makespan / lb_makespan` — an upper bound on the cell's
    /// competitive-style ratio against the offline optimum.
    pub ratio_makespan: f64,
    /// Distributional run telemetry (flow/wait/transfer/compute
    /// histograms, per-slave utilization seconds, queue-depth stats).
    /// `None` unless the sweep ran with
    /// [`SweepConfig::collect_metrics`](crate::SweepConfig) — the scalar
    /// objectives above are bit-identical either way (probes are
    /// observers only).
    pub run_metrics: Option<CellRunMetrics>,
}

impl Cell {
    /// Runs the cell: realize platform → generate arrivals → perturb →
    /// compile scenario → simulate → evaluate objectives against the
    /// certified lower bounds.
    ///
    /// # Panics
    /// Panics if the scenario does not compile or the simulation fails
    /// (all seven heuristics complete on valid static instances; under
    /// failures, a `fault_aware: false` cell may legitimately abort when
    /// the fault-oblivious algorithm livelocks — see [`ScenarioCell`]).
    pub fn run(&self) -> CellMetrics {
        self.run_in(&mut SimWorkspace::new())
    }

    /// [`Cell::run`] with caller-provided simulator buffers: the sweep
    /// executor keeps one [`SimWorkspace`] per worker thread, so the
    /// engine's zero-allocation hot path stays warm across the whole grid.
    /// Results are bit-identical to [`Cell::run`] (the engine re-initializes
    /// the workspace per run).
    pub fn run_in(&self, ws: &mut SimWorkspace) -> CellMetrics {
        self.try_run_in(ws).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Cell::run_in`]: a cell that legitimately aborts
    /// (see [`ScenarioCell`]) comes back as a [`CellError`] value instead,
    /// so batched executors can carry it to the right result slot.
    pub fn try_run_in(&self, ws: &mut SimWorkspace) -> Result<CellMetrics, CellError> {
        let mat = self.materialize();
        self.try_run_materialized(&mat, ws)
    }

    /// Materializes this cell's instance from scratch (no sampler cache).
    ///
    /// # Panics
    /// Panics if the scenario does not compile (specs are validated at
    /// expansion time, so this is a harness bug, not a data condition).
    pub fn materialize(&self) -> MaterializedInstance {
        self.materialize_parts(self.platform.realize())
    }

    /// [`Cell::materialize`] resuming platform-sampler streams from a
    /// per-worker [`SamplerCache`] (kills the O(index) redundant draws of
    /// [`PlatformCell::realize`]). Bit-identical to [`Cell::materialize`].
    pub fn materialize_with(&self, cache: &mut SamplerCache) -> MaterializedInstance {
        self.materialize_parts(self.platform.realize_with(cache))
    }

    fn materialize_parts(&self, platform: Platform) -> MaterializedInstance {
        let nominal = self.arrival.generate(self.tasks, &platform, self.task_seed);
        let perturbed = self
            .perturbation
            .as_ref()
            .map(|p| p.to_perturbation().apply(&nominal, p.seed));
        let timeline = match &self.scenario {
            Some(s) => s
                .spec
                .compile(platform.num_slaves())
                .unwrap_or_else(|e| panic!("scenario failed to compile: {e}")),
            None => Timeline::EMPTY,
        };
        let inst = Instance {
            c: platform.iter().map(|(_, s)| s.c).collect(),
            p: platform.iter().map(|(_, s)| s.p).collect(),
            r: nominal.iter().map(|t| t.release.as_f64()).collect(),
        };
        // All three certified bounds are computed here — once per
        // *instance* under the batched executor, not once per cell.
        MaterializedInstance {
            lb_makespan: makespan_lower_bound(&inst),
            lb_max_flow: max_flow_lower_bound(&inst),
            lb_sum_flow: sum_flow_lower_bound(&inst),
            platform,
            nominal,
            perturbed,
            timeline,
        }
    }

    /// The lazily-generated task stream of this cell (arrivals plus the
    /// optional size perturbation), re-instantiated from its seeds — the
    /// streamed executor calls this once per fan-out arm instead of
    /// cloning a stream across arms. Bit-identical to the materialized
    /// `nominal`/`perturbed` stream of [`Cell::materialize`].
    pub fn source(&self, platform: &Platform) -> GeneratedSource {
        let mut s = GeneratedSource::new(self.arrival, self.tasks, platform, self.task_seed);
        if let Some(p) = &self.perturbation {
            s = s.with_perturbation(p.to_perturbation(), p.seed);
        }
        s
    }

    /// Materializes the shareable (O(slaves)) part of this cell's instance
    /// for streamed execution: the platform, the compiled timeline, and
    /// the three certified lower bounds — the latter computed by a single
    /// [`StreamingBounds`] pass over the nominal release stream, bit-
    /// identical to the batch bounds of [`Cell::materialize`].
    pub fn materialize_streamed(&self) -> StreamedInstance {
        self.materialize_streamed_parts(self.platform.realize())
    }

    /// [`Cell::materialize_streamed`] resuming platform-sampler streams
    /// from a per-worker [`SamplerCache`]; bit-identical to
    /// [`Cell::materialize_streamed`].
    pub fn materialize_streamed_with(&self, cache: &mut SamplerCache) -> StreamedInstance {
        self.materialize_streamed_parts(self.platform.realize_with(cache))
    }

    fn materialize_streamed_parts(&self, platform: Platform) -> StreamedInstance {
        let timeline = match &self.scenario {
            Some(s) => s
                .spec
                .compile(platform.num_slaves())
                .unwrap_or_else(|e| panic!("scenario failed to compile: {e}")),
            None => Timeline::EMPTY,
        };
        let c: Vec<f64> = platform.iter().map(|(_, s)| s.c).collect();
        let p: Vec<f64> = platform.iter().map(|(_, s)| s.p).collect();
        let mut bounds = StreamingBounds::new(&c, &p, self.tasks);
        // Bounds see the *nominal* releases (perturbation preserves
        // releases, and the batch path also bounds the nominal instance).
        let mut nominal = GeneratedSource::new(self.arrival, self.tasks, &platform, self.task_seed);
        while let Some(t) = nominal.next_task() {
            bounds.push(t.release.as_f64());
        }
        StreamedInstance {
            lb_makespan: bounds.makespan(),
            lb_max_flow: bounds.max_flow(),
            lb_sum_flow: bounds.sum_flow(),
            platform,
            timeline,
        }
    }

    /// Runs this cell in bounded memory against a shared
    /// [`StreamedInstance`], pulling tasks from a fresh
    /// [`Cell::source`]. The [`CellMetrics`] are bit-identical to
    /// [`Cell::try_run_materialized`]; the accompanying [`StreamStats`]
    /// carry the task-slot high-water marks the bounded-memory contract
    /// caps.
    pub fn try_run_streamed_probed<P: Probe>(
        &self,
        inst: &StreamedInstance,
        ws: &mut SimWorkspace,
        scheduler: &mut dyn OnlineScheduler,
        probe: &mut P,
    ) -> Result<(CellMetrics, StreamStats), CellError> {
        let cfg = self.sim_config_for(&inst.timeline);
        let mut source = self.source(&inst.platform);
        let run = simulate_streamed_objectives_with_probe_in(
            ws,
            &inst.platform,
            &mut source,
            &cfg,
            &inst.timeline,
            scheduler,
            probe,
        )
        .map_err(|e| self.abort_error(&e))?;

        let lb = inst.lb_makespan;
        let metrics = CellMetrics {
            makespan: run.objectives.makespan,
            max_flow: run.objectives.max_flow,
            sum_flow: run.objectives.sum_flow,
            lb_makespan: lb,
            ratio_makespan: if lb > 0.0 {
                run.objectives.makespan / lb
            } else {
                f64::NAN
            },
            run_metrics: None,
        };
        Ok((metrics, run))
    }

    /// Runs this cell against a shared materialization. `mat` must come
    /// from [`Cell::materialize`]/[`Cell::materialize_with`] of a cell for
    /// which [`Cell::same_instance`] holds (the caller's grouping
    /// invariant); results are then bit-identical to [`Cell::try_run_in`].
    pub fn try_run_materialized(
        &self,
        mat: &MaterializedInstance,
        ws: &mut SimWorkspace,
    ) -> Result<CellMetrics, CellError> {
        let mut scheduler = self.build_scheduler();
        self.try_run_scheduled(mat, ws, &mut scheduler)
    }

    /// Builds the scheduler instance this cell runs:
    /// [`Redispatch`]-wrapped iff the cell is fault-aware.
    pub fn build_scheduler(&self) -> Box<dyn OnlineScheduler> {
        match &self.scenario {
            Some(s) if s.fault_aware => Box::new(Redispatch::wrap(self.algorithm)),
            _ => self.algorithm.build(),
        }
    }

    /// The exact engine configuration this cell simulates under (also used
    /// by `ms-lab trace` to replay a single cell with probes attached).
    pub fn sim_config(&self, mat: &MaterializedInstance) -> SimConfig {
        self.sim_config_for(&mat.timeline)
    }

    /// [`Cell::sim_config`] from the compiled timeline alone — the
    /// streamed path has no [`MaterializedInstance`]; both paths produce
    /// the identical configuration.
    pub fn sim_config_for(&self, timeline: &Timeline) -> SimConfig {
        SimConfig {
            horizon_hint: Some(self.tasks),
            info: self.information,
            // Instance-scaled step budget: a clean run takes ~4 steps per
            // task, and each platform-timeline event adds at most a
            // handful of steps plus O(tasks) re-releases/re-sends, so this
            // is two-plus orders of magnitude of headroom even for extreme
            // user scenarios — while livelocking fault-oblivious cells
            // abort promptly instead of burning the engine-default
            // 10M-step budget. The budget is not part of the cell identity
            // and no artifact-producing path contains aborting cells, so
            // observable outputs are unchanged.
            max_steps: 50_000
                + 5_000 * self.tasks
                + timeline.events().len() * (10 + 2 * self.tasks),
        }
    }

    fn abort_error(&self, e: &SimError) -> CellError {
        CellError {
            kind: AbortKind::from(e),
            message: format!("{} failed on {:?}: {e}", self.algorithm, self.platform),
        }
    }

    /// [`Cell::try_run_materialized`] with a caller-provided scheduler
    /// instance (which the engine fully re-initializes per run, so reuse
    /// across cells is bit-transparent). The scheduler must be the one this
    /// cell would build: `Redispatch`-wrapped iff the cell is fault-aware.
    pub fn try_run_scheduled(
        &self,
        mat: &MaterializedInstance,
        ws: &mut SimWorkspace,
        scheduler: &mut dyn OnlineScheduler,
    ) -> Result<CellMetrics, CellError> {
        self.try_run_probed(mat, ws, scheduler, &mut NoopProbe)
    }

    /// [`Cell::try_run_scheduled`] with an instrumentation [`Probe`]
    /// observing the engine run. Results are bit-identical for any probe
    /// (probes are observers only); with [`NoopProbe`] this *is*
    /// `try_run_scheduled`.
    pub fn try_run_probed<P: Probe>(
        &self,
        mat: &MaterializedInstance,
        ws: &mut SimWorkspace,
        scheduler: &mut dyn OnlineScheduler,
        probe: &mut P,
    ) -> Result<CellMetrics, CellError> {
        let cfg = self.sim_config(mat);
        let tasks = mat.perturbed.as_deref().unwrap_or(&mat.nominal);
        let run = simulate_objectives_with_probe_in(
            ws,
            &mat.platform,
            tasks,
            &cfg,
            &mat.timeline,
            scheduler,
            probe,
        )
        .map_err(|e| self.abort_error(&e))?;

        let lb = mat.lb_makespan;
        Ok(CellMetrics {
            makespan: run.makespan,
            max_flow: run.max_flow,
            sum_flow: run.sum_flow,
            lb_makespan: lb,
            ratio_makespan: if lb > 0.0 {
                run.makespan / lb
            } else {
                f64::NAN
            },
            run_metrics: None,
        })
    }

    /// `true` iff `other` describes the same *instance* — every field but
    /// the algorithm and the information tier agrees — so both cells can
    /// run against one [`MaterializedInstance`] (the tier only filters the
    /// scheduler's view of it). This is the batched executor's grouping
    /// key.
    pub fn same_instance(&self, other: &Cell) -> bool {
        self.platform == other.platform
            && self.arrival == other.arrival
            && self.perturbation == other.perturbation
            && self.scenario == other.scenario
            && self.tasks == other.tasks
            && self.replicate == other.replicate
            && self.task_seed == other.task_seed
    }

    /// Label of the aggregation group this cell belongs to (everything but
    /// the algorithm and the replication indices).
    pub fn group_label(&self) -> String {
        let pert = match &self.perturbation {
            Some(p) => p.label(),
            None => "exact".to_string(),
        };
        // Static clairvoyant cells keep the historical label shape; a
        // scenario adds a column between the perturbation and the task
        // count, and a sub-clairvoyant tier adds one after it.
        let scenario = match &self.scenario {
            Some(s) => format!(" | {}", s.label()),
            None => String::new(),
        };
        let info = match self.information {
            InfoTier::Clairvoyant => String::new(),
            tier => format!(" | info={tier}"),
        };
        format!(
            "{} | {} | {}{}{} | n={}",
            self.platform.group_label(),
            self.arrival.label(),
            pert,
            scenario,
            info,
            self.tasks
        )
    }

    /// Identifier of the replication point within a group: cells that share
    /// a point (same platform draw, same replicate) but differ in algorithm
    /// are comparable head-to-head (used for baseline normalization).
    pub fn point_id(&self) -> (u64, u64) {
        (self.platform.replicate_index(), self.replicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(algorithm: Algorithm) -> Cell {
        Cell {
            platform: PlatformCell::Class {
                class: PlatformClass::Heterogeneous,
                slaves: 3,
                seed: 42,
                index: 1,
            },
            arrival: ArrivalProcess::AllAtZero,
            perturbation: None,
            scenario: None,
            tasks: 30,
            algorithm,
            information: InfoTier::Clairvoyant,
            replicate: 0,
            task_seed: 7,
        }
    }

    fn faulty(algorithm: Algorithm) -> Cell {
        let mut c = cell(algorithm);
        c.scenario = Some(ScenarioCell {
            spec: ScenarioSpec {
                seed: 11,
                horizon: Some(500.0),
                min_up: Some(1),
                generators: Some(vec![mss_scenario::GeneratorSpec {
                    kind: "poisson-failures".into(),
                    mtbf: Some(60.0),
                    repair_mean: Some(10.0),
                    ..mss_scenario::GeneratorSpec::default()
                }]),
                ..ScenarioSpec::static_spec()
            },
            fault_aware: true,
        });
        c
    }

    #[test]
    fn class_platform_matches_sampler_stream() {
        let direct = PlatformSampler {
            num_slaves: 3,
            ..PlatformSampler::default()
        }
        .sample_many(PlatformClass::Heterogeneous, 2, 42);
        let realized = cell(Algorithm::Srpt).platform.realize();
        assert_eq!(realized, direct[1]);
    }

    #[test]
    fn reused_workspace_matches_fresh_runs() {
        // One workspace across heterogeneous cells (different algorithms,
        // platforms, scenarios) must reproduce every fresh-run result.
        let mut ws = SimWorkspace::new();
        for c in [
            cell(Algorithm::ListScheduling),
            cell(Algorithm::Srpt),
            faulty(Algorithm::ListScheduling),
            cell(Algorithm::Sljfwc),
        ] {
            assert_eq!(c.run_in(&mut ws), c.run(), "{}", c.algorithm);
        }
    }

    #[test]
    fn run_is_deterministic_and_bounded() {
        let a = cell(Algorithm::ListScheduling).run();
        let b = cell(Algorithm::ListScheduling).run();
        assert_eq!(a, b);
        assert!(a.makespan > 0.0);
        assert!(a.lb_makespan > 0.0);
        assert!(a.ratio_makespan >= 1.0 - 1e-9, "ratio {}", a.ratio_makespan);
    }

    #[test]
    fn perturbation_changes_metrics_but_not_lb() {
        let exact = cell(Algorithm::ListScheduling).run();
        let mut pert_cell = cell(Algorithm::ListScheduling);
        pert_cell.perturbation = Some(PerturbCell {
            delta: 0.1,
            comm_exponent: 2.0,
            comp_exponent: 3.0,
            seed: 5,
        });
        let pert = pert_cell.run();
        assert_eq!(exact.lb_makespan, pert.lb_makespan);
        assert_ne!(exact.makespan, pert.makespan);
    }

    #[test]
    fn cells_round_trip_through_json() {
        let mut c = faulty(Algorithm::Sljfwc);
        c.perturbation = Some(PerturbCell {
            delta: 0.1,
            comm_exponent: 1.0,
            comp_exponent: 1.0,
            seed: 3,
        });
        let json = serde_json::to_string(&c).unwrap();
        let back: Cell = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn static_scenario_cell_matches_no_scenario() {
        // An empty scenario (even fault-aware) is the identity.
        let mut static_cell = cell(Algorithm::ListScheduling);
        static_cell.scenario = Some(ScenarioCell {
            spec: ScenarioSpec::static_spec(),
            fault_aware: true,
        });
        assert_eq!(static_cell.run(), cell(Algorithm::ListScheduling).run());
    }

    #[test]
    fn failure_scenario_runs_deterministically_and_degrades() {
        let a = faulty(Algorithm::ListScheduling).run();
        let b = faulty(Algorithm::ListScheduling).run();
        assert_eq!(a, b, "scenario cells replay bit-for-bit");
        let clean = cell(Algorithm::ListScheduling).run();
        assert!(
            a.makespan >= clean.makespan,
            "failures cannot improve the makespan: {} vs {}",
            a.makespan,
            clean.makespan
        );
        assert_eq!(a.lb_makespan, clean.lb_makespan, "bounds ignore failures");
    }

    #[test]
    fn information_tiers_share_the_instance_and_stay_live() {
        let clair = cell(Algorithm::ListScheduling);
        let mut oblivious = clair.clone();
        oblivious.information = InfoTier::SpeedOblivious;
        let mut blind = clair.clone();
        blind.information = InfoTier::NonClairvoyant;

        // One materialization serves every tier (the batching contract).
        assert!(clair.same_instance(&oblivious) && clair.same_instance(&blind));
        let mat = clair.materialize();
        let mut ws = SimWorkspace::new();
        let base = clair.try_run_materialized(&mat, &mut ws).unwrap();
        let oblv = oblivious.try_run_materialized(&mat, &mut ws).unwrap();
        let nonc = blind.try_run_materialized(&mat, &mut ws).unwrap();

        // Withdrawing knowledge cannot beat the certified lower bound, the
        // runs complete, and the bounds (instance properties) agree.
        for m in [&base, &oblv, &nonc] {
            assert!(m.makespan > 0.0 && m.ratio_makespan >= 1.0 - 1e-9);
            assert_eq!(m.lb_makespan, base.lb_makespan);
        }
        // Tier cells replay bit-for-bit and match the unbatched path.
        assert_eq!(oblivious.run(), oblv);
        assert_eq!(blind.run(), nonc);

        // Labels: clairvoyant keeps the historical shape; lower tiers get
        // their own aggregation groups.
        assert!(!clair.group_label().contains("info="));
        assert!(oblivious.group_label().contains("info=speed-oblivious"));
        assert!(blind.group_label().contains("info=non-clairvoyant"));
    }

    #[test]
    fn scenario_labels_group_cells() {
        let c = faulty(Algorithm::Srpt);
        assert!(c.group_label().contains("+RD"), "{}", c.group_label());
        assert!(
            !cell(Algorithm::Srpt).group_label().contains("+RD"),
            "static label unchanged"
        );
    }
}
