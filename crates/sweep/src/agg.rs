//! Aggregation: cell metrics → per-group, per-algorithm summaries.
//!
//! Groups are "everything but the algorithm and the replication indices":
//! all replicates of all platform draws of one scenario land in one group,
//! and within it each algorithm gets mean/min/max/std/CI95 of the raw
//! objectives, of the ratio against the certified makespan lower bound,
//! and (when a baseline algorithm is designated) of the per-point makespan
//! normalized to that baseline — the paper's "normalized to SRPT" view.
//!
//! All folds run in the deterministic cell order produced by
//! [`SweepSpec::expand`](crate::SweepSpec::expand), so aggregate output is
//! byte-identical regardless of how many threads executed the cells.

use crate::cell::{Cell, CellMetrics};
use mss_core::Algorithm;
use mss_obs::metrics_probe::fraction;
use mss_obs::{Histogram, RunMetrics};
use std::collections::HashMap;

/// Distribution summary of one metric over a group.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for < 2 samples).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95 % confidence interval on
    /// the mean (`1.96 · s / √n`; 0 for < 2 samples).
    pub ci95: f64,
}

/// Summarizes a sample (empty input yields a zeroed summary).
pub fn summarize(xs: &[f64]) -> Summary {
    let count = xs.len();
    if count == 0 {
        return Summary {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            std_dev: 0.0,
            ci95: 0.0,
        };
    }
    let mean = xs.iter().sum::<f64>() / count as f64;
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (std_dev, ci95) = if count >= 2 {
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0);
        let sd = var.sqrt();
        (sd, 1.96 * sd / (count as f64).sqrt())
    } else {
        (0.0, 0.0)
    };
    Summary {
        count,
        mean,
        min,
        max,
        std_dev,
        ci95,
    }
}

/// One aggregated row: a (group, algorithm) pair.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AggregateRow {
    /// Group label (platform recipe, arrival, perturbation, task count).
    pub group: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Makespan distribution.
    pub makespan: Summary,
    /// Max-flow distribution.
    pub max_flow: Summary,
    /// Sum-flow distribution.
    pub sum_flow: Summary,
    /// `makespan / certified lower bound` distribution.
    pub ratio_vs_lb: Summary,
    /// Per-point `makespan / baseline makespan` distribution, when a
    /// baseline was requested and present at every point.
    pub normalized: Option<Summary>,
}

/// Aggregates executed cells. `cells` and `metrics` are parallel arrays in
/// expansion order.
pub fn aggregate(
    cells: &[Cell],
    metrics: &[CellMetrics],
    baseline: Option<Algorithm>,
) -> Vec<AggregateRow> {
    assert_eq!(cells.len(), metrics.len(), "cells/metrics length mismatch");

    // Baseline makespan per (group, point).
    let mut base: HashMap<(String, (u64, u64)), f64> = HashMap::new();
    if let Some(b) = baseline {
        for (cell, m) in cells.iter().zip(metrics) {
            if cell.algorithm == b {
                base.insert((cell.group_label(), cell.point_id()), m.makespan);
            }
        }
    }

    // Group rows in first-seen (deterministic) order.
    let mut order: Vec<(String, Algorithm)> = Vec::new();
    let mut buckets: HashMap<(String, Algorithm), Vec<usize>> = HashMap::new();
    for (i, cell) in cells.iter().enumerate() {
        let key = (cell.group_label(), cell.algorithm);
        buckets
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                Vec::new()
            })
            .push(i);
    }

    order
        .into_iter()
        .map(|key| {
            let idxs = &buckets[&key];
            let pick = |f: &dyn Fn(&CellMetrics) -> f64| -> Vec<f64> {
                idxs.iter().map(|&i| f(&metrics[i])).collect()
            };
            let normalized = if baseline.is_some() {
                let ratios: Vec<f64> = idxs
                    .iter()
                    .filter_map(|&i| {
                        let cell = &cells[i];
                        base.get(&(cell.group_label(), cell.point_id()))
                            .map(|b| metrics[i].makespan / b)
                    })
                    .collect();
                if ratios.len() == idxs.len() {
                    Some(summarize(&ratios))
                } else {
                    None
                }
            } else {
                None
            };
            AggregateRow {
                group: key.0,
                algorithm: key.1.name().to_string(),
                makespan: summarize(&pick(&|m| m.makespan)),
                max_flow: summarize(&pick(&|m| m.max_flow)),
                sum_flow: summarize(&pick(&|m| m.sum_flow)),
                ratio_vs_lb: summarize(&pick(&|m| m.ratio_makespan)),
                normalized,
            }
        })
        .collect()
}

/// Quantile summary of one merged telemetry histogram.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistSummary {
    /// Samples in the merged histogram.
    pub count: u64,
    /// Median (bucket upper bound at rank, clamped to the exact max).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact maximum observed.
    pub max: f64,
}

impl HistSummary {
    /// Summarizes a merged histogram.
    pub fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

/// One telemetry row: the merged run metrics of a (group, algorithm) pair.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsRow {
    /// Group label (platform recipe, arrival, perturbation, task count).
    pub group: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Cells whose payloads were merged into this row.
    pub cells: usize,
    /// Completed tasks across those cells.
    pub tasks: u64,
    /// Flow-time distribution (release → compute done).
    pub flow: HistSummary,
    /// Master-queue wait distribution (release → last send start).
    pub wait: HistSummary,
    /// Transfer-time distribution (last send start → delivery).
    pub transfer: HistSummary,
    /// Compute-time distribution (compute start → done).
    pub compute: HistSummary,
    /// Fraction of total slave-time spent computing, in `[0, 1]`.
    pub busy_frac: f64,
    /// Fraction spent not computing while the master port was busy.
    pub blocked_frac: f64,
    /// Fraction spent neither computing nor port-blocked.
    pub idle_frac: f64,
    /// Fraction of master-port time spent sending (port utilization).
    pub recv_frac: f64,
    /// Time-weighted mean master queue depth.
    pub queue_mean: f64,
    /// Maximum master queue depth observed in any merged cell.
    pub queue_max: u64,
}

/// Aggregates per-cell telemetry payloads (cells run with
/// `collect_metrics`) into per-(group, algorithm) rows, in first-seen
/// order. Cells without a payload are skipped. Merging happens in
/// expansion order, so — together with the integer-count histograms — the
/// rows are byte-identical for any executing thread count (contract #12).
pub fn aggregate_metrics(cells: &[Cell], metrics: &[CellMetrics]) -> Vec<MetricsRow> {
    assert_eq!(cells.len(), metrics.len(), "cells/metrics length mismatch");
    let mut order: Vec<(String, Algorithm)> = Vec::new();
    let mut merged: HashMap<(String, Algorithm), (usize, RunMetrics)> = HashMap::new();
    for (cell, m) in cells.iter().zip(metrics) {
        let Some(payload) = &m.run_metrics else {
            continue;
        };
        let key = (cell.group_label(), cell.algorithm);
        let entry = merged.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (0, RunMetrics::default())
        });
        entry.0 += 1;
        entry.1.merge(&payload.to_run());
    }
    order
        .into_iter()
        .map(|key| {
            let (cells_merged, run) = &merged[&key];
            // `duration` is the summed makespan over merged cells; each
            // slave is accounted over every full run, so total slave-time
            // is duration × slaves and port-time is duration × 1.
            let slave_time = run.duration * run.busy_secs.len() as f64;
            MetricsRow {
                group: key.0,
                algorithm: key.1.name().to_string(),
                cells: *cells_merged,
                tasks: run.tasks,
                flow: HistSummary::of(&run.hists.flow),
                wait: HistSummary::of(&run.hists.wait),
                transfer: HistSummary::of(&run.hists.transfer),
                compute: HistSummary::of(&run.hists.compute),
                busy_frac: fraction(run.busy_secs.iter().sum(), slave_time),
                blocked_frac: fraction(run.blocked_secs.iter().sum(), slave_time),
                idle_frac: fraction(run.idle_secs.iter().sum(), slave_time),
                recv_frac: fraction(run.recv_secs.iter().sum(), run.duration),
                queue_mean: run.queue_mean(),
                queue_max: run.queue_max,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::PlatformCell;
    use crate::run_metrics::CellRunMetrics;
    use mss_core::{InfoTier, PlatformClass};
    use mss_workload::ArrivalProcess;

    #[test]
    fn summary_statistics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
        assert_eq!(summarize(&[]).count, 0);
        assert_eq!(summarize(&[7.0]).std_dev, 0.0);
    }

    fn cell(index: usize, algorithm: Algorithm) -> Cell {
        Cell {
            platform: PlatformCell::Class {
                class: PlatformClass::Heterogeneous,
                slaves: 2,
                seed: 1,
                index,
            },
            arrival: ArrivalProcess::AllAtZero,
            perturbation: None,
            scenario: None,
            tasks: 10,
            algorithm,
            information: InfoTier::Clairvoyant,
            replicate: 0,
            task_seed: 0,
        }
    }

    fn metrics(makespan: f64) -> CellMetrics {
        CellMetrics {
            makespan,
            max_flow: makespan,
            sum_flow: makespan * 10.0,
            lb_makespan: 1.0,
            ratio_makespan: makespan,
            run_metrics: None,
        }
    }

    fn with_payload(makespan: f64, flows: &[f64]) -> CellMetrics {
        let mut run = RunMetrics {
            tasks: flows.len() as u64,
            duration: makespan,
            busy_secs: vec![makespan * 0.5, makespan * 0.25],
            blocked_secs: vec![0.0, makespan * 0.25],
            idle_secs: vec![makespan * 0.5, makespan * 0.5],
            recv_secs: vec![makespan * 0.1, makespan * 0.1],
            queue_depth_secs: makespan,
            queue_max: 2,
            ..RunMetrics::default()
        };
        for &f in flows {
            run.hists.flow.observe(f);
        }
        CellMetrics {
            run_metrics: Some(CellRunMetrics::from_run(&run)),
            ..metrics(makespan)
        }
    }

    #[test]
    fn metrics_rows_merge_payloads_in_order() {
        let cells = vec![
            cell(0, Algorithm::Srpt),
            cell(1, Algorithm::Srpt),
            cell(2, Algorithm::Srpt), // no payload — skipped
        ];
        let ms = vec![
            with_payload(10.0, &[1.0, 2.0]),
            with_payload(30.0, &[4.0]),
            metrics(5.0),
        ];
        let rows = aggregate_metrics(&cells, &ms);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.algorithm, "SRPT");
        assert_eq!(r.cells, 2);
        assert_eq!(r.tasks, 3);
        assert_eq!(r.flow.count, 3);
        assert!(r.flow.p50 <= r.flow.p90 && r.flow.p90 <= r.flow.p99);
        assert!(r.flow.p99 <= r.flow.max);
        assert_eq!(r.flow.max, 4.0);
        // busy = 0.75·Σm over 2 slaves of Σm each.
        assert!((r.busy_frac - 0.375).abs() < 1e-12);
        assert!((r.blocked_frac - 0.125).abs() < 1e-12);
        assert!((r.idle_frac - 0.5).abs() < 1e-12);
        assert!((r.recv_frac - 0.2).abs() < 1e-12);
        assert!((r.queue_mean - 1.0).abs() < 1e-12);
        assert_eq!(r.queue_max, 2);
    }

    #[test]
    fn normalization_joins_points_by_platform_draw() {
        // Two platform draws; SRPT is 2.0 then 4.0; LS is 1.0 then 3.0.
        let cells = vec![
            cell(0, Algorithm::Srpt),
            cell(0, Algorithm::ListScheduling),
            cell(1, Algorithm::Srpt),
            cell(1, Algorithm::ListScheduling),
        ];
        let ms = vec![metrics(2.0), metrics(1.0), metrics(4.0), metrics(3.0)];
        let rows = aggregate(&cells, &ms, Some(Algorithm::Srpt));
        assert_eq!(rows.len(), 2);
        let srpt = &rows[0];
        assert_eq!(srpt.algorithm, "SRPT");
        assert!((srpt.normalized.as_ref().unwrap().mean - 1.0).abs() < 1e-12);
        let ls = &rows[1];
        // (1/2 + 3/4) / 2 = 0.625 — per-point, not mean-of-means.
        assert!((ls.normalized.as_ref().unwrap().mean - 0.625).abs() < 1e-12);
        assert!((ls.makespan.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_baseline_means_no_normalization() {
        let cells = vec![cell(0, Algorithm::Srpt)];
        let rows = aggregate(&cells, &[metrics(2.0)], None);
        assert!(rows[0].normalized.is_none());
    }

    #[test]
    fn same_seed_heterogeneity_families_aggregate_separately() {
        // Regression: `PlatformCell::Heterogeneity` used to report the raw
        // `seed` as its replicate index, so two families sharing a seed
        // collapsed onto one aggregation point — their baselines
        // overwrote each other in the per-point normalization join. The
        // `family` counter keeps the points distinct even with equal seeds.
        use mss_workload::HeterogeneityAxis;
        let het = |family: u64, algorithm: Algorithm| Cell {
            platform: PlatformCell::Heterogeneity {
                axis: HeterogeneityAxis::Both,
                level: 0.5,
                slaves: 2,
                seed: 99, // deliberately identical across families
                family,
            },
            arrival: ArrivalProcess::AllAtZero,
            perturbation: None,
            scenario: None,
            tasks: 10,
            algorithm,
            information: InfoTier::Clairvoyant,
            replicate: 0,
            task_seed: family, // distinct instances per family
        };
        let cells = vec![
            het(0, Algorithm::Srpt),
            het(0, Algorithm::ListScheduling),
            het(1, Algorithm::Srpt),
            het(1, Algorithm::ListScheduling),
        ];
        assert_ne!(
            cells[0].point_id(),
            cells[2].point_id(),
            "same-seed families must be distinct replication points"
        );
        // SRPT baselines: 2.0 (family 0) and 4.0 (family 1); LS: 1.0, 3.0.
        let ms = vec![metrics(2.0), metrics(1.0), metrics(4.0), metrics(3.0)];
        let rows = aggregate(&cells, &ms, Some(Algorithm::Srpt));
        assert_eq!(rows.len(), 2, "one group, two algorithms");
        let ls = &rows[1];
        assert_eq!(ls.algorithm, "LS");
        let n = ls.normalized.as_ref().expect("baseline present everywhere");
        assert_eq!(n.count, 2);
        // Per-point join: (1/2 + 3/4) / 2 — a seed-keyed join would have
        // divided both LS runs by one surviving baseline instead.
        assert!((n.mean - 0.625).abs() < 1e-12, "normalized mean {}", n.mean);
    }
}
