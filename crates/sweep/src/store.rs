//! The sharded on-disk result store.
//!
//! Completed cells are appended as JSON lines to one of 16 shard files
//! under the cache directory, keyed by a content hash of the cell plus a
//! code-version salt. Loading tolerates torn writes: any line that fails to
//! parse (e.g. a shard truncated mid-record by a crash) is dropped, and the
//! affected cell simply re-runs. Re-running a sweep therefore skips every
//! intact completed cell and resumes interrupted ones.
//!
//! Writes go through per-worker [`StoreWriter`] handles: each worker
//! serializes its finished records into its **own** per-shard buffers (no
//! shared lock on the serialization path) and flushes each non-empty
//! buffer to its shard file under that shard's **independent lock** — 16
//! locks instead of one, so two workers only wait on each other when they
//! flush into the *same* shard at the same instant, and every such wait is
//! counted per shard ([`StoreStats::shard_contended`]). Record *lines* are
//! byte-identical for any thread count; with more than one worker only
//! the line order within a shard is scheduling-dependent, and [`load`]
//! (last line wins per key) is insensitive to it — contract #14.
//!
//! [`load`]: ResultStore::load

use crate::cell::{Cell, CellError, CellMetrics};
use mss_obs::StoreStats;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bump when a change to the simulator/heuristics/workload invalidates
/// previously stored results; old keys then simply never match.
/// v2: the cell schema gained the dynamic-platform `scenario` axis.
/// v3: `PlatformCell::Heterogeneity` gained the `family` replicate index.
/// v4: the cell schema gained the `information` tier axis (and expansion
///     seeds now hash the tier placeholder into the cell identity).
/// v5: stored records gained the machine-readable `abort` tag (and aborted
///     cells are now stored and skipped on resume, not re-run).
/// v6: `CellMetrics` gained the optional `run_metrics` telemetry payload
///     (flow/wait/transfer/compute histograms, per-slave utilization,
///     queue-depth stats).
pub const CODE_VERSION_SALT: &str = "mss-sweep-v6";

/// FNV-1a, 64-bit — stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content key of a cell: hash of its canonical JSON plus the salt.
/// 128 hash bits (two seeded FNV passes) keep collisions negligible at
/// experiment scale.
pub fn cell_key(cell: &Cell) -> String {
    let canon = serde_json::to_string(cell).expect("serialize cell");
    let lo = fnv1a(canon.as_bytes());
    let salted = format!("{CODE_VERSION_SALT}|{canon}");
    let hi = fnv1a(salted.as_bytes());
    format!("{hi:016x}{lo:016x}")
}

/// One stored line: exactly one of `metrics` (a completed cell) and
/// `abort` (a cell whose simulation legitimately aborted) is set.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct StoredRecord {
    key: String,
    metrics: Option<CellMetrics>,
    abort: Option<CellError>,
}

/// One shard's shared state: the lock serializing appends to its file,
/// and how often a flusher found it already held.
struct Shard {
    lock: Mutex<()>,
    contended: AtomicU64,
}

/// Sharded JSONL store rooted at a directory.
pub struct ResultStore {
    dir: PathBuf,
    /// Per-shard file locks + contention counters — 16 independent locks,
    /// so concurrent flushes only serialize per shard.
    shards: Vec<Shard>,
    appends: AtomicU64,
    bytes: AtomicU64,
}

/// Number of shard files (`shard_00.jsonl` … `shard_0f.jsonl`).
const SHARDS: usize = mss_obs::STORE_SHARDS;

impl ResultStore {
    /// Opens (and creates) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            shards: (0..SHARDS)
                .map(|_| Shard {
                    lock: Mutex::new(()),
                    contended: AtomicU64::new(0),
                })
                .collect(),
            appends: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// I/O statistics accumulated since the store was opened.
    pub fn stats(&self) -> StoreStats {
        let mut shard_contended = [0u64; SHARDS];
        for (slot, shard) in shard_contended.iter_mut().zip(&self.shards) {
            *slot = shard.contended.load(Ordering::Relaxed);
        }
        StoreStats {
            appends: self.appends.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            lock_contended: shard_contended.iter().sum(),
            shard_contended,
        }
    }

    /// A fresh per-worker write handle (its own serialization buffers).
    pub fn writer(&self) -> StoreWriter<'_> {
        StoreWriter {
            store: self,
            bufs: vec![Vec::new(); SHARDS],
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// First hex digit of the key selects the shard.
    fn shard_index(key: &str) -> usize {
        key.as_bytes()
            .first()
            .map(|b| (*b as char).to_digit(16).unwrap_or(0) as usize)
            .unwrap_or(0)
            % SHARDS
    }

    #[cfg(test)]
    fn shard_path(&self, key: &str) -> PathBuf {
        let digit = Self::shard_index(key);
        self.dir.join(format!("shard_{digit:02x}.jsonl"))
    }

    /// Loads every intact record. Corrupt or truncated lines are counted
    /// and skipped — their cells will re-run.
    pub fn load(&self) -> std::io::Result<LoadedResults> {
        let mut results = HashMap::new();
        let mut dropped = 0usize;
        for shard in 0..SHARDS {
            let path = self.dir.join(format!("shard_{shard:02x}.jsonl"));
            let Ok(body) = std::fs::read_to_string(&path) else {
                continue; // missing shard: nothing stored yet
            };
            for line in body.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<StoredRecord>(line) {
                    Ok(StoredRecord {
                        key,
                        metrics: Some(m),
                        abort: None,
                    }) if m.makespan.is_finite() => {
                        results.insert(key, Ok(m));
                    }
                    Ok(StoredRecord {
                        key,
                        metrics: None,
                        abort: Some(e),
                    }) => {
                        results.insert(key, Err(e));
                    }
                    _ => dropped += 1,
                }
            }
        }
        Ok(LoadedResults { results, dropped })
    }

    /// Appends finished cells — completed metrics *or* tagged aborts — to
    /// their shards, through a throwaway [`StoreWriter`]. Convenience for
    /// single-threaded callers and tests; the sweep's workers hold their
    /// own long-lived writers instead.
    pub fn append(
        &self,
        records: &[(String, Result<CellMetrics, CellError>)],
    ) -> std::io::Result<()> {
        let mut writer = self.writer();
        for (key, outcome) in records {
            writer.push(key, outcome);
        }
        writer.flush()
    }
}

/// A per-worker write handle onto a [`ResultStore`].
///
/// `push` serializes a record into the writer's **private** per-shard
/// buffer — no lock, no per-record `String`; the emitted JSONL bytes are
/// identical to serializing a `StoredRecord` with `serde_json::to_string`
/// line by line (a test pins that format), so torn-line recovery semantics
/// are unchanged. `flush` appends each non-empty buffer to its shard file
/// under that shard's own lock, counting contended acquisitions. Buffers
/// keep their capacity across flushes, so a worker's steady state
/// serializes allocation-free.
pub struct StoreWriter<'a> {
    store: &'a ResultStore,
    bufs: Vec<Vec<u8>>,
}

impl StoreWriter<'_> {
    /// Serializes one finished cell into this writer's shard buffer.
    /// `{"key":<key>,"metrics":<M|null>,"abort":<null|A>}` — field order
    /// and float formatting exactly as StoredRecord's derived
    /// serialization (`Option` renders as the value or `null`).
    pub fn push(&mut self, key: &str, outcome: &Result<CellMetrics, CellError>) {
        let buf = &mut self.bufs[ResultStore::shard_index(key)];
        buf.extend_from_slice(b"{\"key\":");
        serde_json::to_writer(&mut *buf, key).expect("serialize record key");
        buf.extend_from_slice(b",\"metrics\":");
        match outcome {
            Ok(metrics) => {
                serde_json::to_writer(&mut *buf, metrics).expect("serialize record metrics");
                buf.extend_from_slice(b",\"abort\":null}\n");
            }
            Err(abort) => {
                buf.extend_from_slice(b"null,\"abort\":");
                serde_json::to_writer(&mut *buf, abort).expect("serialize record abort");
                buf.extend_from_slice(b"}\n");
            }
        }
    }

    /// Bytes currently buffered and not yet flushed.
    pub fn buffered(&self) -> usize {
        self.bufs.iter().map(Vec::len).sum()
    }

    /// Flushes only when more than `floor` bytes are buffered — the
    /// sweep's workers call this per batch so small batches coalesce into
    /// fewer file appends while large results reach disk (and crash
    /// resumability) promptly.
    pub fn flush_over(&mut self, floor: usize) -> std::io::Result<()> {
        if self.buffered() > floor {
            self.flush()?;
        }
        Ok(())
    }

    /// Appends every non-empty buffer to its shard file, each under that
    /// shard's independent lock (a busy lock is waited on and counted in
    /// [`StoreStats::shard_contended`]). Buffers are cleared but keep
    /// their capacity.
    pub fn flush(&mut self) -> std::io::Result<()> {
        let mut wrote = false;
        for (index, buf) in self.bufs.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            wrote = true;
            let shard = &self.store.shards[index];
            let guard = match shard.lock.try_lock() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::WouldBlock) => {
                    shard.contended.fetch_add(1, Ordering::Relaxed);
                    shard.lock.lock().expect("store shard lock")
                }
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("store shard lock poisoned"),
            };
            let path = self.store.dir.join(format!("shard_{index:02x}.jsonl"));
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            file.write_all(buf)?;
            drop(guard);
            self.store
                .bytes
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            buf.clear(); // keep capacity for the next flush
        }
        if wrote {
            self.store.appends.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Result of [`ResultStore::load`].
pub struct LoadedResults {
    /// Intact records by cell key: completed metrics or a tagged abort.
    pub results: HashMap<String, Result<CellMetrics, CellError>>,
    /// Number of corrupt/truncated lines skipped.
    pub dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, PlatformCell};
    use mss_core::{Algorithm, PlatformClass};
    use mss_workload::ArrivalProcess;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mss-sweep-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell(i: usize) -> Cell {
        Cell {
            platform: PlatformCell::Class {
                class: PlatformClass::Heterogeneous,
                slaves: 2,
                seed: 1,
                index: i,
            },
            arrival: ArrivalProcess::AllAtZero,
            perturbation: None,
            scenario: None,
            tasks: 5,
            algorithm: Algorithm::Srpt,
            information: mss_core::InfoTier::Clairvoyant,
            replicate: 0,
            task_seed: i as u64,
        }
    }

    fn metrics(v: f64) -> CellMetrics {
        CellMetrics {
            makespan: v,
            max_flow: v,
            sum_flow: v,
            lb_makespan: 1.0,
            ratio_makespan: v,
            run_metrics: None,
        }
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(cell_key(&cell(0)), cell_key(&cell(0)));
        assert_ne!(cell_key(&cell(0)), cell_key(&cell(1)));
        let mut salted = cell(0);
        salted.task_seed += 1;
        assert_ne!(cell_key(&cell(0)), cell_key(&salted));
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let records: Vec<(String, Result<CellMetrics, CellError>)> = (0..40)
            .map(|i| (cell_key(&cell(i)), Ok(metrics(i as f64 + 1.0))))
            .collect();
        store.append(&records).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.results.len(), 40);
        for (key, m) in &records {
            assert_eq!(&loaded.results[key], m);
        }
        let stats = store.stats();
        assert_eq!(stats.appends, 1);
        assert!(stats.bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_cells_round_trip_with_kind() {
        let dir = temp_dir("aborts");
        let store = ResultStore::open(&dir).unwrap();
        let err = CellError {
            kind: crate::cell::AbortKind::BudgetExhausted,
            message: "srpt failed on Class: step budget of 55000 exhausted".into(),
        };
        let records: Vec<(String, Result<CellMetrics, CellError>)> = vec![
            (cell_key(&cell(0)), Ok(metrics(2.0))),
            (cell_key(&cell(1)), Err(err.clone())),
        ];
        store.append(&records).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.results[&records[1].0], Err(err));
        assert!(loaded.results[&records[0].0].is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_bytes_match_derived_record_serialization() {
        // The buffered fast path must emit exactly the bytes of serializing
        // a StoredRecord per line — the JSONL format contract that load()
        // and torn-line recovery rest on — for both record shapes.
        let dir = temp_dir("format");
        let store = ResultStore::open(&dir).unwrap();
        let mut with_payload = metrics(12.0625);
        with_payload.max_flow = 0.1;
        with_payload.sum_flow = 1e-3;
        with_payload.lb_makespan = 7.25;
        with_payload.ratio_makespan = 12.0625 / 7.25;
        with_payload.run_metrics = Some({
            let mut h = mss_obs::RunHistograms::default();
            h.flow.observe(3.5);
            h.flow.observe(0.25);
            crate::run_metrics::CellRunMetrics::from_run(&mss_obs::RunMetrics {
                tasks: 2,
                duration: 12.0625,
                hists: h,
                busy_secs: vec![3.75],
                blocked_secs: vec![0.5],
                idle_secs: vec![7.8125],
                recv_secs: vec![0.5],
                queue_depth_secs: 1.25,
                queue_max: 2,
            })
        });
        let ok_rec = (cell_key(&cell(3)), Ok(with_payload));
        let err_rec = (
            cell_key(&cell(5)),
            Err(CellError {
                kind: crate::cell::AbortKind::Stalled,
                message: "ls \"stalled\"".into(),
            }),
        );
        for rec in [&ok_rec, &err_rec] {
            store.append(std::slice::from_ref(rec)).unwrap();
            let body = std::fs::read_to_string(store.shard_path(&rec.0)).unwrap();
            let expected = serde_json::to_string(&StoredRecord {
                key: rec.0.clone(),
                metrics: rec.1.as_ref().ok().cloned(),
                abort: rec.1.as_ref().err().cloned(),
            })
            .unwrap();
            assert!(
                body.contains(&format!("{expected}\n")),
                "shard bytes {body:?} missing derived line {expected:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_metrics_payload_round_trips_through_load() {
        let dir = temp_dir("payload");
        let store = ResultStore::open(&dir).unwrap();
        let mut m = metrics(9.5);
        m.run_metrics = Some({
            let mut h = mss_obs::RunHistograms::default();
            h.flow.observe(1.5);
            h.wait.observe(0.0);
            crate::run_metrics::CellRunMetrics::from_run(&mss_obs::RunMetrics {
                tasks: 1,
                duration: 9.5,
                hists: h,
                busy_secs: vec![4.0, 2.0],
                blocked_secs: vec![1.0, 3.0],
                idle_secs: vec![4.5, 4.5],
                recv_secs: vec![0.5, 0.25],
                queue_depth_secs: 2.0,
                queue_max: 1,
            })
        });
        let records = vec![(cell_key(&cell(0)), Ok(m.clone()))];
        store.append(&records).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.results[&records[0].0], Ok(m));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_line_is_dropped_not_fatal() {
        let dir = temp_dir("truncated");
        let store = ResultStore::open(&dir).unwrap();
        let records: Vec<(String, Result<CellMetrics, CellError>)> = (0..8)
            .map(|i| (cell_key(&cell(i)), Ok(metrics(i as f64 + 1.0))))
            .collect();
        store.append(&records).unwrap();

        // Truncate one shard mid-line, as a crash during append would.
        let shard = (0..16)
            .map(|s| dir.join(format!("shard_{s:02x}.jsonl")))
            .find(|p| p.exists() && std::fs::metadata(p).unwrap().len() > 0)
            .expect("at least one shard written");
        let body = std::fs::read_to_string(&shard).unwrap();
        std::fs::write(&shard, &body[..body.len() - 15]).unwrap();

        let loaded = store.load().unwrap();
        assert_eq!(loaded.dropped, 1, "exactly the torn record drops");
        assert_eq!(loaded.results.len(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
