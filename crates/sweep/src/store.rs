//! The sharded on-disk result store.
//!
//! Completed cells are appended as JSON lines to one of 16 shard files
//! under the cache directory, keyed by a content hash of the cell plus a
//! code-version salt. Loading tolerates torn writes: any line that fails to
//! parse (e.g. a shard truncated mid-record by a crash) is dropped, and the
//! affected cell simply re-runs. Re-running a sweep therefore skips every
//! intact completed cell and resumes interrupted ones.

use crate::cell::{Cell, CellMetrics};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Bump when a change to the simulator/heuristics/workload invalidates
/// previously stored results; old keys then simply never match.
/// v2: the cell schema gained the dynamic-platform `scenario` axis.
pub const CODE_VERSION_SALT: &str = "mss-sweep-v2";

/// FNV-1a, 64-bit — stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content key of a cell: hash of its canonical JSON plus the salt.
/// 128 hash bits (two seeded FNV passes) keep collisions negligible at
/// experiment scale.
pub fn cell_key(cell: &Cell) -> String {
    let canon = serde_json::to_string(cell).expect("serialize cell");
    let lo = fnv1a(canon.as_bytes());
    let salted = format!("{CODE_VERSION_SALT}|{canon}");
    let hi = fnv1a(salted.as_bytes());
    format!("{hi:016x}{lo:016x}")
}

/// One stored line.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct StoredRecord {
    key: String,
    metrics: CellMetrics,
}

/// Sharded JSONL store rooted at a directory.
pub struct ResultStore {
    dir: PathBuf,
}

/// Number of shard files (`shard_00.jsonl` … `shard_0f.jsonl`).
const SHARDS: usize = 16;

impl ResultStore {
    /// Opens (and creates) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard_path(&self, key: &str) -> PathBuf {
        // First hex digit of the key selects the shard.
        let digit = key
            .as_bytes()
            .first()
            .map(|b| (*b as char).to_digit(16).unwrap_or(0) as usize)
            .unwrap_or(0)
            % SHARDS;
        self.dir.join(format!("shard_{digit:02x}.jsonl"))
    }

    /// Loads every intact record. Corrupt or truncated lines are counted
    /// and skipped — their cells will re-run.
    pub fn load(&self) -> std::io::Result<LoadedResults> {
        let mut results = HashMap::new();
        let mut dropped = 0usize;
        for shard in 0..SHARDS {
            let path = self.dir.join(format!("shard_{shard:02x}.jsonl"));
            let Ok(body) = std::fs::read_to_string(&path) else {
                continue; // missing shard: nothing stored yet
            };
            for line in body.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<StoredRecord>(line) {
                    Ok(rec) if rec.metrics.makespan.is_finite() => {
                        results.insert(rec.key, rec.metrics);
                    }
                    _ => dropped += 1,
                }
            }
        }
        Ok(LoadedResults { results, dropped })
    }

    /// Appends completed cells to their shards.
    pub fn append(&self, records: &[(String, CellMetrics)]) -> std::io::Result<()> {
        let mut by_shard: HashMap<PathBuf, String> = HashMap::new();
        for (key, metrics) in records {
            let rec = StoredRecord {
                key: key.clone(),
                metrics: metrics.clone(),
            };
            let line = serde_json::to_string(&rec).expect("serialize record");
            let buf = by_shard.entry(self.shard_path(key)).or_default();
            buf.push_str(&line);
            buf.push('\n');
        }
        for (path, body) in by_shard {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            file.write_all(body.as_bytes())?;
        }
        Ok(())
    }
}

/// Result of [`ResultStore::load`].
pub struct LoadedResults {
    /// Intact records by cell key.
    pub results: HashMap<String, CellMetrics>,
    /// Number of corrupt/truncated lines skipped.
    pub dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, PlatformCell};
    use mss_core::{Algorithm, PlatformClass};
    use mss_workload::ArrivalProcess;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mss-sweep-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell(i: usize) -> Cell {
        Cell {
            platform: PlatformCell::Class {
                class: PlatformClass::Heterogeneous,
                slaves: 2,
                seed: 1,
                index: i,
            },
            arrival: ArrivalProcess::AllAtZero,
            perturbation: None,
            scenario: None,
            tasks: 5,
            algorithm: Algorithm::Srpt,
            replicate: 0,
            task_seed: i as u64,
        }
    }

    fn metrics(v: f64) -> CellMetrics {
        CellMetrics {
            makespan: v,
            max_flow: v,
            sum_flow: v,
            lb_makespan: 1.0,
            ratio_makespan: v,
        }
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(cell_key(&cell(0)), cell_key(&cell(0)));
        assert_ne!(cell_key(&cell(0)), cell_key(&cell(1)));
        let mut salted = cell(0);
        salted.task_seed += 1;
        assert_ne!(cell_key(&cell(0)), cell_key(&salted));
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let records: Vec<(String, CellMetrics)> = (0..40)
            .map(|i| (cell_key(&cell(i)), metrics(i as f64 + 1.0)))
            .collect();
        store.append(&records).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.results.len(), 40);
        for (key, m) in &records {
            assert_eq!(&loaded.results[key], m);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_line_is_dropped_not_fatal() {
        let dir = temp_dir("truncated");
        let store = ResultStore::open(&dir).unwrap();
        let records: Vec<(String, CellMetrics)> = (0..8)
            .map(|i| (cell_key(&cell(i)), metrics(i as f64 + 1.0)))
            .collect();
        store.append(&records).unwrap();

        // Truncate one shard mid-line, as a crash during append would.
        let shard = (0..16)
            .map(|s| dir.join(format!("shard_{s:02x}.jsonl")))
            .find(|p| p.exists() && std::fs::metadata(p).unwrap().len() > 0)
            .expect("at least one shard written");
        let body = std::fs::read_to_string(&shard).unwrap();
        std::fs::write(&shard, &body[..body.len() - 15]).unwrap();

        let loaded = store.load().unwrap();
        assert_eq!(loaded.dropped, 1, "exactly the torn record drops");
        assert_eq!(loaded.results.len(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
