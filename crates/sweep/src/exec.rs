//! The deterministic parallel executor.
//!
//! Cells of a sweep are embarrassingly parallel: each is a pure function of
//! its own spec and seeds. The executor distributes work items over
//! per-worker **work-stealing deques** ([`crossbeam::deque`]): every item
//! carries a cost estimate, items are seeded onto the deques
//! largest-cost-first in round-robin (an LPT-style static pre-balance), and
//! a worker whose own deque runs dry steals from the tail of its peers —
//! late, slow items cannot stall a fixed pre-partition, and one oversized
//! item no longer pins a worker while the rest idle behind a shared cursor.
//!
//! Scheduling only decides **who** computes a slot, never **what** ends up
//! in it: every result is written back to the slot of its original index
//! and aggregation downstream always reads slots in index order, so
//! **results are bit-identical for any thread count** (and any cost
//! model — costs steer placement, not content).

use crossbeam::deque::{Steal, Stealer, Worker};
use std::sync::Mutex;

/// Number of worker threads to use when the caller does not care: the
/// machine's available parallelism, at most `cap`.
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, cap.max(1))
}

/// Applies `f` to every item, possibly in parallel, and returns the results
/// in item order. `f(i, &items[i])` must be a pure function of its inputs
/// for the determinism guarantee to mean anything.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, threads, || (), move |(), i, t| f(i, t))
}

/// [`parallel_map`] with per-worker scratch state: `init()` runs once on
/// each worker thread and the resulting value is threaded through every
/// `f(&mut scratch, i, &items[i])` call that worker executes.
///
/// This is how the sweep's per-cell loop reuses one
/// [`SimWorkspace`](mss_core::SimWorkspace) per worker — the simulator's
/// zero-allocation buffers are warmed by the first cell and recycled by
/// every subsequent cell on that thread. Scratch state must not influence
/// results (`f` stays a pure function of `(i, items[i])` observationally),
/// which the engine guarantees by re-initializing the workspace per run;
/// determinism for any thread count is unchanged.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    parallel_map_collect(items, threads, init, f, |_| ()).0
}

/// [`parallel_map_with`] that additionally *drains* every worker's scratch
/// into a `Send` summary after that worker's last item: returns the
/// results plus one summary per worker that ran, in no particular order
/// (the sequential path returns its single summary).
///
/// This is how the sweep collects *per-worker metrics* without touching
/// the hot path: each worker accumulates into its scratch thread-locally
/// and the totals are folded after the join. The drain runs on the worker
/// thread, so the scratch itself never crosses threads (it may hold
/// non-`Send` state, e.g. boxed schedulers). The scratch-must-not-
/// influence-results contract of [`parallel_map_with`] is unchanged.
pub fn parallel_map_collect<T, R, S, M, I, F, D>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
    drain: D,
) -> (Vec<R>, Vec<M>)
where
    T: Sync,
    R: Send,
    M: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S) -> M + Sync,
{
    parallel_map_costed(items, threads, |_, _| 1, init, f, drain)
}

/// [`parallel_map_collect`] with an explicit per-item **cost model**:
/// `cost(i, &items[i])` estimates the relative work of item `i` (any
/// positive scale; the sweep uses estimated simulation events). Costs feed
/// the work-stealing scheduler two ways:
///
/// 1. **Seeding** — items are sorted largest-cost-first (ties broken by
///    index) and dealt round-robin onto the per-worker deques, so every
///    worker starts with a similar cost share and the big rocks are placed
///    before the gravel (LPT-style);
/// 2. **Stealing** — a worker whose deque runs dry takes from the *tail*
///    of a peer's deque, i.e. the cheapest work that peer has queued,
///    keeping each owner on its own expensive items.
///
/// Costs influence scheduling only: results land in their original index
/// slots and are bit-identical for any thread count and any cost model
/// (`cost` is evaluated once, up front, on the calling thread).
pub fn parallel_map_costed<T, R, S, M, C, I, F, D>(
    items: &[T],
    threads: usize,
    cost: C,
    init: I,
    f: F,
    drain: D,
) -> (Vec<R>, Vec<M>)
where
    T: Sync,
    R: Send,
    M: Send,
    C: Fn(usize, &T) -> u64,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S) -> M + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut scratch = init();
        let out = items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
        return (out, vec![drain(scratch)]);
    }

    let workers = threads.min(items.len());
    // LPT-style seed: largest first, ties by index, dealt round-robin.
    let costs: Vec<u64> = items.iter().enumerate().map(|(i, t)| cost(i, t)).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    let deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    for (rank, &i) in order.iter().enumerate() {
        deques[rank % workers].push(i);
    }
    let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();

    let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let summaries: Mutex<Vec<M>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for (w, own) in deques.into_iter().enumerate() {
            let stealers = &stealers;
            let (init, f, drain) = (&init, &f, &drain);
            let (sink, summaries) = (&sink, &summaries);
            scope.spawn(move || {
                // Each worker batches results locally and merges once at
                // the end, so the sink lock is taken `workers` times, not
                // `items` times.
                let mut scratch = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // Own deque first (front: the costliest seeds), then
                    // one round over the peers' tails. No work is ever
                    // re-queued, so a fully empty sweep means done.
                    let next = own.pop().or_else(|| {
                        (1..workers).find_map(|k| loop {
                            match stealers[(w + k) % workers].steal() {
                                Steal::Success(i) => break Some(i),
                                Steal::Empty => break None,
                                Steal::Retry => continue,
                            }
                        })
                    });
                    let Some(i) = next else { break };
                    local.push((i, f(&mut scratch, i, &items[i])));
                }
                sink.lock().unwrap().extend(local);
                summaries.lock().unwrap().push(drain(scratch));
            });
        }
    });

    let mut tagged = sink.into_inner().unwrap();
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), items.len());
    (
        tagged.into_iter().map(|(_, r)| r).collect(),
        summaries.into_inner().unwrap(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq = parallel_map(&items, 1, |i, &x| i * 1000 + x);
        let par = parallel_map(&items, 8, |i, &x| i * 1000 + x);
        assert_eq!(seq, par);
        assert_eq!(seq[42], 42 * 1000 + 42);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u8], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn scratch_state_is_per_worker_and_reused() {
        // The scratch counter grows along each worker's private sequence of
        // items; results must still land in item order regardless.
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map_with(
            &items,
            4,
            || 0usize,
            |calls, i, &x| {
                *calls += 1;
                assert!(*calls >= 1);
                i * 2 + x - x // pure in (i, x)
            },
        );
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        // Sequential path threads one scratch through all items.
        let seq = parallel_map_with(
            &items,
            1,
            || 0usize,
            |c, i, _| {
                *c += 1;
                (*c, i + 1)
            },
        );
        assert_eq!(seq.last(), Some(&(100, 100)));
    }

    #[test]
    fn collect_drains_one_summary_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        let (out, summaries) = parallel_map_collect(
            &items,
            4,
            || 0usize,
            |c, _, &x| {
                *c += 1;
                x
            },
            |c| c,
        );
        assert_eq!(out, items);
        assert!(!summaries.is_empty() && summaries.len() <= 4);
        // Every item was counted by exactly one worker.
        assert_eq!(summaries.iter().sum::<usize>(), 64);

        // Sequential path: one summary covering everything.
        let (_, seq) = parallel_map_collect(
            &items,
            1,
            || 0usize,
            |c, _, &x| {
                *c += 1;
                x
            },
            |c| c,
        );
        assert_eq!(seq, vec![64]);
    }

    #[test]
    fn costed_results_are_cost_model_invariant() {
        // Wildly different cost models must not change a single result —
        // costs steer placement only.
        let items: Vec<u64> = (0..321).map(|i| i * 7 % 113).collect();
        let run = |threads, cost: fn(usize, &u64) -> u64| {
            parallel_map_costed(
                &items,
                threads,
                cost,
                || (),
                |(), i, &x| (i as u64) * x,
                |()| (),
            )
            .0
        };
        let reference = run(1, |_, _| 1);
        for threads in [2usize, 3, 8] {
            assert_eq!(run(threads, |_, _| 1), reference);
            assert_eq!(run(threads, |_, &x| x + 1), reference);
            assert_eq!(run(threads, |i, _| (1000 - i) as u64), reference);
        }
    }

    #[test]
    fn one_giant_item_does_not_serialize_the_rest() {
        // With a shared-cursor loop a giant first item pins one worker and
        // the rest still drain the tail; with stealing the same holds —
        // this pins the contract that every item is executed exactly once
        // even when costs are violently skewed.
        let mut items = vec![1u64; 100];
        items[0] = 1_000_000;
        let (out, summaries) = parallel_map_costed(
            &items,
            4,
            |_, &c| c,
            || 0u64,
            |n, i, &c| {
                *n += 1;
                (i as u64, c)
            },
            |n| n,
        );
        assert_eq!(out.len(), 100);
        for (i, &(idx, c)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(c, items[i]);
        }
        assert_eq!(summaries.iter().sum::<u64>(), 100);
    }

    #[test]
    fn stealing_drains_a_worker_stuck_on_a_slow_item() {
        // Worker 0's seeded queue holds the slowest item plus cheap ones;
        // while it sleeps on the slow item the other workers must steal
        // and finish the cheap tail (the sum proves nothing ran twice).
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..40).collect();
        let executed = AtomicUsize::new(0);
        let (out, _) = parallel_map_costed(
            &items,
            4,
            |i, _| if i == 0 { 1_000_000 } else { 1 },
            || (),
            |(), i, &x| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                executed.fetch_add(1, Ordering::Relaxed);
                x * 3
            },
            |()| (),
        );
        assert_eq!(executed.load(Ordering::Relaxed), 40);
        assert_eq!(out, (0..40).map(|x| x * 3).collect::<Vec<_>>());
    }
}
