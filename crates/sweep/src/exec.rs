//! The deterministic parallel executor.
//!
//! Cells of a sweep are embarrassingly parallel: each is a pure function of
//! its own spec and seeds. The executor hands cells to worker threads
//! through a shared atomic cursor (dynamic load balancing — late, slow
//! cells cannot stall a fixed pre-partition), and every result is written
//! back to the slot of its original index. Aggregation downstream always
//! reads slots in index order, so **results are bit-identical for any
//! thread count** — the scheduling only decides who computes a slot, never
//! what ends up in it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller does not care: the
/// machine's available parallelism, at most `cap`.
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, cap.max(1))
}

/// Applies `f` to every item, possibly in parallel, and returns the results
/// in item order. `f(i, &items[i])` must be a pure function of its inputs
/// for the determinism guarantee to mean anything.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, threads, || (), move |(), i, t| f(i, t))
}

/// [`parallel_map`] with per-worker scratch state: `init()` runs once on
/// each worker thread and the resulting value is threaded through every
/// `f(&mut scratch, i, &items[i])` call that worker executes.
///
/// This is how the sweep's per-cell loop reuses one
/// [`SimWorkspace`](mss_core::SimWorkspace) per worker — the simulator's
/// zero-allocation buffers are warmed by the first cell and recycled by
/// every subsequent cell on that thread. Scratch state must not influence
/// results (`f` stays a pure function of `(i, items[i])` observationally),
/// which the engine guarantees by re-initializing the workspace per run;
/// determinism for any thread count is unchanged.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    parallel_map_collect(items, threads, init, f, |_| ()).0
}

/// [`parallel_map_with`] that additionally *drains* every worker's scratch
/// into a `Send` summary after that worker's last item: returns the
/// results plus one summary per worker that ran, in no particular order
/// (the sequential path returns its single summary).
///
/// This is how the sweep collects *per-worker metrics* without touching
/// the hot path: each worker accumulates into its scratch thread-locally
/// and the totals are folded after the join. The drain runs on the worker
/// thread, so the scratch itself never crosses threads (it may hold
/// non-`Send` state, e.g. boxed schedulers). The scratch-must-not-
/// influence-results contract of [`parallel_map_with`] is unchanged.
pub fn parallel_map_collect<T, R, S, M, I, F, D>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
    drain: D,
) -> (Vec<R>, Vec<M>)
where
    T: Sync,
    R: Send,
    M: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S) -> M + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut scratch = init();
        let out = items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
        return (out, vec![drain(scratch)]);
    }

    let cursor = AtomicUsize::new(0);
    let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let summaries: Mutex<Vec<M>> = Mutex::new(Vec::new());
    let workers = threads.min(items.len());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Each worker batches results locally and merges once at the
                // end, so the sink lock is taken `threads` times, not
                // `items` times.
                let mut scratch = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&mut scratch, i, &items[i])));
                }
                sink.lock().unwrap().extend(local);
                summaries.lock().unwrap().push(drain(scratch));
            });
        }
    });

    let mut tagged = sink.into_inner().unwrap();
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), items.len());
    (
        tagged.into_iter().map(|(_, r)| r).collect(),
        summaries.into_inner().unwrap(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq = parallel_map(&items, 1, |i, &x| i * 1000 + x);
        let par = parallel_map(&items, 8, |i, &x| i * 1000 + x);
        assert_eq!(seq, par);
        assert_eq!(seq[42], 42 * 1000 + 42);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u8], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn scratch_state_is_per_worker_and_reused() {
        // The scratch counter grows along each worker's private sequence of
        // items; results must still land in item order regardless.
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map_with(
            &items,
            4,
            || 0usize,
            |calls, i, &x| {
                *calls += 1;
                assert!(*calls >= 1);
                i * 2 + x - x // pure in (i, x)
            },
        );
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        // Sequential path threads one scratch through all items.
        let seq = parallel_map_with(
            &items,
            1,
            || 0usize,
            |c, i, _| {
                *c += 1;
                (*c, i + 1)
            },
        );
        assert_eq!(seq.last(), Some(&(100, 100)));
    }

    #[test]
    fn collect_drains_one_summary_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        let (out, summaries) = parallel_map_collect(
            &items,
            4,
            || 0usize,
            |c, _, &x| {
                *c += 1;
                x
            },
            |c| c,
        );
        assert_eq!(out, items);
        assert!(!summaries.is_empty() && summaries.len() <= 4);
        // Every item was counted by exactly one worker.
        assert_eq!(summaries.iter().sum::<usize>(), 64);

        // Sequential path: one summary covering everything.
        let (_, seq) = parallel_map_collect(
            &items,
            1,
            || 0usize,
            |c, _, &x| {
                *c += 1;
                x
            },
            |c| c,
        );
        assert_eq!(seq, vec![64]);
    }
}
