//! A minimal TOML-subset parser producing a `serde::Value` tree, so that
//! sweep specs can be written as TOML without a crates.io dependency.
//!
//! Supported subset (everything `examples/sweep_grid.toml` documents):
//!
//! * `#` comments, blank lines;
//! * `key = value` with bare or dotted keys;
//! * `[table]` and `[[array-of-tables]]` headers (dotted allowed);
//! * values: basic `"strings"`, booleans, integers, floats, inline arrays
//!   `[a, b, ...]` (multi-line allowed), and inline tables `{ k = v }`.
//!
//! Unsupported TOML (literal strings, datetimes, multi-line strings) is
//! rejected with a line-numbered error rather than misparsed.

use serde::{Error, Value};

/// Parses the TOML subset into a value tree.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut root = Vec::new();
    // Path of the table currently receiving `key = value` lines, and
    // whether that path ends inside an array-of-tables element.
    let mut current_path: Vec<String> = Vec::new();

    let logical_lines = join_multiline(input)?;
    for (lineno, line) in logical_lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[header]]"))?;
            let path = split_key(header.trim());
            push_array_table(&mut root, &path).map_err(|e| err(lineno, &e))?;
            current_path = path;
        } else if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [header]"))?;
            let path = split_key(header.trim());
            ensure_table(&mut root, &path).map_err(|e| err(lineno, &e))?;
            current_path = path;
        } else {
            let (key, raw) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            let mut path = current_path.clone();
            path.extend(split_key(key.trim()));
            let value = parse_value(raw.trim()).map_err(|e| err(lineno, &e))?;
            insert(&mut root, &path, value).map_err(|e| err(lineno, &e))?;
        }
    }
    Ok(Value::Object(root))
}

fn err(lineno: usize, msg: &str) -> Error {
    Error::custom(format!("TOML line {lineno}: {msg}"))
}

/// Joins physical lines so that arrays/inline tables may span lines:
/// a logical line is complete when brackets/braces balance outside strings.
fn join_multiline(input: &str) -> Result<Vec<(usize, String)>, Error> {
    let mut out = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    let mut depth = 0i32;
    for (i, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        if pending.is_empty() {
            pending_start = i + 1;
        } else {
            pending.push(' ');
        }
        pending.push_str(line.trim_end());
        depth += bracket_balance(line)
            .map_err(|e| Error::custom(format!("TOML line {}: {e}", i + 1)))?;
        if depth < 0 {
            return Err(Error::custom(format!(
                "TOML line {}: unbalanced closing bracket",
                i + 1
            )));
        }
        if depth == 0 {
            if !pending.trim().is_empty() {
                out.push((pending_start, std::mem::take(&mut pending)));
            } else {
                pending.clear();
            }
        }
    }
    if depth != 0 {
        return Err(Error::custom("TOML: unterminated array or inline table"));
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_balance(line: &str) -> Result<i32, String> {
    let mut depth = 0i32;
    let mut in_string = false;
    for c in line.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' | '{' if !in_string => depth += 1,
            ']' | '}' if !in_string => depth -= 1,
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string".into());
    }
    Ok(depth)
}

fn split_key(key: &str) -> Vec<String> {
    key.split('.').map(|s| s.trim().to_string()).collect()
}

type Obj = Vec<(String, Value)>;

fn dig<'a>(root: &'a mut Obj, path: &[String]) -> Result<&'a mut Obj, String> {
    let mut cur = root;
    for part in path {
        if !cur.iter().any(|(k, _)| k == part) {
            cur.push((part.clone(), Value::Object(Vec::new())));
        }
        let slot = cur
            .iter_mut()
            .find(|(k, _)| k == part)
            .map(|(_, v)| v)
            .unwrap();
        cur = match slot {
            Value::Object(o) => o,
            // Descend into the latest element of an array of tables.
            Value::Array(items) => match items.last_mut() {
                Some(Value::Object(o)) => o,
                _ => return Err(format!("`{part}` is not a table")),
            },
            _ => return Err(format!("`{part}` is not a table")),
        };
    }
    Ok(cur)
}

fn ensure_table(root: &mut Obj, path: &[String]) -> Result<(), String> {
    dig(root, path).map(|_| ())
}

fn push_array_table(root: &mut Obj, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().ok_or("empty [[header]]")?;
    let parent = dig(root, parents)?;
    if !parent.iter().any(|(k, _)| k == last) {
        parent.push((last.clone(), Value::Array(Vec::new())));
    }
    match parent.iter_mut().find(|(k, _)| k == last).map(|(_, v)| v) {
        Some(Value::Array(items)) => {
            items.push(Value::Object(Vec::new()));
            Ok(())
        }
        _ => Err(format!("`{last}` is not an array of tables")),
    }
}

fn insert(root: &mut Obj, path: &[String], value: Value) -> Result<(), String> {
    let (last, parents) = path.split_last().ok_or("empty key")?;
    let parent = dig(root, parents)?;
    if parent.iter().any(|(k, _)| k == last) {
        return Err(format!("duplicate key `{last}`"));
    }
    parent.push((last.clone(), value));
    Ok(())
}

fn parse_value(raw: &str) -> Result<Value, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err("missing value".into());
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or("unterminated string value")?;
        if inner.contains('"') {
            return Err("embedded quotes are not supported".into());
        }
        return Ok(Value::Str(unescape(inner)?));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let inner = rest.strip_suffix(']').ok_or("unterminated array value")?;
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_value(piece)?);
        }
        return Ok(Value::Array(items));
    }
    if let Some(rest) = raw.strip_prefix('{') {
        let inner = rest.strip_suffix('}').ok_or("unterminated inline table")?;
        let mut entries = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let (k, v) = piece
                .split_once('=')
                .ok_or("expected `key = value` in inline table")?;
            entries.push((k.trim().to_string(), parse_value(v.trim())?));
        }
        return Ok(Value::Object(entries));
    }
    // Numbers; TOML allows `_` separators.
    let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
    if !cleaned.contains(['.', 'e', 'E']) {
        if let Ok(n) = cleaned.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        if let Ok(n) = cleaned.parse::<i64>() {
            return Ok(Value::I64(n));
        }
    }
    cleaned
        .parse::<f64>()
        .map(Value::F64)
        .map_err(|_| format!("cannot parse value `{raw}`"))
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            other => return Err(format!("unsupported escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

/// Splits on top-level commas (outside nested brackets/braces/strings).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut pieces = Vec::new();
    let mut depth = 0i32;
    let mut in_string = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' | '{' if !in_string => depth += 1,
            ']' | '}' if !in_string => depth -= 1,
            ',' if !in_string && depth == 0 => {
                pieces.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&s[start..]);
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_subset() {
        let toml = r#"
# a sweep
name = "demo"
seed = 42
tasks = [100, 1_000]
algorithms = ["all"]

[limits]
max = 1.5  # inline comment

[[platforms]]
kind = "class"
class = "het"
count = 3

[[platforms]]
kind = "explicit"
c = [0.1, 0.2]
p = [
    1.0,
    2.0,
]

[[arrivals]]
kind = "stream"
load = 0.9
"#;
        let v = parse(toml).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(serde::field(&v, "name").unwrap().as_str(), Some("demo"));
        assert_eq!(*serde::field(&v, "seed").unwrap(), Value::U64(42));
        assert_eq!(
            *serde::field(&v, "tasks").unwrap(),
            Value::Array(vec![Value::U64(100), Value::U64(1000)])
        );
        let platforms = serde::field(&v, "platforms").unwrap().as_array().unwrap();
        assert_eq!(platforms.len(), 2);
        assert_eq!(
            serde::field(&platforms[1], "p").unwrap(),
            &Value::Array(vec![Value::F64(1.0), Value::F64(2.0)])
        );
        let limits = serde::field(&v, "limits").unwrap();
        assert_eq!(*serde::field(limits, "max").unwrap(), Value::F64(1.5));
        assert_eq!(obj.len(), 7);
    }

    #[test]
    fn inline_tables_and_negatives() {
        let v = parse("point = { x = -1, y = 2.5 }\nflag = false").unwrap();
        let point = serde::field(&v, "point").unwrap();
        assert_eq!(*serde::field(point, "x").unwrap(), Value::I64(-1));
        assert_eq!(*serde::field(point, "y").unwrap(), Value::F64(2.5));
        assert_eq!(*serde::field(&v, "flag").unwrap(), Value::Bool(false));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("key").is_err());
        assert!(parse("k = [1, 2").is_err());
        assert!(parse("k = \"unterminated").is_err());
        assert!(parse("k = 1\nk = 2").is_err());
        assert!(parse("[t\nk = 1").is_err());
    }
}
