//! `SweepSpec` — the declarative description of a scenario grid.
//!
//! A spec is the cartesian product of its axes: platform recipes ×
//! task counts × arrival processes × perturbations × scenarios ×
//! information tiers × replicates × algorithms. [`SweepSpec::expand`]
//! flattens it into concrete [`Cell`]s with per-cell seeds derived by
//! content hashing, so a cell's seed depends only on *what* it is — never
//! on enumeration order or thread count. Like the algorithm, the
//! information tier is excluded from the seed identity: all tiers of a
//! grid point face the *same* instance, so tier columns compare
//! head-to-head (the `ms-lab oblivion` reading).
//!
//! Specs are written as TOML (see `examples/sweep_grid.toml`) or JSON; the
//! field names below are the schema.

use crate::cell::{Cell, PerturbCell, PlatformCell, ScenarioCell};
use mss_core::{Algorithm, InfoTier, PlatformClass};
use mss_scenario::{EventSpec, GeneratorSpec, ScenarioSpec};
use mss_workload::{ArrivalProcess, HeterogeneityAxis};

/// A malformed spec.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid sweep spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// One platform axis entry.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlatformAxis {
    /// `"class"`, `"heterogeneity"`, or `"explicit"`.
    pub kind: String,
    /// For `class`: `homogeneous` | `comm-homogeneous` | `comp-homogeneous`
    /// | `heterogeneous` (short forms `comm`, `comp`, `het` accepted).
    pub class: Option<String>,
    /// For `class`: number of random platforms drawn (default 10, as in
    /// the paper).
    pub count: Option<usize>,
    /// Number of slaves (default 5, as in the paper).
    pub slaves: Option<usize>,
    /// For `heterogeneity`: `links` | `speeds` | `both`.
    pub axis: Option<String>,
    /// For `heterogeneity`: degrees `h ∈ [0, 1]` to sweep.
    pub levels: Option<Vec<f64>>,
    /// For `heterogeneity`: independent direction draws per level
    /// (default 3).
    pub families: Option<u64>,
    /// For `explicit`: communication times `c_j` (e.g. a calibrated
    /// real-platform shape).
    pub c: Option<Vec<f64>>,
    /// For `explicit`: computation times `p_j`.
    pub p: Option<Vec<f64>>,
}

/// One arrival-process axis entry.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArrivalAxis {
    /// `"bag"` (all at t = 0), `"stream"` (uniform gaps), or `"poisson"`.
    pub kind: String,
    /// Target load `ρ` for `stream`/`poisson`; values above 1 model
    /// overload. Ignored for `bag`.
    pub load: Option<f64>,
}

/// One perturbation axis entry.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerturbAxis {
    /// `"none"`, `"linear"` (size^1 on both phases), or `"matrix"`
    /// (size² communication, size³ computation).
    pub mode: String,
    /// Maximum relative size deviation (e.g. `0.1` for ±10 %). Ignored for
    /// `none`.
    pub delta: Option<f64>,
}

/// One scenario axis entry: a dynamic-platform script for the cells of
/// this grid point (see `mss-scenario` for the event model).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioAxis {
    /// `"static"` (no platform events) or `"dynamic"`.
    pub kind: String,
    /// Fault policy for `dynamic`: `"redispatch"` (default — wrap the
    /// algorithm in the fault-aware redispatcher) or `"plain"` (run the
    /// fault-oblivious algorithm as-is; may livelock under failures).
    pub fault: Option<String>,
    /// Optional label for report rows.
    pub name: Option<String>,
    /// Generator horizon (required when `generators` is present). The
    /// scenario seed is derived per cell from the master seed, so it is
    /// not part of the axis.
    pub horizon: Option<f64>,
    /// Minimum number of up slaves (default 1).
    pub min_up: Option<usize>,
    /// Scripted one-off events.
    pub events: Option<Vec<EventSpec>>,
    /// Event generators (Poisson failures, maintenance, drift).
    pub generators: Option<Vec<GeneratorSpec>>,
}

/// The declarative sweep description.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepSpec {
    /// Sweep name (labels artifacts and the cache directory).
    pub name: String,
    /// Master seed; all per-cell seeds derive from it.
    pub seed: u64,
    /// Independent replicates per grid point (default 1).
    pub replicates: Option<u64>,
    /// Task counts to sweep.
    pub tasks: Vec<usize>,
    /// Algorithm names (`SRPT`, `LS`, `RR`, `RRC`, `RRP`, `SLJF`,
    /// `SLJFWC`), or the single entry `"all"`.
    pub algorithms: Vec<String>,
    /// Platform axes; each entry expands into one or more platform recipes.
    pub platforms: Vec<PlatformAxis>,
    /// Arrival axes.
    pub arrivals: Vec<ArrivalAxis>,
    /// Perturbation axes (default: a single `none`).
    pub perturbations: Option<Vec<PerturbAxis>>,
    /// Scenario axes (default: a single `static`).
    pub scenarios: Option<Vec<ScenarioAxis>>,
    /// Information-tier axis: any of `clairvoyant`, `speed-oblivious`,
    /// `non-clairvoyant` (default: a single `clairvoyant`, the paper's
    /// fully informed master). Tiers of one grid point share seeds, so
    /// every tier runs the identical instance.
    pub information: Option<Vec<String>>,
}

/// `(delta, comm_exponent, comp_exponent)` of one perturbation axis entry;
/// `None` means exact sizes.
type PerturbParams = Option<(f64, f64, f64)>;

/// splitmix64 — used to derive independent per-cell seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_class(s: &str) -> Result<PlatformClass, SpecError> {
    match s.to_ascii_lowercase().as_str() {
        "homogeneous" | "homog" => Ok(PlatformClass::Homogeneous),
        "comm-homogeneous" | "comm" => Ok(PlatformClass::CommHomogeneous),
        "comp-homogeneous" | "comp" => Ok(PlatformClass::CompHomogeneous),
        "heterogeneous" | "het" => Ok(PlatformClass::Heterogeneous),
        other => Err(SpecError(format!("unknown platform class `{other}`"))),
    }
}

fn parse_axis(s: &str) -> Result<HeterogeneityAxis, SpecError> {
    match s.to_ascii_lowercase().as_str() {
        "links" | "communication" => Ok(HeterogeneityAxis::Communication),
        "speeds" | "computation" => Ok(HeterogeneityAxis::Computation),
        "both" => Ok(HeterogeneityAxis::Both),
        other => Err(SpecError(format!("unknown heterogeneity axis `{other}`"))),
    }
}

impl SweepSpec {
    /// Parses the algorithm list.
    pub fn algorithm_set(&self) -> Result<Vec<Algorithm>, SpecError> {
        if self
            .algorithms
            .iter()
            .any(|a| a.eq_ignore_ascii_case("all"))
        {
            return Ok(Algorithm::ALL.to_vec());
        }
        self.algorithms
            .iter()
            .map(|name| {
                Algorithm::from_name(name)
                    .ok_or_else(|| SpecError(format!("unknown algorithm `{name}`")))
            })
            .collect()
    }

    fn platform_recipes(&self) -> Result<Vec<PlatformCell>, SpecError> {
        let mut recipes = Vec::new();
        for axis in &self.platforms {
            let slaves = axis.slaves.unwrap_or(5);
            match axis.kind.to_ascii_lowercase().as_str() {
                "class" => {
                    let class = parse_class(axis.class.as_deref().ok_or_else(|| {
                        SpecError("platform kind `class` requires `class = ...`".into())
                    })?)?;
                    let count = axis.count.unwrap_or(10);
                    for index in 0..count {
                        recipes.push(PlatformCell::Class {
                            class,
                            slaves,
                            seed: self.seed,
                            index,
                        });
                    }
                }
                "heterogeneity" => {
                    let h_axis = parse_axis(axis.axis.as_deref().ok_or_else(|| {
                        SpecError("platform kind `heterogeneity` requires `axis = ...`".into())
                    })?)?;
                    let levels = axis.levels.clone().ok_or_else(|| {
                        SpecError("platform kind `heterogeneity` requires `levels = [...]`".into())
                    })?;
                    let families = axis.families.unwrap_or(3);
                    for &level in &levels {
                        if !(0.0..=1.0).contains(&level) {
                            return Err(SpecError(format!(
                                "heterogeneity level {level} outside [0, 1]"
                            )));
                        }
                        for fam in 0..families {
                            recipes.push(PlatformCell::Heterogeneity {
                                axis: h_axis,
                                level,
                                slaves,
                                seed: self.seed ^ fam.wrapping_mul(7919),
                                family: fam,
                            });
                        }
                    }
                }
                "explicit" => {
                    let c = axis.c.clone().ok_or_else(|| {
                        SpecError("platform kind `explicit` requires `c = [...]`".into())
                    })?;
                    let p = axis.p.clone().ok_or_else(|| {
                        SpecError("platform kind `explicit` requires `p = [...]`".into())
                    })?;
                    if c.len() != p.len() || c.is_empty() {
                        return Err(SpecError(
                            "explicit platform needs non-empty c and p of equal length".into(),
                        ));
                    }
                    recipes.push(PlatformCell::Explicit { c, p });
                }
                other => return Err(SpecError(format!("unknown platform kind `{other}`"))),
            }
        }
        if recipes.is_empty() {
            return Err(SpecError("no platforms".into()));
        }
        Ok(recipes)
    }

    fn arrival_set(&self) -> Result<Vec<ArrivalProcess>, SpecError> {
        let mut arrivals = Vec::new();
        for a in &self.arrivals {
            match a.kind.to_ascii_lowercase().as_str() {
                "bag" => arrivals.push(ArrivalProcess::AllAtZero),
                "stream" => arrivals.push(ArrivalProcess::UniformStream {
                    load: a.load.ok_or_else(|| {
                        SpecError("arrival kind `stream` requires `load = ...`".into())
                    })?,
                }),
                "poisson" => arrivals.push(ArrivalProcess::Poisson {
                    load: a.load.ok_or_else(|| {
                        SpecError("arrival kind `poisson` requires `load = ...`".into())
                    })?,
                }),
                other => return Err(SpecError(format!("unknown arrival kind `{other}`"))),
            }
        }
        if arrivals.is_empty() {
            return Err(SpecError("no arrivals".into()));
        }
        Ok(arrivals)
    }

    fn perturb_set(&self) -> Result<Vec<PerturbParams>, SpecError> {
        let Some(axes) = &self.perturbations else {
            return Ok(vec![None]);
        };
        let mut out = Vec::new();
        for p in axes {
            match p.mode.to_ascii_lowercase().as_str() {
                "none" | "exact" => out.push(None),
                "linear" => out.push(Some((
                    p.delta.ok_or_else(|| {
                        SpecError("perturbation `linear` requires `delta`".into())
                    })?,
                    1.0,
                    1.0,
                ))),
                "matrix" => out.push(Some((
                    p.delta.ok_or_else(|| {
                        SpecError("perturbation `matrix` requires `delta`".into())
                    })?,
                    2.0,
                    3.0,
                ))),
                other => return Err(SpecError(format!("unknown perturbation mode `{other}`"))),
            }
        }
        if out.is_empty() {
            out.push(None);
        }
        Ok(out)
    }

    /// Scenario templates, one per axis entry; `None` is the static model.
    /// The embedded spec seeds are zero here and filled per cell.
    fn scenario_set(&self) -> Result<Vec<Option<ScenarioCell>>, SpecError> {
        let Some(axes) = &self.scenarios else {
            return Ok(vec![None]);
        };
        let mut out = Vec::new();
        for (i, s) in axes.iter().enumerate() {
            match s.kind.to_ascii_lowercase().as_str() {
                "static" | "none" => out.push(None),
                "dynamic" | "faults" => {
                    let fault_aware = match s.fault.as_deref().unwrap_or("redispatch") {
                        "redispatch" => true,
                        "plain" => false,
                        other => {
                            return Err(SpecError(format!(
                                "scenario {i}: unknown fault policy `{other}` \
                                 (redispatch, plain)"
                            )))
                        }
                    };
                    let spec = ScenarioSpec {
                        name: s.name.clone(),
                        seed: 0,
                        horizon: s.horizon,
                        min_up: s.min_up,
                        events: s.events.clone(),
                        generators: s.generators.clone(),
                    };
                    if spec.is_static() {
                        return Err(SpecError(format!(
                            "scenario {i}: `dynamic` without events or generators \
                             (use kind = \"static\")"
                        )));
                    }
                    // Fail at spec time, not mid-sweep in a worker thread.
                    spec.validate()
                        .map_err(|e| SpecError(format!("scenario {i}: {e}")))?;
                    out.push(Some(ScenarioCell { spec, fault_aware }));
                }
                other => {
                    return Err(SpecError(format!(
                        "scenario {i}: unknown kind `{other}` (static, dynamic)"
                    )))
                }
            }
        }
        if out.is_empty() {
            out.push(None);
        }
        Ok(out)
    }

    /// Parses the information-tier axis; `None` is a single `clairvoyant`.
    pub fn information_set(&self) -> Result<Vec<InfoTier>, SpecError> {
        let Some(axes) = &self.information else {
            return Ok(vec![InfoTier::Clairvoyant]);
        };
        let mut out = Vec::new();
        for name in axes {
            out.push(InfoTier::from_label(name).ok_or_else(|| {
                SpecError(format!(
                    "unknown information tier `{name}` \
                     (clairvoyant, speed-oblivious, non-clairvoyant)"
                ))
            })?);
        }
        if out.is_empty() {
            out.push(InfoTier::Clairvoyant);
        }
        Ok(out)
    }

    /// Expands the grid into concrete cells, in a deterministic order:
    /// platforms → tasks → arrivals → perturbations → scenarios →
    /// replicates → information tiers → algorithms (the innermost axis
    /// varies fastest). Tiers sit *inside* the replicate loop so that all
    /// tiers × algorithms of one instance are consecutive — the batched
    /// executor then materializes that instance exactly once for the
    /// whole block ([`Cell::same_instance`] ignores both fields).
    pub fn expand(&self) -> Result<Vec<Cell>, SpecError> {
        let algorithms = self.algorithm_set()?;
        let recipes = self.platform_recipes()?;
        let arrivals = self.arrival_set()?;
        let perturbs = self.perturb_set()?;
        let scenarios = self.scenario_set()?;
        let tiers = self.information_set()?;
        let replicates = self.replicates.unwrap_or(1).max(1);
        if self.tasks.is_empty() {
            return Err(SpecError("no task counts".into()));
        }

        let mut cells = Vec::new();
        for platform in &recipes {
            for &tasks in &self.tasks {
                for arrival in &arrivals {
                    for perturb in &perturbs {
                        for scenario in &scenarios {
                            for replicate in 0..replicates {
                                for &information in &tiers {
                                    for &algorithm in &algorithms {
                                        // Seeds derive from the grid *point*
                                        // (identity with zeroed seeds and
                                        // fixed algorithm/tier placeholders)
                                        // hashed with the master seed —
                                        // independent of enumeration order,
                                        // and shared across algorithms and
                                        // tiers so they face identical
                                        // instances.
                                        let mut cell = Cell {
                                            platform: platform.clone(),
                                            arrival: *arrival,
                                            perturbation: perturb.map(|(delta, ec, ep)| {
                                                PerturbCell {
                                                    delta,
                                                    comm_exponent: ec,
                                                    comp_exponent: ep,
                                                    seed: 0,
                                                }
                                            }),
                                            scenario: scenario.clone(),
                                            tasks,
                                            algorithm: Algorithm::Srpt,
                                            information: InfoTier::Clairvoyant,
                                            replicate,
                                            task_seed: 0,
                                        };
                                        let identity = serde_json::to_string(&cell)
                                            .expect("serialize cell identity");
                                        let id_hash = fnv1a(identity.as_bytes());
                                        cell.algorithm = algorithm;
                                        cell.information = information;
                                        cell.task_seed =
                                            mix(self.seed ^ id_hash.rotate_left(17) ^ replicate);
                                        if let Some(p) = &mut cell.perturbation {
                                            p.seed = mix(self.seed
                                                ^ id_hash.rotate_left(43)
                                                ^ replicate.wrapping_mul(0x9e37));
                                        }
                                        if let Some(s) = &mut cell.scenario {
                                            s.spec.seed = mix(self.seed
                                                ^ id_hash.rotate_left(29)
                                                ^ replicate.wrapping_mul(0xa5a5));
                                        }
                                        cells.push(cell);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            name: "unit".into(),
            seed: 42,
            replicates: Some(2),
            tasks: vec![20, 40],
            algorithms: vec!["SRPT".into(), "LS".into()],
            platforms: vec![PlatformAxis {
                kind: "class".into(),
                class: Some("het".into()),
                count: Some(3),
                slaves: Some(4),
                axis: None,
                levels: None,
                families: None,
                c: None,
                p: None,
            }],
            arrivals: vec![
                ArrivalAxis {
                    kind: "bag".into(),
                    load: None,
                },
                ArrivalAxis {
                    kind: "poisson".into(),
                    load: Some(0.9),
                },
            ],
            perturbations: None,
            scenarios: None,
            information: None,
        }
    }

    fn dynamic_axis() -> ScenarioAxis {
        ScenarioAxis {
            kind: "dynamic".into(),
            fault: None,
            name: None,
            horizon: Some(300.0),
            min_up: Some(1),
            events: None,
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(60.0),
                repair_mean: Some(10.0),
                ..GeneratorSpec::default()
            }]),
        }
    }

    #[test]
    fn grid_size_is_the_axis_product() {
        let cells = spec().expand().unwrap();
        // 3 platforms × 2 task counts × 2 arrivals × 1 perturb × 2 reps × 2 algs
        assert_eq!(cells.len(), 3 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn seeds_are_order_independent_and_distinct() {
        let a = spec().expand().unwrap();
        let b = spec().expand().unwrap();
        assert_eq!(a, b);
        // Replicates of the same point get distinct task seeds.
        let seeds: std::collections::HashSet<u64> = a
            .iter()
            .filter(|c| c.arrival == ArrivalProcess::Poisson { load: 0.9 })
            .map(|c| c.task_seed)
            .collect();
        let n_poisson = a
            .iter()
            .filter(|c| c.arrival == ArrivalProcess::Poisson { load: 0.9 })
            .count();
        // Same platform+tasks+replicate but different algorithm share a
        // seed (head-to-head comparability); different points differ.
        assert!(
            seeds.len() >= n_poisson / 2 - 1,
            "{} of {}",
            seeds.len(),
            n_poisson
        );
    }

    #[test]
    fn same_point_different_algorithm_shares_task_seed() {
        let cells = spec().expand().unwrap();
        for pair in cells.chunks(2) {
            // Innermost axis is the algorithm, so chunks of 2 share a point.
            assert_eq!(pair[0].task_seed, pair[1].task_seed);
            assert_ne!(pair[0].algorithm, pair[1].algorithm);
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut s = spec();
        s.algorithms = vec!["NOPE".into()];
        assert!(s.expand().is_err());
        let mut s = spec();
        s.platforms[0].class = Some("quantum".into());
        assert!(s.expand().is_err());
        let mut s = spec();
        s.arrivals[0].kind = "burst".into();
        assert!(s.expand().is_err());
        let mut s = spec();
        s.scenarios = Some(vec![ScenarioAxis {
            kind: "apocalypse".into(),
            ..dynamic_axis()
        }]);
        assert!(s.expand().is_err());
        let mut s = spec();
        s.scenarios = Some(vec![ScenarioAxis {
            fault: Some("yolo".into()),
            ..dynamic_axis()
        }]);
        assert!(s.expand().is_err());
    }

    #[test]
    fn scenario_axis_expands_and_seeds_cells() {
        let mut s = spec();
        s.scenarios = Some(vec![
            ScenarioAxis {
                kind: "static".into(),
                fault: None,
                name: None,
                horizon: None,
                min_up: None,
                events: None,
                generators: None,
            },
            dynamic_axis(),
        ]);
        let cells = s.expand().unwrap();
        // The scenario axis doubles the grid of `grid_size_is_the_axis_product`.
        assert_eq!(cells.len(), 2 * (3 * 2 * 2 * 2 * 2));
        let dynamic: Vec<&Cell> = cells.iter().filter(|c| c.scenario.is_some()).collect();
        assert_eq!(dynamic.len(), cells.len() / 2);
        // Every dynamic cell is fault-aware by default and carries a
        // content-derived, replicate-distinct scenario seed.
        let mut seeds = std::collections::HashSet::new();
        for c in &dynamic {
            let s = c.scenario.as_ref().unwrap();
            assert!(s.fault_aware);
            seeds.insert((c.platform.replicate_index(), c.replicate, s.spec.seed));
        }
        // Same point, different algorithm share a scenario seed; different
        // points differ. 3 platforms × 2 tasks × 2 arrivals × 2 replicates
        // distinct (platform, replicate, seed) triples... per task/arrival.
        assert!(seeds.len() >= dynamic.len() / 2 - 1);
        // And the expansion is reproducible.
        assert_eq!(s.expand().unwrap(), cells);
    }

    #[test]
    fn information_axis_expands_and_shares_seeds() {
        let mut s = spec();
        s.information = Some(vec![
            "clairvoyant".into(),
            "speed-oblivious".into(),
            "non_clairvoyant".into(), // underscores tolerated
        ]);
        let cells = s.expand().unwrap();
        // The tier axis triples the grid of `grid_size_is_the_axis_product`.
        assert_eq!(cells.len(), 3 * (3 * 2 * 2 * 2 * 2));
        // Tiers sit between the replicate and algorithm loops, so every
        // consecutive block of tiers×algorithms is ONE instance: the same
        // grid point at a different tier faces the identical instance
        // (same task seed) and batches against one materialization.
        let n_alg = 2;
        for (i, c) in cells.iter().enumerate() {
            let tier = [
                InfoTier::Clairvoyant,
                InfoTier::SpeedOblivious,
                InfoTier::NonClairvoyant,
            ][(i / n_alg) % 3];
            assert_eq!(c.information, tier, "cell {i}");
        }
        for instance in cells.chunks(3 * n_alg) {
            for c in instance {
                assert_eq!(c.task_seed, instance[0].task_seed);
                assert!(c.same_instance(&instance[0]));
            }
        }
        // Unknown tiers are rejected with the allowed set.
        let mut bad = spec();
        bad.information = Some(vec!["psychic".into()]);
        let err = bad.expand().unwrap_err();
        assert!(err.0.contains("psychic"), "{err}");
        assert!(err.0.contains("speed-oblivious"), "{err}");
    }

    #[test]
    fn dynamic_axis_without_events_is_rejected() {
        let mut s = spec();
        s.scenarios = Some(vec![ScenarioAxis {
            generators: None,
            ..dynamic_axis()
        }]);
        let err = s.expand().unwrap_err();
        assert!(err.0.contains("without events"), "{err}");
    }

    #[test]
    fn malformed_dynamic_axis_fails_at_expand_not_at_cell_run() {
        // Generators without a horizon must be a spec error, not a panic
        // inside a sweep worker thread.
        let mut s = spec();
        s.scenarios = Some(vec![ScenarioAxis {
            horizon: None,
            ..dynamic_axis()
        }]);
        let err = s.expand().unwrap_err();
        assert!(err.0.contains("horizon"), "{err}");
    }

    #[test]
    fn heterogeneity_and_explicit_platforms_expand() {
        let mut s = spec();
        s.platforms = vec![
            PlatformAxis {
                kind: "heterogeneity".into(),
                class: None,
                count: None,
                slaves: Some(3),
                axis: Some("both".into()),
                levels: Some(vec![0.0, 0.5, 1.0]),
                families: Some(2),
                c: None,
                p: None,
            },
            PlatformAxis {
                kind: "explicit".into(),
                class: None,
                count: None,
                slaves: None,
                axis: None,
                levels: None,
                families: None,
                c: Some(vec![0.1, 0.2]),
                p: Some(vec![1.0, 2.0]),
            },
        ];
        s.tasks = vec![10];
        s.arrivals.truncate(1);
        s.replicates = Some(1);
        let cells = s.expand().unwrap();
        // (3 levels × 2 families + 1 explicit) × 2 algorithms
        assert_eq!(cells.len(), 7 * 2);
    }
}
