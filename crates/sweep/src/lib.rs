//! # mss-sweep — parallel, cacheable scenario-sweep orchestration
//!
//! The experiment engine the lab runs on. A sweep is described by a
//! [`SweepSpec`] (TOML/JSON): the cartesian grid over platform recipes,
//! task counts, arrival processes, perturbations, replicate seeds and
//! algorithms. The engine:
//!
//! 1. **expands** the grid into independent [`Cell`]s with content-derived
//!    per-cell seeds ([`SweepSpec::expand`]);
//! 2. **executes** cells across threads with dynamic load balancing
//!    ([`exec::parallel_map_with`]), *instance-major*: consecutive cells
//!    that differ only in algorithm share one materialized platform, task
//!    stream, compiled timeline, and set of certified lower bounds
//!    ([`batch`]) — results are bit-identical for any thread count and any
//!    batch grouping because each cell stays a pure function of itself;
//! 3. **caches** completed cells in a sharded JSONL [`ResultStore`] keyed
//!    by content hash, so re-runs skip finished work and interrupted
//!    sweeps resume (torn shard lines are detected and re-run);
//! 4. **aggregates** metrics (mean/min/max/std/CI95 of objectives, ratios
//!    against certified lower bounds, normalization to a baseline
//!    algorithm) in deterministic order ([`agg::aggregate`]).
//!
//! ```
//! use mss_sweep::{run_cells, SweepConfig, SweepSpec};
//!
//! let spec: SweepSpec = mss_sweep::spec_from_toml(r#"
//!     name = "doc"
//!     seed = 7
//!     tasks = [30]
//!     algorithms = ["SRPT", "LS"]
//!     [[platforms]]
//!     kind = "class"
//!     class = "het"
//!     count = 2
//!     slaves = 3
//!     [[arrivals]]
//!     kind = "bag"
//! "#).unwrap();
//! let cells = spec.expand().unwrap();
//! assert_eq!(cells.len(), 4);
//! let config = SweepConfig { threads: 2, ..SweepConfig::default() };
//! let outcome = run_cells(cells, &config);
//! assert_eq!(outcome.executed, 4);
//! let rows = outcome.aggregate(Some(mss_core::Algorithm::Srpt));
//! assert_eq!(rows.len(), 2);
//! ```
//!
//! ## Information-tier grids
//!
//! The `information` key crosses the grid with the scheduler's
//! [`InfoTier`](mss_core::InfoTier) (see `examples/oblivious_sweep.toml`
//! for the full algorithm × heterogeneity × information walkthrough).
//! Tiers of one grid point share their seeds, so every tier faces the
//! identical instances and the per-point baseline normalization compares
//! them head-to-head; sub-clairvoyant cells get their own aggregation
//! groups (labelled `… | info=<tier> | …`):
//!
//! ```
//! use mss_core::InfoTier;
//! use mss_sweep::{run_cells, SweepConfig, SweepSpec};
//!
//! let spec: SweepSpec = mss_sweep::spec_from_toml(r#"
//!     name = "tiers"
//!     seed = 7
//!     tasks = [30]
//!     algorithms = ["LS"]
//!     information = ["clairvoyant", "speed-oblivious"]
//!     [[platforms]]
//!     kind = "class"
//!     class = "het"
//!     count = 1
//!     slaves = 3
//!     [[arrivals]]
//!     kind = "bag"
//! "#).unwrap();
//! let cells = spec.expand().unwrap();
//! assert_eq!(cells.len(), 2);
//! // Same instance, different knowledge: seeds agree, tiers differ.
//! assert_eq!(cells[0].task_seed, cells[1].task_seed);
//! assert_eq!(cells[0].information, InfoTier::Clairvoyant);
//! assert_eq!(cells[1].information, InfoTier::SpeedOblivious);
//! let config = SweepConfig { threads: 1, ..SweepConfig::default() };
//! let outcome = run_cells(cells, &config);
//! // Withdrawing knowledge cannot beat the certified lower bound.
//! assert!(outcome.metrics.iter().all(|m| m.ratio_makespan >= 1.0 - 1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod batch;
pub mod cell;
pub mod exec;
pub mod run_metrics;
pub mod schema;
pub mod spec;
pub mod store;
pub mod toml_lite;

use std::path::PathBuf;

pub use agg::{
    aggregate, aggregate_metrics, summarize, AggregateRow, HistSummary, MetricsRow, Summary,
};
pub use batch::{
    batch_cost, estimated_cell_events, group_instances, run_batch, run_batch_streamed,
    split_batches, BatchWorker, SamplerCache, DEFAULT_SPLIT_EVENTS,
};
pub use cell::{
    AbortKind, Cell, CellError, CellMetrics, MaterializedInstance, PerturbCell, PlatformCell,
    ScenarioCell, StreamedInstance,
};
pub use exec::{
    default_threads, parallel_map, parallel_map_collect, parallel_map_costed, parallel_map_with,
};
pub use mss_obs::{StoreStats, SweepMetrics, WorkerMetrics};
pub use run_metrics::{CellRunMetrics, HistogramData};
pub use spec::{ArrivalAxis, PerturbAxis, PlatformAxis, ScenarioAxis, SpecError, SweepSpec};
pub use store::{cell_key, ResultStore, StoreWriter, CODE_VERSION_SALT};

/// How a sweep executes.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Worker threads (1 = sequential). The aggregated output is
    /// bit-identical for any value.
    pub threads: usize,
    /// Result-store directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Show a live progress line on stderr (additionally gated on stderr
    /// being a terminal and no CI environment — see [`mss_obs::Progress`]).
    /// Purely cosmetic: results are unaffected.
    pub progress: bool,
    /// Run cells with counting probes and aggregate engine event counters
    /// into [`SweepMetrics::counters`] (the `ms-lab profile` path). The
    /// default `false` keeps the zero-cost uninstrumented hot path;
    /// results are bit-identical either way (probes are observers only).
    pub count_events: bool,
    /// Run cells with a [`mss_obs::MetricsProbe`] so every `Ok` result
    /// carries a [`CellRunMetrics`] telemetry payload (the `ms-lab
    /// metrics` path) and worker histograms merge into
    /// [`SweepMetrics::hists`]. Cached records without a payload are
    /// re-run. Scalar results stay bit-identical either way.
    pub collect_metrics: bool,
    /// Execute batches through the bounded-memory streaming path
    /// ([`run_batch_streamed`]): tasks are pulled lazily from seeded
    /// [`mss_workload::GeneratedSource`]s instead of materializing the
    /// instance's task vectors, and each batch arm re-instantiates its
    /// source from the cell's seeds (the stream is never cloned).
    /// **Streaming is an execution strategy, not part of cell identity**
    /// (contract #13): results, cache keys and store contents are
    /// bit-identical to the materialized path, so the two modes share one
    /// result store.
    pub streamed: bool,
    /// Batch-splitting threshold in estimated events (the cost model of
    /// [`estimated_cell_events`]): a same-instance batch costing more is
    /// chopped into sub-units of at most this many events, so one giant
    /// batch cannot pin a worker while the rest idle. Results are
    /// bit-identical for any value (contract #14); the default
    /// [`DEFAULT_SPLIT_EVENTS`] never splits the paper's reference grids.
    pub split_events: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            threads: default_threads(64),
            cache_dir: None,
            progress: false,
            count_events: false,
            collect_metrics: false,
            streamed: false,
            split_events: DEFAULT_SPLIT_EVENTS,
        }
    }
}

/// A completed sweep: cells, their metrics (parallel arrays in expansion
/// order), and cache accounting.
pub struct SweepOutcome {
    /// The expanded cells, in deterministic order.
    pub cells: Vec<Cell>,
    /// Metrics per cell (same order as `cells`).
    pub metrics: Vec<CellMetrics>,
    /// Cells actually simulated this run.
    pub executed: usize,
    /// Cells served from the result store.
    pub cached: usize,
    /// Corrupt/truncated store lines that were dropped (their cells were
    /// re-run and counted under `executed`).
    pub dropped: usize,
    /// Execution accounting: batches, reuse ratio, per-worker timelines,
    /// store I/O (see [`SweepMetrics`]).
    pub stats: SweepMetrics,
}

impl SweepOutcome {
    /// Aggregates the outcome (see [`agg::aggregate`]).
    pub fn aggregate(&self, baseline: Option<mss_core::Algorithm>) -> Vec<AggregateRow> {
        aggregate(&self.cells, &self.metrics, baseline)
    }
}

/// A sweep executed through the non-panicking API: per-cell results in
/// expansion order, including error-carrying cells (e.g. budget aborts of
/// fault-oblivious algorithms under failures).
pub struct CheckedOutcome {
    /// One result per input cell, in input order.
    pub results: Vec<Result<CellMetrics, CellError>>,
    /// Cells actually simulated this run.
    pub executed: usize,
    /// Cells served from the result store.
    pub cached: usize,
    /// Corrupt/truncated store lines that were dropped.
    pub dropped: usize,
    /// Execution accounting: batches, reuse ratio, per-worker timelines,
    /// store I/O (see [`SweepMetrics`]).
    pub stats: SweepMetrics,
}

/// Worker store-writers flush once more than this many bytes are buffered
/// (and always at drain), so tiny batches coalesce into fewer appends
/// while big results reach disk — and crash resumability — promptly.
const WORKER_FLUSH_FLOOR: usize = 32 << 10;

/// Executes cells under `config` without panicking on cell errors: every
/// slot of `results` carries that cell's own outcome, bit-identical to a
/// per-cell [`Cell::try_run_in`] for any thread count.
///
/// This is the engine behind [`run_cells`]. Execution is **instance-major**
/// (see [`batch`]): not-yet-cached cells are grouped into maximal
/// consecutive same-instance batches, each batch materializes its
/// platform/task-streams/timeline/bounds once, and worker threads pick up
/// whole batches through the dynamic load balancer. Both completed cells
/// and tagged aborts enter the store, so resumed sweeps skip
/// known-aborting cells instead of re-running them.
///
/// # Panics
/// Panics if the cache directory cannot be created or written.
pub fn try_run_cells(cells: &[Cell], config: &SweepConfig) -> CheckedOutcome {
    let epoch = std::time::Instant::now();
    let mut store_secs = 0.0f64;
    let (store, known, dropped) = match &config.cache_dir {
        Some(dir) => {
            let t0 = std::time::Instant::now();
            let store = ResultStore::open(dir).expect("open sweep result store");
            let loaded = store.load().expect("load sweep result store");
            store_secs += t0.elapsed().as_secs_f64();
            (Some(store), loaded.results, loaded.dropped)
        }
        None => (None, std::collections::HashMap::new(), 0),
    };
    // Content keys are only needed to talk to the store; an uncached sweep
    // skips their serialization cost entirely.
    let keys: Option<Vec<String>> = store.as_ref().map(|_| cells.iter().map(cell_key).collect());

    // Indices still to run, in expansion order. A metrics-collecting sweep
    // treats cached Ok records without a telemetry payload as missing:
    // the cell re-runs and its payload-carrying line, appended later in
    // the shard, wins on the next load.
    let usable = |r: &Result<CellMetrics, CellError>| {
        !config.collect_metrics || !matches!(r, Ok(m) if m.run_metrics.is_none())
    };
    let missing: Vec<usize> = match &keys {
        Some(keys) => (0..cells.len())
            .filter(|&i| !known.get(&keys[i]).is_some_and(&usable))
            .collect(),
        None => (0..cells.len()).collect(),
    };

    // Instance-major fan-out: each work item is one batch of consecutive
    // same-instance cells (oversized batches pre-split into same-instance
    // sub-units by the event cost model); each worker thread owns one
    // BatchWorker (the reused SimWorkspace + memoized sampler streams) and
    // the work-stealing executor seeds costliest batches first. Batch
    // results are slotted back by index, so output order — and every bit
    // of it — is independent of thread count, of the grouping, and of the
    // cost model (contract #14).
    let batches = split_batches(
        cells,
        &missing,
        group_instances(cells, &missing),
        config.split_events,
    );
    let progress = mss_obs::Progress::new(missing.len(), config.progress);
    // Workers persist their own results as they go: each scratch holds a
    // per-worker StoreWriter (private serialization buffers, per-shard
    // flush locks), so the store never serializes the sweep behind one
    // mutex and an interrupted run keeps every batch already flushed.
    let (fresh, workers) = parallel_map_costed(
        &batches,
        config.threads,
        |_, b| batch_cost(cells, &missing, b),
        || {
            let mut w = BatchWorker::with_epoch(epoch);
            w.count_events = config.count_events;
            w.collect_metrics = config.collect_metrics;
            (w, store.as_ref().map(|s| s.writer()))
        },
        |(w, writer), _, b| {
            let mut out = Vec::with_capacity(b.len());
            if config.streamed {
                batch::run_batch_streamed(cells, &missing, b.clone(), w, &mut out);
            } else {
                batch::run_batch(cells, &missing, b.clone(), w, &mut out);
            }
            if let (Some(writer), Some(keys)) = (writer.as_mut(), keys.as_ref()) {
                let t0 = std::time::Instant::now();
                for (k, r) in b.clone().zip(&out) {
                    writer.push(&keys[missing[k]], r);
                }
                writer
                    .flush_over(WORKER_FLUSH_FLOOR)
                    .expect("append sweep results");
                w.metrics.store_secs += t0.elapsed().as_secs_f64();
            }
            for _ in 0..out.len() {
                progress.tick();
            }
            out
        },
        |(mut w, writer)| {
            if let Some(mut writer) = writer {
                let t0 = std::time::Instant::now();
                writer.flush().expect("append sweep results");
                w.metrics.store_secs += t0.elapsed().as_secs_f64();
            }
            w.metrics
        },
    );
    progress.finish();
    // Batches partition `missing` in order, so the flattened results align
    // one-to-one with `missing`.
    let flat: Vec<Result<CellMetrics, CellError>> = fresh.into_iter().flatten().collect();
    debug_assert_eq!(flat.len(), missing.len());

    let mut stats = SweepMetrics {
        cells: cells.len() as u64,
        cached: (cells.len() - missing.len()) as u64,
        ..SweepMetrics::default()
    };
    for w in workers {
        stats.absorb_worker(w);
    }
    if let Some(store) = &store {
        stats.store = store.stats();
    }
    stats.store_secs += store_secs;
    stats.wall_secs = epoch.elapsed().as_secs_f64();

    let mut flat_iter = flat.into_iter();
    let mut missing_iter = missing.iter().peekable();
    let results = (0..cells.len())
        .map(|i| {
            if missing_iter.peek() == Some(&&i) {
                missing_iter.next();
                flat_iter.next().expect("one result per missing cell")
            } else {
                let keys = keys.as_ref().expect("cached cells imply a store");
                known[&keys[i]].clone()
            }
        })
        .collect();

    CheckedOutcome {
        results,
        executed: missing.len(),
        cached: cells.len() - missing.len(),
        dropped,
        stats,
    }
}

/// Executes a list of cells under `config` (the engine behind both the lab
/// experiments and `ms-lab sweep`).
///
/// # Panics
/// Panics if the cache directory cannot be created or written, or if a
/// cell fails (use [`try_run_cells`] to receive failures as values).
pub fn run_cells(cells: Vec<Cell>, config: &SweepConfig) -> SweepOutcome {
    let checked = try_run_cells(&cells, config);
    let metrics = checked
        .results
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect();
    SweepOutcome {
        executed: checked.executed,
        cached: checked.cached,
        dropped: checked.dropped,
        stats: checked.stats,
        cells,
        metrics,
    }
}

/// Expands and executes a spec.
pub fn run_spec(spec: &SweepSpec, config: &SweepConfig) -> Result<SweepOutcome, SpecError> {
    Ok(run_cells(spec.expand()?, config))
}

/// Parses a spec from TOML (see `examples/sweep_grid.toml` for the
/// schema). Unknown keys are rejected with a located error rather than
/// silently ignored.
pub fn spec_from_toml(input: &str) -> Result<SweepSpec, SpecError> {
    let value = toml_lite::parse(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_sweep_spec(&value)?;
    serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))
}

/// Parses a spec from JSON (same schema and strict-key rules as TOML).
pub fn spec_from_json(input: &str) -> Result<SweepSpec, SpecError> {
    let value = serde_json::parse_value(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_sweep_spec(&value)?;
    serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))
}

/// Parses a spec from a file path, dispatching on the `.json` / `.toml`
/// extension (anything that is not `.json` is treated as TOML).
pub fn spec_from_path(path: &std::path::Path) -> Result<SweepSpec, SpecError> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
    {
        spec_from_json(&body)
    } else {
        spec_from_toml(&body)
    }
}

/// Parses a standalone scenario file from TOML
/// (see `examples/failure_scenario.toml`), with strict-key validation.
pub fn scenario_from_toml(input: &str) -> Result<mss_scenario::ScenarioSpec, SpecError> {
    let value = toml_lite::parse(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_scenario_spec(&value)?;
    let spec: mss_scenario::ScenarioSpec =
        serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))?;
    spec.validate().map_err(|e| SpecError(e.to_string()))?;
    Ok(spec)
}

/// Parses a standalone scenario file from JSON, with strict-key validation.
pub fn scenario_from_json(input: &str) -> Result<mss_scenario::ScenarioSpec, SpecError> {
    let value = serde_json::parse_value(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_scenario_spec(&value)?;
    let spec: mss_scenario::ScenarioSpec =
        serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))?;
    spec.validate().map_err(|e| SpecError(e.to_string()))?;
    Ok(spec)
}

/// Parses a scenario file by path (`.json` is JSON, anything else TOML).
pub fn scenario_from_path(path: &std::path::Path) -> Result<mss_scenario::ScenarioSpec, SpecError> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
    {
        scenario_from_json(&body)
    } else {
        scenario_from_toml(&body)
    }
}
