//! # mss-sweep — parallel, cacheable scenario-sweep orchestration
//!
//! The experiment engine the lab runs on. A sweep is described by a
//! [`SweepSpec`] (TOML/JSON): the cartesian grid over platform recipes,
//! task counts, arrival processes, perturbations, replicate seeds and
//! algorithms. The engine:
//!
//! 1. **expands** the grid into independent [`Cell`]s with content-derived
//!    per-cell seeds ([`SweepSpec::expand`]);
//! 2. **executes** cells across threads with dynamic load balancing
//!    ([`exec::parallel_map`]) — results are bit-identical for any thread
//!    count because each cell is a pure function of itself;
//! 3. **caches** completed cells in a sharded JSONL [`ResultStore`] keyed
//!    by content hash, so re-runs skip finished work and interrupted
//!    sweeps resume (torn shard lines are detected and re-run);
//! 4. **aggregates** metrics (mean/min/max/std/CI95 of objectives, ratios
//!    against certified lower bounds, normalization to a baseline
//!    algorithm) in deterministic order ([`agg::aggregate`]).
//!
//! ```
//! use mss_sweep::{run_cells, SweepConfig, SweepSpec};
//!
//! let spec: SweepSpec = mss_sweep::spec_from_toml(r#"
//!     name = "doc"
//!     seed = 7
//!     tasks = [30]
//!     algorithms = ["SRPT", "LS"]
//!     [[platforms]]
//!     kind = "class"
//!     class = "het"
//!     count = 2
//!     slaves = 3
//!     [[arrivals]]
//!     kind = "bag"
//! "#).unwrap();
//! let cells = spec.expand().unwrap();
//! assert_eq!(cells.len(), 4);
//! let outcome = run_cells(cells, &SweepConfig { threads: 2, cache_dir: None });
//! assert_eq!(outcome.executed, 4);
//! let rows = outcome.aggregate(Some(mss_core::Algorithm::Srpt));
//! assert_eq!(rows.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod cell;
pub mod exec;
pub mod schema;
pub mod spec;
pub mod store;
pub mod toml_lite;

use std::path::PathBuf;

pub use agg::{aggregate, summarize, AggregateRow, Summary};
pub use cell::{Cell, CellMetrics, PerturbCell, PlatformCell, ScenarioCell};
pub use exec::{default_threads, parallel_map, parallel_map_with};
pub use spec::{ArrivalAxis, PerturbAxis, PlatformAxis, ScenarioAxis, SpecError, SweepSpec};
pub use store::{cell_key, ResultStore, CODE_VERSION_SALT};

/// How a sweep executes.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Worker threads (1 = sequential). The aggregated output is
    /// bit-identical for any value.
    pub threads: usize,
    /// Result-store directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            threads: default_threads(64),
            cache_dir: None,
        }
    }
}

/// A completed sweep: cells, their metrics (parallel arrays in expansion
/// order), and cache accounting.
pub struct SweepOutcome {
    /// The expanded cells, in deterministic order.
    pub cells: Vec<Cell>,
    /// Metrics per cell (same order as `cells`).
    pub metrics: Vec<CellMetrics>,
    /// Cells actually simulated this run.
    pub executed: usize,
    /// Cells served from the result store.
    pub cached: usize,
    /// Corrupt/truncated store lines that were dropped (their cells were
    /// re-run and counted under `executed`).
    pub dropped: usize,
}

impl SweepOutcome {
    /// Aggregates the outcome (see [`agg::aggregate`]).
    pub fn aggregate(&self, baseline: Option<mss_core::Algorithm>) -> Vec<AggregateRow> {
        aggregate(&self.cells, &self.metrics, baseline)
    }
}

/// Executes a list of cells under `config` (the engine behind both the lab
/// experiments and `ms-lab sweep`).
///
/// # Panics
/// Panics if the cache directory cannot be created or written.
pub fn run_cells(cells: Vec<Cell>, config: &SweepConfig) -> SweepOutcome {
    let keys: Vec<String> = cells.iter().map(cell_key).collect();

    let (store, known, dropped) = match &config.cache_dir {
        Some(dir) => {
            let store = ResultStore::open(dir).expect("open sweep result store");
            let loaded = store.load().expect("load sweep result store");
            (Some(store), loaded.results, loaded.dropped)
        }
        None => (None, Default::default(), 0),
    };

    // Indices still to run.
    let missing: Vec<usize> = (0..cells.len())
        .filter(|&i| !known.contains_key(&keys[i]))
        .collect();

    // One simulator workspace per worker thread: the engine's
    // zero-allocation buffers are warmed by the first cell a worker runs
    // and reused for every subsequent one (results are independent of the
    // reuse — each run re-initializes the workspace).
    let fresh = parallel_map_with(
        &missing,
        config.threads,
        mss_core::SimWorkspace::new,
        |ws, _, &i| cells[i].run_in(ws),
    );

    if let Some(store) = &store {
        let records: Vec<(String, CellMetrics)> = missing
            .iter()
            .zip(&fresh)
            .map(|(&i, m)| (keys[i].clone(), m.clone()))
            .collect();
        store.append(&records).expect("append sweep results");
    }

    let mut fresh_by_index: std::collections::HashMap<usize, CellMetrics> =
        missing.iter().copied().zip(fresh).collect();
    let metrics: Vec<CellMetrics> = (0..cells.len())
        .map(|i| match fresh_by_index.remove(&i) {
            Some(m) => m,
            None => known[&keys[i]].clone(),
        })
        .collect();

    SweepOutcome {
        executed: missing.len(),
        cached: cells.len() - missing.len(),
        dropped,
        cells,
        metrics,
    }
}

/// Expands and executes a spec.
pub fn run_spec(spec: &SweepSpec, config: &SweepConfig) -> Result<SweepOutcome, SpecError> {
    Ok(run_cells(spec.expand()?, config))
}

/// Parses a spec from TOML (see `examples/sweep_grid.toml` for the
/// schema). Unknown keys are rejected with a located error rather than
/// silently ignored.
pub fn spec_from_toml(input: &str) -> Result<SweepSpec, SpecError> {
    let value = toml_lite::parse(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_sweep_spec(&value)?;
    serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))
}

/// Parses a spec from JSON (same schema and strict-key rules as TOML).
pub fn spec_from_json(input: &str) -> Result<SweepSpec, SpecError> {
    let value = serde_json::parse_value(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_sweep_spec(&value)?;
    serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))
}

/// Parses a spec from a file path, dispatching on the `.json` / `.toml`
/// extension (anything that is not `.json` is treated as TOML).
pub fn spec_from_path(path: &std::path::Path) -> Result<SweepSpec, SpecError> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
    {
        spec_from_json(&body)
    } else {
        spec_from_toml(&body)
    }
}

/// Parses a standalone scenario file from TOML
/// (see `examples/failure_scenario.toml`), with strict-key validation.
pub fn scenario_from_toml(input: &str) -> Result<mss_scenario::ScenarioSpec, SpecError> {
    let value = toml_lite::parse(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_scenario_spec(&value)?;
    let spec: mss_scenario::ScenarioSpec =
        serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))?;
    spec.validate().map_err(|e| SpecError(e.to_string()))?;
    Ok(spec)
}

/// Parses a standalone scenario file from JSON, with strict-key validation.
pub fn scenario_from_json(input: &str) -> Result<mss_scenario::ScenarioSpec, SpecError> {
    let value = serde_json::parse_value(input).map_err(|e| SpecError(e.to_string()))?;
    schema::validate_scenario_spec(&value)?;
    let spec: mss_scenario::ScenarioSpec =
        serde::Deserialize::from_value(&value).map_err(|e| SpecError(e.to_string()))?;
    spec.validate().map_err(|e| SpecError(e.to_string()))?;
    Ok(spec)
}

/// Parses a scenario file by path (`.json` is JSON, anything else TOML).
pub fn scenario_from_path(path: &std::path::Path) -> Result<mss_scenario::ScenarioSpec, SpecError> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
    {
        scenario_from_json(&body)
    } else {
        scenario_from_toml(&body)
    }
}
