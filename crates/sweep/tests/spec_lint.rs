//! Spec lint: every example spec in `examples/*.toml` must parse under the
//! strict unknown-key parser.
//!
//! The strict parser rejects unknown keys with located errors, so this
//! test catches axis/schema drift (e.g. a new spec key like `information`
//! shipped in an example before the schema allows it, or an example left
//! behind by a schema rename) at `cargo test` time — and CI runs it as a
//! dedicated spec-lint step.

use std::path::PathBuf;

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

#[test]
fn every_example_toml_parses_strictly() {
    let mut seen = 0usize;
    let mut sweep_specs = 0usize;
    for entry in std::fs::read_dir(examples_dir()).expect("examples/ directory exists") {
        let path = entry.expect("read dir entry").path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        seen += 1;
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        // A file is either a sweep spec or a standalone scenario spec; it
        // must parse strictly as one of the two.
        match mss_sweep::spec_from_path(&path) {
            Ok(spec) => {
                sweep_specs += 1;
                let cells = spec
                    .expand()
                    .unwrap_or_else(|e| panic!("{name}: parses but does not expand: {e}"));
                assert!(!cells.is_empty(), "{name}: expands to an empty grid");
            }
            Err(sweep_err) => {
                if let Err(scenario_err) = mss_sweep::scenario_from_path(&path) {
                    panic!(
                        "{name} parses strictly as neither a sweep spec nor a \
                         scenario spec:\n  as sweep spec: {sweep_err}\n  as \
                         scenario spec: {scenario_err}"
                    );
                }
            }
        }
    }
    assert!(
        seen >= 3,
        "expected at least sweep_grid.toml, failure_scenario.toml and \
         oblivious_sweep.toml under examples/, found {seen} TOML files"
    );
    assert!(sweep_specs >= 2, "expected at least two sweep specs");
}
