//! Property: **streaming is observationally pure** (contract #13).
//!
//! For arbitrary sweep specs — platforms × arrivals × perturbations ×
//! scenarios × information tiers, all seven heuristics plain and
//! `Redispatch`-wrapped — pulling tasks lazily from a seeded
//! [`GeneratedSource`](mss_workload::GeneratedSource) must be
//! indistinguishable from materializing the instance first, at every
//! level the harness can observe:
//!
//! * **sweep results** — `try_run_cells` with `streamed: true` returns,
//!   at 1, 2 and max threads, exactly the materialized-path results bit
//!   for bit, *including* the [`CellRunMetrics`](mss_sweep::CellRunMetrics)
//!   telemetry payloads (histograms, per-slave busy seconds, queue stats);
//! * **traces** — the engine's full per-task [`Trace`](mss_core::Trace)
//!   agrees record for record (and error-for-error on aborting cells);
//! * **digests** — a [`DigestProbe`](mss_obs::DigestProbe) hashing the
//!   entire engine event stream sees the same sequence;
//! * **bounds** — the single-pass `StreamingBounds` certificate equals
//!   the batch bounds on the materialized release vector.

use mss_core::{simulate_streamed_with_probe_in, simulate_with_probe_in, SimWorkspace};
use mss_obs::DigestProbe;
use mss_scenario::{EventSpec, GeneratorSpec};
use mss_sweep::{try_run_cells, Cell, ScenarioAxis, SweepConfig, SweepSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique store directories across the concurrently running tests of this
/// binary.
static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_store_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mss-stream-eq-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// All store records by shard file, each shard's lines sorted: the
/// thread-count-invariant view of the store's bytes (contract #14 — record
/// lines are fixed, intra-shard order is scheduling-dependent).
fn sorted_shard_lines(dir: &Path) -> BTreeMap<String, Vec<String>> {
    let mut shards = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("store dir exists") {
        let entry = entry.expect("read store dir entry");
        let name = entry.file_name().into_string().expect("utf-8 shard name");
        if !name.ends_with(".jsonl") {
            continue;
        }
        let body = std::fs::read_to_string(entry.path()).expect("read shard");
        let mut lines: Vec<String> = body.lines().map(str::to_string).collect();
        lines.sort_unstable();
        shards.insert(name, lines);
    }
    shards
}

fn algorithms(picks: &[usize]) -> Vec<String> {
    const NAMES: [&str; 7] = ["SRPT", "LS", "RR", "RRC", "RRP", "SLJF", "SLJFWC"];
    picks.iter().map(|&i| NAMES[i % 7].to_string()).collect()
}

fn arb_platform_axis() -> impl Strategy<Value = mss_sweep::PlatformAxis> {
    prop_oneof![
        (0usize..4, 1usize..3, 2usize..5).prop_map(|(class, count, slaves)| {
            mss_sweep::PlatformAxis {
                kind: "class".into(),
                class: Some(["homogeneous", "comm", "comp", "het"][class].into()),
                count: Some(count),
                slaves: Some(slaves),
                axis: None,
                levels: None,
                families: None,
                c: None,
                p: None,
            }
        }),
        proptest::collection::vec((0.05f64..1.0, 0.2f64..4.0), 1..4).prop_map(|specs| {
            let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
            mss_sweep::PlatformAxis {
                kind: "explicit".into(),
                class: None,
                count: None,
                slaves: None,
                axis: None,
                levels: None,
                families: None,
                c: Some(c),
                p: Some(p),
            }
        }),
    ]
}

fn arb_arrival_axis() -> impl Strategy<Value = mss_sweep::ArrivalAxis> {
    prop_oneof![
        Just(mss_sweep::ArrivalAxis {
            kind: "bag".into(),
            load: None,
        }),
        (0.5f64..1.2).prop_map(|load| mss_sweep::ArrivalAxis {
            kind: "stream".into(),
            load: Some(load),
        }),
        (0.5f64..1.2).prop_map(|load| mss_sweep::ArrivalAxis {
            kind: "poisson".into(),
            load: Some(load),
        }),
    ]
}

fn arb_perturbations() -> impl Strategy<Value = Option<Vec<mss_sweep::PerturbAxis>>> {
    proptest::option::of((0usize..2, 0.0f64..0.3).prop_map(|(mode, delta)| {
        vec![mss_sweep::PerturbAxis {
            mode: ["linear", "matrix"][mode].into(),
            delta: Some(delta),
        }]
    }))
}

fn arb_information() -> impl Strategy<Value = Option<Vec<String>>> {
    proptest::option::of(
        proptest::collection::vec(0usize..3, 1..3).prop_map(|picks| {
            picks
                .into_iter()
                .map(|i| ["clairvoyant", "speed-oblivious", "non-clairvoyant"][i].to_string())
                .collect()
        }),
    )
}

fn arb_static_spec() -> impl Strategy<Value = SweepSpec> {
    (
        0u64..u64::MAX,
        proptest::collection::vec(0usize..7, 1..4),
        proptest::collection::vec(arb_platform_axis(), 1..3),
        proptest::collection::vec(arb_arrival_axis(), 1..3),
        arb_perturbations(),
        arb_information(),
        1usize..25,
        1u64..3,
    )
        .prop_map(
            |(seed, algs, platforms, arrivals, perturbations, information, tasks, replicates)| {
                SweepSpec {
                    name: "stream-equivalence".into(),
                    seed,
                    replicates: Some(replicates),
                    tasks: vec![tasks],
                    algorithms: algorithms(&algs),
                    platforms,
                    arrivals,
                    perturbations,
                    scenarios: None,
                    information,
                }
            },
        )
}

/// Scenario axes: the static model, a fault-aware (`Redispatch`) dynamic
/// scenario, and — when `with_plain` — a fault-*oblivious* one with a
/// permanently failing slave whose cells legitimately abort, so the
/// streamed path must reproduce the abort byte for byte too.
fn scenario_axes(with_plain: bool) -> Vec<ScenarioAxis> {
    let mut axes = vec![
        ScenarioAxis {
            kind: "static".into(),
            fault: None,
            name: None,
            horizon: None,
            min_up: None,
            events: None,
            generators: None,
        },
        ScenarioAxis {
            kind: "dynamic".into(),
            fault: Some("redispatch".into()),
            name: None,
            horizon: Some(200.0),
            min_up: Some(1),
            events: None,
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(20.0),
                repair_mean: Some(5.0),
                ..GeneratorSpec::default()
            }]),
        },
    ];
    if with_plain {
        axes.push(ScenarioAxis {
            kind: "dynamic".into(),
            fault: Some("plain".into()),
            name: Some("perma-fail".into()),
            horizon: None,
            min_up: Some(1),
            events: Some(vec![EventSpec {
                at: 0.01,
                slave: 0,
                kind: "fail".into(),
                factor: None,
            }]),
            generators: None,
        });
    }
    axes
}

fn arb_scenario_spec() -> impl Strategy<Value = SweepSpec> {
    (
        0u64..u64::MAX,
        proptest::collection::vec(0usize..7, 1..3),
        (0usize..4, 1usize..3),
        2usize..6,
        (0u32..2).prop_map(|b| b == 1),
    )
        .prop_map(
            |(seed, algs, (class, count), tasks, with_plain)| SweepSpec {
                name: "stream-equivalence-scenarios".into(),
                seed,
                replicates: Some(1),
                tasks: vec![tasks],
                algorithms: algorithms(&algs),
                platforms: vec![mss_sweep::PlatformAxis {
                    kind: "class".into(),
                    class: Some(["homogeneous", "comm", "comp", "het"][class].into()),
                    count: Some(count),
                    slaves: Some(3),
                    axis: None,
                    levels: None,
                    families: None,
                    c: None,
                    p: None,
                }],
                arrivals: vec![mss_sweep::ArrivalAxis {
                    kind: "poisson".into(),
                    load: Some(0.9),
                }],
                perturbations: None,
                scenarios: Some(scenario_axes(with_plain)),
                information: None,
            },
        )
}

fn config(threads: usize, streamed: bool) -> SweepConfig {
    SweepConfig {
        threads,
        cache_dir: None,
        progress: false,
        count_events: false,
        collect_metrics: true,
        streamed,
        split_events: mss_sweep::DEFAULT_SPLIT_EVENTS,
    }
}

/// Per-cell trace- and digest-level comparison: the materialized engine
/// run against the streamed one, probe hashes included.
fn check_traces_and_digests(cells: &[Cell]) {
    let mut ws = SimWorkspace::new();
    for cell in cells {
        let mat = cell.materialize();
        let inst = cell.materialize_streamed();
        // The O(slaves) streamed materialization certifies the identical
        // lower bounds without ever holding the release vector.
        assert_eq!(mat.lb_makespan.to_bits(), inst.lb_makespan.to_bits());
        assert_eq!(mat.lb_max_flow.to_bits(), inst.lb_max_flow.to_bits());
        assert_eq!(mat.lb_sum_flow.to_bits(), inst.lb_sum_flow.to_bits());

        let cfg = cell.sim_config(&mat);
        let tasks = mat.perturbed.as_deref().unwrap_or(&mat.nominal);
        let mut digest_mat = DigestProbe::new();
        let mut sched = cell.build_scheduler();
        let trace_mat = simulate_with_probe_in(
            &mut ws,
            &mat.platform,
            tasks,
            &cfg,
            &mat.timeline,
            sched.as_mut(),
            &mut digest_mat,
        );

        let mut digest_str = DigestProbe::new();
        let mut sched = cell.build_scheduler();
        let mut source = cell.source(&inst.platform);
        let trace_str = simulate_streamed_with_probe_in(
            &mut ws,
            &inst.platform,
            &mut source,
            &cfg,
            &inst.timeline,
            sched.as_mut(),
            &mut digest_str,
        );

        let label = format!("{} on {:?}", cell.algorithm, cell.platform);
        match (trace_mat, trace_str) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: trace diverged"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "{label}: abort diverged")
            }
            (a, b) => panic!("{label}: outcome kind diverged: {a:?} vs {b:?}"),
        }
        // The digest hashes every probe hook in order — equal digests mean
        // the streamed engine emitted the identical event stream.
        assert_eq!(digest_mat.digest(), digest_str.digest(), "{label}: digest");
        assert_eq!(digest_mat.events(), digest_str.events(), "{label}: events");
    }
}

fn check_spec(spec: &SweepSpec) {
    let cells = spec.expand().expect("generated spec expands");
    // Oracle: the materialized executor with telemetry payloads attached.
    let oracle = try_run_cells(&cells, &config(1, false));

    for threads in [1, 2, mss_sweep::default_threads(64)] {
        let streamed = try_run_cells(&cells, &config(threads, true));
        assert_eq!(streamed.executed, cells.len());
        for (i, (s, m)) in streamed.results.iter().zip(&oracle.results).enumerate() {
            // `==` on the f64 metrics is exact, and `CellMetrics` includes
            // the full `CellRunMetrics` telemetry payload.
            assert_eq!(
                s, m,
                "slot {i} ({} on {:?}) diverged at {threads} threads",
                cells[i].algorithm, cells[i].platform
            );
        }
    }

    // Forced splitting with a live store, streamed against materialized:
    // a 1-event threshold makes every batch split into single-cell
    // sub-units, so the streamed path is exercised under maximal stealing
    // too — and the store's record bytes (per-shard sorted line multisets)
    // must match the materialized path's bytes at every thread count.
    let mut store_baseline: Option<BTreeMap<String, Vec<String>>> = None;
    for (threads, streamed) in [
        (1, false),
        (1, true),
        (2, true),
        (mss_sweep::default_threads(64), true),
    ] {
        let dir = fresh_store_dir();
        let outcome = try_run_cells(
            &cells,
            &SweepConfig {
                cache_dir: Some(dir.clone()),
                split_events: 1,
                ..config(threads, streamed)
            },
        );
        assert_eq!(outcome.executed, cells.len(), "fresh store: all execute");
        for (i, (s, m)) in outcome.results.iter().zip(&oracle.results).enumerate() {
            assert_eq!(
                s, m,
                "slot {i} diverged (forced split, streamed={streamed}, {threads} threads)"
            );
        }
        let lines = sorted_shard_lines(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        match &store_baseline {
            None => store_baseline = Some(lines),
            Some(base) => assert_eq!(
                &lines, base,
                "store bytes diverged (forced split, streamed={streamed}, {threads} threads)"
            ),
        }
    }

    check_traces_and_digests(&cells);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary static grids (perturbations × information tiers × all
    /// seven heuristics): streamed == materialized at 1, 2, max threads,
    /// down to traces, digests and telemetry payloads.
    #[test]
    fn streamed_equals_materialized(spec in arb_static_spec()) {
        check_spec(&spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Grids with dynamic-platform scenarios — `Redispatch`-wrapped cells
    /// and fault-oblivious cells that abort on the step budget: the
    /// streamed path reproduces completions and aborts alike.
    #[test]
    fn streamed_equals_materialized_under_scenarios(spec in arb_scenario_spec()) {
        check_spec(&spec);
    }
}
