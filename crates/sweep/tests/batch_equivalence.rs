//! Property: **instance-major batched execution is observationally pure**.
//!
//! For arbitrary sweep specs — algorithms × platforms × arrivals ×
//! perturbations × scenarios — the batched executor ([`try_run_cells`])
//! must produce, at every thread count, exactly the per-cell results of
//! running each cell alone ([`Cell::try_run_in`]), bit for bit. This
//! includes error-carrying cells: a budget abort (e.g. a fault-oblivious
//! algorithm livelocking against a permanently down slave) must land in
//! the aborting cell's own result slot and nowhere else.

use mss_scenario::{EventSpec, GeneratorSpec};
use mss_sweep::{
    try_run_cells, Cell, CellError, CellMetrics, ScenarioAxis, SweepConfig, SweepSpec,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique store directories across the concurrently running tests of this
/// binary.
static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_store_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mss-batch-eq-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// All store records by shard file, each shard's lines sorted. Contract
/// #14 fixes the record *bytes* and each shard's line multiset at any
/// thread count and split threshold; intra-shard line *order* is
/// scheduling-dependent under concurrency, which is why this sorts before
/// comparing.
fn sorted_shard_lines(dir: &Path) -> BTreeMap<String, Vec<String>> {
    let mut shards = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("store dir exists") {
        let entry = entry.expect("read store dir entry");
        let name = entry.file_name().into_string().expect("utf-8 shard name");
        if !name.ends_with(".jsonl") {
            continue;
        }
        let body = std::fs::read_to_string(entry.path()).expect("read shard");
        let mut lines: Vec<String> = body.lines().map(str::to_string).collect();
        lines.sort_unstable();
        shards.insert(name, lines);
    }
    shards
}

fn algorithms(picks: &[usize]) -> Vec<String> {
    const NAMES: [&str; 7] = ["SRPT", "LS", "RR", "RRC", "RRP", "SLJF", "SLJFWC"];
    picks.iter().map(|&i| NAMES[i % 7].to_string()).collect()
}

fn arb_platform_axis() -> impl Strategy<Value = mss_sweep::PlatformAxis> {
    prop_oneof![
        // Random-class platforms: the sampler-stream (memoized) path.
        (0usize..4, 1usize..4, 2usize..5).prop_map(|(class, count, slaves)| {
            mss_sweep::PlatformAxis {
                kind: "class".into(),
                class: Some(["homogeneous", "comm", "comp", "het"][class].into()),
                count: Some(count),
                slaves: Some(slaves),
                axis: None,
                levels: None,
                families: None,
                c: None,
                p: None,
            }
        }),
        // Heterogeneity families at arbitrary degrees.
        (0usize..3, 0.0f64..=1.0, 1u64..3, 2usize..4).prop_map(|(axis, level, fams, slaves)| {
            mss_sweep::PlatformAxis {
                kind: "heterogeneity".into(),
                class: None,
                count: None,
                slaves: Some(slaves),
                axis: Some(["links", "speeds", "both"][axis].into()),
                levels: Some(vec![0.0, level]),
                families: Some(fams),
                c: None,
                p: None,
            }
        }),
        // An explicit platform.
        proptest::collection::vec((0.05f64..1.0, 0.2f64..4.0), 1..4).prop_map(|specs| {
            let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
            mss_sweep::PlatformAxis {
                kind: "explicit".into(),
                class: None,
                count: None,
                slaves: None,
                axis: None,
                levels: None,
                families: None,
                c: Some(c),
                p: Some(p),
            }
        }),
    ]
}

fn arb_arrival_axis() -> impl Strategy<Value = mss_sweep::ArrivalAxis> {
    prop_oneof![
        Just(mss_sweep::ArrivalAxis {
            kind: "bag".into(),
            load: None,
        }),
        (0.5f64..1.2).prop_map(|load| mss_sweep::ArrivalAxis {
            kind: "stream".into(),
            load: Some(load),
        }),
        (0.5f64..1.2).prop_map(|load| mss_sweep::ArrivalAxis {
            kind: "poisson".into(),
            load: Some(load),
        }),
    ]
}

fn arb_perturbations() -> impl Strategy<Value = Option<Vec<mss_sweep::PerturbAxis>>> {
    proptest::option::of((0usize..2, 0.0f64..0.3).prop_map(|(mode, delta)| {
        vec![mss_sweep::PerturbAxis {
            mode: ["linear", "matrix"][mode].into(),
            delta: Some(delta),
        }]
    }))
}

/// An optional information-tier axis: cells of every tier must batch with
/// their clairvoyant siblings (they share the instance) and still come
/// back bit-identical to solo execution.
fn arb_information() -> impl Strategy<Value = Option<Vec<String>>> {
    proptest::option::of(
        proptest::collection::vec(0usize..3, 1..4).prop_map(|picks| {
            picks
                .into_iter()
                .map(|i| ["clairvoyant", "speed-oblivious", "non-clairvoyant"][i].to_string())
                .collect()
        }),
    )
}

fn arb_static_spec() -> impl Strategy<Value = SweepSpec> {
    (
        0u64..u64::MAX,
        proptest::collection::vec(0usize..7, 1..4),
        proptest::collection::vec(arb_platform_axis(), 1..3),
        proptest::collection::vec(arb_arrival_axis(), 1..3),
        arb_perturbations(),
        arb_information(),
        1usize..25,
        1u64..3,
    )
        .prop_map(
            |(seed, algs, platforms, arrivals, perturbations, information, tasks, replicates)| {
                SweepSpec {
                    name: "batch-equivalence".into(),
                    seed,
                    replicates: Some(replicates),
                    tasks: vec![tasks],
                    algorithms: algorithms(&algs),
                    platforms,
                    arrivals,
                    perturbations,
                    scenarios: None,
                    information,
                }
            },
        )
}

/// A scenario axis set containing the static model, a fault-aware dynamic
/// scenario, and — when `with_plain` — a fault-*oblivious* one with a
/// permanently failing slave, whose cells legitimately abort on the step
/// budget for most algorithms.
fn scenario_axes(with_plain: bool) -> Vec<ScenarioAxis> {
    let mut axes = vec![
        ScenarioAxis {
            kind: "static".into(),
            fault: None,
            name: None,
            horizon: None,
            min_up: None,
            events: None,
            generators: None,
        },
        ScenarioAxis {
            kind: "dynamic".into(),
            fault: Some("redispatch".into()),
            name: None,
            horizon: Some(200.0),
            min_up: Some(1),
            events: None,
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(20.0),
                repair_mean: Some(5.0),
                ..GeneratorSpec::default()
            }]),
        },
    ];
    if with_plain {
        axes.push(ScenarioAxis {
            kind: "dynamic".into(),
            fault: Some("plain".into()),
            name: Some("perma-fail".into()),
            horizon: None,
            min_up: Some(1),
            events: Some(vec![EventSpec {
                at: 0.01,
                slave: 0,
                kind: "fail".into(),
                factor: None,
            }]),
            generators: None,
        });
    }
    axes
}

fn arb_scenario_spec() -> impl Strategy<Value = SweepSpec> {
    (
        0u64..u64::MAX,
        proptest::collection::vec(0usize..7, 1..3),
        (0usize..4, 1usize..3),
        2usize..6,
        (0u32..2).prop_map(|b| b == 1),
    )
        .prop_map(
            |(seed, algs, (class, count), tasks, with_plain)| SweepSpec {
                name: "batch-equivalence-scenarios".into(),
                seed,
                replicates: Some(1),
                tasks: vec![tasks],
                algorithms: algorithms(&algs),
                platforms: vec![mss_sweep::PlatformAxis {
                    kind: "class".into(),
                    class: Some(["homogeneous", "comm", "comp", "het"][class].into()),
                    count: Some(count),
                    slaves: Some(3),
                    axis: None,
                    levels: None,
                    families: None,
                    c: None,
                    p: None,
                }],
                arrivals: vec![mss_sweep::ArrivalAxis {
                    kind: "bag".into(),
                    load: None,
                }],
                perturbations: None,
                scenarios: Some(scenario_axes(with_plain)),
                information: None,
            },
        )
}

/// Bit-exact comparison of two per-cell outcomes (`==` on the f64 metrics
/// is exact; error messages must also agree verbatim).
fn assert_results_match(
    cells: &[Cell],
    got: &[Result<CellMetrics, CellError>],
    want: &[Result<CellMetrics, CellError>],
    label: &str,
) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g, w,
            "{label}: slot {i} ({} on {:?}) diverged",
            cells[i].algorithm, cells[i].platform
        );
    }
}

fn check_spec(spec: &SweepSpec) {
    let cells = spec.expand().expect("generated spec expands");
    // Oracle: every cell alone, in its own right, through the unbatched
    // per-cell path (one warm workspace, like the historical executor).
    let mut ws = mss_core::SimWorkspace::new();
    let oracle: Vec<Result<CellMetrics, CellError>> =
        cells.iter().map(|c| c.try_run_in(&mut ws)).collect();

    for threads in [1, 2, mss_sweep::default_threads(64)] {
        let outcome = try_run_cells(
            &cells,
            &SweepConfig {
                threads,
                cache_dir: None,
                ..SweepConfig::default()
            },
        );
        assert_eq!(outcome.executed, cells.len());
        assert_results_match(
            &cells,
            &outcome.results,
            &oracle,
            &format!("{} threads", threads),
        );
    }

    // Forced splitting with a live store: a 1-event threshold chops every
    // batch into single-cell sub-units, so sub-batch re-materialization
    // and work stealing are exercised even on tiny grids — results must
    // still be bit-identical, and the store's record bytes (per-shard
    // sorted line multisets) must be invariant across thread counts too.
    let mut store_baseline: Option<BTreeMap<String, Vec<String>>> = None;
    for threads in [1, 2, mss_sweep::default_threads(64)] {
        let dir = fresh_store_dir();
        let outcome = try_run_cells(
            &cells,
            &SweepConfig {
                threads,
                cache_dir: Some(dir.clone()),
                split_events: 1,
                ..SweepConfig::default()
            },
        );
        assert_eq!(outcome.executed, cells.len(), "fresh store: all execute");
        assert_results_match(
            &cells,
            &outcome.results,
            &oracle,
            &format!("forced split, {} threads", threads),
        );
        let lines = sorted_shard_lines(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        match &store_baseline {
            None => store_baseline = Some(lines),
            Some(base) => assert_eq!(
                &lines, base,
                "store record bytes diverged at {threads} threads (forced split)"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary static grids: batched == per-cell at 1, 2, and max threads.
    #[test]
    fn batched_execution_is_bit_identical_for_static_grids(spec in arb_static_spec()) {
        check_spec(&spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Grids with dynamic-platform scenarios, including fault-oblivious
    /// cells that abort on the step budget: every error lands in its own
    /// slot, and every other slot is bit-identical to per-cell execution.
    #[test]
    fn batched_execution_slots_errors_correctly(spec in arb_scenario_spec()) {
        check_spec(&spec);
    }
}

/// Deterministic pin of the error-slotting contract (independent of
/// proptest generation): with the universally preferred slave permanently
/// failed, fault-*oblivious* cells abort on the step budget while the
/// fault-aware (redispatch) cells of the same grid complete — and the
/// batched executor reproduces exactly that per-slot pattern.
#[test]
fn plain_budget_aborts_land_in_their_slots() {
    let fail_fast_slave = |fault: &str| ScenarioAxis {
        kind: "dynamic".into(),
        fault: Some(fault.into()),
        name: None,
        horizon: None,
        min_up: Some(1),
        events: Some(vec![EventSpec {
            at: 0.05,
            slave: 0,
            kind: "fail".into(),
            factor: None,
        }]),
        generators: None,
    };
    let spec = SweepSpec {
        name: "error-slots".into(),
        seed: 9,
        replicates: Some(1),
        tasks: vec![3],
        algorithms: vec!["SRPT".into(), "LS".into()],
        platforms: vec![mss_sweep::PlatformAxis {
            kind: "explicit".into(),
            class: None,
            count: None,
            slaves: None,
            axis: None,
            levels: None,
            families: None,
            // Slave 0 is both the cheapest link and the fastest CPU, so
            // every fault-oblivious heuristic keeps feeding it once down.
            c: Some(vec![0.1, 0.1]),
            p: Some(vec![1.0, 5.0]),
        }],
        arrivals: vec![mss_sweep::ArrivalAxis {
            kind: "bag".into(),
            load: None,
        }],
        perturbations: None,
        scenarios: Some(vec![
            fail_fast_slave("plain"),
            fail_fast_slave("redispatch"),
        ]),
        information: None,
    };
    let cells = spec.expand().unwrap();
    assert_eq!(cells.len(), 4, "2 scenarios × 2 algorithms");

    for threads in [1, 2, 8] {
        let outcome = try_run_cells(
            &cells,
            &SweepConfig {
                threads,
                cache_dir: None,
                ..SweepConfig::default()
            },
        );
        // Slots 0–1: plain SRPT/LS abort with the legacy message shape.
        for (slot, name) in [(0, "SRPT"), (1, "LS")] {
            let err = outcome.results[slot].as_ref().unwrap_err();
            assert!(
                err.message.contains(&format!("{name} failed"))
                    && err.message.contains("step budget")
                    && err.kind == mss_sweep::AbortKind::BudgetExhausted,
                "slot {slot} at {threads} threads: {err}"
            );
        }
        // Slots 2–3: the fault-aware twins complete and bit-match their
        // solo runs despite sharing a batch worker with the aborts.
        for slot in [2, 3] {
            let solo = cells[slot].try_run_in(&mut mss_core::SimWorkspace::new());
            assert_eq!(outcome.results[slot], solo, "slot {slot}");
            assert!(outcome.results[slot].is_ok(), "slot {slot}");
        }
    }
}
