//! Contract #12, end to end: a metrics-collecting sweep produces
//! bit-identical telemetry for any thread count, and the payloads survive
//! the result store exactly.

use mss_sweep::{spec_from_toml, try_run_cells, SweepConfig, SweepSpec};
use std::path::PathBuf;

fn spec(seed: u64) -> SweepSpec {
    spec_from_toml(&format!(
        r#"
        name = "metrics-equivalence"
        seed = {seed}
        tasks = [30]
        algorithms = ["all"]

        [[platforms]]
        kind = "class"
        class = "heterogeneous"
        count = 3
        slaves = 4

        [[arrivals]]
        kind = "bag"

        [[arrivals]]
        kind = "poisson"
        load = 0.9
        "#
    ))
    .unwrap()
}

fn config(threads: usize) -> SweepConfig {
    SweepConfig {
        threads,
        cache_dir: None,
        progress: false,
        count_events: false,
        collect_metrics: true,
        streamed: false,
        split_events: mss_sweep::DEFAULT_SPLIT_EVENTS,
    }
}

/// Serializes every per-cell payload to its exact store bytes.
fn payload_bytes(spec: &SweepSpec, threads: usize) -> Vec<String> {
    let cells = spec.expand().unwrap();
    let outcome = try_run_cells(&cells, &config(threads));
    outcome
        .results
        .iter()
        .map(|r| {
            let m = r.as_ref().expect("static grid completes");
            let payload = m.run_metrics.as_ref().expect("payload collected");
            serde_json::to_string(&serde::Serialize::to_value(payload)).unwrap()
        })
        .collect()
}

#[test]
fn payloads_bit_identical_across_thread_counts() {
    for seed in [7u64, 42] {
        let spec = spec(seed);
        let one = payload_bytes(&spec, 1);
        let two = payload_bytes(&spec, 2);
        let max = payload_bytes(&spec, mss_sweep::default_threads(64));
        assert!(!one.is_empty());
        assert_eq!(one, two, "seed {seed}: 1 vs 2 threads");
        assert_eq!(one, max, "seed {seed}: 1 vs max threads");
    }
}

#[test]
fn payloads_survive_the_store_and_worker_hists_match_cell_sums() {
    let spec = spec(11);
    let cells = spec.expand().unwrap();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("mss-metrics-equivalence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SweepConfig {
        cache_dir: Some(dir.clone()),
        ..config(2)
    };

    let first = try_run_cells(&cells, &cfg);
    assert_eq!(first.executed, cells.len());
    // Worker-merged flow histograms carry exactly one sample per task.
    let total_tasks: u64 = cells.iter().map(|c| c.tasks as u64).sum();
    assert_eq!(first.stats.hists.flow.count(), total_tasks);

    // A warm re-run serves every payload from the store, byte-identically.
    let second = try_run_cells(&cells, &cfg);
    assert_eq!(second.executed, 0, "warm store serves all cells");
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(
            a.as_ref().unwrap().run_metrics,
            b.as_ref().unwrap().run_metrics
        );
    }

    // A plain sweep against the same warm store must not be poisoned by
    // the payload-carrying records — and must not re-run anything.
    let plain = try_run_cells(
        &cells,
        &SweepConfig {
            collect_metrics: false,
            ..cfg.clone()
        },
    );
    assert_eq!(plain.executed, 0);
    for (a, b) in first.results.iter().zip(&plain.results) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn payload_less_cache_entries_rerun_under_collect_metrics() {
    let spec = spec(23);
    let cells = spec.expand().unwrap();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("mss-metrics-upgrade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plain_cfg = SweepConfig {
        cache_dir: Some(dir.clone()),
        ..config(2)
    };
    let plain_cfg = SweepConfig {
        collect_metrics: false,
        ..plain_cfg
    };

    // Seed the store with payload-less records…
    let plain = try_run_cells(&cells, &plain_cfg);
    assert_eq!(plain.executed, cells.len());
    // …then ask for telemetry: every cell re-runs and upgrades its record.
    let upgraded = try_run_cells(
        &cells,
        &SweepConfig {
            collect_metrics: true,
            ..plain_cfg.clone()
        },
    );
    assert_eq!(
        upgraded.executed,
        cells.len(),
        "payload-less records re-run"
    );
    for (a, b) in plain.results.iter().zip(&upgraded.results) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert!(b.run_metrics.is_some());
    }
    // The upgraded records now satisfy a third telemetry run from cache.
    let warm = try_run_cells(
        &cells,
        &SweepConfig {
            collect_metrics: true,
            ..plain_cfg
        },
    );
    assert_eq!(warm.executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
