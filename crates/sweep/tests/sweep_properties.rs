//! The sweep subsystem's contract, as stated in the roadmap:
//!
//! * same spec + same seeds ⇒ byte-identical aggregated results at 1
//!   thread vs N threads;
//! * a second run against a warm store executes zero cells;
//! * a truncated shard file is detected and only the affected cell re-runs.

use mss_core::Algorithm;
use mss_sweep::{run_spec, spec_from_toml, SweepConfig, SweepSpec};
use std::path::PathBuf;

/// A 2-class × 4-platform × 2-arrival × 7-algorithm grid: 112 cells, all
/// small enough to keep the test fast.
fn spec() -> SweepSpec {
    spec_from_toml(
        r#"
        name = "contract"
        seed = 42
        replicates = 1
        tasks = [40]
        algorithms = ["all"]

        [[platforms]]
        kind = "class"
        class = "comm-homogeneous"
        count = 4
        slaves = 4

        [[platforms]]
        kind = "class"
        class = "heterogeneous"
        count = 4
        slaves = 4

        [[arrivals]]
        kind = "bag"

        [[arrivals]]
        kind = "poisson"
        load = 0.9
        "#,
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mss-sweep-contract-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serializes aggregates to the exact bytes a report would contain.
fn aggregate_bytes(outcome: &mss_sweep::SweepOutcome) -> String {
    serde_json::to_string_pretty(&outcome.aggregate(Some(Algorithm::Srpt))).unwrap()
}

#[test]
fn hundred_plus_cells_bit_identical_across_thread_counts() {
    let spec = spec();
    assert!(
        spec.expand().unwrap().len() >= 100,
        "grid must be ≥ 100 cells"
    );

    let single = run_spec(
        &spec,
        &SweepConfig {
            threads: 1,
            cache_dir: None,
            ..SweepConfig::default()
        },
    )
    .unwrap();
    let bytes_single = aggregate_bytes(&single);

    for threads in [2, 4, 8] {
        let parallel = run_spec(
            &spec,
            &SweepConfig {
                threads,
                cache_dir: None,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(parallel.executed, single.executed);
        assert_eq!(
            aggregate_bytes(&parallel),
            bytes_single,
            "aggregated output must be byte-identical at {threads} threads"
        );
        // Not just the aggregates: every raw metric bit-matches.
        assert_eq!(parallel.metrics, single.metrics);
    }
}

#[test]
fn second_run_completes_entirely_from_cache() {
    let dir = temp_dir("cache");
    let spec = spec();
    let config = SweepConfig {
        threads: 4,
        cache_dir: Some(dir.clone()),
        ..SweepConfig::default()
    };

    let first = run_spec(&spec, &config).unwrap();
    assert_eq!(first.cached, 0);
    assert_eq!(first.executed, spec.expand().unwrap().len());

    let second = run_spec(&spec, &config).unwrap();
    assert_eq!(second.executed, 0, "warm cache must execute zero cells");
    assert_eq!(second.cached, first.executed);
    assert_eq!(aggregate_bytes(&second), aggregate_bytes(&first));

    // A different spec seed misses the cache entirely.
    let mut reseeded = spec.clone();
    reseeded.seed = 43;
    let third = run_spec(&reseeded, &config).unwrap();
    assert_eq!(third.cached, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_shard_reruns_only_the_torn_cells() {
    let dir = temp_dir("torn");
    let spec = spec();
    let config = SweepConfig {
        threads: 4,
        cache_dir: Some(dir.clone()),
        ..SweepConfig::default()
    };
    let first = run_spec(&spec, &config).unwrap();
    let reference = aggregate_bytes(&first);

    // Tear the tail off one shard, as an interrupted append would.
    let shard = (0..16)
        .map(|s| dir.join(format!("shard_{s:02x}.jsonl")))
        .find(|p| p.exists() && std::fs::metadata(p).unwrap().len() > 40)
        .expect("a populated shard");
    let body = std::fs::read_to_string(&shard).unwrap();
    std::fs::write(&shard, &body[..body.len() - 20]).unwrap();

    let resumed = run_spec(&spec, &config).unwrap();
    assert_eq!(resumed.dropped, 1, "exactly one torn record detected");
    assert_eq!(resumed.executed, 1, "only the torn cell re-runs");
    assert_eq!(resumed.cached, first.executed - 1);
    assert_eq!(
        aggregate_bytes(&resumed),
        reference,
        "resume must reproduce the original aggregates"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_specs_are_equivalent_to_toml() {
    let toml_spec = spec();
    let json = serde_json::to_string(&toml_spec).unwrap();
    let json_spec = mss_sweep::spec_from_json(&json).unwrap();
    assert_eq!(json_spec, toml_spec);
    assert_eq!(json_spec.expand().unwrap(), toml_spec.expand().unwrap());
}

/// A small grid with a dynamic (Poisson failures + drift) scenario axis:
/// the determinism and caching contracts must extend to faulty platforms.
fn faulty_spec() -> SweepSpec {
    spec_from_toml(
        r#"
        name = "contract-faults"
        seed = 7
        replicates = 2
        tasks = [30]
        algorithms = ["SRPT", "LS", "SLJFWC"]

        [[platforms]]
        kind = "class"
        class = "het"
        count = 2
        slaves = 4

        [[arrivals]]
        kind = "bag"

        [[scenarios]]
        kind = "static"

        [[scenarios]]
        kind = "dynamic"
        horizon = 400.0
        min_up = 1

        [[scenarios.generators]]
        kind = "poisson-failures"
        mtbf = 40.0
        repair_mean = 8.0

        [[scenarios.generators]]
        kind = "speed-drift"
        step = 20.0
        sigma = 0.3
        "#,
    )
    .unwrap()
}

#[test]
fn scenario_grids_are_bit_identical_across_thread_counts() {
    let spec = faulty_spec();
    let cells = spec.expand().unwrap();
    assert_eq!(cells.len(), 2 * 2 * 2 * 3, "platforms×scenarios×reps×algs");
    assert!(cells.iter().filter(|c| c.scenario.is_some()).count() == cells.len() / 2);

    let single = run_spec(
        &spec,
        &SweepConfig {
            threads: 1,
            cache_dir: None,
            ..SweepConfig::default()
        },
    )
    .unwrap();
    for threads in [2, 8] {
        let parallel = run_spec(
            &spec,
            &SweepConfig {
                threads,
                cache_dir: None,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(parallel.metrics, single.metrics);
        assert_eq!(aggregate_bytes(&parallel), aggregate_bytes(&single));
    }
}

#[test]
fn scenario_cells_hit_the_cache_and_failures_change_the_key() {
    let dir = temp_dir("faulty-cache");
    let spec = faulty_spec();
    let config = SweepConfig {
        threads: 4,
        cache_dir: Some(dir.clone()),
        ..SweepConfig::default()
    };
    let first = run_spec(&spec, &config).unwrap();
    assert_eq!(first.cached, 0);
    let second = run_spec(&spec, &config).unwrap();
    assert_eq!(second.executed, 0, "scenario cells must be cacheable");

    // The static and dynamic halves of the grid must never share cache
    // keys: the scenario is part of the cell identity.
    let cells = spec.expand().unwrap();
    let static_keys: std::collections::HashSet<String> = cells
        .iter()
        .filter(|c| c.scenario.is_none())
        .map(mss_sweep::cell_key)
        .collect();
    let dynamic_keys: std::collections::HashSet<String> = cells
        .iter()
        .filter(|c| c.scenario.is_some())
        .map(mss_sweep::cell_key)
        .collect();
    assert!(static_keys.is_disjoint(&dynamic_keys));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_keys_in_specs_are_rejected() {
    // Top-level typo.
    let err = spec_from_toml("name = \"x\"\nseed = 1\nreplicas = 2").unwrap_err();
    assert!(err.to_string().contains("replicas"), "{err}");
    // Nested typo inside an axis entry.
    let err = spec_from_toml(
        r#"
        name = "x"
        seed = 1
        tasks = [10]
        algorithms = ["all"]
        [[platforms]]
        kind = "class"
        class = "het"
        slave = 5
        [[arrivals]]
        kind = "bag"
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("`slave`"), "{err}");
    assert!(err.to_string().contains("platforms[0]"), "{err}");
    // JSON goes through the same validation.
    let err = mss_sweep::spec_from_json(r#"{"name":"x","sede":1}"#).unwrap_err();
    assert!(err.to_string().contains("sede"), "{err}");
}
