//! The four adversary scripts shared by the nine theorems.
//!
//! Reading the proofs side by side shows they use only four game shapes:
//!
//! * [`two_checkpoints`] (Theorems 1, 2) — release `i` at 0; check the first
//!   send at `t1`; if it went to `P1`, release `j` at `t1` and check the
//!   second send at `t2`; if that also went to `P1` *or had not begun*,
//!   release a final task `k` at `t2`;
//! * [`one_checkpoint_one_task`] (Theorem 3) — release `i` at 0; if the
//!   first send went to `P1` before `τ`, release one more task at `τ`;
//! * [`one_checkpoint_three_tasks`] (Theorems 4, 5, 6) — same, but release
//!   *three* tasks `j, k, l` at `τ`;
//! * [`one_checkpoint_two_tasks`] (Theorems 7, 8, 9, three slaves) — same,
//!   but release *two* tasks `j, k` at `τ`; the "stop" branch triggers when
//!   the first send went to `P2` **or `P3`** or had not begun.
//!
//! In every script, the "stop" branches freeze the instance as it is —
//! exactly the proofs' "the adversary does not send other tasks".

use crate::game::{Ctx, GameResult, SchedulerFactory, SendObs, TheoremInfo};
use mss_exact::Surd;

fn obs_str(o: SendObs) -> String {
    match o {
        SendObs::NotBegun => "not begun".into(),
        SendObs::Begun(j) => format!("begun on P{}", j + 1),
    }
}

/// Script for Theorems 1 and 2 (two slaves, checkpoints `t1`, `t2`).
pub(crate) fn two_checkpoints(
    ctx: &Ctx,
    info: TheoremInfo,
    t1: Surd,
    t2: Surd,
    factory: SchedulerFactory<'_>,
) -> GameResult {
    let name = factory().name();
    let mut transcript = Vec::new();

    // Phase 1: single task i at 0.
    let releases1 = vec![Surd::ZERO];
    let trace1 = ctx.run(&releases1, factory);
    let obs1 = ctx.observe(&trace1, 0, t1);
    transcript.push(format!(
        "release i at 0; at t1={}: first send {}",
        t1,
        obs_str(obs1)
    ));

    match obs1 {
        SendObs::NotBegun | SendObs::Begun(1) => {
            // Proof cases 1–2: stop with the single-task instance.
            transcript.push("adversary stops (single-task instance)".into());
            ctx.finalize(info, name, &releases1, &trace1, transcript)
        }
        SendObs::Begun(0) => {
            // Phase 2: release j at t1.
            let releases2 = vec![Surd::ZERO, t1];
            let trace2 = ctx.run(&releases2, factory);
            let obs2 = ctx.observe(&trace2, 1, t2);
            transcript.push(format!(
                "release j at t1={}; at t2={}: second send {}",
                t1,
                t2,
                obs_str(obs2)
            ));
            match obs2 {
                SendObs::Begun(1) => {
                    transcript.push("adversary stops (two-task instance)".into());
                    ctx.finalize(info, name, &releases2, &trace2, transcript)
                }
                SendObs::Begun(0) | SendObs::NotBegun => {
                    // Proof cases 2–3: release the last task k at t2.
                    let releases3 = vec![Surd::ZERO, t1, t2];
                    let trace3 = ctx.run(&releases3, factory);
                    transcript.push(format!("release k at t2={t2}; instance final"));
                    ctx.finalize(info, name, &releases3, &trace3, transcript)
                }
                SendObs::Begun(other) => {
                    unreachable!("two-slave platform produced slave index {other}")
                }
            }
        }
        SendObs::Begun(other) => unreachable!("two-slave platform produced slave index {other}"),
    }
}

/// Script for Theorem 3 (two slaves, one checkpoint, one extra task).
pub(crate) fn one_checkpoint_one_task(
    ctx: &Ctx,
    info: TheoremInfo,
    tau: Surd,
    factory: SchedulerFactory<'_>,
) -> GameResult {
    let name = factory().name();
    let mut transcript = Vec::new();

    let releases1 = vec![Surd::ZERO];
    let trace1 = ctx.run(&releases1, factory);
    let obs = ctx.observe(&trace1, 0, tau);
    transcript.push(format!(
        "release i at 0; at τ={}: first send {}",
        tau,
        obs_str(obs)
    ));

    match obs {
        SendObs::NotBegun | SendObs::Begun(1) => {
            transcript.push("adversary stops (single-task instance)".into());
            ctx.finalize(info, name, &releases1, &trace1, transcript)
        }
        SendObs::Begun(0) => {
            let releases2 = vec![Surd::ZERO, tau];
            let trace2 = ctx.run(&releases2, factory);
            transcript.push(format!("release j at τ={tau}; instance final"));
            ctx.finalize(info, name, &releases2, &trace2, transcript)
        }
        SendObs::Begun(other) => unreachable!("two-slave platform produced slave index {other}"),
    }
}

/// Script for Theorems 4–6 (two slaves, one checkpoint, three extra tasks).
pub(crate) fn one_checkpoint_three_tasks(
    ctx: &Ctx,
    info: TheoremInfo,
    tau: Surd,
    factory: SchedulerFactory<'_>,
) -> GameResult {
    let name = factory().name();
    let mut transcript = Vec::new();

    let releases1 = vec![Surd::ZERO];
    let trace1 = ctx.run(&releases1, factory);
    let obs = ctx.observe(&trace1, 0, tau);
    transcript.push(format!(
        "release i at 0; at τ={}: first send {}",
        tau,
        obs_str(obs)
    ));

    match obs {
        SendObs::NotBegun | SendObs::Begun(1) => {
            transcript.push("adversary stops (single-task instance)".into());
            ctx.finalize(info, name, &releases1, &trace1, transcript)
        }
        SendObs::Begun(0) => {
            let releases2 = vec![Surd::ZERO, tau, tau, tau];
            let trace2 = ctx.run(&releases2, factory);
            transcript.push(format!("release j, k, l at τ={tau}; instance final"));
            ctx.finalize(info, name, &releases2, &trace2, transcript)
        }
        SendObs::Begun(other) => unreachable!("two-slave platform produced slave index {other}"),
    }
}

/// Script for Theorems 7–9 (three slaves, one checkpoint, two extra tasks).
pub(crate) fn one_checkpoint_two_tasks(
    ctx: &Ctx,
    info: TheoremInfo,
    tau: Surd,
    factory: SchedulerFactory<'_>,
) -> GameResult {
    let name = factory().name();
    let mut transcript = Vec::new();

    let releases1 = vec![Surd::ZERO];
    let trace1 = ctx.run(&releases1, factory);
    let obs = ctx.observe(&trace1, 0, tau);
    transcript.push(format!(
        "release i at 0; at τ={}: first send {}",
        tau,
        obs_str(obs)
    ));

    match obs {
        // "If A scheduled the task i on P2 or P3 [or did not begin], the
        // adversary does not send any other task."
        SendObs::NotBegun | SendObs::Begun(1) | SendObs::Begun(2) => {
            transcript.push("adversary stops (single-task instance)".into());
            ctx.finalize(info, name, &releases1, &trace1, transcript)
        }
        SendObs::Begun(0) => {
            let releases2 = vec![Surd::ZERO, tau, tau];
            let trace2 = ctx.run(&releases2, factory);
            transcript.push(format!("release j, k at τ={tau}; instance final"));
            ctx.finalize(info, name, &releases2, &trace2, transcript)
        }
        SendObs::Begun(other) => unreachable!("three-slave platform produced slave index {other}"),
    }
}
