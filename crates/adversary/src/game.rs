//! The adversary-game framework.
//!
//! Each of the paper's nine theorems is a *game* between a deterministic
//! on-line algorithm `A` and an adversary that decides, by watching `A`'s
//! first decisions at fixed checkpoint instants, which tasks to release
//! next. The proofs are case analyses over `A`'s possible observable
//! behaviours; this module turns them into executable machinery:
//!
//! 1. the adversary runs `A` (through the real DES) on the instance built so
//!    far, *to completion*;
//! 2. it classifies `A`'s decision at the checkpoint (which slave received
//!    the first/second send, or none) from the trace;
//! 3. determinism makes re-running equivalent to adaptive injection: `A`'s
//!    decisions before a release date cannot depend on it, so the prefix of
//!    the extended run is identical and the observation stays valid;
//! 4. when the instance is final, the measured objective value of `A`'s own
//!    run is divided by the **exact** offline optimum
//!    ([`mss_opt::best_exact`]) of the final instance.
//!
//! The theorem then asserts `ratio ≥ bound` in the limit of its parameters;
//! with the concrete parameters chosen here each game also carries the
//! instance-specific `certified` threshold that every deterministic
//! algorithm must meet *exactly* (see each theorem module).

use mss_core::{Objective, OnlineScheduler, PlatformClass};
use mss_exact::Surd;
use mss_opt::schedule::{Goal, Instance};
use mss_sim::{simulate, Platform, SimConfig, TaskArrival, Trace};

/// A factory producing fresh, independent instances of one deterministic
/// algorithm (needed because games re-run the algorithm from scratch).
pub type SchedulerFactory<'a> = &'a dyn Fn() -> Box<dyn OnlineScheduler>;

/// Identifier of a theorem of the paper (Table 1 cell).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TheoremId {
    /// §3.2, makespan on communication-homogeneous platforms (5/4).
    T1,
    /// §3.2, sum-flow on communication-homogeneous platforms ((2+4√2)/7).
    T2,
    /// §3.2, max-flow on communication-homogeneous platforms ((5−√7)/2).
    T3,
    /// §3.3, makespan on computation-homogeneous platforms (6/5).
    T4,
    /// §3.3, max-flow on computation-homogeneous platforms (5/4).
    T5,
    /// §3.3, sum-flow on computation-homogeneous platforms (23/22).
    T6,
    /// §3.4, makespan on fully heterogeneous platforms ((1+√3)/2).
    T7,
    /// §3.4, sum-flow on fully heterogeneous platforms ((√13−1)/2).
    T8,
    /// §3.4, max-flow on fully heterogeneous platforms (√2).
    T9,
}

impl TheoremId {
    /// All nine, in paper order.
    pub const ALL: [TheoremId; 9] = [
        TheoremId::T1,
        TheoremId::T2,
        TheoremId::T3,
        TheoremId::T4,
        TheoremId::T5,
        TheoremId::T6,
        TheoremId::T7,
        TheoremId::T8,
        TheoremId::T9,
    ];

    /// Theorem number (1–9).
    pub fn number(self) -> usize {
        TheoremId::ALL.iter().position(|&t| t == self).unwrap() + 1
    }
}

impl std::fmt::Display for TheoremId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Theorem {}", self.number())
    }
}

/// Static description of a theorem (its Table 1 cell).
#[derive(Clone, Debug)]
pub struct TheoremInfo {
    /// Which theorem.
    pub id: TheoremId,
    /// Row of Table 1.
    pub platform_class: PlatformClass,
    /// Column of Table 1.
    pub objective: Objective,
    /// The proven lower bound on the competitive ratio (exact).
    pub bound: Surd,
    /// The ratio guaranteed by *this implementation's* concrete parameters
    /// (equals `bound` for the ε-free theorems; slightly below it for the
    /// theorems whose proof takes ε → 0 or c₁ → ∞).
    pub certified: Surd,
}

/// The outcome of one adversary game against one algorithm.
#[derive(Clone, Debug)]
pub struct GameResult {
    /// The theorem that was played.
    pub info: TheoremInfo,
    /// Name of the algorithm that was played against.
    pub scheduler: String,
    /// The final instance the adversary settled on (exact arithmetic).
    pub instance: Instance<Surd>,
    /// The algorithm's achieved objective value (measured on the DES trace).
    pub algorithm_value: f64,
    /// The exact offline optimum of the final instance.
    pub optimal_value: Surd,
    /// `algorithm_value / optimal_value` (f64; the optimum is exact,
    /// the algorithm's value carries only simulation round-off ≈ 1e-12).
    pub ratio: f64,
    /// Human-readable log of the adversary's observations and branches.
    pub transcript: Vec<String>,
}

impl GameResult {
    /// Whether the measured ratio meets the certified threshold
    /// (with a relative slack of 1e-9 for f64 round-off).
    pub fn holds(&self) -> bool {
        let certified = self.info.certified.to_f64();
        self.ratio >= certified * (1.0 - 1e-9)
    }

    /// Slack between the measured ratio and the theoretical bound
    /// (positive when the algorithm does even worse than the bound).
    pub fn margin_over_bound(&self) -> f64 {
        self.ratio - self.info.bound.to_f64()
    }
}

/// What the adversary saw about the `k`-th send at a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendObs {
    /// The `k`-th send had not begun strictly before the checkpoint.
    NotBegun,
    /// The `k`-th send began strictly before the checkpoint, to this slave.
    Begun(usize),
}

/// Shared per-theorem context: the exact platform and its f64 image.
pub(crate) struct Ctx {
    pub c: Vec<Surd>,
    pub p: Vec<Surd>,
    platform_f64: Platform,
}

impl Ctx {
    pub fn new(c: Vec<Surd>, p: Vec<Surd>) -> Self {
        let cf: Vec<f64> = c.iter().map(|x| x.to_f64()).collect();
        let pf: Vec<f64> = p.iter().map(|x| x.to_f64()).collect();
        Ctx {
            c,
            p,
            platform_f64: Platform::from_vectors(&cf, &pf),
        }
    }

    /// Runs a fresh instance of the algorithm on the given releases.
    pub fn run(&self, releases: &[Surd], factory: SchedulerFactory<'_>) -> Trace {
        let tasks: Vec<TaskArrival> = releases
            .iter()
            .map(|r| TaskArrival::at(r.to_f64()))
            .collect();
        let mut scheduler = factory();
        simulate(
            &self.platform_f64,
            &tasks,
            &SimConfig::default(),
            &mut scheduler,
        )
        .expect("adversary game: algorithm failed to complete the instance")
    }

    /// Classifies the `k`-th send (in send-start order) at checkpoint `tau`.
    pub fn observe(&self, trace: &Trace, k: usize, tau: Surd) -> SendObs {
        let mut sends: Vec<_> = trace.records().iter().collect();
        sends.sort_by_key(|r| r.send_start);
        match sends.get(k) {
            Some(r) if r.send_start.as_f64() < tau.to_f64() - 1e-9 => SendObs::Begun(r.slave.0),
            _ => SendObs::NotBegun,
        }
    }

    /// Builds the exact instance for the given releases.
    pub fn instance(&self, releases: &[Surd]) -> Instance<Surd> {
        Instance {
            c: self.c.clone(),
            p: self.p.clone(),
            r: releases.to_vec(),
        }
    }

    /// Final step of every game: measure the algorithm, compute the exact
    /// optimum, assemble the result.
    pub fn finalize(
        &self,
        info: TheoremInfo,
        scheduler_name: String,
        releases: &[Surd],
        trace: &Trace,
        transcript: Vec<String>,
    ) -> GameResult {
        let objective = info.objective;
        let algorithm_value = objective.evaluate(trace);
        let instance = self.instance(releases);
        let goal = Goal::from_objective(objective);
        let best = mss_opt::best_exact(&instance, goal);
        let optimal = best.value;
        let ratio = algorithm_value / optimal.to_f64();
        GameResult {
            info,
            scheduler: scheduler_name,
            instance,
            algorithm_value,
            optimal_value: optimal,
            ratio,
            transcript,
        }
    }
}
