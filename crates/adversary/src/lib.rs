//! # mss-adversary — the nine lower-bound theorems as executable games
//!
//! Section 3 of Pineau, Robert & Vivien proves, for each combination of
//! platform class (communication-homogeneous, computation-homogeneous,
//! fully heterogeneous) and objective (makespan, max-flow, sum-flow), a
//! lower bound on the competitive ratio of **any deterministic on-line
//! algorithm** — Table 1 of the paper. Each proof is an adversary argument:
//! release a task, watch what the algorithm commits to by a checkpoint
//! instant, then extend the instance so that the commitment hurts.
//!
//! This crate makes those arguments *executable*: [`play`] runs a theorem's
//! adversary against a real scheduler (through the `mss-sim` DES, re-running
//! deterministically instead of injecting adaptively) and returns the
//! measured competitive ratio together with the **exact** offline optimum
//! ([`mss_opt::best_exact`], surd arithmetic) and the theorem's exact bound.
//! Every deterministic scheduler — the paper's seven heuristics, or any
//! custom [`mss_core::OnlineScheduler`] — must come out with
//! `ratio ≥ certified`, where `certified` equals the theoretical bound for
//! the ε-free theorems (1, 2, 3, 6) and sits within a few 10⁻⁴ of it for
//! the theorems whose proofs take a limit (4, 5, 7, 8, 9).
//!
//! ```
//! use mss_adversary::{play, TheoremId};
//! use mss_core::Algorithm;
//!
//! let factory = || Algorithm::ListScheduling.build();
//! let result = play(TheoremId::T1, &factory);
//! assert!(result.holds());                 // ratio ≥ 5/4, as Theorem 1 proves
//! assert!((result.ratio - 1.25).abs() < 1e-9); // LS hits the bound exactly
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod game;
mod scripts;
mod theorems;

pub use game::{GameResult, SchedulerFactory, SendObs, TheoremId, TheoremInfo};
pub use theorems::{
    play, play_all, theorem1, theorem2, theorem3, theorem4, theorem5, theorem6, theorem7, theorem8,
    theorem9,
};
