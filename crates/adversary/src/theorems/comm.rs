//! Theorems 1–3 (§3.2): communication-homogeneous platforms (`c_j = c`).
//!
//! All three use two slaves with `c = 1` and heterogeneous speeds; the
//! adversary watches where the algorithm's first send goes.

use crate::game::{Ctx, GameResult, SchedulerFactory, TheoremId, TheoremInfo};
use crate::scripts::{one_checkpoint_one_task, two_checkpoints};
use mss_core::{Objective, PlatformClass};
use mss_exact::{rat, Surd};

/// Theorem 1 — `Q,MS | online, r_i, p_j, c_j = c | max C_i`, bound **5/4**.
///
/// Platform: `c = 1`, `p = (3, 7)`. Checkpoints `t1 = c`, `t2 = 2c`;
/// the adversary releases `i` at 0, possibly `j` at `t1`, possibly `k` at
/// `t2`. Every branch of the proof yields ratio ≥ 5/4 exactly, so
/// `certified == bound`.
pub fn theorem1(factory: SchedulerFactory<'_>) -> GameResult {
    let ctx = Ctx::new(
        vec![Surd::ONE, Surd::ONE],
        vec![Surd::from_int(3), Surd::from_int(7)],
    );
    let bound = Surd::from_ratio(5, 4);
    let info = TheoremInfo {
        id: TheoremId::T1,
        platform_class: PlatformClass::CommHomogeneous,
        objective: Objective::Makespan,
        bound,
        certified: bound,
    };
    two_checkpoints(&ctx, info, Surd::ONE, Surd::from_int(2), factory)
}

/// Theorem 2 — `Q,MS | online, r_i, p_j, c_j = c | Σ(C_i − r_i)`, bound
/// **(2+4√2)/7 ≈ 1.093**.
///
/// Platform: `c = 1`, `p₁ = 2`, `p₂ = 4√2 − 2`. Same two-checkpoint script
/// as Theorem 1; all branch ratios are ≥ the bound exactly
/// (`certified == bound`).
pub fn theorem2(factory: SchedulerFactory<'_>) -> GameResult {
    let p2 = Surd::new(rat(-2, 1), rat(4, 1), 2); // 4√2 − 2
    let ctx = Ctx::new(vec![Surd::ONE, Surd::ONE], vec![Surd::from_int(2), p2]);
    let bound = (Surd::from_int(2) + Surd::from_int(4) * Surd::sqrt(2)) / Surd::from_int(7);
    let info = TheoremInfo {
        id: TheoremId::T2,
        platform_class: PlatformClass::CommHomogeneous,
        objective: Objective::SumFlow,
        bound,
        certified: bound,
    };
    two_checkpoints(&ctx, info, Surd::ONE, Surd::from_int(2), factory)
}

/// Theorem 3 — `Q,MS | online, r_i, p_j, c_j = c | max(C_i − r_i)`, bound
/// **(5−√7)/2 ≈ 1.177**.
///
/// Platform: `c = 1`, `p₁ = (2+√7)/3`, `p₂ = (1+2√7)/3`; single checkpoint
/// `τ = (4−√7)/3 < c` and at most one extra task. All branch ratios equal
/// the bound exactly (`certified == bound`).
pub fn theorem3(factory: SchedulerFactory<'_>) -> GameResult {
    let p1 = Surd::new(rat(2, 3), rat(1, 3), 7); // (2+√7)/3
    let p2 = Surd::new(rat(1, 3), rat(2, 3), 7); // (1+2√7)/3
    let tau = Surd::new(rat(4, 3), rat(-1, 3), 7); // (4−√7)/3
    let ctx = Ctx::new(vec![Surd::ONE, Surd::ONE], vec![p1, p2]);
    let bound = (Surd::from_int(5) - Surd::sqrt(7)) / Surd::from_int(2);
    let info = TheoremInfo {
        id: TheoremId::T3,
        platform_class: PlatformClass::CommHomogeneous,
        objective: Objective::MaxFlow,
        bound,
        certified: bound,
    };
    one_checkpoint_one_task(&ctx, info, tau, factory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_core::Algorithm;

    #[test]
    fn theorem1_platform_constants_match_proof() {
        // Walk the proof arithmetic once more in exact terms: optimal
        // makespans 4, 7, 8 for the 1-, 2- and 3-task instances.
        use mss_opt::schedule::{Goal, Instance};
        let c = vec![Surd::ONE, Surd::ONE];
        let p = vec![Surd::from_int(3), Surd::from_int(7)];
        for (releases, expect) in [
            (vec![Surd::ZERO], 4),
            (vec![Surd::ZERO, Surd::ONE], 7),
            (vec![Surd::ZERO, Surd::ONE, Surd::from_int(2)], 8),
        ] {
            let inst = Instance {
                c: c.clone(),
                p: p.clone(),
                r: releases,
            };
            let best = mss_opt::best_exact(&inst, Goal::Makespan);
            assert_eq!(best.value, Surd::from_int(expect));
        }
    }

    #[test]
    fn theorem1_ls_achieves_exactly_the_bound() {
        let factory = || Algorithm::ListScheduling.build();
        let result = theorem1(&factory);
        assert!(result.holds(), "{:?}", result.transcript);
        assert!(
            (result.ratio - 1.25).abs() < 1e-9,
            "LS is the proof's canonical victim: ratio {}",
            result.ratio
        );
        assert_eq!(result.optimal_value, Surd::from_int(8));
    }

    #[test]
    fn theorem1_srpt_branch_two_tasks() {
        // SRPT sends j to P2 at t1 → the adversary stops with two tasks;
        // ratio 9/7 > 5/4.
        let factory = || Algorithm::Srpt.build();
        let result = theorem1(&factory);
        assert!(result.holds());
        assert_eq!(result.instance.r.len(), 2, "{:?}", result.transcript);
        assert!(
            (result.ratio - 9.0 / 7.0).abs() < 1e-9,
            "ratio {}",
            result.ratio
        );
    }

    #[test]
    fn theorem2_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem2(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn theorem3_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem3(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn theorem3_tau_is_before_c() {
        let tau = Surd::new(rat(4, 3), rat(-1, 3), 7);
        assert!(tau > Surd::ZERO && tau < Surd::ONE);
    }
}
