//! One module per Table 1 row; one public function per theorem.

mod comm;
mod comp;
mod het;

pub use comm::{theorem1, theorem2, theorem3};
pub use comp::{theorem4, theorem5, theorem6};
pub use het::{theorem7, theorem8, theorem9};

use crate::game::{GameResult, SchedulerFactory, TheoremId};

/// Plays the given theorem's adversary against the algorithm.
pub fn play(id: TheoremId, factory: SchedulerFactory<'_>) -> GameResult {
    match id {
        TheoremId::T1 => theorem1(factory),
        TheoremId::T2 => theorem2(factory),
        TheoremId::T3 => theorem3(factory),
        TheoremId::T4 => theorem4(factory),
        TheoremId::T5 => theorem5(factory),
        TheoremId::T6 => theorem6(factory),
        TheoremId::T7 => theorem7(factory),
        TheoremId::T8 => theorem8(factory),
        TheoremId::T9 => theorem9(factory),
    }
}

/// Plays all nine theorems against the algorithm, in paper order.
pub fn play_all(factory: SchedulerFactory<'_>) -> Vec<GameResult> {
    TheoremId::ALL.iter().map(|&id| play(id, factory)).collect()
}
