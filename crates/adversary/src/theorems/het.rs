//! Theorems 7–9 (§3.4): fully heterogeneous platforms.
//!
//! Three slaves: a fast-but-far `P1` (tiny `p₁`, huge `c₁`) and two
//! identical near-but-slow slaves `P2, P3`. The adversary watches the first
//! send at `τ` and, if it went to `P1`, releases two more tasks at `τ`.

use crate::game::{Ctx, GameResult, SchedulerFactory, TheoremId, TheoremInfo};
use crate::scripts::one_checkpoint_two_tasks;
use mss_core::{Objective, PlatformClass};
use mss_exact::{rat, Surd};

/// `min(n1/d1, n2/d2)` for positive surds, deciding the minimum by
/// cross-multiplication (`n1·d2` vs `n2·d1`) *before* dividing. Dividing
/// first and comparing the quotients squares enormous rationals inside the
/// exact comparison and can overflow `i128`; cross-multiplication keeps
/// every intermediate small.
fn min_ratio(n1: Surd, d1: Surd, n2: Surd, d2: Surd) -> Surd {
    debug_assert!(d1.signum() > 0 && d2.signum() > 0);
    if n1 * d2 <= n2 * d1 {
        n1 / d1
    } else {
        n2 / d2
    }
}

/// Theorem 7 — `Q,MS | online, r_i, p_j, c_j | max C_i`, bound
/// **(1+√3)/2 ≈ 1.366**.
///
/// Platform: `p₁ = ε`, `p₂ = p₃ = 1+√3`, `c₁ = 1+√3`, `c₂ = c₃ = 1`;
/// checkpoint `τ = 1`. Both decisive branches converge to the bound as
/// `ε → 0`; with `ε = 1/10000` the game certifies
/// `min((3+2√3+ε)/(3+√3+ε), (2+√3)/(1+√3+ε)) ≈ 1.36598`.
pub fn theorem7(factory: SchedulerFactory<'_>) -> GameResult {
    let eps = Surd::from_ratio(1, 10_000);
    let one_plus_sqrt3 = Surd::new(rat(1, 1), rat(1, 1), 3);
    let ctx = Ctx::new(
        vec![one_plus_sqrt3, Surd::ONE, Surd::ONE],
        vec![eps, one_plus_sqrt3, one_plus_sqrt3],
    );
    let bound = (Surd::ONE + Surd::sqrt(3)) / Surd::from_int(2);
    let certified = min_ratio(
        Surd::from_int(3) + Surd::from_int(2) * Surd::sqrt(3) + eps,
        Surd::from_int(3) + Surd::sqrt(3) + eps,
        Surd::from_int(2) + Surd::sqrt(3),
        Surd::ONE + Surd::sqrt(3) + eps,
    );
    let info = TheoremInfo {
        id: TheoremId::T7,
        platform_class: PlatformClass::Heterogeneous,
        objective: Objective::Makespan,
        bound,
        certified,
    };
    one_checkpoint_two_tasks(&ctx, info, Surd::ONE, factory)
}

/// Theorem 8 — `Q,MS | online, r_i, p_j, c_j | Σ(C_i − r_i)`, bound
/// **(√13−1)/2 ≈ 1.302**.
///
/// The proof's platform uses `τ = (√(52c₁² + 12c₁ + 1) − (6c₁+1))/4` and
/// takes `c₁ → ∞`. We need `τ` to live in a quadratic field together with
/// `c₁`; choosing `c₁` as a rational point of the conic
/// `y² = 52x² + 12x + 1` makes `τ` *rational*. The parametrization
/// `x = (2m−12)/(52−m²)` (from the point `(0,1)`) with `m = 721/100` gives
/// `c₁ = 24200/159 ≈ 152.2` and `τ = 14641/318 ≈ 46.04`, close enough to
/// the limit that the game certifies `≈ 1.30250` against the bound
/// `≈ 1.30278`. With `ε = 1/100` all of the proof's side conditions
/// (`τ < c₁`, `c₁ > ε`, `τ > ε`) hold.
pub fn theorem8(factory: SchedulerFactory<'_>) -> GameResult {
    let c1 = Surd::from_ratio(24_200, 159);
    let tau = Surd::from_ratio(14_641, 318);
    let eps = Surd::from_ratio(1, 100);
    let p23 = tau + c1 - Surd::ONE;
    let ctx = Ctx::new(vec![c1, Surd::ONE, Surd::ONE], vec![eps, p23, p23]);
    let bound = (Surd::sqrt(13) - Surd::ONE) / Surd::from_int(2);
    // Decisive branches of the proof with these parameters:
    let certified = min_ratio(
        Surd::from_int(5) * c1 - tau + Surd::ONE + Surd::from_int(2) * eps,
        Surd::from_int(3) * c1 + Surd::from_int(2) * tau + Surd::ONE + eps,
        tau + c1,
        c1 + eps,
    );
    let info = TheoremInfo {
        id: TheoremId::T8,
        platform_class: PlatformClass::Heterogeneous,
        objective: Objective::SumFlow,
        bound,
        certified,
    };
    one_checkpoint_two_tasks(&ctx, info, tau, factory)
}

/// Theorem 9 — `Q,MS | online, r_i, p_j, c_j | max(C_i − r_i)`, bound
/// **√2 ≈ 1.414**.
///
/// Platform: `c₁ = 2(1+√2)`, `c₂ = c₃ = 1`, `p₁ = ε`,
/// `p₂ = p₃ = √2·c₁ − 1 = 3+2√2`; the checkpoint `τ = (√2−1)c₁` is exactly
/// `2`. The decisive branch yields exactly √2; the stop branches yield
/// `√2·c₁/(c₁+ε)`, so with `ε = 1/10000` the game certifies `≈ 1.41418`.
pub fn theorem9(factory: SchedulerFactory<'_>) -> GameResult {
    let eps = Surd::from_ratio(1, 10_000);
    let c1 = Surd::from_int(2) + Surd::from_int(2) * Surd::sqrt(2);
    let p23 = Surd::from_int(3) + Surd::from_int(2) * Surd::sqrt(2);
    let ctx = Ctx::new(vec![c1, Surd::ONE, Surd::ONE], vec![eps, p23, p23]);
    let bound = Surd::sqrt(2);
    let certified = (Surd::sqrt(2) * c1) / (c1 + eps);
    let info = TheoremInfo {
        id: TheoremId::T9,
        platform_class: PlatformClass::Heterogeneous,
        objective: Objective::MaxFlow,
        bound,
        certified,
    };
    one_checkpoint_two_tasks(&ctx, info, Surd::from_int(2), factory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_core::Algorithm;

    #[test]
    fn theorem8_conic_point_is_exact() {
        // 52·c₁² + 12·c₁ + 1 must be a perfect rational square (s = 1+m·c₁).
        let c1 = Surd::from_ratio(24_200, 159);
        let s = Surd::from_ratio(174_641, 159);
        let lhs = Surd::from_int(52) * c1 * c1 + Surd::from_int(12) * c1 + Surd::ONE;
        assert_eq!(lhs, s * s);
        // And τ = (s − (6c₁+1))/4 = 14641/318.
        let tau = (s - (Surd::from_int(6) * c1 + Surd::ONE)) / Surd::from_int(4);
        assert_eq!(tau, Surd::from_ratio(14_641, 318));
        // Proof side conditions.
        assert!(tau < c1);
        assert!(tau > Surd::from_ratio(1, 100));
    }

    #[test]
    fn theorem9_constants_simplify_as_claimed() {
        let c1 = Surd::from_int(2) + Surd::from_int(2) * Surd::sqrt(2);
        // τ = (√2−1)·c₁ = 2 exactly.
        assert_eq!((Surd::sqrt(2) - Surd::ONE) * c1, Surd::from_int(2));
        // p₂ = √2·c₁ − 1 = 3 + 2√2 exactly.
        assert_eq!(
            Surd::sqrt(2) * c1 - Surd::ONE,
            Surd::from_int(3) + Surd::from_int(2) * Surd::sqrt(2)
        );
        // c₂ + p₂ = √2·c₁ (used twice in the proof).
        assert_eq!(
            Surd::ONE + (Surd::sqrt(2) * c1 - Surd::ONE),
            Surd::sqrt(2) * c1
        );
    }

    #[test]
    fn theorem7_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem7(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn theorem8_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem8(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn theorem9_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem9(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn certified_gaps_are_small() {
        let f = || Algorithm::ListScheduling.build();
        for (result, max_gap) in [
            (theorem7(&f), 1e-4),
            (theorem8(&f), 5e-4),
            (theorem9(&f), 3e-5),
        ] {
            let gap = result.info.bound.to_f64() - result.info.certified.to_f64();
            assert!(
                (0.0..=max_gap).contains(&gap),
                "{}: certified gap {gap}",
                result.info.id
            );
        }
    }
}
