//! Theorems 4–6 (§3.3): computation-homogeneous platforms (`p_j = p`).
//!
//! Two slaves with equal speed and heterogeneous links; the adversary
//! watches the first send at a single checkpoint `τ` and, if it went to
//! `P1`, floods three more tasks at `τ`.

use crate::game::{Ctx, GameResult, SchedulerFactory, TheoremId, TheoremInfo};
use crate::scripts::one_checkpoint_three_tasks;
use mss_core::{Objective, PlatformClass};
use mss_exact::Surd;

/// Theorem 4 — `P,MS | online, r_i, p_j = p, c_j | max C_i`, bound **6/5**.
///
/// The proof takes `p = max(5, 12/(25ε))` and `c = (1, p/2)`; the ratio of
/// its decisive branch is `3p / (1 + 5p/2) → 6/5` as `p → ∞`. We fix
/// `p = 10000`, so this game certifies `30000/25001 ≈ 1.19995` — within
/// `5·10⁻⁵` of the bound.
pub fn theorem4(factory: SchedulerFactory<'_>) -> GameResult {
    let p = Surd::from_int(10_000);
    let half_p = Surd::from_int(5_000);
    let ctx = Ctx::new(vec![Surd::ONE, half_p], vec![p, p]);
    let bound = Surd::from_ratio(6, 5);
    // min over proof branches: main 3p/(1+5p/2); stop branches ≈ 3/2.
    let certified = (Surd::from_int(3) * p) / (Surd::ONE + Surd::from_ratio(5, 2) * p);
    let info = TheoremInfo {
        id: TheoremId::T4,
        platform_class: PlatformClass::CompHomogeneous,
        objective: Objective::Makespan,
        bound,
        certified,
    };
    one_checkpoint_three_tasks(&ctx, info, half_p, factory)
}

/// Theorem 5 — `P,MS | online, r_i, p_j = p, c_j | max(C_i − r_i)`, bound
/// **5/4**.
///
/// The proof takes `c₁ = ε`, `c₂ = 1`, `p = 2c₂ − c₁` and `τ = c₂ − c₁`;
/// its decisive branch yields `(5 − 2ε)/4`. We fix `ε = 1/10000`, so this
/// game certifies `(5 − 2/10⁴)/4 ≈ 1.24995`.
pub fn theorem5(factory: SchedulerFactory<'_>) -> GameResult {
    let eps = Surd::from_ratio(1, 10_000);
    let c2 = Surd::ONE;
    let p = Surd::from_int(2) * c2 - eps; // 2c₂ − c₁
    let tau = c2 - eps;
    let ctx = Ctx::new(vec![eps, c2], vec![p, p]);
    let bound = Surd::from_ratio(5, 4);
    let certified = (Surd::from_int(5) - Surd::from_int(2) * eps) / Surd::from_int(4);
    let info = TheoremInfo {
        id: TheoremId::T5,
        platform_class: PlatformClass::CompHomogeneous,
        objective: Objective::MaxFlow,
        bound,
        certified,
    };
    one_checkpoint_three_tasks(&ctx, info, tau, factory)
}

/// Theorem 6 — `P,MS | online, r_i, p_j = p, c_j | Σ(C_i − r_i)`, bound
/// **23/22**.
///
/// Platform `c = (1, 2)`, `p = 3`, checkpoint `τ = c₂ = 2` — the one
/// ε-free theorem of §3.3: the best reachable sum-flow after committing `i`
/// to `P1` is 23 while the optimum is 22, so `certified == bound` exactly.
pub fn theorem6(factory: SchedulerFactory<'_>) -> GameResult {
    let ctx = Ctx::new(
        vec![Surd::ONE, Surd::from_int(2)],
        vec![Surd::from_int(3), Surd::from_int(3)],
    );
    let bound = Surd::from_ratio(23, 22);
    let info = TheoremInfo {
        id: TheoremId::T6,
        platform_class: PlatformClass::CompHomogeneous,
        objective: Objective::SumFlow,
        bound,
        certified: bound,
    };
    one_checkpoint_three_tasks(&ctx, info, Surd::from_int(2), factory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_core::Algorithm;
    use mss_exact::Surd;
    use mss_opt::schedule::{Goal, Instance};

    #[test]
    fn theorem6_offline_optimum_is_22() {
        // The proof's optimal schedule (i→P2, j→P1, k→P2, l→P1) reaches 22.
        let inst = Instance {
            c: vec![Surd::ONE, Surd::from_int(2)],
            p: vec![Surd::from_int(3), Surd::from_int(3)],
            r: vec![
                Surd::ZERO,
                Surd::from_int(2),
                Surd::from_int(2),
                Surd::from_int(2),
            ],
        };
        let best = mss_opt::best_exact(&inst, Goal::SumFlow);
        assert_eq!(best.value, Surd::from_int(22));
    }

    #[test]
    fn theorem4_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem4(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn theorem5_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem5(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn theorem6_all_algorithms() {
        for a in Algorithm::ALL {
            let factory = move || a.build();
            let result = theorem6(&factory);
            assert!(
                result.holds(),
                "{a}: ratio {} < certified {} — transcript {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }

    #[test]
    fn certified_close_to_bounds() {
        let f = || Algorithm::ListScheduling.build();
        for (result, slack) in [
            (theorem4(&f), 5e-5),
            (theorem5(&f), 6e-5),
            (theorem6(&f), 0.0),
        ] {
            let gap = result.info.bound.to_f64() - result.info.certified.to_f64();
            assert!(
                (0.0..=slack + 1e-12).contains(&gap),
                "{}: certified gap {gap}",
                result.info.id
            );
        }
    }
}
