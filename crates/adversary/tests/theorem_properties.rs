//! The theorems hold for *any* deterministic algorithm — not just the seven
//! heuristics. We generate arbitrary deterministic schedulers from random
//! tapes (decisions are a fixed function of the observation count, so each
//! tape defines one legitimate deterministic on-line algorithm) and check
//! that every one of them loses every one of the nine games.

use mss_adversary::{play, play_all, TheoremId};
use mss_core::{Algorithm, Decision, OnlineScheduler, SchedulerEvent, SimView, SlaveId};
use proptest::prelude::*;

/// A deterministic scheduler whose choices are read off a fixed tape.
/// Identical observation histories yield identical decisions, which is the
/// determinism the adversary games (and the paper's theorems) require.
struct TapeScheduler {
    tape: Vec<u32>,
    pos: usize,
    naps: usize,
}

impl TapeScheduler {
    fn new(tape: Vec<u32>) -> Self {
        TapeScheduler {
            tape,
            pos: 0,
            naps: 0,
        }
    }
}

impl OnlineScheduler for TapeScheduler {
    fn name(&self) -> String {
        "tape".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
        if !view.link_idle() || view.pending_tasks().is_empty() {
            return Decision::Idle;
        }
        let v = self.tape[self.pos % self.tape.len()];
        self.pos += 1;
        // Occasionally dawdle — the proofs explicitly cover algorithms that
        // do not send as soon as possible ("Nothing forces A to send the
        // task i as soon as possible"). Naps are bounded to keep progress.
        if v.is_multiple_of(5) && self.naps < 2 {
            self.naps += 1;
            let delay = 0.1 + f64::from(v % 97) / 50.0;
            return Decision::WakeAt(view.now() + delay);
        }
        let task = view.pending_tasks()[v as usize % view.pending_tasks().len()];
        let slave = SlaveId((v / 7) as usize % view.num_slaves());
        Decision::Send { task, slave }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_deterministic_algorithms_respect_all_nine_bounds(
        tape in proptest::collection::vec(0u32..10_000, 4..32),
    ) {
        for id in TheoremId::ALL {
            let tape_clone = tape.clone();
            let factory = move || -> Box<dyn OnlineScheduler> {
                Box::new(TapeScheduler::new(tape_clone.clone()))
            };
            let result = play(id, &factory);
            prop_assert!(
                result.holds(),
                "{id}: tape scheduler beat the bound: ratio {} < certified {}\n\
                 tape: {tape:?}\ntranscript: {:?}",
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
        }
    }
}

#[test]
fn table1_matrix_all_heuristics_all_theorems() {
    // The full Table 1 verification: 9 theorems × 7 heuristics = 63 games.
    for a in Algorithm::ALL {
        let factory = move || a.build();
        for result in play_all(&factory) {
            assert!(
                result.holds(),
                "{} vs {}: ratio {} < certified {}\ntranscript: {:?}",
                result.info.id,
                a,
                result.ratio,
                result.info.certified.to_f64(),
                result.transcript
            );
            // Ratios are bounded: nobody is catastrophically bad on these
            // tiny instances (sanity check against game-construction bugs).
            assert!(
                result.ratio < 10.0,
                "{} vs {}: implausible ratio {}",
                result.info.id,
                a,
                result.ratio
            );
        }
    }
}

#[test]
#[allow(clippy::approx_constant)] // 1.4142 is Table 1's printed decimal, not a √2 stand-in
fn bounds_match_table1_decimals() {
    let f = || Algorithm::ListScheduling.build();
    let expected = [
        (TheoremId::T1, 1.250),
        (TheoremId::T2, 1.0938),
        (TheoremId::T3, 1.1771),
        (TheoremId::T4, 1.200),
        (TheoremId::T5, 1.250),
        (TheoremId::T6, 23.0 / 22.0),
        (TheoremId::T7, 1.3660),
        (TheoremId::T8, 1.3028),
        (TheoremId::T9, 1.4142),
    ];
    for (id, dec) in expected {
        let result = play(id, &f);
        assert!(
            (result.info.bound.to_f64() - dec).abs() < 5e-4,
            "{id}: bound {} != Table 1 value {dec}",
            result.info.bound.to_f64()
        );
    }
}

#[test]
fn transcripts_record_the_game() {
    let f = || Algorithm::ListScheduling.build();
    let result = play(TheoremId::T1, &f);
    assert!(result.transcript.len() >= 2);
    assert!(result.transcript[0].contains("release i at 0"));
}
