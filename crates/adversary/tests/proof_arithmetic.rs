//! Machine-checks of the *internal* arithmetic of the nine proofs.
//!
//! Each proof enumerates candidate schedules ("If j is computed on P1, at
//! best we have ...") and computes their objective values by hand. Those
//! hand computations are re-derived here with the exact eager-schedule
//! evaluator: every number quoted in the paper's case analyses is asserted,
//! in ℚ(√d) arithmetic where the platform demands it. This catches both
//! transcription errors in our platform constants and (in principle)
//! arithmetic slips in the paper — none were found.

use mss_exact::{rat, Rational, Surd};
use mss_opt::schedule::{eager_completions, goal_value_exact, Goal, Instance};

fn int(n: i128) -> Surd {
    Surd::from_int(n)
}

fn ratio(n: i128, d: i128) -> Surd {
    Surd::rational(Rational::new(n, d))
}

/// Evaluates one discrete outcome on an exact instance.
fn value(inst: &Instance<Surd>, order: &[usize], assign: &[usize], goal: Goal) -> Surd {
    let completions = eager_completions(inst, order, assign);
    goal_value_exact(goal, &completions, &inst.r)
}

// ----------------------------------------------------------- Theorem 1 --

#[test]
fn theorem1_case_analysis() {
    // Platform: c = 1, p = (3, 7).
    let inst = |releases: Vec<Surd>| Instance {
        c: vec![int(1), int(1)],
        p: vec![int(3), int(7)],
        r: releases,
    };

    // Single task: "achieving a makespan at least equal to c + p1 = 4, or
    // on P2 ... c + p2 = 8".
    let one = inst(vec![Surd::ZERO]);
    assert_eq!(value(&one, &[0], &[0], Goal::Makespan), int(4));
    assert_eq!(value(&one, &[0], &[1], Goal::Makespan), int(8));

    // Two tasks (i at 0 on P1, j at 1): "If j is sent on P2 ... best
    // achievable makespan is max{c+p1, 2c+p2} = 9, whereas the optimal is
    // to send the two tasks to P1 for a makespan of 7."
    let two = inst(vec![Surd::ZERO, int(1)]);
    assert_eq!(value(&two, &[0, 1], &[0, 1], Goal::Makespan), int(9));
    assert_eq!(value(&two, &[0, 1], &[0, 0], Goal::Makespan), int(7));

    // Three tasks (0, 1, 2): "execute the last task either on P1 for a
    // makespan of 10, or on P2 for a makespan of 10. However, scheduling
    // the first task on P2 and the two others on P1 leads to 8."
    let three = inst(vec![Surd::ZERO, int(1), int(2)]);
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 0, 0], Goal::Makespan),
        int(10)
    );
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 0, 1], Goal::Makespan),
        int(10)
    );
    assert_eq!(
        value(&three, &[0, 1, 2], &[1, 0, 0], Goal::Makespan),
        int(8)
    );
}

// ----------------------------------------------------------- Theorem 2 --

#[test]
fn theorem2_case_analysis() {
    // Platform: c = 1, p1 = 2, p2 = 4√2 − 2.
    let p2 = int(4) * Surd::sqrt(2) - int(2);
    let inst = |releases: Vec<Surd>| Instance {
        c: vec![int(1), int(1)],
        p: vec![int(2), p2],
        r: releases,
    };

    // Single task: sum-flow c + p1 = 3 on P1, c + p2 = 4√2 − 1 on P2.
    let one = inst(vec![Surd::ZERO]);
    assert_eq!(value(&one, &[0], &[0], Goal::SumFlow), int(3));
    assert_eq!(
        value(&one, &[0], &[1], Goal::SumFlow),
        int(4) * Surd::sqrt(2) - int(1)
    );

    // Two tasks: "If j is sent on P2 ... (c+p1) + ((2c+p2) − t1) = 2+4√2,
    // whereas the optimal is ... 7."
    let two = inst(vec![Surd::ZERO, int(1)]);
    assert_eq!(
        value(&two, &[0, 1], &[0, 1], Goal::SumFlow),
        int(2) + int(4) * Surd::sqrt(2)
    );
    assert_eq!(value(&two, &[0, 1], &[0, 0], Goal::SumFlow), int(7));

    // Three tasks: algorithm's best 6+4√2 (third task on P2) vs 12 (all on
    // P1); adversary's alternative 5+4√2 (second on P2).
    let three = inst(vec![Surd::ZERO, int(1), int(2)]);
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 0, 0], Goal::SumFlow),
        int(12)
    );
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 0, 1], Goal::SumFlow),
        int(6) + int(4) * Surd::sqrt(2)
    );
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 1, 0], Goal::SumFlow),
        int(5) + int(4) * Surd::sqrt(2)
    );
    // And the ratio identity the proof uses: (6+4√2)/(5+4√2) = (2+4√2)/7.
    let lhs = (int(6) + int(4) * Surd::sqrt(2)) / (int(5) + int(4) * Surd::sqrt(2));
    let rhs = (int(2) + int(4) * Surd::sqrt(2)) / int(7);
    assert_eq!(lhs, rhs);
}

// ----------------------------------------------------------- Theorem 3 --

#[test]
fn theorem3_case_analysis() {
    // Platform: c = 1, p1 = (2+√7)/3, p2 = (1+2√7)/3, τ = (4−√7)/3.
    let p1 = Surd::new(rat(2, 3), rat(1, 3), 7);
    let p2 = Surd::new(rat(1, 3), rat(2, 3), 7);
    let tau = Surd::new(rat(4, 3), rat(-1, 3), 7);

    // Single task max-flows: c + p1 = (5+√7)/3 and c + p2 = (4+2√7)/3.
    let one = Instance {
        c: vec![int(1), int(1)],
        p: vec![p1, p2],
        r: vec![Surd::ZERO],
    };
    assert_eq!(
        value(&one, &[0], &[0], Goal::MaxFlow),
        Surd::new(rat(5, 3), rat(1, 3), 7)
    );
    assert_eq!(
        value(&one, &[0], &[1], Goal::MaxFlow),
        Surd::new(rat(4, 3), rat(2, 3), 7)
    );

    // Two tasks (i at 0 on P1, j at τ): both continuations reach 1+√7;
    // the optimal (i on P2, j on P1) reaches (4+2√7)/3.
    let two = Instance {
        c: vec![int(1), int(1)],
        p: vec![p1, p2],
        r: vec![Surd::ZERO, tau],
    };
    let one_plus_sqrt7 = Surd::new(rat(1, 1), rat(1, 1), 7);
    assert_eq!(value(&two, &[0, 1], &[0, 1], Goal::MaxFlow), one_plus_sqrt7);
    assert_eq!(value(&two, &[0, 1], &[0, 0], Goal::MaxFlow), one_plus_sqrt7);
    assert_eq!(
        value(&two, &[0, 1], &[1, 0], Goal::MaxFlow),
        Surd::new(rat(4, 3), rat(2, 3), 7)
    );
    // Ratio identity: (1+√7) / ((4+2√7)/3) = (5−√7)/2.
    let bound = (int(5) - Surd::sqrt(7)) / int(2);
    assert_eq!(one_plus_sqrt7 / Surd::new(rat(4, 3), rat(2, 3), 7), bound);
    // And 9/(5+√7) = (5−√7)/2 (the "did not begin" branch).
    assert_eq!(int(9) / Surd::new(rat(5, 1), rat(1, 1), 7), bound);
}

// ----------------------------------------------------------- Theorem 4 --

#[test]
fn theorem4_case_analysis() {
    // Platform: p = p, c = (1, p/2); the proof's intervals with p symbolic
    // are re-checked at the implementation's p = 10000.
    let p = int(10_000);
    let half = int(5_000);
    let inst = |releases: Vec<Surd>| Instance {
        c: vec![int(1), half],
        p: vec![p, p],
        r: releases,
    };

    // Four tasks: i at 0 (committed to P1), j, k, l at p/2.
    let four = inst(vec![Surd::ZERO, half, half, half]);

    // Proof case 1 (j on P1, k and l on P2): makespan 1 + 3p.
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[0, 0, 1, 1], Goal::Makespan),
        int(1) + int(3) * p
    );
    // Proof cases 2–3 (k or l on P1): makespan 3p.
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[0, 1, 0, 1], Goal::Makespan),
        int(3) * p
    );
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[0, 1, 1, 0], Goal::Makespan),
        int(3) * p
    );
    // "a better schedule is obtained when computing i on P2, then j on P1,
    // then k on P2, and finally l on P1 ... equal to 1 + 5p/2."
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[1, 0, 1, 0], Goal::Makespan),
        int(1) + ratio(5, 2) * p
    );
}

// ----------------------------------------------------------- Theorem 5 --

#[test]
fn theorem5_case_analysis() {
    // Platform: c1 = ε, c2 = 1, p = 2c2 − c1 = 2 − ε; τ = c2 − c1 = 1 − ε.
    // The proof's symbolic values are checked at the implementation's
    // ε = 1/10⁴.
    let eps = ratio(1, 10_000);
    let p = int(2) - eps;
    let tau = int(1) - eps;
    let inst = |releases: Vec<Surd>| Instance {
        c: vec![eps, int(1)],
        p: vec![p, p],
        r: releases,
    };

    // Single task: max-flow c1 + p = 2 on P1, c2 + p = 3 − ε on P2.
    let one = inst(vec![Surd::ZERO]);
    assert_eq!(value(&one, &[0], &[0], Goal::MaxFlow), int(2));
    assert_eq!(value(&one, &[0], &[1], Goal::MaxFlow), int(3) - eps);

    // Four tasks (i at 0 on P1; j, k, l at τ).
    let four = inst(vec![Surd::ZERO, tau, tau, tau]);
    // Proof case 1 (j on P1, k, l on P2): max-flow 5 − ε.
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[0, 0, 1, 1], Goal::MaxFlow),
        int(5) - eps
    );
    // Proof cases 2–3 (k or l on P1): max-flow 5 − 2ε.
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[0, 1, 0, 1], Goal::MaxFlow),
        int(5) - int(2) * eps
    );
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[0, 1, 1, 0], Goal::MaxFlow),
        int(5) - int(2) * eps
    );
    // "a better schedule ... i on P2, then j on P1, then k on P2, and
    // finally l on P1. The max-flow of the latter schedule is equal to 4."
    assert_eq!(
        value(&four, &[0, 1, 2, 3], &[1, 0, 1, 0], Goal::MaxFlow),
        int(4)
    );
}

// ----------------------------------------------------------- Theorem 8 --

#[test]
fn theorem8_case_analysis() {
    // Rational conic point: c1 = 24200/159, τ = 14641/318, ε = 1/100,
    // p2 = p3 = τ + c1 − 1 (see the theorem module for the derivation).
    let c1 = ratio(24_200, 159);
    let tau = ratio(14_641, 318);
    let eps = ratio(1, 100);
    let p23 = tau + c1 - int(1);
    let inst = |releases: Vec<Surd>| Instance {
        c: vec![c1, int(1), int(1)],
        p: vec![eps, p23, p23],
        r: releases,
    };

    // Single task: sum-flow c1 + ε on P1, c2 + p2 = τ + c1 on P2.
    let one = inst(vec![Surd::ZERO]);
    assert_eq!(value(&one, &[0], &[0], Goal::SumFlow), c1 + eps);
    assert_eq!(value(&one, &[0], &[1], Goal::SumFlow), tau + c1);

    // Three tasks (i at 0 on P1; j, k at τ).
    let three = inst(vec![Surd::ZERO, tau, tau]);
    // "first of the two jobs on P2 and the other one on P1":
    // 5c1 − τ + 1 + 2ε (the proof's decisive branch).
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 1, 0], Goal::SumFlow),
        int(5) * c1 - tau + int(1) + int(2) * eps
    );
    // "first on P1 and the other one on P2": 6c1 − τ + 2ε.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 0, 1], Goal::SumFlow),
        int(6) * c1 - tau + int(2) * eps
    );
    // "one on P2 and the other on P3": 5c1 + 1 + ε.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 1, 2], Goal::SumFlow),
        int(5) * c1 + int(1) + eps
    );
    // Adversary's alternative (i on P2, j on P3, k on P1):
    // 3c1 + 2τ + 1 + ε.
    assert_eq!(
        value(&three, &[0, 1, 2], &[1, 2, 0], Goal::SumFlow),
        int(3) * c1 + int(2) * tau + int(1) + eps
    );
}

// ----------------------------------------------------------- Theorem 6 --

#[test]
fn theorem6_case_analysis() {
    // Platform: c = (1, 2), p = 3; i at 0 on P1, then j, k, l at τ = 2.
    let inst = Instance {
        c: vec![int(1), int(2)],
        p: vec![int(3), int(3)],
        r: vec![Surd::ZERO, int(2), int(2), int(2)],
    };
    // The proof's eight candidate schedules and their sum-flows.
    let cases: [(&[usize], i128); 8] = [
        (&[0, 0, 0, 0], 28), // all on P1
        (&[0, 1, 0, 0], 24), // j only on P2
        (&[0, 0, 1, 0], 23), // k only on P2
        (&[0, 0, 0, 1], 24), // l only on P2
        (&[0, 1, 1, 1], 28), // j, k, l on P2
        (&[0, 0, 1, 1], 24), // i, j on P1
        (&[0, 1, 0, 1], 23), // i, k on P1
        (&[0, 1, 1, 0], 25), // i, l on P1
    ];
    for (assign, expect) in cases {
        assert_eq!(
            value(&inst, &[0, 1, 2, 3], assign, Goal::SumFlow),
            int(expect),
            "assignment {assign:?}"
        );
    }
    // "a better schedule is obtained when computing i on P2 ... equal to 22."
    assert_eq!(
        value(&inst, &[0, 1, 2, 3], &[1, 0, 1, 0], Goal::SumFlow),
        int(22)
    );
}

// ----------------------------------------------------------- Theorem 7 --

#[test]
fn theorem7_case_analysis() {
    // Platform: p1 = ε, p2 = p3 = 1+√3, c1 = 1+√3, c2 = c3 = 1; ε = 1/10⁴.
    let eps = ratio(1, 10_000);
    let s3 = Surd::new(rat(1, 1), rat(1, 1), 3); // 1 + √3
    let inst = |releases: Vec<Surd>| Instance {
        c: vec![s3, int(1), int(1)],
        p: vec![eps, s3, s3],
        r: releases,
    };

    // Single task: c1 + p1 = 1+√3+ε on P1, c2 + p2 = 2+√3 on P2.
    let one = inst(vec![Surd::ZERO]);
    assert_eq!(value(&one, &[0], &[0], Goal::Makespan), s3 + eps);
    assert_eq!(
        value(&one, &[0], &[1], Goal::Makespan),
        Surd::new(rat(2, 1), rat(1, 1), 3)
    );

    // Three tasks (i at 0 on P1; j, k at 1): the proof's candidates.
    let three = inst(vec![Surd::ZERO, int(1), int(1)]);
    // "j and k on P1": 3(1+√3) + ε.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 0, 0], Goal::Makespan),
        int(3) * s3 + eps
    );
    // "first on P2, second on P1": 3 + 2√3 + ε.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 1, 0], Goal::Makespan),
        Surd::new(rat(3, 1), rat(2, 1), 3) + eps
    );
    // "first on P1, second on P2": 4 + 3√3 — the committed prefix still
    // pays c1 twice before the P2 send.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 0, 1], Goal::Makespan),
        Surd::new(rat(4, 1), rat(3, 1), 3)
    );
    // "one on P2 and the other on P3": 4 + 2√3.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 1, 2], Goal::Makespan),
        Surd::new(rat(4, 1), rat(2, 1), 3)
    );
    // The adversary's alternative: i on P2, j on P3, k on P1 → 3 + √3 + ε.
    assert_eq!(
        value(&three, &[0, 1, 2], &[1, 2, 0], Goal::Makespan),
        Surd::new(rat(3, 1), rat(1, 1), 3) + eps
    );
}

// ----------------------------------------------------------- Theorem 9 --

#[test]
fn theorem9_case_analysis() {
    // Platform: c1 = 2(1+√2), c2 = c3 = 1, p1 = ε, p2 = p3 = 3+2√2; τ = 2.
    let eps = ratio(1, 10_000);
    let c1 = int(2) + int(2) * Surd::sqrt(2);
    let p23 = int(3) + int(2) * Surd::sqrt(2);
    let inst = |releases: Vec<Surd>| Instance {
        c: vec![c1, int(1), int(1)],
        p: vec![eps, p23, p23],
        r: releases,
    };

    // Single task max-flow: c1 + ε on P1, √2·c1 on P2.
    let one = inst(vec![Surd::ZERO]);
    assert_eq!(value(&one, &[0], &[0], Goal::MaxFlow), c1 + eps);
    assert_eq!(value(&one, &[0], &[1], Goal::MaxFlow), Surd::sqrt(2) * c1);

    // Three tasks (i at 0 on P1; j, k at τ = 2): the decisive candidates.
    let three = inst(vec![Surd::ZERO, int(2), int(2)]);
    // "The first ... on P2 and the other one on P1": max-flow 2c1.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 1, 0], Goal::MaxFlow),
        int(2) * c1
    );
    // "one on P2, the other on P3": 2c1 + 1.
    assert_eq!(
        value(&three, &[0, 1, 2], &[0, 1, 2], Goal::MaxFlow),
        int(2) * c1 + int(1)
    );
    // Adversary's alternative (i on P2, j on P3, k on P1): √2·c1.
    assert_eq!(
        value(&three, &[0, 1, 2], &[1, 2, 0], Goal::MaxFlow),
        Surd::sqrt(2) * c1
    );
    // Ratio: 2c1 / (√2 c1) = √2 exactly.
    assert_eq!((int(2) * c1) / (Surd::sqrt(2) * c1), Surd::sqrt(2));
}
