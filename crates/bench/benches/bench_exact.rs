//! Exact-arithmetic microbenchmarks: surd field operations and the exact
//! exhaustive optimizer that backs every competitive-ratio denominator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mss_exact::{rat, Surd};
use mss_opt::schedule::{Goal, Instance};

fn bench_surd_ops(c: &mut Criterion) {
    let a = Surd::new(rat(311, 97), rat(-55, 13), 7);
    let b = Surd::new(rat(-23, 41), rat(17, 29), 7);
    let mut group = c.benchmark_group("exact/surd");
    group.bench_function("mul", |bch| bch.iter(|| std::hint::black_box(a) * b));
    group.bench_function("div", |bch| bch.iter(|| std::hint::black_box(a) / b));
    group.bench_function("cmp-same-field", |bch| {
        bch.iter(|| std::hint::black_box(a) < b)
    });
    let x = Surd::sqrt(2) + Surd::from_ratio(1, 3);
    let y = Surd::sqrt(7) - Surd::from_ratio(1, 5);
    group.bench_function("cmp-cross-field", |bch| {
        bch.iter(|| std::hint::black_box(x) < y)
    });
    group.finish();
}

fn bench_exact_optimum(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/exhaustive");
    group.sample_size(20);
    for n in [2usize, 3, 4] {
        // Theorem 2-like instance: irrational speeds, n tasks.
        let p2 = Surd::from_int(4) * Surd::sqrt(2) - Surd::from_int(2);
        let inst = Instance {
            c: vec![Surd::ONE, Surd::ONE],
            p: vec![Surd::from_int(2), p2],
            r: (0..n).map(|i| Surd::from_int(i as i128)).collect(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| mss_opt::best_exact(inst, Goal::SumFlow).value);
        });
    }
    group.finish();
}

fn bench_float_vs_exact(c: &mut Criterion) {
    // The same 4-task optimum in f64 and exact arithmetic.
    let mut group = c.benchmark_group("exact/vs-f64");
    let exact = Instance {
        c: vec![Surd::ONE, Surd::from_int(2)],
        p: vec![Surd::from_int(3), Surd::from_int(3)],
        r: vec![
            Surd::ZERO,
            Surd::from_int(2),
            Surd::from_int(2),
            Surd::from_int(2),
        ],
    };
    let float = Instance {
        c: vec![1.0, 2.0],
        p: vec![3.0, 3.0],
        r: vec![0.0, 2.0, 2.0, 2.0],
    };
    group.bench_function("exact", |b| {
        b.iter(|| mss_opt::best_exact(&exact, Goal::SumFlow).value)
    });
    group.bench_function("f64", |b| {
        b.iter(|| mss_opt::best_f64(&float, Goal::SumFlow).value)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_surd_ops,
    bench_exact_optimum,
    bench_float_vs_exact
);
criterion_main!(benches);
