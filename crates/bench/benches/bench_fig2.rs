//! Bench for Figure 2: the robustness experiment (nominal + perturbed run
//! per algorithm per platform).

use criterion::{criterion_group, criterion_main, Criterion};
use mss_lab::{fig2, ExperimentScale};
use mss_workload::{ArrivalProcess, Perturbation};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    let scale = ExperimentScale {
        platforms: 3,
        tasks: 300,
        seed: 42,
    };
    for (label, perturbation) in [
        ("linear±10%", Perturbation::linear(0.1)),
        ("matrix(N²,N³)±10%", Perturbation::matrix(0.1)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                fig2::run(
                    scale,
                    ArrivalProcess::UniformStream { load: 0.9 },
                    perturbation,
                )
                .rows
                .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
