//! Benches for the ablation studies (A1 buffer sweep, A2 plan quality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mss_core::{bag_of_tasks, simulate, PlatformClass, RoundRobin, RrDispatch, RrOrder, SimConfig};
use mss_lab::{ablations, ExperimentScale};
use mss_workload::PlatformSampler;

fn bench_buffer_bounds(c: &mut Criterion) {
    // Runtime cost of RR at several buffer bounds (scheduling work is
    // buffer-independent; this pins down the engine's queue handling).
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::Heterogeneous, 1, 42)
        .remove(0);
    let tasks = bag_of_tasks(500);
    let cfg = SimConfig::with_horizon(500);
    let mut group = c.benchmark_group("ablation/rr-buffer");
    for buffer in [0usize, 1, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buffer),
            &buffer,
            |b, &buffer| {
                b.iter(|| {
                    let mut rr = RoundRobin::new(RrOrder::SumCp, RrDispatch::Priority, buffer);
                    simulate(&platform, &tasks, &cfg, &mut rr)
                        .unwrap()
                        .makespan()
                });
            },
        );
    }
    group.finish();
}

fn bench_full_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/full");
    group.sample_size(10);
    let scale = ExperimentScale {
        platforms: 2,
        tasks: 150,
        seed: 42,
    };
    group.bench_function("A1-buffer-sweep", |b| {
        b.iter(|| ablations::buffer_sweep(scale).rows.len())
    });
    group.bench_function("A2-sljf-quality-40", |b| {
        b.iter(|| ablations::sljf_quality(40, 3).instances)
    });
    group.finish();
}

criterion_group!(benches, bench_buffer_bounds, bench_full_ablations);
criterion_main!(benches);
