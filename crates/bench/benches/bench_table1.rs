//! Bench for Table 1: the cost of playing a theorem's adversary game —
//! DES runs, exact (surd) offline optimum, ratio — against one scheduler,
//! and of regenerating the full machine-verified table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mss_adversary::{play, TheoremId};
use mss_core::Algorithm;

fn bench_single_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/game");
    for id in [TheoremId::T1, TheoremId::T6, TheoremId::T8, TheoremId::T9] {
        group.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, &id| {
            let factory = || Algorithm::ListScheduling.build();
            b.iter(|| {
                let result = play(id, &factory);
                assert!(result.holds());
                result.ratio
            });
        });
    }
    group.finish();
}

fn bench_full_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/full");
    group.sample_size(10);
    group.bench_function("9 theorems x 7 heuristics", |b| {
        b.iter(|| {
            let report = mss_lab::table1::run();
            assert!(report.all_verified());
            report.cells.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_single_games, bench_full_table);
criterion_main!(benches);
