//! Decision-kernel microbenchmarks: the incremental tournament-tree
//! argmin against the historical linear scan as the slave count grows.
//!
//! The workload is the streamed SRPT ladder `ms-lab bench` records in
//! `BENCH_engine.json` (`kernel_scaling`), at criterion resolution: the
//! same platform family and 0.7-load uniform stream, one group per
//! decision path, parameterized by m = 10/100/1k/10k. Both paths produce
//! bit-identical schedules (enforced by `kernel_equivalence.rs` and the
//! bench's inline assertion); the ratio of these curves is the speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mss_core::{
    simulate_streamed_objectives_in, Platform, SimConfig, SimWorkspace, Srpt, TaskSource, Timeline,
};
use mss_workload::{ArrivalProcess, GeneratedSource};

fn ladder_platform(m: usize) -> Platform {
    let c: Vec<f64> = (0..m).map(|j| 0.01 + 1e-4 * (j % 97) as f64).collect();
    let p: Vec<f64> = (0..m).map(|j| 2.0 + 0.03 * (j % 89) as f64).collect();
    Platform::from_vectors(&c, &p)
}

fn bench_kernel_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel-vs-scan");
    for m in [10usize, 100, 1_000, 10_000] {
        let platform = ladder_platform(m);
        // Enough tasks that every slave count reaches steady state, few
        // enough that the O(m)-per-decision scan rung stays benchable.
        let n = (2 * m).clamp(500, 5_000);
        let cfg = SimConfig::with_horizon(n);
        group.throughput(Throughput::Elements(3 * n as u64));
        for (path, make) in [
            ("kernel", Srpt::new as fn() -> Srpt),
            ("scan", Srpt::scan_reference as fn() -> Srpt),
        ] {
            let mut ws = SimWorkspace::new();
            let mut source = GeneratedSource::new(
                ArrivalProcess::UniformStream { load: 0.7 },
                n,
                &platform,
                42,
            );
            let mut sched = make();
            group.bench_with_input(BenchmarkId::new(path, m), &m, |b, _| {
                b.iter(|| {
                    source.reset();
                    simulate_streamed_objectives_in(
                        &mut ws,
                        &platform,
                        &mut source,
                        &cfg,
                        &Timeline::EMPTY,
                        &mut sched,
                    )
                    .unwrap()
                    .tasks
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_vs_scan);
criterion_main!(benches);
