//! Bench for Figure 1: one full panel (10 platforms × 7 algorithms ×
//! 1000 tasks at paper scale; a reduced scale is benched by default so the
//! suite stays minutes, not hours).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mss_core::PlatformClass;
use mss_lab::{fig1, ExperimentScale};
use mss_workload::ArrivalProcess;

fn bench_panels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/panel");
    group.sample_size(10);
    let scale = ExperimentScale {
        platforms: 3,
        tasks: 300,
        seed: 42,
    };
    for class in [
        PlatformClass::Homogeneous,
        PlatformClass::CommHomogeneous,
        PlatformClass::CompHomogeneous,
        PlatformClass::Heterogeneous,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(fig1::panel_letter(class)),
            &class,
            |b, &class| {
                b.iter(|| {
                    fig1::run_panel(class, scale, ArrivalProcess::AllAtZero)
                        .rows
                        .len()
                });
            },
        );
    }
    group.finish();
}

fn bench_paper_scale_single_run(c: &mut Criterion) {
    // One algorithm on one paper-scale instance (1000 tasks), isolating the
    // per-run cost that the panel multiplies by 7 × 10.
    use mss_core::{bag_of_tasks, simulate, Algorithm, SimConfig};
    use mss_workload::PlatformSampler;
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::Heterogeneous, 1, 42)
        .remove(0);
    let tasks = bag_of_tasks(1000);
    let cfg = SimConfig::with_horizon(1000);

    let mut group = c.benchmark_group("fig1/single-run-1000-tasks");
    for a in [
        Algorithm::Srpt,
        Algorithm::ListScheduling,
        Algorithm::Sljfwc,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(a.name()), &a, |b, &a| {
            b.iter(|| {
                simulate(&platform, &tasks, &cfg, &mut a.build())
                    .unwrap()
                    .makespan()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_panels, bench_paper_scale_single_run);
criterion_main!(benches);
