//! Discrete-event engine microbenchmarks: raw event throughput as the
//! instance and platform grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mss_core::{bag_of_tasks, simulate, simulate_in, Algorithm, Platform, SimConfig, SimWorkspace};
use mss_workload::ArrivalProcess;

fn bench_task_scaling(c: &mut Criterion) {
    let platform = Platform::from_vectors(&[0.1, 0.3, 0.5, 0.7, 0.9], &[1.0, 2.0, 3.0, 4.0, 5.0]);
    let mut group = c.benchmark_group("engine/tasks");
    for n in [100usize, 500, 1000, 2000] {
        let tasks = bag_of_tasks(n);
        let cfg = SimConfig::with_horizon(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                simulate(
                    &platform,
                    &tasks,
                    &cfg,
                    &mut Algorithm::ListScheduling.build(),
                )
                .unwrap()
                .len()
            });
        });
    }
    group.finish();
}

fn bench_slave_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/slaves");
    for m in [2usize, 5, 10, 20] {
        let c_vec: Vec<f64> = (0..m).map(|j| 0.05 + 0.02 * j as f64).collect();
        let p_vec: Vec<f64> = (0..m).map(|j| 1.0 + 0.3 * j as f64).collect();
        let platform = Platform::from_vectors(&c_vec, &p_vec);
        let tasks = bag_of_tasks(500);
        let cfg = SimConfig::with_horizon(500);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                simulate(
                    &platform,
                    &tasks,
                    &cfg,
                    &mut Algorithm::ListScheduling.build(),
                )
                .unwrap()
                .len()
            });
        });
    }
    group.finish();
}

fn bench_streamed_arrivals(c: &mut Criterion) {
    // Streamed releases exercise the wake/release machinery more than bags.
    let platform = Platform::from_vectors(&[0.1, 0.3, 0.5], &[1.0, 2.0, 3.0]);
    let tasks = ArrivalProcess::Poisson { load: 0.9 }.generate(1000, &platform, 7);
    let cfg = SimConfig::with_horizon(1000);
    c.bench_function("engine/streamed-1000", |b| {
        b.iter(|| {
            simulate(
                &platform,
                &tasks,
                &cfg,
                &mut Algorithm::ListScheduling.build(),
            )
            .unwrap()
            .len()
        });
    });
}

fn bench_workspace_reuse(c: &mut Criterion) {
    // The steady-state hot loop `ms-lab bench` records in BENCH_engine.json:
    // same workload as engine/tasks/2000, but on a reused SimWorkspace so
    // every iteration after the first runs allocation-free.
    let platform = Platform::from_vectors(&[0.1, 0.3, 0.5, 0.7, 0.9], &[1.0, 2.0, 3.0, 4.0, 5.0]);
    let n = 2000usize;
    let tasks = bag_of_tasks(n);
    let cfg = SimConfig::with_horizon(n);
    let mut ws = SimWorkspace::new();
    c.bench_function("engine/reuse-2000", |b| {
        b.iter(|| {
            simulate_in(
                &mut ws,
                &platform,
                &tasks,
                &cfg,
                &mut Algorithm::ListScheduling.build(),
            )
            .unwrap()
            .len()
        });
    });
}

criterion_group!(
    benches,
    bench_task_scaling,
    bench_slave_scaling,
    bench_streamed_arrivals,
    bench_workspace_reuse
);
criterion_main!(benches);
