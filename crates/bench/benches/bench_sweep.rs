//! Bench for the `mss-sweep` orchestrator: cells/second on a small grid at
//! 1, 2, and max threads, plus the overhead of a fully cached re-run. This
//! establishes the scaling trajectory tracked in BENCH_*.json entries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mss_sweep::{run_cells, spec_from_toml, SweepConfig, SweepSpec};

fn small_grid() -> SweepSpec {
    spec_from_toml(
        r#"
        name = "bench-grid"
        seed = 42
        tasks = [120]
        algorithms = ["all"]

        [[platforms]]
        kind = "class"
        class = "heterogeneous"
        count = 4
        slaves = 5

        [[arrivals]]
        kind = "bag"

        [[arrivals]]
        kind = "poisson"
        load = 0.9
        "#,
    )
    .expect("bench spec parses")
}

fn bench_thread_scaling(c: &mut Criterion) {
    let spec = small_grid();
    let cells = spec.expand().expect("bench spec expands");
    let n = cells.len() as u64;
    let max_threads = mss_sweep::default_threads(64);

    let mut group = c.benchmark_group("sweep/cells-per-second");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    let mut candidates = vec![1usize, 2, max_threads];
    candidates.sort_unstable();
    candidates.dedup();
    for threads in candidates {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let config = SweepConfig {
                    threads,
                    cache_dir: None,
                };
                b.iter(|| run_cells(spec.expand().unwrap(), &config).metrics.len());
            },
        );
    }
    group.finish();
}

fn bench_cache_hit(c: &mut Criterion) {
    let spec = small_grid();
    let dir = std::env::temp_dir().join(format!("mss-sweep-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = SweepConfig {
        threads: mss_sweep::default_threads(64),
        cache_dir: Some(dir.clone()),
    };
    // Warm the store once; the benched runs then execute zero cells.
    let warm = run_cells(spec.expand().unwrap(), &config);
    assert_eq!(warm.cached, 0);

    let mut group = c.benchmark_group("sweep/cached-rerun");
    group.sample_size(10);
    group.bench_function("full-cache-hit", |b| {
        b.iter(|| {
            let outcome = run_cells(spec.expand().unwrap(), &config);
            assert_eq!(outcome.executed, 0);
            outcome.cached
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_thread_scaling, bench_cache_hit);
criterion_main!(benches);
