//! Bench for the `mss-sweep` orchestrator: cells/second on a small grid at
//! 1, 2, and max threads, the instance-major-vs-cell-major comparison, and
//! the overhead of a fully cached re-run. This establishes the scaling
//! trajectory tracked in BENCH_*.json entries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mss_core::SimWorkspace;
use mss_sweep::{run_cells, spec_from_toml, SweepConfig, SweepSpec};

fn small_grid() -> SweepSpec {
    spec_from_toml(
        r#"
        name = "bench-grid"
        seed = 42
        tasks = [120]
        algorithms = ["all"]

        [[platforms]]
        kind = "class"
        class = "heterogeneous"
        count = 4
        slaves = 5

        [[arrivals]]
        kind = "bag"

        [[arrivals]]
        kind = "poisson"
        load = 0.9
        "#,
    )
    .expect("bench spec parses")
}

fn bench_thread_scaling(c: &mut Criterion) {
    let spec = small_grid();
    let cells = spec.expand().expect("bench spec expands");
    let n = cells.len() as u64;
    let max_threads = mss_sweep::default_threads(64);

    let mut group = c.benchmark_group("sweep/cells-per-second");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    let mut candidates = vec![1usize, 2, max_threads];
    candidates.sort_unstable();
    candidates.dedup();
    for threads in candidates {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let config = SweepConfig {
                    threads,
                    cache_dir: None,
                    ..SweepConfig::default()
                };
                b.iter(|| run_cells(spec.expand().unwrap(), &config).metrics.len());
            },
        );
    }
    group.finish();
}

/// Instance-major batched execution (the production path of `run_cells`)
/// against the historical cell-major loop (every cell re-materializes its
/// own platform/task stream/bounds), both single-threaded on the same
/// 56-cell reference grid. The gap is the tentpole's shared-materialization
/// win; results of the two paths are bit-identical (enforced by
/// `crates/sweep/tests/batch_equivalence.rs`).
fn bench_instance_vs_cell_major(c: &mut Criterion) {
    let spec = small_grid();
    let cells = spec.expand().expect("bench spec expands");
    let n = cells.len() as u64;

    let mut group = c.benchmark_group("sweep/instance-major-vs-cell-major");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    group.bench_function("instance-major", |b| {
        let config = SweepConfig {
            threads: 1,
            cache_dir: None,
            ..SweepConfig::default()
        };
        b.iter(|| run_cells(cells.clone(), &config).metrics.len());
    });
    group.bench_function("cell-major", |b| {
        let mut ws = SimWorkspace::new();
        b.iter(|| {
            cells
                .iter()
                .map(|cell| cell.run_in(&mut ws).makespan)
                .sum::<f64>()
        });
    });
    group.finish();
}

fn bench_cache_hit(c: &mut Criterion) {
    let spec = small_grid();
    let dir = std::env::temp_dir().join(format!("mss-sweep-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = SweepConfig {
        threads: mss_sweep::default_threads(64),
        cache_dir: Some(dir.clone()),
        ..SweepConfig::default()
    };
    // Warm the store once; the benched runs then execute zero cells.
    let warm = run_cells(spec.expand().unwrap(), &config);
    assert_eq!(warm.cached, 0);

    let mut group = c.benchmark_group("sweep/cached-rerun");
    group.sample_size(10);
    group.bench_function("full-cache-hit", |b| {
        b.iter(|| {
            let outcome = run_cells(spec.expand().unwrap(), &config);
            assert_eq!(outcome.executed, 0);
            outcome.cached
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_instance_vs_cell_major,
    bench_cache_hit
);
criterion_main!(benches);
