//! Per-heuristic cost: how much scheduler-side work each of the seven
//! algorithms adds on top of the engine, on the same paper-style instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mss_core::{bag_of_tasks, simulate, Algorithm, PlatformClass, SimConfig};
use mss_workload::PlatformSampler;

fn bench_all_heuristics(c: &mut Criterion) {
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::Heterogeneous, 1, 42)
        .remove(0);
    let tasks = bag_of_tasks(500);
    let cfg = SimConfig::with_horizon(500);

    let mut group = c.benchmark_group("heuristics/500-tasks");
    for a in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(a.name()), &a, |b, &a| {
            b.iter(|| {
                simulate(&platform, &tasks, &cfg, &mut a.build())
                    .unwrap()
                    .makespan()
            });
        });
    }
    group.finish();
}

fn bench_plan_construction(c: &mut Criterion) {
    // The SLJF/SLJFWC backward plans, isolated from the simulation.
    use mss_core::heuristics::planning::{sljf_dispatch, sljfwc_dispatch};
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::Heterogeneous, 1, 42)
        .remove(0);
    let mut group = c.benchmark_group("heuristics/plan");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("sljf", n), &n, |b, &n| {
            b.iter(|| sljf_dispatch(&platform, n).len());
        });
        group.bench_with_input(BenchmarkId::new("sljfwc", n), &n, |b, &n| {
            b.iter(|| sljfwc_dispatch(&platform, n).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_heuristics, bench_plan_construction);
criterion_main!(benches);
