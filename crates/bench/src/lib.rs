//! # mss-bench — the Criterion benchmark suite
//!
//! One bench target per paper artifact plus engine/arithmetic
//! microbenchmarks:
//!
//! * `bench_table1` — adversary games and the full machine-verified table;
//! * `bench_fig1` — Figure 1 panels and paper-scale single runs;
//! * `bench_fig2` — the robustness experiment;
//! * `bench_engine` — DES event throughput vs task/slave counts;
//! * `bench_exact` — surd field ops and the exact exhaustive optimizer;
//! * `bench_heuristics` — per-algorithm scheduling overhead;
//! * `bench_ablations` — A1 buffer sweep and A2 plan quality.
//!
//! Run with `cargo bench --workspace`.
