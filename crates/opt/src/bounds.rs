//! Cheap, certified lower bounds on the offline optimum.
//!
//! Used where the exhaustive optimizer is too expensive (experiment-sized
//! instances): the lab reports measured objective values next to these
//! bounds, and property tests check `LB ≤ OPT` on small instances.

use crate::schedule::Instance;

/// Lower bound on the optimal makespan of `inst`:
///
/// * **per-task**: some task must be fully handled:
///   `max_i (r_i + min_j (c_j + p_j))`;
/// * **one-port**: order releases increasingly; among any `k` last-released
///   tasks, the first of their sends cannot start before `r_{(n-k)}` and the
///   `k` sends serialize at `min_j c_j` each, and the last of them still
///   computes for at least `min_j p_j`:
///   `max_k (r_{(n-k)} + k·min_c + min_p)`;
/// * **work**: even with perfect load balance the total computation takes
///   `n / Σ(1/p_j)`, and no computation starts before `min_c`:
///   `min_c + n / Σ(1/p_j)` (tasks are unit-size and slaves serial).
pub fn makespan_lower_bound(inst: &Instance<f64>) -> f64 {
    inst.check();
    let n = inst.num_tasks();
    if n == 0 {
        return 0.0;
    }
    let min_c = inst.c.iter().copied().fold(f64::INFINITY, f64::min);
    let min_p = inst.p.iter().copied().fold(f64::INFINITY, f64::min);
    let min_cp = inst
        .c
        .iter()
        .zip(&inst.p)
        .map(|(&c, &p)| c + p)
        .fold(f64::INFINITY, f64::min);

    let mut sorted = inst.r.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let per_task = sorted.last().unwrap() + min_cp;

    let mut one_port: f64 = 0.0;
    for k in 1..=n {
        let tail_start = sorted[n - k];
        one_port = one_port.max(tail_start + k as f64 * min_c + min_p);
    }

    let throughput: f64 = inst.p.iter().map(|&p| 1.0 / p).sum();
    let work = sorted[0] + min_c + n as f64 / throughput;

    per_task.max(one_port).max(work)
}

/// Lower bound on the optimal max-flow: every task spends at least
/// `min_j (c_j + p_j)` in the system.
pub fn max_flow_lower_bound(inst: &Instance<f64>) -> f64 {
    if inst.num_tasks() == 0 {
        return 0.0;
    }
    inst.c
        .iter()
        .zip(&inst.p)
        .map(|(&c, &p)| c + p)
        .fold(f64::INFINITY, f64::min)
}

/// Lower bound on the optimal sum-flow: `n · min_j (c_j + p_j)` plus the
/// serialization of sends — when `k` tasks are released simultaneously, the
/// `i`-th of them (any order) waits at least `(i−1)·min_c` before its send
/// completes. We use the conservative simultaneous-release term only for
/// tasks sharing a release time.
pub fn sum_flow_lower_bound(inst: &Instance<f64>) -> f64 {
    let n = inst.num_tasks();
    if n == 0 {
        return 0.0;
    }
    let min_c = inst.c.iter().copied().fold(f64::INFINITY, f64::min);
    let min_cp = inst
        .c
        .iter()
        .zip(&inst.p)
        .map(|(&c, &p)| c + p)
        .fold(f64::INFINITY, f64::min);

    let base = n as f64 * min_cp;

    // Group identical release times; the i-th of a k-group adds (i-1)·min_c.
    let mut sorted = inst.r.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut extra = 0.0;
    let mut group = 1usize;
    for w in sorted.windows(2) {
        if (w[1] - w[0]).abs() < 1e-12 {
            extra += group as f64 * min_c;
            group += 1;
        } else {
            group = 1;
        }
    }
    base + extra
}

/// Single-pass accumulator computing all three lower bounds over a task
/// stream whose length is known up front, without materializing the
/// release vector.
///
/// The batch bounds sort the releases first; the task-source contract
/// (`mss-sim::TaskSource`) already delivers them non-decreasing, so the
/// stream order *is* the sorted order and every fold below replays the
/// batch arithmetic term for term — the results are bit-identical to
/// [`makespan_lower_bound`] / [`max_flow_lower_bound`] /
/// [`sum_flow_lower_bound`] on the materialized instance (the streamed
/// sweep path relies on this for byte-identical artifacts).
///
/// The one-port term needs each release's distance from the stream end
/// (`k = n − i` sends serialize after release `i`), which is why `n` must
/// be declared up front.
#[derive(Clone, Debug)]
pub struct StreamingBounds {
    n: usize,
    seen: usize,
    min_c: f64,
    min_p: f64,
    min_cp: f64,
    throughput: f64,
    first_release: f64,
    last_release: f64,
    one_port: f64,
    extra: f64,
    group: usize,
}

impl StreamingBounds {
    /// Starts a pass over an instance of exactly `n` tasks on a platform
    /// with communication times `c` and computation times `p`.
    pub fn new(c: &[f64], p: &[f64], n: usize) -> Self {
        assert!(!c.is_empty(), "Instance: at least one slave");
        assert_eq!(c.len(), p.len(), "Instance: c/p length mismatch");
        StreamingBounds {
            n,
            seen: 0,
            min_c: c.iter().copied().fold(f64::INFINITY, f64::min),
            min_p: p.iter().copied().fold(f64::INFINITY, f64::min),
            min_cp: c
                .iter()
                .zip(p)
                .map(|(&c, &p)| c + p)
                .fold(f64::INFINITY, f64::min),
            throughput: p.iter().map(|&p| 1.0 / p).sum(),
            first_release: 0.0,
            last_release: 0.0,
            one_port: 0.0,
            extra: 0.0,
            group: 1,
        }
    }

    /// Feeds the next release time. Must be called exactly `n` times with
    /// non-decreasing values (the task-source contract).
    pub fn push(&mut self, release: f64) {
        let i = self.seen;
        assert!(i < self.n, "StreamingBounds: more than {} releases", self.n);
        // One-port: the k = n − i tasks from this one onwards serialize.
        self.one_port = self
            .one_port
            .max(release + (self.n - i) as f64 * self.min_c + self.min_p);
        if i == 0 {
            self.first_release = release;
        } else if (release - self.last_release).abs() < 1e-12 {
            // Same simultaneous-release group as the batch pass (which
            // scans the sorted vector — identical here, the stream is
            // sorted).
            self.extra += self.group as f64 * self.min_c;
            self.group += 1;
        } else {
            self.group = 1;
        }
        self.last_release = release;
        self.seen += 1;
    }

    fn complete(&self) {
        assert_eq!(
            self.seen, self.n,
            "StreamingBounds: {} of {} releases pushed",
            self.seen, self.n
        );
    }

    /// Lower bound on the optimal makespan — bit-identical to
    /// [`makespan_lower_bound`].
    pub fn makespan(&self) -> f64 {
        self.complete();
        if self.n == 0 {
            return 0.0;
        }
        let per_task = self.last_release + self.min_cp;
        let work = self.first_release + self.min_c + self.n as f64 / self.throughput;
        per_task.max(self.one_port).max(work)
    }

    /// Lower bound on the optimal max-flow — bit-identical to
    /// [`max_flow_lower_bound`].
    pub fn max_flow(&self) -> f64 {
        self.complete();
        if self.n == 0 {
            return 0.0;
        }
        self.min_cp
    }

    /// Lower bound on the optimal sum-flow — bit-identical to
    /// [`sum_flow_lower_bound`].
    pub fn sum_flow(&self) -> f64 {
        self.complete();
        if self.n == 0 {
            return 0.0;
        }
        self.n as f64 * self.min_cp + self.extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::best_f64;
    use crate::schedule::Goal;

    fn instances() -> Vec<Instance<f64>> {
        vec![
            Instance {
                c: vec![1.0, 1.0],
                p: vec![3.0, 7.0],
                r: vec![0.0, 1.0, 2.0],
            },
            Instance {
                c: vec![1.0, 2.0],
                p: vec![3.0, 3.0],
                r: vec![0.0, 2.0, 2.0, 2.0],
            },
            Instance {
                c: vec![0.3, 0.8, 0.5],
                p: vec![1.5, 0.9, 2.2],
                r: vec![0.0, 0.0, 0.4, 1.1],
            },
            Instance {
                c: vec![0.5],
                p: vec![2.0],
                r: vec![0.0, 0.0, 0.0, 0.0, 0.0],
            },
        ]
    }

    #[test]
    fn bounds_never_exceed_exhaustive_optimum() {
        for inst in instances() {
            let mk = best_f64(&inst, Goal::Makespan).value;
            let mf = best_f64(&inst, Goal::MaxFlow).value;
            let sf = best_f64(&inst, Goal::SumFlow).value;
            assert!(
                makespan_lower_bound(&inst) <= mk + 1e-9,
                "makespan LB {} > OPT {mk}",
                makespan_lower_bound(&inst)
            );
            assert!(max_flow_lower_bound(&inst) <= mf + 1e-9);
            assert!(sum_flow_lower_bound(&inst) <= sf + 1e-9);
        }
    }

    #[test]
    fn one_port_term_bites() {
        // 5 tasks at t=0 on one slave with c=1, p=0.1: the port serializes:
        // LB ≥ 5·1 + 0.1.
        let inst = Instance {
            c: vec![1.0],
            p: vec![0.1],
            r: vec![0.0; 5],
        };
        assert!(makespan_lower_bound(&inst) >= 5.1 - 1e-12);
    }

    #[test]
    fn work_term_bites() {
        // 8 tasks, two slaves p = 2 → ≥ 8/(1) = 8 seconds of balanced work.
        let inst = Instance {
            c: vec![0.01, 0.01],
            p: vec![2.0, 2.0],
            r: vec![0.0; 8],
        };
        assert!(makespan_lower_bound(&inst) >= 8.0);
    }

    #[test]
    fn streaming_bounds_are_bit_identical_to_batch() {
        for inst in instances() {
            let mut sb = StreamingBounds::new(&inst.c, &inst.p, inst.r.len());
            // The test instances' releases are already sorted — the
            // task-source contract.
            for &r in &inst.r {
                sb.push(r);
            }
            assert_eq!(
                sb.makespan().to_bits(),
                makespan_lower_bound(&inst).to_bits()
            );
            assert_eq!(
                sb.max_flow().to_bits(),
                max_flow_lower_bound(&inst).to_bits()
            );
            assert_eq!(
                sb.sum_flow().to_bits(),
                sum_flow_lower_bound(&inst).to_bits()
            );
        }
        // Empty stream.
        let sb = StreamingBounds::new(&[1.0], &[1.0], 0);
        assert_eq!(sb.makespan(), 0.0);
        assert_eq!(sb.max_flow(), 0.0);
        assert_eq!(sb.sum_flow(), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 of 3 releases pushed")]
    fn streaming_bounds_demand_the_declared_count() {
        StreamingBounds::new(&[1.0], &[1.0], 3).makespan();
    }

    #[test]
    fn empty_instances_are_zero() {
        let inst = Instance {
            c: vec![1.0],
            p: vec![1.0],
            r: vec![],
        };
        assert_eq!(makespan_lower_bound(&inst), 0.0);
        assert_eq!(max_flow_lower_bound(&inst), 0.0);
        assert_eq!(sum_flow_lower_bound(&inst), 0.0);
    }
}
