//! Optimal bag-of-tasks makespan on communication-homogeneous platforms,
//! at *any* scale (the exhaustive search stops at a handful of tasks).
//!
//! Setting: `c_j = c`, all `n` tasks released at `t = 0`. Two classical
//! observations make the optimum computable in `O(n log n · log(1/ε))`:
//!
//! 1. **Port saturation.** Sends can be left-shifted until the port never
//!    idles while unsent tasks remain, so WLOG the `k`-th send completes at
//!    `k·c` — any schedule is dominated by one of this form.
//! 2. **EDF exchange.** Fix a target makespan `T`. If slave `j` executes
//!    `n_j` tasks back-to-back ending at `T`, its `i`-th-from-last task
//!    must start computing by the *deadline* `T − i·p_j`. A set of `n`
//!    slots is feasible iff, sorting deadlines ascendingly, the `k`-th
//!    smallest deadline is at least `k·c` (match earliest send to earliest
//!    deadline; any feasible matching can be exchanged into this one). For
//!    fixed `T` it is dominant to pick the `n` *largest* deadlines, which
//!    automatically form per-slave prefixes (`i = 1..n_j`).
//!
//! The minimal feasible `T` is found by bisection. `mss-opt`'s tests check
//! the result against the exhaustive optimum on small instances, and the
//! SLJF heuristic against this oracle at paper scale (n = 1000).

use mss_core::Platform;

/// Is makespan `T` achievable for `n` tasks on `platform` (comm-homog, bag)?
fn feasible(platform: &Platform, n: usize, c: f64, t: f64) -> bool {
    // Collect the n largest deadlines T − i·p_j (per-slave prefixes).
    let mut deadlines: Vec<f64> = Vec::with_capacity(n);
    for (_, s) in platform.iter() {
        let mut i = 1usize;
        while i <= n {
            let d = t - i as f64 * s.p;
            if d < c - 1e-12 {
                break;
            }
            deadlines.push(d);
            i += 1;
        }
    }
    if deadlines.len() < n {
        return false;
    }
    // Keep the n largest, check EDF condition d_(k) >= k·c ascending.
    deadlines.sort_by(|a, b| b.partial_cmp(a).unwrap());
    deadlines.truncate(n);
    deadlines.reverse();
    deadlines
        .iter()
        .enumerate()
        .all(|(k, &d)| d >= (k + 1) as f64 * c - 1e-12)
}

/// The optimal makespan for `n` identical tasks released at `t = 0` on a
/// communication-homogeneous platform, to absolute precision `1e-9`
/// (relative to the platform scale).
///
/// # Panics
/// Panics if the platform is not communication-homogeneous or `n == 0`.
pub fn optimal_bag_makespan(platform: &Platform, n: usize) -> f64 {
    assert!(n > 0, "optimal_bag_makespan: need at least one task");
    let c = platform.c(mss_core::SlaveId(0));
    assert!(
        platform
            .iter()
            .all(|(_, s)| (s.c - c).abs() <= 1e-12 * c.max(1.0)),
        "optimal_bag_makespan: platform must be communication-homogeneous"
    );

    // Bracket: lower bound from physics, upper bound by doubling.
    let min_p = platform
        .iter()
        .map(|(_, s)| s.p)
        .fold(f64::INFINITY, f64::min);
    let mut lo = (n as f64 * c + min_p).max(c + min_p);
    if feasible(platform, n, c, lo) {
        return lo;
    }
    let mut hi = lo.max(c + min_p) * 2.0;
    while !feasible(platform, n, c, hi) {
        hi *= 2.0;
        assert!(hi.is_finite(), "no feasible makespan found (bug)");
    }
    // Bisect to absolute ~1e-9·scale.
    let eps = 1e-9 * hi.max(1.0);
    for _ in 0..200 {
        if hi - lo <= eps {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if feasible(platform, n, c, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::best_f64;
    use crate::schedule::{Goal, Instance};
    use mss_core::{bag_of_tasks, simulate, Algorithm, SimConfig};

    #[test]
    fn matches_exhaustive_on_small_bags() {
        for (c, p, n) in [
            (1.0, vec![3.0, 7.0], 3usize),
            (0.5, vec![1.0, 2.0, 4.0], 4),
            (0.2, vec![0.7, 0.7], 5),
            (1.0, vec![2.0], 4),
        ] {
            let platform = Platform::from_vectors(&vec![c; p.len()], &p);
            let inst = Instance {
                c: vec![c; p.len()],
                p: p.clone(),
                r: vec![0.0; n],
            };
            let exhaustive = best_f64(&inst, Goal::Makespan).value;
            let oracle = optimal_bag_makespan(&platform, n);
            assert!(
                (exhaustive - oracle).abs() < 1e-6,
                "c={c}, p={p:?}, n={n}: exhaustive {exhaustive} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn theorem1_three_task_value() {
        // The Theorem 1 platform with three tasks at 0 has optimum 8 when
        // releases are (0,1,2); with all three at 0 the optimum is
        // different — cross-check against exhaustive explicitly.
        let platform = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let inst = Instance {
            c: vec![1.0, 1.0],
            p: vec![3.0, 7.0],
            r: vec![0.0; 3],
        };
        let exhaustive = best_f64(&inst, Goal::Makespan).value;
        assert!((optimal_bag_makespan(&platform, 3) - exhaustive).abs() < 1e-6);
    }

    #[test]
    fn sljf_is_optimal_at_paper_scale() {
        // The headline property imported from [23], now checked at the
        // experiment scale instead of n ≤ 5: SLJF's DES makespan equals the
        // true optimum for 1000 tasks on a comm-homogeneous platform.
        let platform = Platform::from_vectors(&[0.05; 5], &[0.35, 1.1, 2.4, 4.9, 7.3]);
        let n = 1000;
        let trace = simulate(
            &platform,
            &bag_of_tasks(n),
            &SimConfig::with_horizon(n),
            &mut Algorithm::Sljf.build(),
        )
        .unwrap();
        let opt = optimal_bag_makespan(&platform, n);
        let ratio = trace.makespan() / opt;
        assert!(
            ratio <= 1.0 + 1e-6,
            "SLJF {} vs optimal {} (ratio {ratio})",
            trace.makespan(),
            opt
        );
        assert!(ratio >= 1.0 - 1e-6, "oracle above a real schedule?!");
    }

    #[test]
    fn oracle_is_a_true_lower_bound_for_all_heuristics() {
        let platform = Platform::from_vectors(&[0.1; 4], &[0.5, 1.0, 2.0, 4.0]);
        let n = 200;
        let opt = optimal_bag_makespan(&platform, n);
        for a in Algorithm::ALL {
            let trace = simulate(
                &platform,
                &bag_of_tasks(n),
                &SimConfig::with_horizon(n),
                &mut a.build(),
            )
            .unwrap();
            assert!(
                trace.makespan() >= opt - 1e-6,
                "{a} beat the optimum: {} < {opt}",
                trace.makespan()
            );
        }
    }

    #[test]
    #[should_panic(expected = "communication-homogeneous")]
    fn rejects_heterogeneous_links() {
        let platform = Platform::from_vectors(&[0.1, 0.5], &[1.0, 1.0]);
        let _ = optimal_bag_makespan(&platform, 3);
    }

    #[test]
    fn single_slave_closed_form() {
        // One slave: makespan = c + n·p when p ≥ c (pipelined).
        let platform = Platform::from_vectors(&[0.5], &[2.0]);
        let opt = optimal_bag_makespan(&platform, 7);
        assert!((opt - (0.5 + 7.0 * 2.0)).abs() < 1e-6, "opt {opt}");
    }
}
