//! Exhaustive search for the offline optimum on small instances.
//!
//! The competitive-ratio denominators of the paper are *offline* optima:
//! the adversary fixes the full instance and asks what the best schedule
//! would have been with complete knowledge. By the eagerness-domination
//! argument (see [`crate::schedule`]), the optimum is attained by some
//! discrete outcome `(send order, per-send assignment)`, so for the paper's
//! tiny adversary instances (≤ 4 tasks, ≤ 3 slaves) we simply enumerate all
//! `n! · m^n` outcomes — in exact arithmetic when the instance demands it.

use crate::schedule::{
    eager_completions, goal_value_exact, goal_value_f64, Goal, Instance, SchedTime,
};
use mss_exact::Surd;

/// Maximum `n! · m^n` the search will accept before panicking; protects
/// against accidentally feeding experiment-sized instances to the
/// exhaustive optimizer.
const MAX_OUTCOMES: u128 = 50_000_000;

/// The best discrete outcome found, with its value.
#[derive(Clone, Debug, PartialEq)]
pub struct Best<T> {
    /// Optimal objective value.
    pub value: T,
    /// `order[k]` = task sent `k`-th.
    pub order: Vec<usize>,
    /// `assignment[k]` = slave of the `k`-th send.
    pub assignment: Vec<usize>,
    /// Completion times per task.
    pub completions: Vec<T>,
}

fn factorial(n: usize) -> u128 {
    (1..=n as u128).product()
}

fn check_size(n: usize, m: usize) {
    let outcomes = factorial(n).saturating_mul((m as u128).saturating_pow(n as u32));
    assert!(
        outcomes <= MAX_OUTCOMES,
        "exhaustive search over {n} tasks x {m} slaves would enumerate {outcomes} outcomes; \
         use a heuristic or a dedicated optimizer for instances this large"
    );
}

/// Calls `f` for every permutation of `0..n` (lexicographic).
fn for_each_permutation<F: FnMut(&[usize])>(n: usize, mut f: F) {
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        f(&perm);
        // next_permutation
        if n < 2 {
            return;
        }
        let Some(i) = (0..n - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
            return;
        };
        let j = (i + 1..n).rev().find(|&j| perm[j] > perm[i]).unwrap();
        perm.swap(i, j);
        perm[i + 1..].reverse();
    }
}

/// Calls `f` for every assignment vector in `{0..m}^n` (odometer order).
fn for_each_assignment<F: FnMut(&[usize])>(n: usize, m: usize, mut f: F) {
    let mut a = vec![0usize; n];
    loop {
        f(&a);
        let mut k = 0;
        loop {
            if k == n {
                return;
            }
            a[k] += 1;
            if a[k] < m {
                break;
            }
            a[k] = 0;
            k += 1;
        }
    }
}

/// `true` iff all releases are identical — then the send order is irrelevant
/// (tasks are interchangeable) and only assignments need enumeration.
fn uniform_releases<T: SchedTime>(r: &[T]) -> bool {
    r.windows(2).all(|w| w[0] >= w[1] && w[1] >= w[0])
}

fn search<T, EV>(inst: &Instance<T>, mut evaluate: EV) -> Best<T>
where
    T: SchedTime,
    EV: FnMut(&[T]) -> T,
{
    inst.check();
    let n = inst.num_tasks();
    let m = inst.num_slaves();
    assert!(n > 0, "exhaustive search needs at least one task");
    check_size(n, m);

    let mut best: Option<Best<T>> = None;
    let mut consider = |order: &[usize], assignment: &[usize]| {
        let completions = eager_completions(inst, order, assignment);
        let value = evaluate(&completions);
        let better = match &best {
            None => true,
            Some(b) => value < b.value,
        };
        if better {
            best = Some(Best {
                value,
                order: order.to_vec(),
                assignment: assignment.to_vec(),
                completions,
            });
        }
    };

    if uniform_releases(&inst.r) {
        let order: Vec<usize> = (0..n).collect();
        for_each_assignment(n, m, |a| consider(&order, a));
    } else {
        for_each_permutation(n, |order| {
            for_each_assignment(n, m, |a| consider(order, a));
        });
    }
    best.expect("at least one outcome considered")
}

/// Optimal offline value and outcome, `f64` arithmetic.
pub fn best_f64(inst: &Instance<f64>, goal: Goal) -> Best<f64> {
    let releases = inst.r.clone();
    search(inst, |completions| {
        goal_value_f64(goal, completions, &releases)
    })
}

/// Optimal offline value and outcome, exact arithmetic.
pub fn best_exact(inst: &Instance<Surd>, goal: Goal) -> Best<Surd> {
    let releases = inst.r.clone();
    search(inst, |completions| {
        goal_value_exact(goal, completions, &releases)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_offline_optima() {
        // c = 1, p = (3, 7). The proof states, for the branch where the
        // adversary sends 3 tasks at times (0, 1, 2), that the optimum is 8.
        let inst = Instance {
            c: vec![1.0, 1.0],
            p: vec![3.0, 7.0],
            r: vec![0.0, 1.0, 2.0],
        };
        let best = best_f64(&inst, Goal::Makespan);
        assert_eq!(best.value, 8.0);

        // Single task at t=0: optimum c + p1 = 4.
        let single = Instance {
            c: vec![1.0, 1.0],
            p: vec![3.0, 7.0],
            r: vec![0.0],
        };
        assert_eq!(best_f64(&single, Goal::Makespan).value, 4.0);

        // Two tasks (0, 1): optimum sends both to P1: max{c+2p1, 2c+p1} = 7.
        let two = Instance {
            c: vec![1.0, 1.0],
            p: vec![3.0, 7.0],
            r: vec![0.0, 1.0],
        };
        assert_eq!(best_f64(&two, Goal::Makespan).value, 7.0);
    }

    #[test]
    fn theorem6_offline_sum_flow() {
        // c = (1, 2), p = 3; tasks at (0, 2, 2, 2). The proof computes an
        // optimal sum-flow of 22 (schedule P2, P1, P2, P1).
        let inst = Instance {
            c: vec![1.0, 2.0],
            p: vec![3.0, 3.0],
            r: vec![0.0, 2.0, 2.0, 2.0],
        };
        let best = best_f64(&inst, Goal::SumFlow);
        assert_eq!(best.value, 22.0);
    }

    #[test]
    fn theorem2_offline_sum_flow_exact() {
        use mss_exact::Surd;
        // c = 1, p1 = 2, p2 = 4√2 − 2; tasks at (0, 1).
        // Optimal sum-flow = 7 (both tasks on P1).
        let p2 = Surd::from_int(4) * Surd::sqrt(2) - Surd::from_int(2);
        let inst = Instance {
            c: vec![Surd::ONE, Surd::ONE],
            p: vec![Surd::from_int(2), p2],
            r: vec![Surd::ZERO, Surd::ONE],
        };
        let best = best_exact(&inst, Goal::SumFlow);
        assert_eq!(best.value, Surd::from_int(7));
    }

    #[test]
    fn uniform_release_shortcut_agrees_with_full_search() {
        // Same instance expressed with "all zero" releases vs a permuted
        // duplicate with distinct-but-equal releases must agree.
        let inst = Instance {
            c: vec![0.5, 1.0],
            p: vec![2.0, 1.0],
            r: vec![0.0, 0.0, 0.0],
        };
        let fast = best_f64(&inst, Goal::Makespan);
        // Force the general path with a tiny, irrelevant epsilon spread that
        // cannot change the optimal value (all below any send start).
        let mut spread = inst.clone();
        spread.r = vec![0.0, 0.0, 1e-12];
        let slow = best_f64(&spread, Goal::Makespan);
        assert!((fast.value - slow.value).abs() < 1e-9);
    }

    #[test]
    fn optimum_beats_every_single_outcome() {
        let inst = Instance {
            c: vec![0.3, 0.8],
            p: vec![1.5, 0.9],
            r: vec![0.0, 0.4, 1.1],
        };
        for goal in [Goal::Makespan, Goal::MaxFlow, Goal::SumFlow] {
            let best = best_f64(&inst, goal);
            // Spot-check a few specific outcomes.
            for (order, assign) in [
                (vec![0usize, 1, 2], vec![0usize, 0, 0]),
                (vec![0, 1, 2], vec![1, 1, 1]),
                (vec![2, 0, 1], vec![0, 1, 0]),
            ] {
                // Invalid orders (task 2 before release) are still legal
                // outcomes — eager just waits.
                let completions = eager_completions(&inst, &order, &assign);
                let v = goal_value_f64(goal, &completions, &inst.r);
                assert!(best.value <= v + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive search over")]
    fn size_guard_triggers() {
        let inst = Instance {
            c: vec![1.0; 4],
            p: vec![1.0; 4],
            r: (0..16).map(|i| i as f64).collect(),
        };
        let _ = best_f64(&inst, Goal::Makespan);
    }

    #[test]
    fn permutation_and_assignment_enumeration_counts() {
        let mut perms = 0;
        for_each_permutation(4, |_| perms += 1);
        assert_eq!(perms, 24);
        let mut assigns = 0;
        for_each_assignment(3, 3, |_| assigns += 1);
        assert_eq!(assigns, 27);
    }
}
