//! # mss-opt — offline optima for master-slave scheduling
//!
//! The denominators of every competitive ratio in the paper are *offline*
//! optima. This crate computes them:
//!
//! * [`exhaustive`] — exact search over all discrete outcomes
//!   (send order × per-send assignment) for the paper's small adversary
//!   instances, in `f64` or in exact [`mss_exact::Surd`] arithmetic;
//! * [`homogeneous`] — the closed-form FIFO optimum of the paper's
//!   introduction for fully homogeneous platforms;
//! * [`bounds`] — certified lower bounds for experiment-sized instances
//!   where exhaustive search is impossible;
//! * [`schedule`] — the shared eager-schedule evaluator and the
//!   [`schedule::Instance`] type.
//!
//! ```
//! use mss_opt::schedule::{Goal, Instance};
//! use mss_opt::exhaustive::best_f64;
//!
//! // Theorem 1's platform: c = 1, p = (3, 7); three tasks at (0, 1, 2).
//! let inst = Instance { c: vec![1.0, 1.0], p: vec![3.0, 7.0], r: vec![0.0, 1.0, 2.0] };
//! assert_eq!(best_f64(&inst, Goal::Makespan).value, 8.0); // as in the proof
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod comm_homog;
pub mod exhaustive;
pub mod homogeneous;
pub mod schedule;

pub use comm_homog::optimal_bag_makespan;
pub use exhaustive::{best_exact, best_f64, Best};
pub use schedule::{eager_completions, goal_value_exact, goal_value_f64, Goal, Instance};
