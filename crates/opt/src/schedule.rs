//! Schedule evaluation shared by the exhaustive optimizer and the adversary
//! games, generic over the numeric type (f64 for experiments, [`Surd`] for
//! exact theorem verification).
//!
//! A *discrete outcome* of a run is `(order, assignment)`: `order[k]` is the
//! task sent `k`-th, `assignment[k]` the slave it is sent to. Given a
//! discrete outcome, the **eager** schedule (every send starts as early as
//! the port, the release date and the previous sends allow; every
//! computation starts on receipt or when the slave frees) dominates any
//! other schedule with the same outcome for all three objectives —
//! postponing a send or a computation can only increase completion times.
//! It is therefore sufficient to search over discrete outcomes.

use mss_exact::Surd;

/// Numeric time for schedule evaluation: `f64` or exact [`Surd`].
pub trait SchedTime: Copy + PartialOrd + std::ops::Add<Output = Self> {
    /// The additive identity (time origin).
    fn zero() -> Self;

    /// Pairwise maximum (total order assumed).
    fn maximum(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SchedTime for f64 {
    fn zero() -> Self {
        0.0
    }
}

impl SchedTime for Surd {
    fn zero() -> Self {
        Surd::ZERO
    }
}

/// An instance in numeric type `T`: slave specs and release dates.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance<T> {
    /// Communication times `c_j`.
    pub c: Vec<T>,
    /// Computation times `p_j`.
    pub p: Vec<T>,
    /// Release dates `r_i` (one per task).
    pub r: Vec<T>,
}

impl<T: SchedTime> Instance<T> {
    /// Number of slaves.
    pub fn num_slaves(&self) -> usize {
        self.c.len()
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.r.len()
    }

    /// Validates shape (at least one slave, matching `c`/`p` lengths).
    pub fn check(&self) {
        assert!(!self.c.is_empty(), "Instance: at least one slave");
        assert_eq!(self.c.len(), self.p.len(), "Instance: c/p length mismatch");
    }
}

/// Completion times of the eager schedule for a discrete outcome.
///
/// `order[k]` is the task index sent `k`-th; `assignment[k]` the slave index
/// of that send. Returns `C_i` indexed by *task*.
///
/// # Panics
/// Panics if `order`/`assignment` lengths differ from the task count or
/// reference unknown tasks/slaves.
pub fn eager_completions<T: SchedTime>(
    inst: &Instance<T>,
    order: &[usize],
    assignment: &[usize],
) -> Vec<T> {
    inst.check();
    let n = inst.num_tasks();
    assert_eq!(order.len(), n, "order must cover all tasks");
    assert_eq!(assignment.len(), n, "assignment must cover all sends");
    let mut seen = vec![false; n];

    let mut port = T::zero();
    let mut ready = vec![T::zero(); inst.num_slaves()];
    let mut completions = vec![T::zero(); n];

    for (k, (&task, &slave)) in order.iter().zip(assignment).enumerate() {
        assert!(task < n, "order[{k}] references unknown task {task}");
        assert!(!seen[task], "task {task} sent twice");
        seen[task] = true;
        assert!(
            slave < inst.num_slaves(),
            "assignment[{k}] references unknown slave"
        );

        let send_start = port.maximum(inst.r[task]);
        let send_end = send_start + inst.c[slave];
        port = send_end;
        let start = send_end.maximum(ready[slave]);
        ready[slave] = start + inst.p[slave];
        completions[task] = ready[slave];
    }
    completions
}

/// The three objectives over exact or floating completions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Goal {
    /// `max C_i`.
    Makespan,
    /// `max (C_i − r_i)`.
    MaxFlow,
    /// `Σ (C_i − r_i)`.
    SumFlow,
}

impl Goal {
    /// Conversion from the experiment-side objective type.
    pub fn from_objective(o: mss_core::Objective) -> Goal {
        match o {
            mss_core::Objective::Makespan => Goal::Makespan,
            mss_core::Objective::MaxFlow => Goal::MaxFlow,
            mss_core::Objective::SumFlow => Goal::SumFlow,
        }
    }
}

/// Evaluates a goal on completions, `f64` version.
pub fn goal_value_f64(goal: Goal, completions: &[f64], releases: &[f64]) -> f64 {
    match goal {
        Goal::Makespan => completions.iter().copied().fold(0.0, f64::max),
        Goal::MaxFlow => completions
            .iter()
            .zip(releases)
            .map(|(&c, &r)| c - r)
            .fold(0.0, f64::max),
        Goal::SumFlow => completions.iter().zip(releases).map(|(&c, &r)| c - r).sum(),
    }
}

/// Evaluates a goal on completions, exact version.
pub fn goal_value_exact(goal: Goal, completions: &[Surd], releases: &[Surd]) -> Surd {
    match goal {
        Goal::Makespan => completions
            .iter()
            .copied()
            .fold(Surd::ZERO, |a, b| a.max(b)),
        Goal::MaxFlow => completions
            .iter()
            .zip(releases)
            .map(|(&c, &r)| c - r)
            .fold(Surd::ZERO, |a, b| a.max(b)),
        Goal::SumFlow => completions
            .iter()
            .zip(releases)
            .fold(Surd::ZERO, |acc, (&c, &r)| acc + (c - r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_exact::Surd;

    fn thm1_instance() -> Instance<f64> {
        // Theorem 1 platform: c = 1, p = (3, 7).
        Instance {
            c: vec![1.0, 1.0],
            p: vec![3.0, 7.0],
            r: vec![0.0, 1.0, 2.0],
        }
    }

    #[test]
    fn eager_matches_proof_arithmetic() {
        // The proof's optimal: T0→P2, T1→P1, T2→P1 gives makespan 8
        // (max{c+p2, 2c+2p1, 3c+p1} = max{8, 8, 6}).
        let inst = thm1_instance();
        let c = eager_completions(&inst, &[0, 1, 2], &[1, 0, 0]);
        assert_eq!(c, vec![8.0, 5.0, 8.0]);
        assert_eq!(goal_value_f64(Goal::Makespan, &c, &inst.r), 8.0);

        // The algorithm's branch: all on P1 after T0 on P1 → makespan 10.
        let c2 = eager_completions(&inst, &[0, 1, 2], &[0, 0, 0]);
        assert_eq!(goal_value_f64(Goal::Makespan, &c2, &inst.r), 10.0);
    }

    #[test]
    fn flows_subtract_releases() {
        let inst = thm1_instance();
        let c = eager_completions(&inst, &[0, 1, 2], &[1, 0, 0]);
        // Flows: 8-0, 5-1, 8-2.
        assert_eq!(goal_value_f64(Goal::MaxFlow, &c, &inst.r), 8.0);
        assert_eq!(goal_value_f64(Goal::SumFlow, &c, &inst.r), 8.0 + 4.0 + 6.0);
    }

    #[test]
    fn release_dates_delay_sends() {
        let inst = Instance {
            c: vec![1.0],
            p: vec![1.0],
            r: vec![0.0, 10.0],
        };
        let c = eager_completions(&inst, &[0, 1], &[0, 0]);
        assert_eq!(c, vec![2.0, 12.0]);
    }

    #[test]
    fn exact_evaluation_with_surds() {
        // Theorem 9 platform fragment: c1 = 2(1+√2), p1 = ε → single task
        // on P1 completes at c1 + p1 exactly.
        let eps = Surd::from_ratio(1, 100);
        let c1 = Surd::from_int(2) * (Surd::ONE + Surd::sqrt(2));
        let inst = Instance {
            c: vec![c1],
            p: vec![eps],
            r: vec![Surd::ZERO],
        };
        let c = eager_completions(&inst, &[0], &[0]);
        assert_eq!(c[0], c1 + eps);
        assert_eq!(goal_value_exact(Goal::Makespan, &c, &inst.r), c1 + eps);
    }

    #[test]
    #[should_panic(expected = "sent twice")]
    fn duplicate_send_rejected() {
        let inst = thm1_instance();
        let _ = eager_completions(&inst, &[0, 0, 2], &[0, 0, 0]);
    }
}
