//! The homogeneous-platform optimum (paper, Introduction).
//!
//! On a fully homogeneous platform the paper notes that the FIFO
//! list-scheduling strategy — *"process tasks in a FIFO order, according to
//! their release times; send the first unscheduled task to the processor
//! whose ready-time is minimum"* — is **optimal simultaneously** for
//! makespan, max-flow and sum-flow. This module implements that strategy in
//! closed form (no discrete-event machinery) so it can serve as an
//! independent oracle: `mss-opt`'s tests check it against the exhaustive
//! optimum, and the lab checks the DES List-Scheduling heuristic against it.

use crate::schedule::{Instance, SchedTime};

/// Completion times of the FIFO list schedule on a homogeneous platform
/// with `m` slaves of spec `(c, p)`, for releases sorted or not (tasks are
/// processed FIFO by release, ties by index).
///
/// Returns completions indexed by task.
pub fn fifo_completions<T: SchedTime>(m: usize, c: T, p: T, releases: &[T]) -> Vec<T> {
    assert!(m > 0, "at least one slave");
    let n = releases.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        releases[a]
            .partial_cmp(&releases[b])
            .expect("releases must be comparable")
            .then(a.cmp(&b))
    });

    let mut port = T::zero();
    let mut ready = vec![T::zero(); m];
    let mut completions = vec![T::zero(); n];
    for &i in &idx {
        // Earliest-ready slave (ties by slave index).
        let j = (0..m)
            .min_by(|&a, &b| ready[a].partial_cmp(&ready[b]).unwrap().then(a.cmp(&b)))
            .unwrap();
        let send_start = port.maximum(releases[i]);
        let send_end = send_start + c;
        port = send_end;
        let start = send_end.maximum(ready[j]);
        ready[j] = start + p;
        completions[i] = ready[j];
    }
    completions
}

/// Builds the homogeneous instance matching [`fifo_completions`] arguments,
/// convenient for cross-checking with the exhaustive optimizer.
pub fn homogeneous_instance(m: usize, c: f64, p: f64, releases: &[f64]) -> Instance<f64> {
    Instance {
        c: vec![c; m],
        p: vec![p; m],
        r: releases.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::best_f64;
    use crate::schedule::{goal_value_f64, Goal};

    #[test]
    fn fifo_is_optimal_for_all_three_objectives_small() {
        // Deterministic cross-check on a grid of small homogeneous cases.
        for (m, c, p) in [(1usize, 0.5, 2.0), (2, 1.0, 3.0), (3, 0.2, 1.0)] {
            for releases in [
                vec![0.0, 0.0, 0.0],
                vec![0.0, 0.5, 2.5],
                vec![0.0, 0.1, 0.2, 4.0],
                vec![1.0, 1.0, 2.0, 2.0],
            ] {
                let inst = homogeneous_instance(m, c, p, &releases);
                let fifo = fifo_completions(m, c, p, &releases);
                for goal in [Goal::Makespan, Goal::MaxFlow, Goal::SumFlow] {
                    let fifo_value = goal_value_f64(goal, &fifo, &releases);
                    let opt = best_f64(&inst, goal);
                    assert!(
                        (fifo_value - opt.value).abs() < 1e-9,
                        "FIFO suboptimal for {goal:?} on m={m}, c={c}, p={p}, r={releases:?}: \
                         {fifo_value} vs {}",
                        opt.value
                    );
                }
            }
        }
    }

    #[test]
    fn single_slave_serializes() {
        let c = fifo_completions(1, 1.0, 2.0, &[0.0, 0.0]);
        assert_eq!(c, vec![3.0, 5.0]);
    }

    #[test]
    fn unsorted_releases_are_handled_fifo() {
        // Task 1 releases first and must be served first.
        let c = fifo_completions(1, 1.0, 1.0, &[5.0, 0.0]);
        assert_eq!(c[1], 2.0);
        assert_eq!(c[0], 7.0);
    }

    #[test]
    fn parallelism_spreads_over_slaves() {
        // m = 2, c = 1, p = 4, three tasks at 0: sends at 0,1,2; computes
        // P1: 1-5, P2: 2-6, P1: 5-9.
        let c = fifo_completions(2, 1.0, 4.0, &[0.0, 0.0, 0.0]);
        assert_eq!(c, vec![5.0, 6.0, 9.0]);
    }
}
