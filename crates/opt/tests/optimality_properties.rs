//! Property tests tying the paper's optimality claims together:
//!
//! * the introduction's claim that FIFO list scheduling is optimal on
//!   homogeneous platforms, for all three objectives — checked by running
//!   the *actual* LS heuristic through the DES against the exhaustive
//!   optimum;
//! * SLJF's near-optimality for makespan on communication-homogeneous
//!   platforms (the property the paper imports from [23]);
//! * consistency between the DES, the closed-form FIFO oracle and the eager
//!   evaluator.

use mss_core::{bag_of_tasks, simulate, Algorithm, Platform, SimConfig, TaskArrival};
use mss_opt::homogeneous::fifo_completions;
use mss_opt::schedule::{Goal, Instance};
use mss_opt::{best_f64, eager_completions, goal_value_f64};
use proptest::prelude::*;

fn small_releases() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..6.0, 1..5).prop_map(|mut rs| {
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn ls_is_optimal_on_homogeneous_platforms(
        m in 1usize..4,
        c in 0.1f64..1.0,
        p in 0.2f64..4.0,
        releases in small_releases(),
    ) {
        // Paper, introduction: the FIFO list strategy is optimal for
        // makespan, max-flow and sum-flow on homogeneous platforms.
        let platform = Platform::homogeneous(m, c, p);
        let tasks: Vec<TaskArrival> = releases.iter().map(|&r| TaskArrival::at(r)).collect();
        let trace = simulate(
            &platform, &tasks, &SimConfig::default(),
            &mut Algorithm::ListScheduling.build(),
        ).unwrap();

        let inst = Instance { c: vec![c; m], p: vec![p; m], r: releases.clone() };
        for (goal, measured) in [
            (Goal::Makespan, trace.makespan()),
            (Goal::MaxFlow, trace.max_flow()),
            (Goal::SumFlow, trace.sum_flow()),
        ] {
            let opt = best_f64(&inst, goal).value;
            prop_assert!(
                measured <= opt + 1e-6,
                "LS not optimal for {goal:?}: {measured} vs OPT {opt} \
                 (m={m}, c={c}, p={p}, r={releases:?})"
            );
        }
    }

    #[test]
    fn fifo_oracle_matches_des_ls(
        m in 1usize..4,
        c in 0.1f64..1.0,
        p in 0.2f64..4.0,
        releases in small_releases(),
    ) {
        let platform = Platform::homogeneous(m, c, p);
        let tasks: Vec<TaskArrival> = releases.iter().map(|&r| TaskArrival::at(r)).collect();
        let trace = simulate(
            &platform, &tasks, &SimConfig::default(),
            &mut Algorithm::ListScheduling.build(),
        ).unwrap();
        let oracle = fifo_completions(m, c, p, &releases);
        for (i, &expected) in oracle.iter().enumerate() {
            let got = trace.record(mss_sim::TaskId(i)).compute_end.as_f64();
            prop_assert!(
                (got - expected).abs() < 1e-6,
                "task {i}: DES {got} vs oracle {expected}"
            );
        }
    }

    #[test]
    fn sljf_near_optimal_on_comm_homogeneous_bags(
        c in 0.1f64..1.0,
        p1 in 0.2f64..4.0,
        p2 in 0.2f64..4.0,
        n in 1usize..5,
    ) {
        // SLJF was designed to be makespan-optimal on comm-homogeneous
        // platforms when it knows n (property imported from [23]); our
        // reconstruction is validated here against the exhaustive optimum.
        let platform = Platform::from_vectors(&[c, c], &[p1, p2]);
        let tasks = bag_of_tasks(n);
        let trace = simulate(
            &platform, &tasks, &SimConfig::with_horizon(n),
            &mut Algorithm::Sljf.build(),
        ).unwrap();

        let inst = Instance { c: vec![c, c], p: vec![p1, p2], r: vec![0.0; n] };
        let opt = best_f64(&inst, Goal::Makespan).value;
        prop_assert!(
            trace.makespan() <= opt * 1.0 + 1e-6,
            "SLJF makespan {} vs OPT {opt} on c={c}, p=({p1},{p2}), n={n}",
            trace.makespan()
        );
    }

    #[test]
    fn eager_evaluator_agrees_with_des(
        c in 0.1f64..1.0,
        p1 in 0.2f64..4.0,
        p2 in 0.2f64..4.0,
        releases in small_releases(),
    ) {
        // Run LS through the DES, extract its discrete outcome, re-evaluate
        // with the eager evaluator: completions must match exactly (the DES
        // *is* eager given the outcome).
        let platform = Platform::from_vectors(&[c, c], &[p1, p2]);
        let tasks: Vec<TaskArrival> = releases.iter().map(|&r| TaskArrival::at(r)).collect();
        let trace = simulate(
            &platform, &tasks, &SimConfig::default(),
            &mut Algorithm::ListScheduling.build(),
        ).unwrap();

        // Outcome: order by send_start; assignment per send.
        let mut sends: Vec<_> = trace.records().iter().collect();
        sends.sort_by_key(|r| r.send_start);
        let order: Vec<usize> = sends.iter().map(|r| r.task.0).collect();
        let assignment: Vec<usize> = sends.iter().map(|r| r.slave.0).collect();

        let inst = Instance { c: vec![c, c], p: vec![p1, p2], r: releases.clone() };
        let eager = eager_completions(&inst, &order, &assignment);
        for (i, &e) in eager.iter().enumerate() {
            let got = trace.record(mss_sim::TaskId(i)).compute_end.as_f64();
            prop_assert!((got - e).abs() < 1e-6, "task {i}: DES {got} vs eager {e}");
        }
        // And the optimum never exceeds the heuristic's value.
        for goal in [Goal::Makespan, Goal::MaxFlow, Goal::SumFlow] {
            let opt = best_f64(&inst, goal).value;
            let heur = goal_value_f64(goal, &eager, &releases);
            prop_assert!(opt <= heur + 1e-9);
        }
    }
}
