//! # mss-exact — exact arithmetic for competitive-ratio verification
//!
//! The nine lower bounds of Pineau, Robert & Vivien's *"The impact of
//! heterogeneity on master-slave on-line scheduling"* involve the irrationals
//! √2, √3, √7 and √13, both in the bound values and in the adversary
//! platforms themselves (e.g. Theorem 7 uses `p₂ = 1 + √3`). Verifying those
//! theorems with floating point would bury every strict inequality under an
//! epsilon; this crate instead provides:
//!
//! * [`Rational`] — normalized `i128` rationals with checked arithmetic;
//! * [`Surd`] — elements `a + b√d` of a real quadratic field ℚ(√d), closed
//!   under `+ − × ÷` with an **exact total order**.
//!
//! `mss-adversary` runs every theorem's game and every brute-force optimum in
//! this arithmetic, so statements like *"the achieved ratio is ≥ 5/4"* are
//! decided exactly.
//!
//! ```
//! use mss_exact::{Rational, Surd};
//!
//! // Theorem 2's bound (2 + 4√2)/7 is strictly below Theorem 1's 5/4:
//! let t2 = (Surd::from_int(2) + Surd::from_int(4) * Surd::sqrt(2)) / Surd::from_int(7);
//! let t1 = Surd::rational(Rational::new(5, 4));
//! assert!(t2 < t1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rational;
mod surd;

pub use rational::{rat, Rational};
pub use surd::Surd;
