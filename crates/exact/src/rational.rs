//! Arbitrary-sign rational numbers over `i128`.
//!
//! The adversary instances of the paper involve a handful of tasks and
//! constants such as `5/4` or `23/22`, so `i128` head-room is ample. All
//! arithmetic is checked: an overflow is a logic error in the caller and
//! panics with a descriptive message instead of silently wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Greatest common divisor of two non-negative integers (Euclid).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational `0`.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational `1`.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational::new: zero denominator");
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let (num, den) = (num.unsigned_abs() as i128, den.unsigned_abs() as i128);
        let g = gcd(num, den);
        Rational {
            num: sign * (num / g),
            den: den / g,
        }
    }

    /// Builds the integer `n`.
    pub const fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying, normalized).
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive, normalized).
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff the value is an integer.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff the value is zero.
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign of the value: `-1`, `0` or `1`.
    pub const fn signum(self) -> i32 {
        if self.num > 0 {
            1
        } else if self.num < 0 {
            -1
        } else {
            0
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "Rational::recip: division by zero");
        Rational::new(self.den, self.num)
    }

    /// Exact square, convenience for surd sign analysis.
    pub fn square(self) -> Self {
        self * self
    }

    /// Closest `f64` (for display / plotting only — never for decisions).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked multiply helper with a uniform panic message.
    fn ck_mul(a: i128, b: i128) -> i128 {
        a.checked_mul(b)
            .expect("Rational arithmetic overflowed i128 (instance too large for exact mode)")
    }

    fn ck_add(a: i128, b: i128) -> i128 {
        a.checked_add(b)
            .expect("Rational arithmetic overflowed i128 (instance too large for exact mode)")
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // a/b + c/d = (a d + c b) / (b d); pre-reduce via gcd(b, d).
        let g = gcd(self.den, rhs.den);
        let lcm_part = rhs.den / g;
        let num = Rational::ck_add(
            Rational::ck_mul(self.num, lcm_part),
            Rational::ck_mul(rhs.num, self.den / g),
        );
        let den = Rational::ck_mul(self.den, lcm_part);
        Rational::new(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num.unsigned_abs() as i128, rhs.den);
        let g2 = gcd(rhs.num.unsigned_abs() as i128, self.den);
        let num = Rational::ck_mul(self.num / g1, rhs.num / g2);
        let den = Rational::ck_mul(self.den / g2, rhs.den / g1);
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a · b⁻¹ by definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a d ? c b   (b, d > 0)
        let lhs = Rational::ck_mul(self.num, other.den);
        let rhs = Rational::ck_mul(other.num, self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Convenience constructor: `rat(a, b)` is `a/b`.
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, 4), rat(1, -2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(0, 7), Rational::ZERO);
        assert_eq!(rat(6, 3).numer(), 2);
        assert_eq!(rat(6, 3).denom(), 1);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), rat(2, 1));
        assert_eq!(-rat(1, 2), rat(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(5, 4) > Rational::ONE);
        assert_eq!(rat(3, 9).cmp(&rat(1, 3)), Ordering::Equal);
    }

    #[test]
    fn signum_abs_recip() {
        assert_eq!(rat(-3, 7).signum(), -1);
        assert_eq!(Rational::ZERO.signum(), 0);
        assert_eq!(rat(3, 7).abs(), rat(3, 7));
        assert_eq!(rat(-3, 7).abs(), rat(3, 7));
        assert_eq!(rat(3, 7).recip(), rat(7, 3));
        assert_eq!(rat(-3, 7).recip(), rat(-7, 3));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_recip_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn display() {
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!(rat(-5, 10).to_string(), "-1/2");
    }

    #[test]
    fn to_f64_matches() {
        assert!((rat(5, 4).to_f64() - 1.25).abs() < 1e-15);
        assert!((rat(23, 22).to_f64() - 23.0 / 22.0).abs() < 1e-15);
    }
}
