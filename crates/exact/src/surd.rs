//! Exact arithmetic in real quadratic fields ℚ(√d).
//!
//! The lower bounds of the paper are `5/4`, `6/5`, `23/22`, `(5−√7)/2`,
//! `(2+4√2)/7`, `(1+√3)/2`, `√2` and `(√13−1)/2`; the adversary platforms use
//! the same irrationals as processing / communication times. A [`Surd`]
//! represents `a + b√d` with rational `a`, `b` and a fixed square-free
//! radicand `d`, which closes ℚ(√d) under `+ − × ÷` and admits an *exact*
//! total order — so every competitive-ratio comparison in `mss-adversary` is
//! decided without floating point.
//!
//! Values with `b == 0` are plain rationals and carry the canonical radicand
//! `d == 0`; they mix freely with any field. Mixing two *irrational* values
//! from different fields (e.g. `√2 + √3`) is not representable and panics —
//! no theorem in the paper needs it.

use crate::rational::Rational;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element `a + b√d` of the real quadratic field ℚ(√d).
///
/// Invariants: `d` is square-free; `b == 0` implies `d == 0`; `b != 0`
/// implies `d >= 2`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Surd {
    a: Rational,
    b: Rational,
    d: u32,
}

/// Checks that `d` has no square factor (sufficient for the small radicands
/// used by the paper's constructions).
fn is_square_free(d: u32) -> bool {
    let mut f = 2u32;
    while f * f <= d {
        if d.is_multiple_of(f * f) {
            return false;
        }
        f += 1;
    }
    true
}

impl Surd {
    /// The value `0`.
    pub const ZERO: Surd = Surd {
        a: Rational::ZERO,
        b: Rational::ZERO,
        d: 0,
    };
    /// The value `1`.
    pub const ONE: Surd = Surd {
        a: Rational::ONE,
        b: Rational::ZERO,
        d: 0,
    };

    /// Builds `a + b√d`.
    ///
    /// # Panics
    /// Panics if `d` is `0`/`1` while `b != 0`, or if `d` is not square-free.
    pub fn new(a: Rational, b: Rational, d: u32) -> Self {
        if b.is_zero() {
            return Surd {
                a,
                b: Rational::ZERO,
                d: 0,
            };
        }
        assert!(
            d >= 2,
            "Surd::new: radicand must be >= 2 for irrational part"
        );
        assert!(
            is_square_free(d),
            "Surd::new: radicand {d} is not square-free"
        );
        Surd { a, b, d }
    }

    /// Builds the rational value `r`.
    pub fn rational(r: Rational) -> Self {
        Surd {
            a: r,
            b: Rational::ZERO,
            d: 0,
        }
    }

    /// Builds the integer `n`.
    pub fn from_int(n: i128) -> Self {
        Surd::rational(Rational::from_int(n))
    }

    /// Builds `num/den` as a rational surd.
    pub fn from_ratio(num: i128, den: i128) -> Self {
        Surd::rational(Rational::new(num, den))
    }

    /// Builds `√d` exactly.
    pub fn sqrt(d: u32) -> Self {
        Surd::new(Rational::ZERO, Rational::ONE, d)
    }

    /// Rational part `a`.
    pub fn rational_part(self) -> Rational {
        self.a
    }

    /// Radical coefficient `b`.
    pub fn radical_part(self) -> Rational {
        self.b
    }

    /// Radicand `d` (0 for purely rational values).
    pub fn radicand(self) -> u32 {
        self.d
    }

    /// `true` iff the value is rational (no radical component).
    pub fn is_rational(self) -> bool {
        self.b.is_zero()
    }

    /// `true` iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.a.is_zero() && self.b.is_zero()
    }

    /// Unifies the radicands of two values for a binary operation.
    ///
    /// # Panics
    /// Panics when both values are irrational with different radicands.
    fn unify(self, rhs: Surd) -> (Surd, Surd, u32) {
        let d = match (self.b.is_zero(), rhs.b.is_zero()) {
            (true, true) => 0,
            (false, true) => self.d,
            (true, false) => rhs.d,
            (false, false) => {
                assert!(
                    self.d == rhs.d,
                    "Surd: cannot mix radicands √{} and √{} in one expression",
                    self.d,
                    rhs.d
                );
                self.d
            }
        };
        (self, rhs, d)
    }

    /// Exact sign of the value: `-1`, `0` or `1`.
    ///
    /// Decided purely with rational comparisons:
    /// for `a + b√d` with `a, b` of opposite signs, compare `a²` against
    /// `b²·d`.
    pub fn signum(self) -> i32 {
        let (sa, sb) = (self.a.signum(), self.b.signum());
        match (sa, sb) {
            (0, 0) => 0,
            (s, 0) => s,
            (0, s) => s,
            (1, 1) => 1,
            (-1, -1) => -1,
            (1, -1) => {
                // a > 0, b < 0: sign of a - |b|√d  <=>  compare a² vs b²d.
                match self
                    .a
                    .square()
                    .cmp(&(self.b.square() * Rational::from_int(self.d as i128)))
                {
                    Ordering::Greater => 1,
                    Ordering::Less => -1,
                    Ordering::Equal => 0,
                }
            }
            (-1, 1) => {
                match (self.b.square() * Rational::from_int(self.d as i128)).cmp(&self.a.square()) {
                    Ordering::Greater => 1,
                    Ordering::Less => -1,
                    Ordering::Equal => 0,
                }
            }
            _ => unreachable!("signum returns only -1, 0, 1"),
        }
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        if self.signum() < 0 {
            -self
        } else {
            self
        }
    }

    /// Multiplicative inverse via the conjugate:
    /// `(a + b√d)⁻¹ = (a − b√d) / (a² − b²d)`.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Self {
        assert!(!self.is_zero(), "Surd::recip: division by zero");
        if self.b.is_zero() {
            return Surd::rational(self.a.recip());
        }
        let norm = self.a.square() - self.b.square() * Rational::from_int(self.d as i128);
        // `norm == 0` would mean √d is rational, impossible for square-free d ≥ 2.
        debug_assert!(!norm.is_zero());
        Surd::new(self.a / norm, -self.b / norm, self.d)
    }

    /// Pairwise minimum.
    pub fn min(self, other: Surd) -> Surd {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Pairwise maximum.
    pub fn max(self, other: Surd) -> Surd {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Closest `f64` (display / plotting only — never for decisions).
    pub fn to_f64(self) -> f64 {
        self.a.to_f64() + self.b.to_f64() * (self.d as f64).sqrt()
    }
}

impl Default for Surd {
    fn default() -> Self {
        Surd::ZERO
    }
}

impl From<Rational> for Surd {
    fn from(r: Rational) -> Self {
        Surd::rational(r)
    }
}

impl From<i128> for Surd {
    fn from(n: i128) -> Self {
        Surd::from_int(n)
    }
}

impl From<i32> for Surd {
    fn from(n: i32) -> Self {
        Surd::from_int(n as i128)
    }
}

impl Add for Surd {
    type Output = Surd;
    fn add(self, rhs: Surd) -> Surd {
        let (l, r, d) = self.unify(rhs);
        Surd::new(l.a + r.a, l.b + r.b, d)
    }
}

impl Sub for Surd {
    type Output = Surd;
    fn sub(self, rhs: Surd) -> Surd {
        self + (-rhs)
    }
}

impl Mul for Surd {
    type Output = Surd;
    fn mul(self, rhs: Surd) -> Surd {
        let (l, r, d) = self.unify(rhs);
        let dd = Rational::from_int(d as i128);
        Surd::new(l.a * r.a + l.b * r.b * dd, l.a * r.b + l.b * r.a, d)
    }
}

impl Div for Surd {
    type Output = Surd;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a · b⁻¹ by definition
    fn div(self, rhs: Surd) -> Surd {
        self * rhs.recip()
    }
}

impl Neg for Surd {
    type Output = Surd;
    fn neg(self) -> Surd {
        Surd {
            a: -self.a,
            b: -self.b,
            d: self.d,
        }
    }
}

impl AddAssign for Surd {
    fn add_assign(&mut self, rhs: Surd) {
        *self = *self + rhs;
    }
}
impl SubAssign for Surd {
    fn sub_assign(&mut self, rhs: Surd) {
        *self = *self - rhs;
    }
}
impl MulAssign for Surd {
    fn mul_assign(&mut self, rhs: Surd) {
        *self = *self * rhs;
    }
}
impl DivAssign for Surd {
    fn div_assign(&mut self, rhs: Surd) {
        *self = *self / rhs;
    }
}

/// Splits `n` into `k²·m` with `m` square-free and returns `(k, m)`,
/// i.e. `√n = k√m`.
fn extract_square(mut n: u64) -> (u64, u64) {
    let mut k = 1u64;
    let mut f = 2u64;
    while f * f <= n {
        while n.is_multiple_of(f * f) {
            n /= f * f;
            k *= f;
        }
        f += 1;
    }
    (k, n)
}

/// Exact sign of `a + b√p + c√q` for distinct square-free `p, q ≥ 2` and
/// nonzero `b, c`. Used only for cross-field *comparisons*; full arithmetic
/// across fields remains unsupported.
fn cross_signum(a: Rational, b: Rational, p: u32, c: Rational, q: u32) -> i32 {
    debug_assert!(p != q && p >= 2 && q >= 2 && !b.is_zero() && !c.is_zero());
    // Sign of t = b√p + c√q. Never zero: b²p = c²q would make pq a rational
    // square, impossible for distinct square-free radicands.
    let bp = b.square() * Rational::from_int(p as i128);
    let cq = c.square() * Rational::from_int(q as i128);
    let sign_t = match (b.signum(), c.signum()) {
        (1, 1) => 1,
        (-1, -1) => -1,
        (sb, _) => {
            // Opposite signs: the larger squared magnitude wins.
            match bp.cmp(&cq) {
                Ordering::Greater => sb,
                Ordering::Less => -sb,
                Ordering::Equal => unreachable!("√(pq) cannot be rational"),
            }
        }
    };
    if a.is_zero() {
        return sign_t;
    }
    let sign_a = a.signum();
    if sign_a == sign_t {
        return sign_a;
    }
    // Opposite signs: compare a² against t² = b²p + c²q + 2bc√(pq),
    // an element of ℚ(√m) with √(pq) = k√m.
    let (k, m) = extract_square(p as u64 * q as u64);
    let rat_part = a.square() - bp - cq;
    let rad_coeff = -(Rational::from_int(2) * b * c * Rational::from_int(k as i128));
    // a² − t², folded to a rational when m == 1.
    let diff = if m == 1 {
        Surd::rational(rat_part + rad_coeff)
    } else {
        Surd::new(rat_part, rad_coeff, m as u32)
    };
    match diff.signum() {
        // |a| > |t|: the sign of a wins; |a| < |t|: the sign of t wins.
        1 => sign_a,
        -1 => sign_t,
        _ => 0,
    }
}

impl PartialOrd for Surd {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Surd {
    /// Exact total order. Same-field values (and rationals) compare via
    /// subtraction; values from *different* quadratic fields compare via a
    /// dedicated biquadratic sign analysis, so e.g. `√2 < (5+√7)/2` is
    /// decided exactly.
    fn cmp(&self, other: &Self) -> Ordering {
        let sign = if self.b.is_zero() || other.b.is_zero() || self.d == other.d {
            (*self - *other).signum()
        } else {
            cross_signum(self.a - other.a, self.b, self.d, -other.b, other.d)
        };
        match sign {
            1 => Ordering::Greater,
            -1 => Ordering::Less,
            _ => Ordering::Equal,
        }
    }
}

impl fmt::Debug for Surd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Surd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.b.is_zero() {
            write!(f, "{}", self.a)
        } else if self.a.is_zero() {
            write!(f, "{}√{}", self.b, self.d)
        } else if self.b.signum() > 0 {
            write!(f, "{} + {}√{}", self.a, self.b, self.d)
        } else {
            write!(f, "{} - {}√{}", self.a, self.b.abs(), self.d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn s(a: (i128, i128), b: (i128, i128), d: u32) -> Surd {
        Surd::new(rat(a.0, a.1), rat(b.0, b.1), d)
    }

    #[test]
    fn rational_collapse() {
        let x = Surd::new(rat(1, 2), Rational::ZERO, 7);
        assert_eq!(x.radicand(), 0);
        assert!(x.is_rational());
    }

    #[test]
    fn sqrt_squares_back() {
        for d in [2u32, 3, 5, 7, 13] {
            let r = Surd::sqrt(d);
            assert_eq!(r * r, Surd::from_int(d as i128));
        }
    }

    #[test]
    #[should_panic(expected = "not square-free")]
    fn rejects_square_radicand() {
        let _ = Surd::sqrt(12);
    }

    #[test]
    #[should_panic(expected = "cannot mix radicands")]
    fn rejects_mixed_radicands() {
        let _ = Surd::sqrt(2) + Surd::sqrt(3);
    }

    #[test]
    fn signum_opposite_signs() {
        // 3 - 2√2 > 0 since 9 > 8.
        assert_eq!(s((3, 1), (-2, 1), 2).signum(), 1);
        // 2 - 2√2 < 0 since 4 < 8.
        assert_eq!(s((2, 1), (-2, 1), 2).signum(), -1);
        // -3 + 2√2 < 0.
        assert_eq!(s((-3, 1), (2, 1), 2).signum(), -1);
        // -2 + 2√2 > 0.
        assert_eq!(s((-2, 1), (2, 1), 2).signum(), 1);
    }

    #[test]
    fn ordering_against_f64() {
        // (5-√7)/2 ≈ 1.177 < 5/4.
        let max_flow_ch = (Surd::from_int(5) - Surd::sqrt(7)) / Surd::from_int(2);
        assert!(max_flow_ch < Surd::from_ratio(5, 4));
        assert!(max_flow_ch > Surd::ONE);
        assert!((max_flow_ch.to_f64() - 1.177_124_34).abs() < 1e-7);
    }

    #[test]
    fn recip_roundtrip() {
        let x = s((5, 3), (-1, 7), 13);
        let y = x.recip();
        assert_eq!(x * y, Surd::ONE);
    }

    #[test]
    fn division() {
        // (2 + 4√2) / 7 — the Theorem 2 bound.
        let v = (Surd::from_int(2) + Surd::from_int(4) * Surd::sqrt(2)) / Surd::from_int(7);
        assert!((v.to_f64() - 1.093_836_6).abs() < 1e-6);
        // Paper: (6+4√2)/(5+4√2) == (2+4√2)/7.
        let lhs = (Surd::from_int(6) + Surd::from_int(4) * Surd::sqrt(2))
            / (Surd::from_int(5) + Surd::from_int(4) * Surd::sqrt(2));
        assert_eq!(lhs, v);
    }

    #[test]
    fn min_max_abs() {
        let a = Surd::sqrt(2);
        let b = Surd::from_ratio(3, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!((a - b).abs(), b - a);
    }

    #[test]
    fn cross_field_comparisons() {
        // √2 ≈ 1.414 vs (5-√7)/2 ≈ 1.177.
        let a = Surd::sqrt(2);
        let b = (Surd::from_int(5) - Surd::sqrt(7)) / Surd::from_int(2);
        assert!(a > b);
        assert!(b < a);
        // (1+√3)/2 ≈ 1.366 vs √2 ≈ 1.414.
        let c = (Surd::ONE + Surd::sqrt(3)) / Surd::from_int(2);
        assert!(c < a);
        // (√13-1)/2 ≈ 1.302 vs (1+√3)/2 ≈ 1.366.
        let e = (Surd::sqrt(13) - Surd::ONE) / Surd::from_int(2);
        assert!(e < c);
        // Radicands sharing a factor: √2 vs √6 (pq = 12 = 2²·3).
        assert!(Surd::sqrt(2) < Surd::sqrt(6));
        assert!(
            Surd::from_int(2) + Surd::sqrt(2) > Surd::ONE + Surd::sqrt(6) - Surd::from_ratio(1, 2)
        );
        // Equal-through-different-paths stays Equal only for true equality.
        assert_eq!(Surd::sqrt(2).cmp(&Surd::sqrt(2)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn extract_square_cases() {
        assert_eq!(super::extract_square(12), (2, 3));
        assert_eq!(super::extract_square(49), (7, 1));
        assert_eq!(super::extract_square(26), (1, 26));
        assert_eq!(super::extract_square(72), (6, 2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Surd::from_ratio(5, 4).to_string(), "5/4");
        assert_eq!(Surd::sqrt(2).to_string(), "1√2");
        let v = (Surd::from_int(5) - Surd::sqrt(7)) / Surd::from_int(2);
        assert_eq!(v.to_string(), "5/2 - 1/2√7");
    }
}
