//! Property-based tests: field axioms and order consistency for the exact
//! arithmetic used by the theorem verifiers.

use mss_exact::{rat, Rational, Surd};
use proptest::prelude::*;

/// Small component range keeps intermediate products far from i128 overflow
/// even in the 8-operand associativity expressions below.
fn small_rational() -> impl Strategy<Value = Rational> {
    (-200i128..=200, 1i128..=60).prop_map(|(n, d)| rat(n, d))
}

fn nonzero_rational() -> impl Strategy<Value = Rational> {
    small_rational().prop_filter("nonzero", |r| !r.is_zero())
}

/// Surds restricted to one radicand per case (mixing panics by design).
fn surd(d: u32) -> impl Strategy<Value = Surd> {
    (small_rational(), small_rational()).prop_map(move |(a, b)| Surd::new(a, b, d))
}

fn nonzero_surd(d: u32) -> impl Strategy<Value = Surd> {
    surd(d).prop_filter("nonzero", |s| !s.is_zero())
}

proptest! {
    #[test]
    fn rational_add_commutes(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_mul_commutes(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn rational_add_associates(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_mul_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_sub_inverts_add(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn rational_div_inverts_mul(a in small_rational(), b in nonzero_rational()) {
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn rational_order_total_and_translation_invariant(
        a in small_rational(), b in small_rational(), c in small_rational()
    ) {
        prop_assert_eq!(a.cmp(&b), (a + c).cmp(&(b + c)));
    }

    #[test]
    fn rational_order_matches_f64(a in small_rational(), b in small_rational()) {
        // Components are small, so the f64 images are exact enough to compare
        // whenever they differ by more than an epsilon.
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn surd_field_axioms_d2(a in surd(2), b in surd(2), c in surd(2)) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn surd_field_axioms_d13(a in surd(13), b in surd(13), c in surd(13)) {
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a - b + b, a);
    }

    #[test]
    fn surd_recip_is_inverse(a in nonzero_surd(7)) {
        prop_assert_eq!(a * a.recip(), Surd::ONE);
        prop_assert_eq!(a / a, Surd::ONE);
    }

    #[test]
    fn surd_signum_matches_f64(a in surd(3)) {
        let f = a.to_f64();
        if f.abs() > 1e-9 {
            prop_assert_eq!(a.signum(), if f > 0.0 { 1 } else { -1 });
        }
    }

    #[test]
    fn surd_order_antisymmetric(a in surd(5), b in surd(5)) {
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    #[test]
    fn surd_order_respects_addition(a in surd(2), b in surd(2), c in surd(2)) {
        prop_assert_eq!(a.cmp(&b), (a + c).cmp(&(b + c)));
    }

    #[test]
    fn surd_abs_nonnegative(a in surd(7)) {
        prop_assert!(a.abs().signum() >= 0);
        prop_assert_eq!(a.abs() * a.abs(), a * a);
    }

    #[test]
    fn surd_min_max_consistent(a in surd(13), b in surd(13)) {
        prop_assert_eq!(a.min(b) + a.max(b), a + b);
        prop_assert!(a.min(b) <= a.max(b));
    }

    #[test]
    fn surd_to_f64_close(a in surd(2)) {
        let expected = a.rational_part().to_f64()
            + a.radical_part().to_f64() * (a.radicand().max(1) as f64).sqrt();
        prop_assert!((a.to_f64() - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
    }
}

#[test]
fn bound_values_ordering_matches_table1() {
    // Table 1, read row-wise, in exact arithmetic.
    let comm_makespan = Surd::from_ratio(5, 4);
    let comm_maxflow = (Surd::from_int(5) - Surd::sqrt(7)) / Surd::from_int(2);
    let comm_sumflow = (Surd::from_int(2) + Surd::from_int(4) * Surd::sqrt(2)) / Surd::from_int(7);
    let comp_makespan = Surd::from_ratio(6, 5);
    let comp_maxflow = Surd::from_ratio(5, 4);
    let comp_sumflow = Surd::from_ratio(23, 22);
    let het_makespan = (Surd::ONE + Surd::sqrt(3)) / Surd::from_int(2);
    let het_maxflow = Surd::sqrt(2);
    let het_sumflow = (Surd::sqrt(13) - Surd::ONE) / Surd::from_int(2);

    // Heterogeneous bounds strictly dominate the single-source bounds (the
    // paper's "complexity goes beyond the worst scenario" remark).
    assert!(het_makespan > comm_makespan);
    assert!(het_makespan > comp_makespan);
    assert!(het_maxflow > comm_maxflow);
    assert!(het_maxflow > comp_maxflow);
    assert!(het_sumflow > comm_sumflow);
    assert!(het_sumflow > comp_sumflow);

    // Approximate decimal values printed in Table 1.
    for (v, dec) in [
        (comm_makespan, 1.250),
        (comm_maxflow, 1.177),
        (comm_sumflow, 1.093),
        (comp_makespan, 1.200),
        (comp_maxflow, 1.250),
        (comp_sumflow, 23.0 / 22.0),
        (het_makespan, 1.366),
        (het_maxflow, 1.414),
        (het_sumflow, 1.302),
    ] {
        // Table 1 truncates rather than rounds (e.g. prints 1.093 for
        // 1.09384), so allow a one-in-the-last-digit slack.
        assert!((v.to_f64() - dec).abs() < 1e-3, "{v} != {dec}");
    }
}
