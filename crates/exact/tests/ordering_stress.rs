//! Stress tests for the exact total order across quadratic fields — the
//! machinery every theorem verification leans on.

use mss_exact::{rat, Rational, Surd};
use proptest::prelude::*;

/// All radicands the paper's theorems use, plus composites sharing factors.
const RADICANDS: [u32; 6] = [2, 3, 5, 6, 7, 13];

fn small_rational() -> impl Strategy<Value = Rational> {
    (-60i128..=60, 1i128..=20).prop_map(|(n, d)| rat(n, d))
}

fn any_surd() -> impl Strategy<Value = Surd> {
    (small_rational(), small_rational(), 0usize..RADICANDS.len())
        .prop_map(|(a, b, i)| Surd::new(a, b, RADICANDS[i]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cross_field_order_matches_f64(x in any_surd(), y in any_surd()) {
        // The f64 images are accurate to ~1e-12 at these magnitudes; when
        // they are clearly separated the exact order must agree.
        let (fx, fy) = (x.to_f64(), y.to_f64());
        if (fx - fy).abs() > 1e-6 {
            prop_assert_eq!(x < y, fx < fy, "{} vs {}", x, y);
        }
    }

    #[test]
    fn cross_field_order_is_antisymmetric(x in any_surd(), y in any_surd()) {
        prop_assert_eq!(x.cmp(&y), y.cmp(&x).reverse());
    }

    #[test]
    fn cross_field_order_is_transitive(x in any_surd(), y in any_surd(), z in any_surd()) {
        if x <= y && y <= z {
            prop_assert!(x <= z, "{} <= {} <= {} but not {} <= {}", x, y, z, x, z);
        }
    }

    #[test]
    fn equality_only_within_a_field(x in any_surd(), y in any_surd()) {
        // Two irrational surds from *different* square-free fields are never
        // equal (√p ∉ ℚ(√q) for distinct square-free p, q).
        if !x.is_rational() && !y.is_rational() && x.radicand() != y.radicand() {
            prop_assert!(x != y || x.radical_part().is_zero());
        }
    }

    #[test]
    fn min_max_consistent_across_fields(x in any_surd(), y in any_surd()) {
        let lo = x.min(y);
        let hi = x.max(y);
        prop_assert!(lo <= hi);
        prop_assert!((lo == x && hi == y) || (lo == y && hi == x));
    }
}

#[test]
fn table1_bounds_total_order() {
    // Sorting all nine bounds exactly reproduces the order of their
    // decimals in the paper.
    let bounds = vec![
        ("T6", Surd::from_ratio(23, 22)),
        (
            "T2",
            (Surd::from_int(2) + Surd::from_int(4) * Surd::sqrt(2)) / Surd::from_int(7),
        ),
        (
            "T3",
            (Surd::from_int(5) - Surd::sqrt(7)) / Surd::from_int(2),
        ),
        ("T4", Surd::from_ratio(6, 5)),
        ("T1", Surd::from_ratio(5, 4)),
        ("T8", (Surd::sqrt(13) - Surd::ONE) / Surd::from_int(2)),
        ("T7", (Surd::ONE + Surd::sqrt(3)) / Surd::from_int(2)),
        ("T9", Surd::sqrt(2)),
    ];
    let mut sorted = bounds.clone();
    sorted.sort_by_key(|a| a.1);
    let order: Vec<&str> = sorted.iter().map(|(n, _)| *n).collect();
    assert_eq!(order, vec!["T6", "T2", "T3", "T4", "T1", "T8", "T7", "T9"]);
}
