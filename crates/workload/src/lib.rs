//! # mss-workload — platforms, arrivals, perturbations, calibration
//!
//! Everything the experiments of Pineau, Robert & Vivien (§4) need around
//! the scheduler itself:
//!
//! * [`PlatformSampler`] — the paper's random 5-machine platforms
//!   (`c ∈ [0.01, 1] s`, `p ∈ [0.1, 8] s`) for all four platform classes;
//! * [`ArrivalProcess`] — bag-of-tasks, uniform stream and Poisson release
//!   processes with load targeting;
//! * [`Perturbation`] — the ±10 % task-size jitter of the robustness
//!   experiment (Figure 2), in linear or matrix (N², N³) mode;
//! * [`calibrate`] — §4.2's `nc_i`/`np_i` repetition-count procedure that
//!   shapes a measured platform towards a target heterogeneity.
//!
//! ```
//! use mss_workload::{ArrivalProcess, PlatformSampler};
//! use mss_core::PlatformClass;
//!
//! let sampler = PlatformSampler::default();
//! let platforms = sampler.sample_many(PlatformClass::Heterogeneous, 10, 42);
//! assert_eq!(platforms.len(), 10);
//! let tasks = ArrivalProcess::AllAtZero.generate(1000, &platforms[0], 42);
//! assert_eq!(tasks.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod calibration;
mod heterogeneity;
mod perturbation;
mod platforms;
mod source;

pub use arrivals::ArrivalProcess;
pub use calibration::{calibrate, Calibration};
pub use heterogeneity::{HeterogeneityAxis, HeterogeneityFamily};
pub use mss_core::TaskSource;
pub use perturbation::Perturbation;
pub use platforms::{PlatformSampler, PlatformStream};
pub use source::{GeneratedSource, MaterializedSource, TraceError, TraceFormat, TraceSource};
