//! Random platform generation following the paper's §4.2.
//!
//! > "Our platforms are composed with five machines Pi with ci between
//! > 0.01 s and 1 s, and pi between 0.1 s and 8 s. [...] for each diagram,
//! > we create ten random platforms, possibly with one prescribed property
//! > (such as homogeneous links or processors)."

use mss_core::{Platform, PlatformClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sampler for the paper's platform distribution.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlatformSampler {
    /// Number of slaves (the paper uses 5).
    pub num_slaves: usize,
    /// Range for communication times `c_j` in seconds.
    pub c_range: (f64, f64),
    /// Range for computation times `p_j` in seconds.
    pub p_range: (f64, f64),
}

impl Default for PlatformSampler {
    fn default() -> Self {
        PlatformSampler {
            num_slaves: 5,
            c_range: (0.01, 1.0),
            p_range: (0.1, 8.0),
        }
    }
}

impl PlatformSampler {
    /// Draws a platform of the prescribed class.
    pub fn sample(&self, class: PlatformClass, rng: &mut StdRng) -> Platform {
        let m = self.num_slaves;
        let draw_c = |rng: &mut StdRng| rng.gen_range(self.c_range.0..=self.c_range.1);
        let draw_p = |rng: &mut StdRng| rng.gen_range(self.p_range.0..=self.p_range.1);
        let (c, p): (Vec<f64>, Vec<f64>) = match class {
            PlatformClass::Homogeneous => {
                let c0 = draw_c(rng);
                let p0 = draw_p(rng);
                (vec![c0; m], vec![p0; m])
            }
            PlatformClass::CommHomogeneous => {
                let c0 = draw_c(rng);
                let p: Vec<f64> = (0..m).map(|_| draw_p(rng)).collect();
                (vec![c0; m], p)
            }
            PlatformClass::CompHomogeneous => {
                let c: Vec<f64> = (0..m).map(|_| draw_c(rng)).collect();
                let p0 = draw_p(rng);
                (c, vec![p0; m])
            }
            PlatformClass::Heterogeneous => {
                let c: Vec<f64> = (0..m).map(|_| draw_c(rng)).collect();
                let p: Vec<f64> = (0..m).map(|_| draw_p(rng)).collect();
                (c, p)
            }
        };
        Platform::from_vectors(&c, &p)
    }

    /// Draws the paper's "ten random platforms" for one figure panel,
    /// reproducibly from a seed.
    pub fn sample_many(&self, class: PlatformClass, count: usize, seed: u64) -> Vec<Platform> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.sample(class, &mut rng)).collect()
    }

    /// Opens a *resumable* view of the sampler stream `(class, seed)`:
    /// [`PlatformStream::get`] returns platform `i` of exactly the sequence
    /// [`PlatformSampler::sample_many`] would produce, but the underlying
    /// RNG advances lazily and every drawn platform is memoized — asking
    /// for index `i` costs at most the draws not yet taken, and re-asking
    /// is a slice lookup. This is what lets a sweep executor kill the
    /// O(index) redundant-draw cost of materializing stream platforms cell
    /// by cell without changing a single sampled bit.
    pub fn stream(&self, class: PlatformClass, seed: u64) -> PlatformStream {
        PlatformStream {
            sampler: self.clone(),
            class,
            rng: StdRng::seed_from_u64(seed),
            drawn: Vec::new(),
        }
    }
}

/// A lazily extended, memoized view of one `(sampler, class, seed)` stream
/// (see [`PlatformSampler::stream`]).
#[derive(Clone, Debug)]
pub struct PlatformStream {
    sampler: PlatformSampler,
    class: PlatformClass,
    rng: StdRng,
    drawn: Vec<Platform>,
}

impl PlatformStream {
    /// Platform `index` of the stream — bit-identical to
    /// `sampler.sample_many(class, index + 1, seed)[index]`, at the cost of
    /// only the draws beyond the highest index seen so far.
    pub fn get(&mut self, index: usize) -> &Platform {
        while self.drawn.len() <= index {
            let next = self.sampler.sample(self.class, &mut self.rng);
            self.drawn.push(next);
        }
        &self.drawn[index]
    }

    /// Number of platforms drawn (and memoized) so far.
    pub fn drawn(&self) -> usize {
        self.drawn.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_respected() {
        let sampler = PlatformSampler::default();
        let mut rng = StdRng::seed_from_u64(7);
        for class in [
            PlatformClass::Homogeneous,
            PlatformClass::CommHomogeneous,
            PlatformClass::CompHomogeneous,
            PlatformClass::Heterogeneous,
        ] {
            let pf = sampler.sample(class, &mut rng);
            assert_eq!(pf.num_slaves(), 5);
            // Heterogeneous draws of 5 f64s are never accidentally equal.
            assert_eq!(pf.classify(), class, "class {class:?}");
        }
    }

    #[test]
    fn ranges_are_respected() {
        let sampler = PlatformSampler::default();
        for pf in sampler.sample_many(PlatformClass::Heterogeneous, 50, 42) {
            for (_, s) in pf.iter() {
                assert!((0.01..=1.0).contains(&s.c), "c = {}", s.c);
                assert!((0.1..=8.0).contains(&s.p), "p = {}", s.p);
            }
        }
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let sampler = PlatformSampler::default();
        let a = sampler.sample_many(PlatformClass::Heterogeneous, 10, 123);
        let b = sampler.sample_many(PlatformClass::Heterogeneous, 10, 123);
        assert_eq!(a, b);
        let c = sampler.sample_many(PlatformClass::Heterogeneous, 10, 124);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_matches_sample_many_in_any_access_order() {
        let sampler = PlatformSampler::default();
        let reference = sampler.sample_many(PlatformClass::Heterogeneous, 10, 77);
        let mut stream = sampler.stream(PlatformClass::Heterogeneous, 77);
        // Out-of-order, repeated, and backward accesses all hit the same
        // memoized sequence.
        for &i in &[3usize, 0, 7, 3, 9, 1, 9, 0] {
            assert_eq!(stream.get(i), &reference[i], "index {i}");
        }
        assert_eq!(stream.drawn(), 10);
    }

    #[test]
    fn custom_shapes() {
        let sampler = PlatformSampler {
            num_slaves: 3,
            c_range: (0.5, 0.5),
            p_range: (2.0, 2.0),
        };
        let mut rng = StdRng::seed_from_u64(0);
        let pf = sampler.sample(PlatformClass::Heterogeneous, &mut rng);
        assert_eq!(pf.classify(), PlatformClass::Homogeneous); // degenerate ranges
    }
}
