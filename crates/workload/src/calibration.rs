//! The paper's platform-calibration procedure (§4.2).
//!
//! > "in a first step, we send one single matrix to each slave one after
//! > another, and we calculate the time needed to send this matrix and to
//! > calculate its determinant on each slave. Thus, we obtain an estimation
//! > of ci and pi [...]. Then we determine the number of times this matrix
//! > should be sent (nci) and the number of times its determinant should be
//! > calculated (npi) on each slave in order to [...] reach the desired
//! > level of heterogeneity. Then, a task assigned on Pi will actually be
//! > sent nci times to Pi (so that ci ← nci·ci), and its determinant will
//! > actually be calculated npi times (so that pi ← npi·pi)."
//!
//! Given *measured* base characteristics and a *target* platform, this
//! module computes the integer repetition counts and reports the platform
//! actually achieved (integer rounding means the target is only
//! approximated — exactly as on the authors' testbed).

use mss_core::Platform;

/// Result of calibrating a base platform towards a target.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Calibration {
    /// Number of times each task is (re)sent to slave `i` (`nc_i ≥ 1`).
    pub nc: Vec<u32>,
    /// Number of times each determinant is computed on slave `i` (`np_i ≥ 1`).
    pub np: Vec<u32>,
    /// The effective platform `(nc_i·c_i, np_i·p_i)`.
    pub achieved: Platform,
    /// Worst relative error between achieved and target, over all `c_j`,
    /// `p_j`.
    pub max_relative_error: f64,
}

/// Computes repetition counts so that `nc_i·base_c_i ≈ target_c_i` and
/// `np_i·base_p_i ≈ target_p_i`.
///
/// # Panics
/// Panics if the platforms have different sizes.
pub fn calibrate(base: &Platform, target: &Platform) -> Calibration {
    assert_eq!(
        base.num_slaves(),
        target.num_slaves(),
        "calibrate: platform sizes differ"
    );
    let mut nc = Vec::with_capacity(base.num_slaves());
    let mut np = Vec::with_capacity(base.num_slaves());
    let mut c_eff = Vec::with_capacity(base.num_slaves());
    let mut p_eff = Vec::with_capacity(base.num_slaves());
    let mut max_err = 0.0f64;

    for (j, b) in base.iter() {
        let t = target.slave(j);
        let k_c = (t.c / b.c).round().max(1.0) as u32;
        let k_p = (t.p / b.p).round().max(1.0) as u32;
        let eff_c = f64::from(k_c) * b.c;
        let eff_p = f64::from(k_p) * b.p;
        max_err = max_err
            .max((eff_c - t.c).abs() / t.c)
            .max((eff_p - t.p).abs() / t.p);
        nc.push(k_c);
        np.push(k_p);
        c_eff.push(eff_c);
        p_eff.push(eff_p);
    }

    Calibration {
        nc,
        np,
        achieved: Platform::from_vectors(&c_eff, &p_eff),
        max_relative_error: max_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiples_calibrate_perfectly() {
        let base = Platform::from_vectors(&[0.1, 0.2], &[0.5, 1.0]);
        let target = Platform::from_vectors(&[0.5, 0.2], &[2.0, 3.0]);
        let cal = calibrate(&base, &target);
        assert_eq!(cal.nc, vec![5, 1]);
        assert_eq!(cal.np, vec![4, 3]);
        assert!(cal.max_relative_error < 1e-12);
        assert_eq!(cal.achieved, target);
    }

    #[test]
    fn rounding_error_is_reported() {
        let base = Platform::from_vectors(&[0.3], &[0.7]);
        let target = Platform::from_vectors(&[1.0], &[1.0]);
        let cal = calibrate(&base, &target);
        // nc = round(3.33) = 3 → 0.9 (10 % error); np = round(1.43) = 1 → 0.7.
        assert_eq!(cal.nc, vec![3]);
        assert_eq!(cal.np, vec![1]);
        assert!((cal.max_relative_error - 0.3).abs() < 1e-9);
    }

    #[test]
    fn counts_are_at_least_one() {
        // Target slower than base: the best we can do is one repetition.
        let base = Platform::from_vectors(&[1.0], &[8.0]);
        let target = Platform::from_vectors(&[0.01], &[0.1]);
        let cal = calibrate(&base, &target);
        assert_eq!(cal.nc, vec![1]);
        assert_eq!(cal.np, vec![1]);
    }

    #[test]
    #[should_panic(expected = "platform sizes differ")]
    fn size_mismatch_rejected() {
        let base = Platform::from_vectors(&[1.0], &[1.0]);
        let target = Platform::from_vectors(&[1.0, 1.0], &[1.0, 1.0]);
        let _ = calibrate(&base, &target);
    }
}
