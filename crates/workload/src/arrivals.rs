//! Release-date (arrival) processes.
//!
//! The paper "sends one thousand tasks" without stating release dates; we
//! support the two natural readings plus a Poisson stream (DESIGN.md,
//! arrival-process note):
//!
//! * [`ArrivalProcess::AllAtZero`] — a bag of tasks, the regime of the
//!   bag-of-tasks applications the introduction cites; used for Figure 1;
//! * [`ArrivalProcess::UniformStream`] — deterministic inter-arrival gap
//!   targeting a platform load `ρ` (fraction of the platform's steady-state
//!   throughput); used for Figure 2 where flow-time robustness is only
//!   meaningful when flows are arrival-bound;
//! * [`ArrivalProcess::Poisson`] — exponential gaps at load `ρ`, for the
//!   arrival-regime ablation (A3).

use mss_core::{Platform, TaskArrival};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How task release dates are generated.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalProcess {
    /// Every task released at `t = 0`.
    AllAtZero,
    /// Constant inter-arrival gap `1 / (ρ · system_throughput)`.
    UniformStream {
        /// Target load `ρ` (1.0 saturates the platform).
        load: f64,
    },
    /// Exponential inter-arrival gaps with the same mean as `UniformStream`.
    Poisson {
        /// Target load `ρ`.
        load: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` nominal-size tasks on `platform`, reproducibly.
    pub fn generate(self, n: usize, platform: &Platform, seed: u64) -> Vec<TaskArrival> {
        match self {
            ArrivalProcess::AllAtZero => mss_core::bag_of_tasks(n),
            ArrivalProcess::UniformStream { load } => {
                let gap = Self::gap(load, platform);
                (0..n).map(|i| TaskArrival::at(i as f64 * gap)).collect()
            }
            ArrivalProcess::Poisson { load } => {
                let gap = Self::gap(load, platform);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        // Inverse-CDF exponential with mean `gap`.
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        t += -gap * u.ln();
                        TaskArrival::at(t)
                    })
                    .collect()
            }
        }
    }

    /// Mean inter-arrival gap for a target load (also used by
    /// `GeneratedSource` to replay the same process lazily).
    pub(crate) fn gap(load: f64, platform: &Platform) -> f64 {
        assert!(load > 0.0, "load must be positive");
        1.0 / (load * platform.system_throughput())
    }

    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            ArrivalProcess::AllAtZero => "bag(t=0)".into(),
            ArrivalProcess::UniformStream { load } => format!("stream(ρ={load})"),
            ArrivalProcess::Poisson { load } => format!("poisson(ρ={load})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_core::Time;

    fn platform() -> Platform {
        Platform::from_vectors(&[0.5, 0.5], &[2.0, 2.0])
    }

    #[test]
    fn bag_releases_at_zero() {
        let tasks = ArrivalProcess::AllAtZero.generate(5, &platform(), 0);
        assert!(tasks.iter().all(|t| t.release == Time::ZERO));
    }

    #[test]
    fn uniform_stream_targets_load() {
        // system throughput = min(2/2, 1/0.5) = 1 task/s; ρ = 0.5 → gap 2 s.
        let tasks = ArrivalProcess::UniformStream { load: 0.5 }.generate(4, &platform(), 0);
        let releases: Vec<f64> = tasks.iter().map(|t| t.release.as_f64()).collect();
        assert_eq!(releases, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn poisson_is_reproducible_and_increasing() {
        let a = ArrivalProcess::Poisson { load: 0.9 }.generate(20, &platform(), 11);
        let b = ArrivalProcess::Poisson { load: 0.9 }.generate(20, &platform(), 11);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].release <= w[1].release));
        // Mean gap should be in the right ballpark (1/0.9 ≈ 1.11 s).
        let total = a.last().unwrap().release.as_f64();
        let mean_gap = total / 19.0;
        assert!((0.3..4.0).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn labels() {
        assert_eq!(ArrivalProcess::AllAtZero.label(), "bag(t=0)");
        assert_eq!(
            ArrivalProcess::UniformStream { load: 0.9 }.label(),
            "stream(ρ=0.9)"
        );
    }
}
