//! Pull-based task sources: materialized, generated, and trace-replay.
//!
//! The streamed engine entry points (`mss_sim::simulate_streamed` and
//! friends) pull arrivals one at a time from a [`TaskSource`] instead of
//! receiving the whole instance as a slice, so a million-task instance
//! never has to exist in memory at once. This module provides the three
//! implementations the lab uses:
//!
//! * [`MaterializedSource`] — wraps an existing `Vec<TaskArrival>`; the
//!   bit-exact default for instances that already fit in memory;
//! * [`GeneratedSource`] — lazily drives the existing [`ArrivalProcess`]
//!   and [`Perturbation`] samplers in per-task lockstep, yielding exactly
//!   the sequence `process.generate(..)` + `perturbation.apply(..)` would
//!   materialize (same RNG draws, same arithmetic, same order);
//! * [`TraceSource`] — replays a CSV or JSONL cluster trace from disk with
//!   strict schema validation (unknown columns/keys are rejected with
//!   located errors, like the TOML spec parser) and torn-final-line
//!   recovery (like the sweep result store).
//!
//! All three are seed-deterministic and resumable: [`TaskSource::reset`]
//! rewinds to an identical replay, so the sweep executor re-instantiates
//! or resets a source per fan-out arm instead of cloning a stream.

use crate::arrivals::ArrivalProcess;
use crate::perturbation::Perturbation;
use mss_core::{Platform, TaskArrival, TaskSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// A trace file failed validation (strict schema, sortedness, or format).
///
/// The message names the offending value, its location (`file:line`), and
/// what was expected — same convention as the sweep spec parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TraceError {}

// ---------------------------------------------------------------------------
// MaterializedSource
// ---------------------------------------------------------------------------

/// A [`TaskSource`] over an instance that is already in memory.
///
/// This is the bridge between the materialized world and the streamed
/// engine: a streamed run over a `MaterializedSource` is bit-identical to
/// the materialized run over the same slice.
#[derive(Clone, Debug)]
pub struct MaterializedSource {
    tasks: Vec<TaskArrival>,
    cursor: usize,
}

impl MaterializedSource {
    /// Wraps an instance. Tasks must be sorted by release time (the engine
    /// checks and panics otherwise, as for any source).
    pub fn new(tasks: Vec<TaskArrival>) -> Self {
        MaterializedSource { tasks, cursor: 0 }
    }

    /// The wrapped instance (for callers that need both views).
    pub fn tasks(&self) -> &[TaskArrival] {
        &self.tasks
    }
}

impl From<Vec<TaskArrival>> for MaterializedSource {
    fn from(tasks: Vec<TaskArrival>) -> Self {
        MaterializedSource::new(tasks)
    }
}

impl TaskSource for MaterializedSource {
    fn next_task(&mut self) -> Option<TaskArrival> {
        let t = self.tasks.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(t)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.tasks.len())
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

// ---------------------------------------------------------------------------
// GeneratedSource
// ---------------------------------------------------------------------------

/// A [`TaskSource`] that drives the arrival and perturbation samplers
/// lazily, one task at a time.
///
/// Both samplers draw exactly one random number per task in task order, so
/// replaying them in per-task lockstep yields the *bit-identical* sequence
/// the batch path materializes:
///
/// ```text
/// ArrivalProcess::generate(n, platform, seed)        // one draw per task
///   → Perturbation::apply(&tasks, perturbation_seed) // one draw per task
/// ```
///
/// The platform only contributes its [`system
/// throughput`](Platform::system_throughput) (to fix the inter-arrival
/// gap), captured at construction — the source does not hold on to the
/// platform.
///
/// ```
/// use mss_core::TaskSource;
/// use mss_workload::{ArrivalProcess, GeneratedSource, Perturbation};
/// use mss_core::Platform;
///
/// let platform = Platform::from_vectors(&[0.5, 0.5], &[2.0, 2.0]);
/// let process = ArrivalProcess::Poisson { load: 0.9 };
/// let perturbation = Perturbation::linear(0.1);
///
/// // Materialized path …
/// let batch = perturbation.apply(&process.generate(100, &platform, 7), 11);
/// // … and the streamed path, element for element.
/// let mut source = GeneratedSource::new(process, 100, &platform, 7)
///     .with_perturbation(perturbation, 11);
/// let streamed: Vec<_> = std::iter::from_fn(|| source.next_task()).collect();
/// assert_eq!(batch, streamed);
/// ```
#[derive(Clone, Debug)]
pub struct GeneratedSource {
    process: ArrivalProcess,
    n: usize,
    /// Mean inter-arrival gap (unused by `AllAtZero`).
    gap: f64,
    arrival_seed: u64,
    perturbation: Option<(Perturbation, u64)>,
    // --- replay state ---
    emitted: usize,
    clock: f64,
    arrival_rng: StdRng,
    perturb_rng: StdRng,
}

impl GeneratedSource {
    /// A source yielding the same `n` tasks as
    /// `process.generate(n, platform, seed)`.
    pub fn new(process: ArrivalProcess, n: usize, platform: &Platform, seed: u64) -> Self {
        let gap = match process {
            ArrivalProcess::AllAtZero => 0.0,
            ArrivalProcess::UniformStream { load } | ArrivalProcess::Poisson { load } => {
                ArrivalProcess::gap(load, platform)
            }
        };
        GeneratedSource {
            process,
            n,
            gap,
            arrival_seed: seed,
            perturbation: None,
            emitted: 0,
            clock: 0.0,
            arrival_rng: StdRng::seed_from_u64(seed),
            perturb_rng: StdRng::seed_from_u64(0),
        }
    }

    /// Adds the per-task size jitter `perturbation.apply(.., seed)` would
    /// produce, drawn in the same lockstep.
    pub fn with_perturbation(mut self, perturbation: Perturbation, seed: u64) -> Self {
        self.perturbation = Some((perturbation, seed));
        self.perturb_rng = StdRng::seed_from_u64(seed);
        self
    }
}

impl TaskSource for GeneratedSource {
    fn next_task(&mut self) -> Option<TaskArrival> {
        if self.emitted >= self.n {
            return None;
        }
        let i = self.emitted;
        // One draw per task, in task order — the same arithmetic as the
        // batch sampler, so the sequence is bit-identical.
        let mut task = match self.process {
            ArrivalProcess::AllAtZero => TaskArrival::at(0.0),
            ArrivalProcess::UniformStream { .. } => TaskArrival::at(i as f64 * self.gap),
            ArrivalProcess::Poisson { .. } => {
                // Inverse-CDF exponential with mean `gap`.
                let u: f64 = self.arrival_rng.gen_range(f64::EPSILON..1.0);
                self.clock += -self.gap * u.ln();
                TaskArrival::at(self.clock)
            }
        };
        if let Some((p, _)) = self.perturbation {
            let f: f64 = self.perturb_rng.gen_range(1.0 - p.delta..=1.0 + p.delta);
            task.size_c *= f.powf(p.comm_exponent);
            task.size_p *= f.powf(p.comp_exponent);
        }
        self.emitted += 1;
        Some(task)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.n)
    }

    fn reset(&mut self) {
        self.emitted = 0;
        self.clock = 0.0;
        self.arrival_rng = StdRng::seed_from_u64(self.arrival_seed);
        self.perturb_rng = StdRng::seed_from_u64(self.perturbation.map(|(_, s)| s).unwrap_or(0));
    }
}

// ---------------------------------------------------------------------------
// TraceSource
// ---------------------------------------------------------------------------

/// On-disk trace format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Comma-separated with a mandatory `release,size_c,size_p` header
    /// (any column order).
    Csv,
    /// One JSON object per line with exactly the keys `release`, `size_c`,
    /// `size_p`.
    Jsonl,
}

/// The fields a trace record carries, in canonical order.
const TRACE_FIELDS: [&str; 3] = ["release", "size_c", "size_p"];

/// A [`TaskSource`] replaying a cluster trace from a CSV or JSONL file.
///
/// Opening a trace runs one full streaming validation pass (O(1) memory):
///
/// * **strict schema** — unknown columns/keys are rejected with located
///   errors (`file:line`), the same convention as the TOML spec parser;
/// * **sortedness** — releases must be non-decreasing (the trace *is* the
///   release order);
/// * **torn-line recovery** — a final line that fails to *parse* (a write
///   torn by a crash) is dropped and counted, exactly like the sweep's
///   JSONL result store; a malformed line anywhere earlier is corruption
///   and a hard error.
///
/// Iteration then re-reads the file lazily, so replay memory stays
/// bounded regardless of trace length; [`TaskSource::reset`] rewinds by
/// reopening.
#[derive(Debug)]
pub struct TraceSource {
    input: TraceInput,
    format: TraceFormat,
    /// Valid records the stream will yield.
    tasks: usize,
    /// Torn trailing lines dropped during validation (0 or 1).
    dropped: usize,
    reader: Option<LineReader>,
    parser: Option<TraceParser>,
    line_no: usize,
    emitted: usize,
}

#[derive(Debug)]
enum TraceInput {
    Path(PathBuf),
    Inline { name: String, text: String },
}

impl TraceInput {
    fn location(&self) -> String {
        match self {
            TraceInput::Path(p) => p.display().to_string(),
            TraceInput::Inline { name, .. } => name.clone(),
        }
    }
}

#[derive(Debug)]
enum LineReader {
    File(std::io::BufReader<std::fs::File>),
    /// Byte offset into the inline text.
    Inline(usize),
}

/// Reads the next line (without its terminator) into `buf`.
/// Returns `false` at end of input.
fn read_line(
    input: &TraceInput,
    reader: &mut LineReader,
    buf: &mut String,
) -> Result<bool, TraceError> {
    buf.clear();
    match (reader, input) {
        (LineReader::File(r), _) => {
            let n = r
                .read_line(buf)
                .map_err(|e| TraceError(format!("I/O error reading {}: {e}", input.location())))?;
            if n == 0 {
                return Ok(false);
            }
        }
        (LineReader::Inline(pos), TraceInput::Inline { text, .. }) => {
            if *pos >= text.len() {
                return Ok(false);
            }
            let rest = &text[*pos..];
            let (line, advance) = match rest.find('\n') {
                Some(i) => (&rest[..=i], i + 1),
                None => (rest, rest.len()),
            };
            buf.push_str(line);
            *pos += advance;
        }
        _ => unreachable!("inline reader paired with file input"),
    }
    while buf.ends_with('\n') || buf.ends_with('\r') {
        buf.pop();
    }
    Ok(true)
}

/// One parsed line: either a record, or a parse failure whose recovery
/// depends on whether it is the final line (torn write) or not
/// (corruption).
enum Parsed {
    Record(TaskArrival),
    /// Blank/whitespace-only line — skipped.
    Blank,
    /// The line does not parse; `detail` says why.
    Malformed(String),
}

/// Per-pass parsing state (CSV column mapping, sortedness watermark).
#[derive(Debug)]
struct TraceParser {
    format: TraceFormat,
    location: String,
    /// CSV: maps column position → index into `TRACE_FIELDS`.
    columns: Vec<usize>,
    header_seen: bool,
    last_release: f64,
}

impl TraceParser {
    fn new(format: TraceFormat, location: String) -> Self {
        TraceParser {
            format,
            location,
            columns: Vec::new(),
            header_seen: false,
            last_release: f64::NEG_INFINITY,
        }
    }

    fn err(&self, line_no: usize, msg: String) -> TraceError {
        TraceError(format!("{msg} in {}:{line_no}", self.location))
    }

    /// Parses the CSV header line, building the column mapping.
    fn parse_header(&mut self, line: &str, line_no: usize) -> Result<(), TraceError> {
        for name in line.split(',').map(str::trim) {
            let Some(field) = TRACE_FIELDS.iter().position(|&f| f == name) else {
                return Err(self.err(
                    line_no,
                    format!(
                        "unknown column `{name}` (allowed: {}) — unknown columns are \
                         rejected so typos cannot silently degrade to defaults",
                        TRACE_FIELDS.join(", ")
                    ),
                ));
            };
            if self.columns.contains(&field) {
                return Err(self.err(line_no, format!("duplicate column `{name}`")));
            }
            self.columns.push(field);
        }
        for (i, name) in TRACE_FIELDS.iter().enumerate() {
            if !self.columns.contains(&i) {
                return Err(self.err(
                    line_no,
                    format!(
                        "missing column `{name}` (required: {})",
                        TRACE_FIELDS.join(", ")
                    ),
                ));
            }
        }
        self.header_seen = true;
        Ok(())
    }

    /// Parses one line. Schema and sortedness violations are hard errors;
    /// parse failures come back as [`Parsed::Malformed`] so the caller can
    /// apply the torn-final-line rule.
    fn parse_line(&mut self, line: &str, line_no: usize) -> Result<Parsed, TraceError> {
        if line.trim().is_empty() {
            return Ok(Parsed::Blank);
        }
        let fields = match self.format {
            TraceFormat::Csv => {
                if !self.header_seen {
                    self.parse_header(line, line_no)?;
                    return Ok(Parsed::Blank);
                }
                let cells: Vec<&str> = line.split(',').map(str::trim).collect();
                if cells.len() != self.columns.len() {
                    return Ok(Parsed::Malformed(format!(
                        "expected {} comma-separated values, got {}",
                        self.columns.len(),
                        cells.len()
                    )));
                }
                let mut fields = [0.0f64; 3];
                for (cell, &field) in cells.iter().zip(&self.columns) {
                    match cell.parse::<f64>() {
                        Ok(v) => fields[field] = v,
                        Err(_) => {
                            return Ok(Parsed::Malformed(format!("`{cell}` is not a number")))
                        }
                    }
                }
                fields
            }
            TraceFormat::Jsonl => {
                let value = match serde_json::parse_value(line) {
                    Ok(v) => v,
                    Err(e) => return Ok(Parsed::Malformed(format!("invalid JSON: {e:?}"))),
                };
                let Some(entries) = value.as_object() else {
                    return Err(self.err(line_no, "expected a JSON object".into()));
                };
                let mut fields = [None::<f64>; 3];
                for (key, v) in entries {
                    let Some(field) = TRACE_FIELDS.iter().position(|f| f == key) else {
                        return Err(self.err(
                            line_no,
                            format!(
                                "unknown key `{key}` (allowed: {}) — unknown keys are \
                                 rejected so typos cannot silently degrade to defaults",
                                TRACE_FIELDS.join(", ")
                            ),
                        ));
                    };
                    let num = match v {
                        serde::Value::U64(n) => *n as f64,
                        serde::Value::I64(n) => *n as f64,
                        serde::Value::F64(f) => *f,
                        other => {
                            return Err(self.err(
                                line_no,
                                format!("key `{key}` must be a number, got {other:?}"),
                            ))
                        }
                    };
                    if fields[field].is_some() {
                        return Err(self.err(line_no, format!("duplicate key `{key}`")));
                    }
                    fields[field] = Some(num);
                }
                let mut out = [0.0f64; 3];
                for (i, name) in TRACE_FIELDS.iter().enumerate() {
                    out[i] = fields[i]
                        .ok_or_else(|| self.err(line_no, format!("missing key `{name}`")))?;
                }
                out
            }
        };
        let [release, size_c, size_p] = fields;
        if !release.is_finite() || release < 0.0 {
            return Err(self.err(
                line_no,
                format!("release {release} must be finite and non-negative"),
            ));
        }
        if !(size_c.is_finite() && size_c > 0.0 && size_p.is_finite() && size_p > 0.0) {
            return Err(self.err(
                line_no,
                format!("task sizes ({size_c}, {size_p}) must be finite and positive"),
            ));
        }
        if release < self.last_release {
            return Err(self.err(
                line_no,
                format!(
                    "decreasing release {release} after {} — a trace is replayed as \
                     the release order, so releases must be non-decreasing",
                    self.last_release
                ),
            ));
        }
        self.last_release = release;
        let mut task = TaskArrival::at(release);
        task.size_c = size_c;
        task.size_p = size_p;
        Ok(Parsed::Record(task))
    }
}

impl TraceSource {
    /// Opens and validates a trace file; the format comes from the
    /// extension (`.csv` or `.jsonl`).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let format = match path.extension().and_then(|e| e.to_str()) {
            Some("csv") => TraceFormat::Csv,
            Some("jsonl") => TraceFormat::Jsonl,
            _ => {
                return Err(TraceError(format!(
                    "cannot infer trace format of {} (expected a .csv or .jsonl extension)",
                    path.display()
                )))
            }
        };
        Self::with_format(path, format)
    }

    /// Opens and validates a trace file with an explicit format.
    pub fn with_format(path: impl AsRef<Path>, format: TraceFormat) -> Result<Self, TraceError> {
        let input = TraceInput::Path(path.as_ref().to_path_buf());
        Self::validate(input, format)
    }

    /// Parses an in-memory trace (`name` appears in error locations).
    pub fn from_str(text: &str, format: TraceFormat, name: &str) -> Result<Self, TraceError> {
        let input = TraceInput::Inline {
            name: name.into(),
            text: text.into(),
        };
        Self::validate(input, format)
    }

    /// Torn trailing lines dropped during validation (0 or 1).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Valid records the stream yields.
    pub fn len(&self) -> usize {
        self.tasks
    }

    /// Whether the trace holds no valid records.
    pub fn is_empty(&self) -> bool {
        self.tasks == 0
    }

    fn open_reader(input: &TraceInput) -> Result<LineReader, TraceError> {
        match input {
            TraceInput::Path(p) => {
                let file = std::fs::File::open(p)
                    .map_err(|e| TraceError(format!("cannot open trace {}: {e}", p.display())))?;
                Ok(LineReader::File(std::io::BufReader::new(file)))
            }
            TraceInput::Inline { .. } => Ok(LineReader::Inline(0)),
        }
    }

    /// The single full validation pass: strict schema, sortedness, and
    /// the torn-final-line rule, in O(1) memory.
    fn validate(input: TraceInput, format: TraceFormat) -> Result<Self, TraceError> {
        let mut reader = Self::open_reader(&input)?;
        let mut parser = TraceParser::new(format, input.location());
        let mut buf = String::new();
        let mut line_no = 0usize;
        let mut tasks = 0usize;
        // A malformed line is only recoverable if nothing follows it.
        let mut torn: Option<(usize, String)> = None;
        while read_line(&input, &mut reader, &mut buf)? {
            line_no += 1;
            if let Some((torn_line, detail)) = torn.take() {
                if !buf.trim().is_empty() {
                    return Err(parser.err(
                        torn_line,
                        format!(
                            "malformed record ({detail}) followed by more data \
                                 — only a torn final line is recoverable"
                        ),
                    ));
                }
                // Trailing blank after the torn line: keep looking, the
                // torn line is still final among non-blank lines.
                torn = Some((torn_line, detail));
                continue;
            }
            match parser.parse_line(&buf, line_no)? {
                Parsed::Record(_) => tasks += 1,
                Parsed::Blank => {}
                Parsed::Malformed(detail) => torn = Some((line_no, detail)),
            }
        }
        if format == TraceFormat::Csv && !parser.header_seen {
            return Err(TraceError(format!(
                "empty trace {}: a CSV trace needs a `{}` header",
                input.location(),
                TRACE_FIELDS.join(",")
            )));
        }
        Ok(TraceSource {
            input,
            format,
            tasks,
            dropped: usize::from(torn.is_some()),
            reader: None,
            parser: None,
            line_no: 0,
            emitted: 0,
        })
    }
}

impl TaskSource for TraceSource {
    fn next_task(&mut self) -> Option<TaskArrival> {
        if self.emitted >= self.tasks {
            return None;
        }
        if self.reader.is_none() {
            self.reader =
                Some(Self::open_reader(&self.input).expect("validated trace reopened for replay"));
            self.parser = Some(TraceParser::new(self.format, self.input.location()));
            self.line_no = 0;
        }
        let reader = self.reader.as_mut().unwrap();
        let parser = self.parser.as_mut().unwrap();
        // Reader and parser are stateful across calls, so in steady state
        // this loop reads exactly one record per call; we trust the
        // validation pass and re-parse each line as we stream past it.
        let mut buf = String::new();
        loop {
            if !read_line(&self.input, reader, &mut buf)
                .expect("validated trace readable during replay")
            {
                panic!(
                    "trace {} changed during replay: fewer records than validated",
                    self.input.location()
                );
            }
            self.line_no += 1;
            let parsed = parser
                .parse_line(&buf, self.line_no)
                .expect("validated trace re-parsed cleanly during replay");
            if let Parsed::Record(t) = parsed {
                self.emitted += 1;
                return Some(t);
            }
        }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.tasks)
    }

    fn reset(&mut self) {
        self.reader = None;
        self.emitted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::from_vectors(&[0.5, 0.5], &[2.0, 2.0])
    }

    fn drain(source: &mut dyn TaskSource) -> Vec<TaskArrival> {
        std::iter::from_fn(|| source.next_task()).collect()
    }

    /// Strict equality down to the bit pattern, not just `==`.
    fn assert_bit_identical(a: &[TaskArrival], b: &[TaskArrival]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.release, y.release);
            assert_eq!(x.size_c.to_bits(), y.size_c.to_bits());
            assert_eq!(x.size_p.to_bits(), y.size_p.to_bits());
        }
    }

    #[test]
    fn materialized_source_round_trips_and_resets() {
        let tasks = mss_core::released_at(&[0.0, 1.0, 2.5]);
        let mut s = MaterializedSource::new(tasks.clone());
        assert_eq!(s.len_hint(), Some(3));
        assert_bit_identical(&drain(&mut s), &tasks);
        assert_eq!(s.next_task(), None);
        s.reset();
        assert_bit_identical(&drain(&mut s), &tasks);
    }

    #[test]
    fn generated_matches_materialized_bitwise() {
        let p = platform();
        let processes = [
            ArrivalProcess::AllAtZero,
            ArrivalProcess::UniformStream { load: 0.7 },
            ArrivalProcess::Poisson { load: 0.9 },
        ];
        let perturbations = [
            None,
            Some(Perturbation::linear(0.1)),
            Some(Perturbation::matrix(0.1)),
        ];
        for process in processes {
            for perturbation in perturbations {
                let nominal = process.generate(64, &p, 7);
                let batch = match perturbation {
                    Some(pert) => pert.apply(&nominal, 11),
                    None => nominal,
                };
                let mut source = GeneratedSource::new(process, 64, &p, 7);
                if let Some(pert) = perturbation {
                    source = source.with_perturbation(pert, 11);
                }
                assert_bit_identical(&drain(&mut source), &batch);
            }
        }
    }

    #[test]
    fn generated_reset_replays_identically() {
        let mut s = GeneratedSource::new(ArrivalProcess::Poisson { load: 0.9 }, 50, &platform(), 3)
            .with_perturbation(Perturbation::linear(0.1), 17);
        let first = drain(&mut s);
        s.reset();
        assert_bit_identical(&drain(&mut s), &first);
    }

    // --- TraceSource ---

    const CSV: &str = "release,size_c,size_p\n0.0,1.0,1.0\n1.5,0.9,1.1\n3.0,1.05,0.95\n";

    #[test]
    fn csv_trace_round_trips() {
        let mut s = TraceSource::from_str(CSV, TraceFormat::Csv, "test.csv").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 0);
        let tasks = drain(&mut s);
        assert_eq!(tasks[1].release.as_f64(), 1.5);
        assert_eq!(tasks[1].size_c, 0.9);
        assert_eq!(tasks[2].size_p, 0.95);
        s.reset();
        assert_bit_identical(&drain(&mut s), &tasks);
    }

    #[test]
    fn csv_columns_may_be_permuted() {
        let text = "size_p,release,size_c\n2.0,0.5,3.0\n";
        let mut s = TraceSource::from_str(text, TraceFormat::Csv, "t.csv").unwrap();
        let t = s.next_task().unwrap();
        assert_eq!(t.release.as_f64(), 0.5);
        assert_eq!(t.size_c, 3.0);
        assert_eq!(t.size_p, 2.0);
    }

    #[test]
    fn jsonl_trace_round_trips() {
        let text = "{\"release\": 0.0, \"size_c\": 1.0, \"size_p\": 1.0}\n\
                    {\"release\": 2.0, \"size_c\": 1.1, \"size_p\": 0.9}\n";
        let mut s = TraceSource::from_str(text, TraceFormat::Jsonl, "t.jsonl").unwrap();
        assert_eq!(s.len(), 2);
        let tasks = drain(&mut s);
        assert_eq!(tasks[1].release.as_f64(), 2.0);
        assert_eq!(tasks[1].size_c, 1.1);
    }

    #[test]
    fn unknown_column_is_a_located_error() {
        let text = "release,size_c,size_p,priority\n0.0,1.0,1.0,3\n";
        let err = TraceSource::from_str(text, TraceFormat::Csv, "t.csv").unwrap_err();
        assert!(err.0.contains("unknown column `priority`"), "{err}");
        assert!(err.0.contains("t.csv:1"), "{err}");
        assert!(err.0.contains("allowed: release, size_c, size_p"), "{err}");
    }

    #[test]
    fn unknown_jsonl_key_is_a_located_error() {
        let text = "{\"release\": 0.0, \"size_c\": 1.0, \"size_p\": 1.0}\n\
                    {\"release\": 1.0, \"size_c\": 1.0, \"sise_p\": 1.0}\n";
        let err = TraceSource::from_str(text, TraceFormat::Jsonl, "t.jsonl").unwrap_err();
        assert!(err.0.contains("unknown key `sise_p`"), "{err}");
        assert!(err.0.contains("t.jsonl:2"), "{err}");
    }

    #[test]
    fn unsorted_releases_are_rejected_with_location() {
        let text = "release,size_c,size_p\n2.0,1.0,1.0\n1.0,1.0,1.0\n";
        let err = TraceSource::from_str(text, TraceFormat::Csv, "t.csv").unwrap_err();
        assert!(err.0.contains("decreasing release 1 after 2"), "{err}");
        assert!(err.0.contains("t.csv:3"), "{err}");
    }

    #[test]
    fn torn_final_csv_line_is_dropped_like_the_store() {
        let text = "release,size_c,size_p\n0.0,1.0,1.0\n1.5,0.9";
        let mut s = TraceSource::from_str(text, TraceFormat::Csv, "t.csv").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 1);
        let tasks = drain(&mut s);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].release.as_f64(), 0.0);
    }

    #[test]
    fn torn_final_jsonl_line_is_dropped_like_the_store() {
        let text = "{\"release\": 0.0, \"size_c\": 1.0, \"size_p\": 1.0}\n\
                    {\"release\": 1.0, \"si";
        let s = TraceSource::from_str(text, TraceFormat::Jsonl, "t.jsonl").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let text = "release,size_c,size_p\n0.0,1.0\n1.5,0.9,1.1\n";
        let err = TraceSource::from_str(text, TraceFormat::Csv, "t.csv").unwrap_err();
        assert!(
            err.0.contains("only a torn final line is recoverable"),
            "{err}"
        );
        assert!(err.0.contains("t.csv:2"), "{err}");
    }

    #[test]
    fn non_positive_sizes_are_rejected() {
        let text = "release,size_c,size_p\n0.0,0.0,1.0\n";
        let err = TraceSource::from_str(text, TraceFormat::Csv, "t.csv").unwrap_err();
        assert!(err.0.contains("must be finite and positive"), "{err}");
    }

    #[test]
    fn file_open_infers_format_and_replays() {
        let dir = std::env::temp_dir().join("mss-workload-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.csv");
        std::fs::write(&path, CSV).unwrap();
        let mut s = TraceSource::open(&path).unwrap();
        assert_eq!(s.len(), 3);
        let tasks = drain(&mut s);
        s.reset();
        assert_bit_identical(&drain(&mut s), &tasks);
        let err = TraceSource::open(dir.join("small.txt")).unwrap_err();
        assert!(err.0.contains("cannot infer trace format"), "{err}");
    }
}
