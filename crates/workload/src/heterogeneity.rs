//! Parameterized heterogeneity: platforms interpolating continuously from
//! fully homogeneous to the paper's fully heterogeneous distribution.
//!
//! The paper contrasts four discrete platform classes; this module adds the
//! continuum between them so the lab can chart *the impact of
//! heterogeneity* as a curve rather than four bars (ablation A4 /
//! `examples/heterogeneity_impact.rs`). Each slave `j` gets a fixed
//! direction `u_j ∈ [−1, 1]` (drawn once per seed) and the platform at
//! degree `h ∈ [0, 1]` is
//!
//! ```text
//! c_j(h) = c̄ · R_c^(h·u_j)      p_j(h) = p̄ · R_p^(h·v_j)
//! ```
//!
//! — geometric interpolation, so `h = 0` is exactly homogeneous and `h = 1`
//! spans the paper's §4.2 ranges (`c ∈ [0.01, 1]`, `p ∈ [0.1, 8]` when
//! `R = √(max/min)` around the geometric mean).

use mss_core::Platform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which resource the heterogeneity degree perturbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum HeterogeneityAxis {
    /// Only link capacities vary (`p_j` stays at the base).
    Communication,
    /// Only speeds vary (`c_j` stays at the base).
    Computation,
    /// Both vary (independent directions).
    Both,
}

impl HeterogeneityAxis {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            HeterogeneityAxis::Communication => "links",
            HeterogeneityAxis::Computation => "speeds",
            HeterogeneityAxis::Both => "both",
        }
    }
}

/// A family of platforms indexed by a heterogeneity degree `h ∈ [0, 1]`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeterogeneityFamily {
    /// Number of slaves.
    pub num_slaves: usize,
    /// Geometric-mean communication time (paper range → `√(0.01·1) = 0.1`).
    pub base_c: f64,
    /// Geometric-mean computation time (paper range → `√(0.1·8) ≈ 0.894`).
    pub base_p: f64,
    /// Half-span ratio for `c` (paper range → `√(1/0.01) = 10`).
    pub ratio_c: f64,
    /// Half-span ratio for `p` (paper range → `√(8/0.1) ≈ 8.94`).
    pub ratio_p: f64,
    directions_c: Vec<f64>,
    directions_p: Vec<f64>,
}

impl HeterogeneityFamily {
    /// A family matching the paper's §4.2 ranges at `h = 1`, with per-slave
    /// directions drawn from `seed`.
    pub fn paper_ranges(num_slaves: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Directions stratified so the sweep always contains both fast and
        // slow extremes instead of depending on luck: slave j's direction
        // is the stratum midpoint, shuffled.
        let directions = |rng: &mut StdRng| -> Vec<f64> {
            let mut d: Vec<f64> = (0..num_slaves)
                .map(|j| -1.0 + (2.0 * j as f64 + 1.0) / num_slaves as f64)
                .collect();
            for i in (1..d.len()).rev() {
                d.swap(i, rng.gen_range(0..=i));
            }
            d
        };
        HeterogeneityFamily {
            num_slaves,
            base_c: 0.1,
            base_p: (0.1f64 * 8.0).sqrt(),
            ratio_c: 10.0,
            ratio_p: (8.0f64 / 0.1).sqrt(),
            directions_c: directions(&mut rng),
            directions_p: directions(&mut rng),
        }
    }

    /// The platform at heterogeneity degree `h` along `axis`.
    ///
    /// # Panics
    /// Panics if `h` is outside `[0, 1]`.
    pub fn platform(&self, axis: HeterogeneityAxis, h: f64) -> Platform {
        assert!((0.0..=1.0).contains(&h), "degree h must be in [0, 1]");
        let (hc, hp) = match axis {
            HeterogeneityAxis::Communication => (h, 0.0),
            HeterogeneityAxis::Computation => (0.0, h),
            HeterogeneityAxis::Both => (h, h),
        };
        let c: Vec<f64> = self
            .directions_c
            .iter()
            .map(|&u| self.base_c * self.ratio_c.powf(hc * u))
            .collect();
        let p: Vec<f64> = self
            .directions_p
            .iter()
            .map(|&v| self.base_p * self.ratio_p.powf(hp * v))
            .collect();
        Platform::from_vectors(&c, &p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_core::PlatformClass;

    #[test]
    fn degree_zero_is_homogeneous() {
        let fam = HeterogeneityFamily::paper_ranges(5, 7);
        for axis in [
            HeterogeneityAxis::Communication,
            HeterogeneityAxis::Computation,
            HeterogeneityAxis::Both,
        ] {
            let pf = fam.platform(axis, 0.0);
            assert_eq!(pf.classify(), PlatformClass::Homogeneous, "{axis:?}");
        }
    }

    #[test]
    fn axes_perturb_the_right_resource() {
        let fam = HeterogeneityFamily::paper_ranges(5, 7);
        let comm = fam.platform(HeterogeneityAxis::Communication, 1.0);
        assert_eq!(comm.classify(), PlatformClass::CompHomogeneous);
        let comp = fam.platform(HeterogeneityAxis::Computation, 1.0);
        assert_eq!(comp.classify(), PlatformClass::CommHomogeneous);
        let both = fam.platform(HeterogeneityAxis::Both, 1.0);
        assert_eq!(both.classify(), PlatformClass::Heterogeneous);
    }

    #[test]
    fn full_degree_spans_paper_ranges() {
        let fam = HeterogeneityFamily::paper_ranges(5, 7);
        let pf = fam.platform(HeterogeneityAxis::Both, 1.0);
        for (_, s) in pf.iter() {
            assert!((0.01 - 1e-9..=1.0 + 1e-9).contains(&s.c), "c = {}", s.c);
            assert!((0.1 - 1e-9..=8.0 + 1e-9).contains(&s.p), "p = {}", s.p);
        }
        // Stratified directions guarantee real spread at h = 1.
        let cs: Vec<f64> = pf.iter().map(|(_, s)| s.c).collect();
        let spread = cs.iter().cloned().fold(0.0f64, f64::max)
            / cs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 5.0, "c spread {spread}");
    }

    #[test]
    fn monotone_in_degree() {
        // The extreme slaves drift monotonically away from the mean.
        let fam = HeterogeneityFamily::paper_ranges(5, 3);
        let mut prev_spread = 1.0;
        for h in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let pf = fam.platform(HeterogeneityAxis::Both, h);
            let ps: Vec<f64> = pf.iter().map(|(_, s)| s.p).collect();
            let spread = ps.iter().cloned().fold(0.0f64, f64::max)
                / ps.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                spread >= prev_spread - 1e-12,
                "h = {h}: {spread} < {prev_spread}"
            );
            prev_spread = spread;
        }
    }

    #[test]
    fn reproducible_per_seed() {
        let a = HeterogeneityFamily::paper_ranges(5, 11);
        let b = HeterogeneityFamily::paper_ranges(5, 11);
        assert_eq!(a, b);
        assert_ne!(a, HeterogeneityFamily::paper_ranges(5, 12));
    }

    #[test]
    #[should_panic(expected = "degree h")]
    fn degree_out_of_range_rejected() {
        let fam = HeterogeneityFamily::paper_ranges(3, 1);
        let _ = fam.platform(HeterogeneityAxis::Both, 1.5);
    }
}
