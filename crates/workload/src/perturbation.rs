//! Task-size perturbation for the robustness experiment (Figure 2).
//!
//! > "We randomly change the size of the matrix sent by the master at each
//! > round, by a factor of up to 10 %."
//!
//! A task's matrix of linear dimension `(1+δ)·N` costs `(1+δ)²` more to
//! ship (N² entries) and about `(1+δ)³` more to factorize (LU is O(N³)).
//! The default mode scales both phases linearly (the conservative reading of
//! "the size ... by a factor of up to 10 %"); [`Perturbation::matrix`] uses
//! the quadratic/cubic exponents for the physical reading. Both are swept in
//! the lab's robustness ablation.

use mss_core::TaskArrival;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-task random size jitter.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Perturbation {
    /// Maximum relative deviation of the linear size factor (0.1 = ±10 %).
    pub delta: f64,
    /// Exponent applied to the factor for the communication phase.
    pub comm_exponent: f64,
    /// Exponent applied to the factor for the computation phase.
    pub comp_exponent: f64,
}

impl Perturbation {
    /// The paper's ±10 % jitter, applied linearly to both phases.
    pub fn linear(delta: f64) -> Self {
        Perturbation {
            delta,
            comm_exponent: 1.0,
            comp_exponent: 1.0,
        }
    }

    /// Matrix-payload reading: communication ∝ size², determinant ∝ size³.
    pub fn matrix(delta: f64) -> Self {
        Perturbation {
            delta,
            comm_exponent: 2.0,
            comp_exponent: 3.0,
        }
    }

    /// Applies the jitter to an instance, reproducibly. Release times are
    /// preserved; only the size multipliers change.
    pub fn apply(&self, tasks: &[TaskArrival], seed: u64) -> Vec<TaskArrival> {
        let mut rng = StdRng::seed_from_u64(seed);
        tasks
            .iter()
            .map(|t| {
                let f: f64 = rng.gen_range(1.0 - self.delta..=1.0 + self.delta);
                TaskArrival {
                    release: t.release,
                    size_c: t.size_c * f.powf(self.comm_exponent),
                    size_p: t.size_p * f.powf(self.comp_exponent),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_core::bag_of_tasks;

    #[test]
    fn linear_sizes_stay_in_band() {
        let tasks = Perturbation::linear(0.1).apply(&bag_of_tasks(200), 5);
        for t in &tasks {
            assert!((0.9..=1.1).contains(&t.size_c));
            assert!((0.9..=1.1).contains(&t.size_p));
            assert!(
                (t.size_c - t.size_p).abs() < 1e-12,
                "linear mode is symmetric"
            );
        }
    }

    #[test]
    fn matrix_mode_amplifies_compute() {
        let tasks = Perturbation::matrix(0.1).apply(&bag_of_tasks(200), 5);
        for t in &tasks {
            assert!((0.9f64.powi(2)..=1.1f64.powi(2)).contains(&t.size_c));
            assert!((0.9f64.powi(3)..=1.1f64.powi(3)).contains(&t.size_p));
        }
        // At least one task visibly off-nominal.
        assert!(tasks.iter().any(|t| (t.size_p - 1.0).abs() > 0.05));
    }

    #[test]
    fn reproducible_and_preserves_releases() {
        let base: Vec<TaskArrival> = (0..10).map(|i| TaskArrival::at(i as f64)).collect();
        let a = Perturbation::linear(0.1).apply(&base, 9);
        let b = Perturbation::linear(0.1).apply(&base, 9);
        assert_eq!(a, b);
        for (orig, pert) in base.iter().zip(&a) {
            assert_eq!(orig.release, pert.release);
        }
    }

    #[test]
    fn zero_delta_is_identity_sizes() {
        let tasks = Perturbation::linear(0.0).apply(&bag_of_tasks(5), 1);
        assert!(tasks.iter().all(|t| t.size_c == 1.0 && t.size_p == 1.0));
    }
}
