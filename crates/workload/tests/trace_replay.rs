//! Golden-fixture tests of the trace-replay source.
//!
//! `examples/replay_trace.{csv,jsonl}` are the committed walkthrough
//! fixtures (the README's "Streaming workloads" section replays them);
//! both encodings must parse to the identical task stream, drive a full
//! streamed simulation, and reject schema violations with located errors
//! matching the repo's strict-key convention.

use mss_core::{simulate_streamed, Algorithm, Platform, SimConfig};
use mss_workload::{TaskSource, TraceFormat, TraceSource};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name)
}

/// The task stream both fixtures encode: (release, size_c, size_p).
const GOLDEN: [(f64, f64, f64); 6] = [
    (0.0, 1.0, 1.0),
    (0.0, 1.0, 1.0),
    (0.5, 0.8, 1.2),
    (1.5, 1.2, 0.9),
    (2.25, 1.0, 1.0),
    (3.0, 0.6, 1.4),
];

fn drain(source: &mut TraceSource) -> Vec<(f64, f64, f64)> {
    std::iter::from_fn(|| source.next_task())
        .map(|t| (t.release.as_f64(), t.size_c, t.size_p))
        .collect()
}

#[test]
fn golden_fixtures_parse_to_the_same_stream() {
    let mut csv = TraceSource::open(fixture("replay_trace.csv")).unwrap();
    let mut jsonl = TraceSource::open(fixture("replay_trace.jsonl")).unwrap();
    assert_eq!(csv.len(), GOLDEN.len());
    assert_eq!(jsonl.len(), GOLDEN.len());
    assert_eq!(csv.dropped(), 0, "the committed fixture has no torn line");
    assert_eq!(jsonl.dropped(), 0);

    let from_csv = drain(&mut csv);
    let from_jsonl = drain(&mut jsonl);
    assert_eq!(from_csv, GOLDEN);
    assert_eq!(from_jsonl, from_csv, "both encodings replay identically");

    // The source is resumable: reset() replays the file from the top.
    csv.reset();
    assert_eq!(drain(&mut csv), GOLDEN);
}

#[test]
fn golden_fixture_drives_a_streamed_simulation() {
    // The README walkthrough: replay a recorded trace straight into the
    // engine without materializing it.
    let platform = Platform::from_vectors(&[0.2, 0.4], &[1.0, 2.0]);
    let mut source = TraceSource::open(fixture("replay_trace.jsonl")).unwrap();
    let n = source.len();
    let mut scheduler = Algorithm::ListScheduling.build();
    let trace = simulate_streamed(
        &platform,
        &mut source,
        &SimConfig::with_horizon(n),
        scheduler.as_mut(),
    )
    .unwrap();
    assert_eq!(trace.len(), GOLDEN.len());
    // Replays are deterministic: a second pass over the same file is
    // bit-identical.
    source.reset();
    let mut scheduler = Algorithm::ListScheduling.build();
    let again = simulate_streamed(
        &platform,
        &mut source,
        &SimConfig::with_horizon(n),
        scheduler.as_mut(),
    )
    .unwrap();
    assert_eq!(again, trace);
}

#[test]
fn unknown_column_is_rejected_with_a_located_error() {
    let err = TraceSource::from_str(
        "release,size_c,size_p,priority\n0.0,1.0,1.0,3\n",
        TraceFormat::Csv,
        "bad.csv",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown column `priority`"), "{msg}");
    assert!(msg.contains("bad.csv:1"), "located at the header: {msg}");
}

#[test]
fn unsorted_releases_are_rejected() {
    let err = TraceSource::from_str(
        "release,size_c,size_p\n2.0,1.0,1.0\n1.0,1.0,1.0\n",
        TraceFormat::Csv,
        "unsorted.csv",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("releases must be non-decreasing"), "{msg}");
    assert!(msg.contains("unsorted.csv:3"), "{msg}");
}

#[test]
fn torn_final_line_is_recovered_like_the_jsonl_store() {
    // A crash mid-append leaves a truncated last record; replay drops it
    // (and counts it) exactly like the sweep result store does.
    let torn = "{\"release\": 0.0, \"size_c\": 1.0, \"size_p\": 1.0}\n{\"release\": 1.0, \"si";
    let mut source = TraceSource::from_str(torn, TraceFormat::Jsonl, "torn.jsonl").unwrap();
    assert_eq!(source.len(), 1);
    assert_eq!(source.dropped(), 1);
    assert_eq!(drain(&mut source), vec![(0.0, 1.0, 1.0)]);
}
