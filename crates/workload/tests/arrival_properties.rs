//! Property tests for the arrival processes: release dates are
//! non-decreasing, generation is seed-deterministic, and — because every
//! stream derives only from its own seed — independent of which thread
//! generates it (the sweep executor's determinism rests on this).

use mss_core::PlatformClass;
use mss_workload::{ArrivalProcess, PlatformSampler};
use proptest::prelude::*;

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    (0u8..3, 0.1f64..2.0).prop_map(|(kind, load)| match kind {
        0 => ArrivalProcess::AllAtZero,
        1 => ArrivalProcess::UniformStream { load },
        _ => ArrivalProcess::Poisson { load },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn release_dates_are_finite_and_non_decreasing(
        process in arb_process(), n in 0usize..200, seed in 0u64..1_000_000
    ) {
        let platform = PlatformSampler::default()
            .sample_many(PlatformClass::Heterogeneous, 1, seed ^ 0xbeef)
            .remove(0);
        let tasks = process.generate(n, &platform, seed);
        prop_assert_eq!(tasks.len(), n);
        for w in tasks.windows(2) {
            prop_assert!(w[0].release <= w[1].release,
                "{:?} then {:?}", w[0].release, w[1].release);
        }
        for t in &tasks {
            prop_assert!(t.release.as_f64().is_finite() && t.release.as_f64() >= 0.0);
            prop_assert_eq!(t.size_c, 1.0);
            prop_assert_eq!(t.size_p, 1.0);
        }
    }

    #[test]
    fn generation_is_seed_deterministic(
        process in arb_process(), n in 1usize..200, seed in 0u64..1_000_000
    ) {
        let platform = PlatformSampler::default()
            .sample_many(PlatformClass::CommHomogeneous, 1, 3)
            .remove(0);
        prop_assert_eq!(
            process.generate(n, &platform, seed),
            process.generate(n, &platform, seed)
        );
        // Poisson streams with different seeds must differ (the two
        // deterministic processes ignore the seed by design).
        if matches!(process, ArrivalProcess::Poisson { .. }) && n >= 8 {
            prop_assert_ne!(
                process.generate(n, &platform, seed),
                process.generate(n, &platform, seed ^ 0x5eed_5eed)
            );
        }
    }
}

/// Generating the same stream from many threads concurrently yields the
/// bytes of the serial run: no hidden global RNG state, no thread-local
/// state, no ordering sensitivity. This is the property the parallel sweep
/// executor's "bit-identical at any --threads" contract reduces to.
#[test]
fn poisson_generation_is_thread_count_independent() {
    let platform = PlatformSampler::default()
        .sample_many(PlatformClass::Heterogeneous, 1, 17)
        .remove(0);
    let process = ArrivalProcess::Poisson { load: 0.9 };
    let serial: Vec<_> = (0..16u64)
        .map(|seed| process.generate(300, &platform, seed))
        .collect();

    for threads in [2, 4, 8] {
        let mut parallel: Vec<(u64, _)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let platform = &platform;
                    scope.spawn(move || {
                        ((w as u64..16).step_by(threads))
                            .map(|seed| (seed, process.generate(300, platform, seed)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                parallel.extend(h.join().unwrap());
            }
        });
        parallel.sort_by_key(|(seed, _)| *seed);
        for (seed, tasks) in parallel {
            assert_eq!(
                tasks, serial[seed as usize],
                "stream {seed} differs at {threads} threads"
            );
        }
    }
}
