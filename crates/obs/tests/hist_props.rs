//! Contract #12's algebraic core: histogram merging is exact.
//!
//! [`Histogram`] counts are integers, so merging is a commutative,
//! associative fold — the property that lets worker threads merge their
//! tallies in *any* order (the sweep executor's collection order is
//! nondeterministic) and still produce bit-identical aggregates. These
//! properties exercise the bucket math over many magnitudes, including
//! the zero/underflow/overflow boundary buckets.

use mss_obs::Histogram;
use proptest::prelude::*;

/// Samples spanning the bucket range and both boundary buckets: zeros,
/// subnormal-range underflow, mid-range values, and overflow.
fn sample() -> impl Strategy<Value = f64> {
    (0u32..5, 0.0f64..1.0).prop_map(|(kind, x)| match kind {
        0 => 0.0,
        1 => 1e-40 * (x + 0.5), // below 2^-64: underflow bucket
        2 => x * 10.0,          // bulk
        3 => (x + 0.1) * 1e6,   // large but in range
        _ => 1e25 * (x + 0.5),  // above 2^64: overflow bucket
    })
}

fn hist(vals: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.observe(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(sample(), 0..40),
        b in proptest::collection::vec(sample(), 0..40),
    ) {
        let (ha, hb) = (hist(&a), hist(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(sample(), 0..30),
        b in proptest::collection::vec(sample(), 0..30),
        c in proptest::collection::vec(sample(), 0..30),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        let left = merged(&merged(&ha, &hb), &hc);
        let right = merged(&ha, &merged(&hb, &hc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_pooled_observation(
        a in proptest::collection::vec(sample(), 0..40),
        b in proptest::collection::vec(sample(), 0..40),
    ) {
        // Merging two separately built histograms is indistinguishable
        // from observing the concatenated sample into one — the exactness
        // that makes per-worker tallies equivalent to a global one.
        let pooled: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged(&hist(&a), &hist(&b)), hist(&pooled));
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data(
        vals in proptest::collection::vec(sample(), 1..60),
    ) {
        let h = hist(&vals);
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let picked: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in picked.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {picked:?}");
        }
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.quantile(1.0), max, "q(1) is the exact max");
        prop_assert_eq!(h.count(), vals.len() as u64);
    }
}
