//! A throttled, thread-safe progress line for long sweeps.

use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Milliseconds between repaints: frequent enough to look live, rare enough
/// that the lock and the write never show up in a profile.
const REPAINT_MS: u64 = 100;

/// A `\r`-rewritten `cells done/total` line on stderr with throughput and
/// ETA.
///
/// Workers call [`tick`](Progress::tick) from any thread after each cell; a
/// relaxed atomic counts, and only the worker that crosses the repaint
/// interval takes the stderr write. The line is emitted **only** when
/// enabled *and* stderr is a terminal *and* no CI environment is detected,
/// so logs and CI output stay clean; everything degrades to pure counting
/// otherwise.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    /// Milliseconds from `start` of the last repaint.
    last_paint_ms: AtomicU64,
    start: Instant,
    active: bool,
}

fn in_ci() -> bool {
    // Set by GitHub Actions, GitLab, Buildkite, Travis, and most others.
    std::env::var_os("CI").is_some() || std::env::var_os("GITHUB_ACTIONS").is_some()
}

impl Progress {
    /// A progress line over `total` cells. `enabled` is the caller's switch
    /// (e.g. `!quiet`); TTY and CI gating are applied on top.
    pub fn new(total: usize, enabled: bool) -> Self {
        Progress {
            total,
            done: AtomicUsize::new(0),
            last_paint_ms: AtomicU64::new(0),
            start: Instant::now(),
            active: enabled && std::io::stderr().is_terminal() && !in_ci(),
        }
    }

    /// Whether the line will actually be drawn.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Cells recorded so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Records one finished cell; repaints if the repaint interval elapsed.
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.active {
            return;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_paint_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < REPAINT_MS && done != self.total {
            return;
        }
        // One painter at a time: whoever wins the CAS draws this frame.
        if self
            .last_paint_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.paint(done, now_ms);
    }

    fn paint(&self, done: usize, now_ms: u64) {
        let secs = (now_ms as f64 / 1000.0).max(1e-3);
        let rate = done as f64 / secs;
        let eta = if rate > 0.0 && done < self.total {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r\x1b[2Ksweep: {done}/{} cells  {rate:.0} cells/s  eta {eta:.0}s",
            self.total
        );
        let _ = err.flush();
    }

    /// Clears the line (call once when the sweep finishes).
    pub fn finish(&self) {
        if !self.active {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r\x1b[2K");
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_from_any_thread() {
        let p = Progress::new(100, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        p.tick();
                    }
                });
            }
        });
        assert_eq!(p.done(), 100);
        p.finish();
    }

    #[test]
    fn disabled_progress_is_inactive() {
        // enabled=false must hold regardless of the TTY/CI environment.
        assert!(!Progress::new(10, false).is_active());
    }
}
