//! A throttled, thread-safe progress line for long sweeps.

use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Milliseconds between repaints: frequent enough to look live, rare enough
/// that the lock and the write never show up in a profile.
const REPAINT_MS: u64 = 100;

/// A `\r`-rewritten `cells done/total` line on stderr with throughput and
/// ETA.
///
/// Workers call [`tick`](Progress::tick) from any thread after each cell; a
/// relaxed atomic counts, and only the worker that crosses the repaint
/// interval takes the stderr write. The line is emitted **only** when
/// enabled *and* stderr is a terminal *and* no CI environment is detected,
/// so logs and CI output stay clean; everything degrades to pure counting
/// otherwise.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    /// Milliseconds from `start` of the last repaint.
    last_paint_ms: AtomicU64,
    /// `done` as of the last repaint (for the instantaneous rate).
    last_paint_done: AtomicUsize,
    /// Smoothed cells/sec as `f64` bits; 0 = no estimate yet.
    ewma_bits: AtomicU64,
    start: Instant,
    active: bool,
}

/// Per-repaint EWMA smoothing factor for the cells/sec estimate: heavy
/// enough to damp scheduling noise between 100 ms frames, light enough to
/// follow a genuine slowdown within a second or two.
const EWMA_ALPHA: f64 = 0.2;

fn in_ci() -> bool {
    // Set by GitHub Actions, GitLab, Buildkite, Travis, and most others.
    std::env::var_os("CI").is_some() || std::env::var_os("GITHUB_ACTIONS").is_some()
}

impl Progress {
    /// A progress line over `total` cells. `enabled` is the caller's switch
    /// (e.g. `!quiet`); TTY and CI gating are applied on top.
    pub fn new(total: usize, enabled: bool) -> Self {
        Progress {
            total,
            done: AtomicUsize::new(0),
            last_paint_ms: AtomicU64::new(0),
            last_paint_done: AtomicUsize::new(0),
            ewma_bits: AtomicU64::new(0),
            start: Instant::now(),
            active: enabled && std::io::stderr().is_terminal() && !in_ci(),
        }
    }

    /// Whether the line will actually be drawn.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Cells recorded so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Records one finished cell; repaints if the repaint interval elapsed.
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.active {
            return;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_paint_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < REPAINT_MS && done != self.total {
            return;
        }
        // One painter at a time: whoever wins the CAS draws this frame.
        if self
            .last_paint_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.paint(done, last, now_ms);
    }

    /// Updates the EWMA throughput estimate from the interval since the
    /// previous frame and returns the smoothed cells/sec. Only the CAS
    /// winner in [`tick`](Self::tick) calls this, so the frame-to-frame
    /// state (`last_paint_done`, `ewma_bits`) is single-writer.
    fn update_rate(&self, done: usize, last_ms: u64, now_ms: u64) -> f64 {
        let prev_done = self.last_paint_done.swap(done, Ordering::Relaxed);
        let dt = (now_ms.saturating_sub(last_ms) as f64 / 1000.0).max(1e-3);
        let inst = (done.saturating_sub(prev_done)) as f64 / dt;
        let prev = f64::from_bits(self.ewma_bits.load(Ordering::Relaxed));
        let ewma = if prev > 0.0 {
            EWMA_ALPHA * inst + (1.0 - EWMA_ALPHA) * prev
        } else {
            inst
        };
        self.ewma_bits.store(ewma.to_bits(), Ordering::Relaxed);
        ewma
    }

    fn paint(&self, done: usize, last_ms: u64, now_ms: u64) {
        let rate = self.update_rate(done, last_ms, now_ms);
        let eta = if rate > 0.0 && done < self.total {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r\x1b[2Ksweep: {done}/{} cells  {rate:.0} cells/s  eta {eta:.0}s",
            self.total
        );
        let _ = err.flush();
    }

    /// The current smoothed cells/sec estimate (0.0 before any repaint).
    pub fn rate(&self) -> f64 {
        f64::from_bits(self.ewma_bits.load(Ordering::Relaxed))
    }

    /// Clears the line. Idempotent; also runs on drop, so the line is
    /// guaranteed gone before any summary printed after the sweep returns.
    pub fn finish(&self) {
        if !self.active {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r\x1b[2K");
        let _ = err.flush();
    }
}

/// Dropping the progress line clears it: callers that forget (or skip on
/// an early error return) cannot leave a stale line above their output.
impl Drop for Progress {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_from_any_thread() {
        let p = Progress::new(100, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        p.tick();
                    }
                });
            }
        });
        assert_eq!(p.done(), 100);
        p.finish();
    }

    #[test]
    fn disabled_progress_is_inactive() {
        // enabled=false must hold regardless of the TTY/CI environment.
        assert!(!Progress::new(10, false).is_active());
    }

    #[test]
    fn ewma_smooths_frame_rates() {
        let p = Progress::new(1000, false);
        // Frame 1: 100 cells in 1 s → 100 cells/s seeds the EWMA.
        assert_eq!(p.update_rate(100, 0, 1000), 100.0);
        // Frame 2: 300 more in 1 s → inst 300, smoothed toward it.
        let r = p.update_rate(400, 1000, 2000);
        assert!((r - (0.2 * 300.0 + 0.8 * 100.0)).abs() < 1e-9, "{r}");
        assert_eq!(p.rate(), r);
        // A stalled frame pulls the estimate down instead of freezing it.
        let stalled = p.update_rate(400, 2000, 3000);
        assert!(stalled < r);
    }
}
