//! [`DigestProbe`]: a running 64-bit FNV digest of every engine decision.
//!
//! PRs 2–6 each verified "this refactor changed nothing" by regenerating
//! whole artifact sets and diffing bytes. This probe mechanizes that: it
//! folds the engine's complete observable behavior — event dispatch order
//! (releases, send/compute endpoints, failures), scheduler callback
//! answers, and the decisions themselves — into one `u64`. Two runs with
//! equal digests executed the same event sequence with the same payloads;
//! the optional per-event ledger pinpoints *where* two runs diverge (see
//! `ms-lab diff`).
//!
//! The digest is FNV-1a 64 — the same function the sweep store uses for
//! cache keys — chained over `(kind, now, a, b)` tuples, so it is
//! order-sensitive by construction: swapping two events changes every
//! subsequent running digest.
//!
//! **Build invariance:** the probe deliberately ignores
//! [`view_recompute`](crate::Probe::view_recompute) (debug builds
//! recompute views more often than release builds, documented on the
//! hook) and the engine never reports its `debug_assertions` elision
//! oracle through the probe seam — so digests are identical across
//! debug/release builds and across probe compositions.

use crate::probe::Probe;

/// FNV-1a 64-bit offset basis (shared with the sweep store's keys).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One ledger entry: an event as folded into the digest, plus the running
/// digest *after* folding it. Comparing two ledgers entry-by-entry finds
/// the first divergence even when payloads differ only in the low bits of
/// a timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestEvent {
    /// 0-based position in the run's event sequence.
    pub index: u64,
    /// Stable event kind name (e.g. `"send_start"`, `"decision_send"`).
    pub kind: &'static str,
    /// `now` as raw bits (exact — no decimal round-trip ambiguity).
    pub t_bits: u64,
    /// First payload (task or slave index; kind-dependent).
    pub a: u64,
    /// Second payload (slave index, time bits, or flags; kind-dependent).
    pub b: u64,
    /// Running digest after this event.
    pub digest: u64,
}

impl DigestEvent {
    /// The event timestamp in simulation seconds.
    pub fn time(&self) -> f64 {
        f64::from_bits(self.t_bits)
    }
}

/// A probe folding every observable engine event into a running FNV-1a
/// digest, optionally keeping the full per-event ledger.
#[derive(Clone, Debug)]
pub struct DigestProbe {
    digest: u64,
    events: u64,
    ledger: Option<Vec<DigestEvent>>,
}

impl Default for DigestProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestProbe {
    /// A digest-only probe (no ledger, no per-event allocation).
    pub fn new() -> Self {
        Self {
            digest: FNV_BASIS,
            events: 0,
            ledger: None,
        }
    }

    /// A probe that additionally records every folded event.
    pub fn with_ledger() -> Self {
        Self {
            ledger: Some(Vec::new()),
            ..Self::new()
        }
    }

    /// The running digest (the FNV-1a basis for an empty run).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of events folded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The recorded ledger, if this probe keeps one.
    pub fn ledger(&self) -> Option<&[DigestEvent]> {
        self.ledger.as_deref()
    }

    /// Consumes the probe, returning its ledger (empty if not kept).
    pub fn into_ledger(self) -> Vec<DigestEvent> {
        self.ledger.unwrap_or_default()
    }

    /// Clears digest and ledger for the next run.
    pub fn reset(&mut self) {
        self.digest = FNV_BASIS;
        self.events = 0;
        if let Some(l) = &mut self.ledger {
            l.clear();
        }
    }

    #[inline]
    fn fold_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.digest = (self.digest ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    fn fold(&mut self, tag: u8, kind: &'static str, now: f64, a: u64, b: u64) {
        let t_bits = now.to_bits();
        self.digest = (self.digest ^ u64::from(tag)).wrapping_mul(FNV_PRIME);
        self.fold_u64(t_bits);
        self.fold_u64(a);
        self.fold_u64(b);
        let index = self.events;
        self.events += 1;
        if let Some(l) = &mut self.ledger {
            l.push(DigestEvent {
                index,
                kind,
                t_bits,
                a,
                b,
                digest: self.digest,
            });
        }
    }
}

impl Probe for DigestProbe {
    fn task_released(&mut self, now: f64, task: usize) {
        self.fold(1, "task_released", now, task as u64, 0);
    }
    fn send_start(&mut self, now: f64, task: usize, slave: usize) {
        self.fold(2, "send_start", now, task as u64, slave as u64);
    }
    fn send_complete(&mut self, now: f64, task: usize, slave: usize, delivered: bool) {
        let (tag, kind) = if delivered {
            (3, "send_delivered")
        } else {
            (4, "send_lost")
        };
        self.fold(tag, kind, now, task as u64, slave as u64);
    }
    fn compute_start(&mut self, now: f64, task: usize, slave: usize) {
        self.fold(5, "compute_start", now, task as u64, slave as u64);
    }
    fn compute_complete(&mut self, now: f64, task: usize, slave: usize) {
        self.fold(6, "compute_complete", now, task as u64, slave as u64);
    }
    fn callback(&mut self, now: f64) {
        self.fold(7, "callback", now, 0, 0);
    }
    fn callback_elided(&mut self, now: f64) {
        self.fold(8, "callback_elided", now, 0, 0);
    }
    // view_recompute deliberately not folded: debug builds recompute more.
    fn estimator_update(&mut self, now: f64, slave: usize) {
        self.fold(9, "estimator_update", now, slave as u64, 0);
    }
    fn slave_failed(&mut self, now: f64, slave: usize) {
        self.fold(10, "slave_failed", now, slave as u64, 0);
    }
    fn slave_recovered(&mut self, now: f64, slave: usize) {
        self.fold(11, "slave_recovered", now, slave as u64, 0);
    }
    fn task_lost(&mut self, now: f64, task: usize, slave: usize) {
        self.fold(12, "task_lost", now, task as u64, slave as u64);
    }
    fn budget_abort(&mut self, now: f64, steps: u64) {
        self.fold(13, "budget_abort", now, steps, 0);
    }
    fn decision(&mut self, now: f64, tag: u8, a: usize, b: u64) {
        let (t, kind) = match tag {
            0 => (14, "decision_idle"),
            1 => (15, "decision_send"),
            _ => (16, "decision_wake"),
        };
        self.fold(t, kind, now, a as u64, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_agree_and_order_matters() {
        let mut a = DigestProbe::new();
        let mut b = DigestProbe::new();
        for p in [&mut a, &mut b] {
            p.task_released(0.0, 0);
            p.send_start(0.0, 0, 1);
            p.send_complete(1.5, 0, 1, true);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.events(), 3);

        // Same events, swapped order → different digest.
        let mut c = DigestProbe::new();
        c.send_start(0.0, 0, 1);
        c.task_released(0.0, 0);
        c.send_complete(1.5, 0, 1, true);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn payload_bits_matter() {
        let mut a = DigestProbe::new();
        let mut b = DigestProbe::new();
        a.decision(2.0, 1, 7, 3);
        b.decision(2.0, 1, 7, 4); // different slave
        assert_ne!(a.digest(), b.digest());
        let mut c = DigestProbe::new();
        c.send_complete(2.0, 7, 3, true);
        let mut d = DigestProbe::new();
        d.send_complete(2.0, 7, 3, false); // lost, not delivered
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn ledger_records_running_digests() {
        let mut p = DigestProbe::with_ledger();
        p.task_released(0.0, 3);
        p.decision(0.0, 1, 3, 0);
        let ledger = p.ledger().unwrap();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger[0].kind, "task_released");
        assert_eq!(ledger[0].index, 0);
        assert_eq!(ledger[1].kind, "decision_send");
        assert_eq!(ledger[1].digest, p.digest());
        assert_eq!(ledger[0].time(), 0.0);

        // Digest-only probe over the same events agrees.
        let mut q = DigestProbe::new();
        q.task_released(0.0, 3);
        q.decision(0.0, 1, 3, 0);
        assert_eq!(q.digest(), p.digest());
        assert!(q.ledger().is_none());
    }

    #[test]
    fn reset_restores_the_basis() {
        let mut p = DigestProbe::with_ledger();
        let empty = p.digest();
        p.callback(1.0);
        assert_ne!(p.digest(), empty);
        p.reset();
        assert_eq!(p.digest(), empty);
        assert_eq!(p.events(), 0);
        assert_eq!(p.ledger().unwrap().len(), 0);
    }

    #[test]
    fn view_recompute_is_ignored() {
        let mut a = DigestProbe::new();
        let mut b = DigestProbe::new();
        a.callback(1.0);
        b.callback(1.0);
        b.view_recompute(1.0, 0);
        assert_eq!(a.digest(), b.digest());
    }
}
