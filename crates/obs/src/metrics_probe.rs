//! [`MetricsProbe`]: distributional run telemetry from the probe seam.
//!
//! The paper's objectives (makespan, max-flow) are *extremes* of per-task
//! flow times; this probe records the whole distribution plus where each
//! slave's wall-clock went, using only the existing [`Probe`] hooks — the
//! unprobed engine is untouched, so the zero-allocation and byte-identity
//! contracts keep holding verbatim.
//!
//! Everything that crosses a nondeterministic merge boundary (worker
//! threads finishing in arbitrary order) is a [`Histogram`] — exactly
//! mergeable, see [`crate::hist`]. Per-run floating-point accumulators
//! (utilization seconds, queue-depth integral) stay inside one run, which
//! is single-threaded and deterministic; merging *runs* is the caller's
//! job and must happen in a deterministic order (the sweep merges in cell
//! index order).
//!
//! # What is measured
//!
//! * **Per-task durations**, each one histogram sample at task
//!   completion: `flow` (release → compute done), `wait` (release → last
//!   send start), `transfer` (last send start → delivery), `compute`
//!   (compute start → done).
//! * **Per-slave utilization seconds**, a piecewise-constant partition of
//!   the run: `busy` (computing), `blocked` (not computing while the
//!   master's one port is occupied — the paper's contention term), `idle`
//!   (the rest; downtime counts as idle). A separate `recv` track records
//!   seconds the port spent sending *to this slave* (overlaps `busy` of
//!   others, so it is not part of the partition).
//! * **Master queue depth**, time-weighted: `∫ depth dt` plus the max.
//!   Depth rises at release and failure re-release, falls at send start.

use crate::hist::Histogram;
use crate::probe::Probe;

/// The four per-task duration histograms of a run (or of many merged
/// runs). Merging is exact and order-insensitive, so worker threads can
/// fold these in completion order without breaking determinism.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunHistograms {
    /// Release → compute completion.
    pub flow: Histogram,
    /// Release → last send start (master queue wait).
    pub wait: Histogram,
    /// Last send start → delivery (port occupancy per delivered task).
    pub transfer: Histogram,
    /// Compute start → completion.
    pub compute: Histogram,
}

impl RunHistograms {
    /// Merges another set into this one (exact, associative,
    /// commutative).
    pub fn merge(&mut self, other: &RunHistograms) {
        self.flow.merge(&other.flow);
        self.wait.merge(&other.wait);
        self.transfer.merge(&other.transfer);
        self.compute.merge(&other.compute);
    }

    /// True if no samples were recorded in any histogram.
    pub fn is_empty(&self) -> bool {
        self.flow.is_empty()
            && self.wait.is_empty()
            && self.transfer.is_empty()
            && self.compute.is_empty()
    }

    /// Clears all four histograms in place, keeping their allocations.
    pub fn clear(&mut self) {
        self.flow.clear();
        self.wait.clear();
        self.transfer.clear();
        self.compute.clear();
    }
}

/// The finished telemetry of one run, produced by
/// [`MetricsProbe::finish`].
///
/// Per-slave vectors are indexed by the engine's dense slave index. The
/// floating-point fields are exact for a single run; merging several
/// `RunMetrics` adds `f64`s and is therefore only deterministic if the
/// caller merges in a deterministic order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Completed tasks (flow histogram samples).
    pub tasks: u64,
    /// Accounted duration: the `end` passed to [`MetricsProbe::finish`].
    pub duration: f64,
    /// Per-task duration histograms.
    pub hists: RunHistograms,
    /// Seconds each slave spent computing.
    pub busy_secs: Vec<f64>,
    /// Seconds each slave spent not computing while the port was busy.
    pub blocked_secs: Vec<f64>,
    /// Seconds each slave spent neither computing nor port-blocked.
    pub idle_secs: Vec<f64>,
    /// Seconds the port spent sending to each slave (not a partition).
    pub recv_secs: Vec<f64>,
    /// Time-weighted master queue depth: `∫ depth dt`.
    pub queue_depth_secs: f64,
    /// Maximum master queue depth observed.
    pub queue_max: u64,
}

impl RunMetrics {
    /// Time-weighted mean master queue depth over the run.
    pub fn queue_mean(&self) -> f64 {
        if self.duration > 0.0 {
            self.queue_depth_secs / self.duration
        } else {
            0.0
        }
    }

    /// Busy fraction of slave `j` in `[0, 1]`.
    pub fn busy_fraction(&self, j: usize) -> f64 {
        fraction(self.busy_secs.get(j).copied().unwrap_or(0.0), self.duration)
    }

    /// Merges another run's metrics into this one. Histogram and integer
    /// parts are exact; `f64` sums make the result order-sensitive, so
    /// callers must merge in a deterministic order (e.g. cell index
    /// order) to preserve the thread-count-independence contract.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.tasks += other.tasks;
        self.duration += other.duration;
        self.hists.merge(&other.hists);
        add_secs(&mut self.busy_secs, &other.busy_secs);
        add_secs(&mut self.blocked_secs, &other.blocked_secs);
        add_secs(&mut self.idle_secs, &other.idle_secs);
        add_secs(&mut self.recv_secs, &other.recv_secs);
        self.queue_depth_secs += other.queue_depth_secs;
        self.queue_max = self.queue_max.max(other.queue_max);
    }
}

/// `num / den` clamped into `[0, 1]` (guards the partition's float dust).
pub fn fraction(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        (num / den).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

fn add_secs(into: &mut Vec<f64>, from: &[f64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0.0);
    }
    for (a, b) in into.iter_mut().zip(from) {
        *a += *b;
    }
}

/// Sentinel for "timestamp not recorded".
const UNSET: f64 = f64::NEG_INFINITY;

/// Minimum finalized prefix before the per-task window compacts (matches
/// the engine's own slot-recycling threshold; keeps compaction amortized
/// O(1) without shuffling tiny runs).
const COMPACT_MIN: usize = 64;

/// A probe deriving [`RunMetrics`] from one engine run.
///
/// Reusable across runs via [`reset`](Self::reset) (allocations are
/// retained, the sweep's batch workers keep one per thread). Attach for a
/// full run: the accounting assumes it sees every hook from time zero.
#[derive(Clone, Debug, Default)]
pub struct MetricsProbe {
    hists: RunHistograms,
    /// Per-task release / last-send-start / last-compute-start times.
    /// These are a *window*: slot `i` belongs to task `base + i`, and
    /// finalized slots are recycled so streamed million-task runs never
    /// build a full task table (the probe contract does not assume one).
    released: Vec<f64>,
    sent_at: Vec<f64>,
    started_at: Vec<f64>,
    /// Which window slots are finalized (eligible for recycling). Lost
    /// tasks stay live — they will be re-released and complete later.
    done: Vec<bool>,
    /// Task id of window slot 0.
    base: usize,
    /// Cached length of the finalized prefix (amortizes the compaction
    /// scan).
    dead_prefix: usize,
    /// High-water mark of the window length across the run.
    peak_slots: usize,
    /// Per-slave state and accumulators.
    computing: Vec<bool>,
    busy: Vec<f64>,
    blocked: Vec<f64>,
    idle: Vec<f64>,
    recv: Vec<f64>,
    /// Slave the port is currently sending to (`usize::MAX` = port free).
    port_to: usize,
    /// Master queue depth accounting.
    depth: u64,
    depth_max: u64,
    depth_secs: f64,
    /// Last accounting instant.
    last: f64,
    tasks: u64,
}

impl MetricsProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        Self {
            port_to: usize::MAX,
            ..Self::default()
        }
    }

    /// Declares the platform size up front so time is attributed to every
    /// slave from t=0, not from its first hook. Call after
    /// [`reset`](Self::reset), before the run; harmless to skip for
    /// slaves that end up touched by an early hook anyway.
    pub fn preallocate(&mut self, slaves: usize) {
        if slaves > 0 {
            self.ensure_slave(slaves - 1);
        }
    }

    /// Clears all state for the next run, keeping allocations.
    pub fn reset(&mut self) {
        self.hists.clear();
        self.released.clear();
        self.sent_at.clear();
        self.started_at.clear();
        self.done.clear();
        self.base = 0;
        self.dead_prefix = 0;
        self.peak_slots = 0;
        self.computing.clear();
        self.busy.clear();
        self.blocked.clear();
        self.idle.clear();
        self.recv.clear();
        self.port_to = usize::MAX;
        self.depth = 0;
        self.depth_max = 0;
        self.depth_secs = 0.0;
        self.last = 0.0;
        self.tasks = 0;
    }

    /// Closes the accounting at `end` (normally the run's makespan) and
    /// returns the finished metrics. The probe itself is left ready for
    /// [`reset`](Self::reset).
    pub fn finish(&mut self, end: f64) -> RunMetrics {
        self.advance(end);
        RunMetrics {
            tasks: self.tasks,
            duration: end.max(0.0),
            hists: self.hists.clone(),
            busy_secs: self.busy.clone(),
            blocked_secs: self.blocked.clone(),
            idle_secs: self.idle.clone(),
            recv_secs: self.recv.clone(),
            queue_depth_secs: self.depth_secs,
            queue_max: self.depth_max,
        }
    }

    /// Attributes the interval since the last hook to the current state.
    fn advance(&mut self, now: f64) {
        let dt = now - self.last;
        if dt > 0.0 {
            let port_busy = self.port_to != usize::MAX;
            for j in 0..self.computing.len() {
                if self.computing[j] {
                    self.busy[j] += dt;
                } else if port_busy {
                    self.blocked[j] += dt;
                } else {
                    self.idle[j] += dt;
                }
            }
            if port_busy {
                if let Some(r) = self.recv.get_mut(self.port_to) {
                    *r += dt;
                }
            }
            self.depth_secs += self.depth as f64 * dt;
            self.last = now;
        }
    }

    /// Window slot of task `t` (hooks never reference recycled tasks: only
    /// finalized slots are recycled, and a finalized task emits no further
    /// hooks).
    fn slot(&self, t: usize) -> usize {
        debug_assert!(t >= self.base, "hook for a recycled task slot");
        t - self.base
    }

    /// High-water mark of live per-task window slots across the run — the
    /// quantity the bounded-memory contract caps at O(slaves +
    /// outstanding) for streamed runs.
    pub fn peak_task_slots(&self) -> usize {
        self.peak_slots
    }

    fn ensure_task(&mut self, t: usize) {
        let slot = self.slot(t);
        if self.released.len() <= slot {
            let n = slot + 1;
            self.released.resize(n, UNSET);
            self.sent_at.resize(n, UNSET);
            self.started_at.resize(n, UNSET);
            self.done.resize(n, false);
            self.peak_slots = self.peak_slots.max(n);
        }
    }

    /// Recycles the finalized window prefix once it dominates the live
    /// tail (same policy as the engine's task-slot window).
    fn recycle(&mut self) {
        while self.dead_prefix < self.done.len() && self.done[self.dead_prefix] {
            self.dead_prefix += 1;
        }
        let dead = self.dead_prefix;
        let live = self.done.len() - dead;
        if dead >= COMPACT_MIN && dead >= live {
            self.released.drain(..dead);
            self.sent_at.drain(..dead);
            self.started_at.drain(..dead);
            self.done.drain(..dead);
            self.base += dead;
            self.dead_prefix = 0;
        }
    }

    fn ensure_slave(&mut self, j: usize) {
        if self.computing.len() <= j {
            let n = j + 1;
            self.computing.resize(n, false);
            self.busy.resize(n, 0.0);
            self.blocked.resize(n, 0.0);
            self.idle.resize(n, 0.0);
            self.recv.resize(n, 0.0);
        }
    }

    fn bump_depth(&mut self) {
        self.depth += 1;
        self.depth_max = self.depth_max.max(self.depth);
    }
}

impl Probe for MetricsProbe {
    fn task_released(&mut self, now: f64, task: usize) {
        self.advance(now);
        self.ensure_task(task);
        let slot = self.slot(task);
        self.released[slot] = now;
        self.bump_depth();
    }

    fn send_start(&mut self, now: f64, task: usize, slave: usize) {
        self.advance(now);
        self.ensure_task(task);
        self.ensure_slave(slave);
        let slot = self.slot(task);
        self.sent_at[slot] = now;
        self.port_to = slave;
        self.depth = self.depth.saturating_sub(1);
    }

    fn send_complete(&mut self, now: f64, task: usize, _slave: usize, delivered: bool) {
        self.advance(now);
        self.port_to = usize::MAX;
        if delivered {
            self.ensure_task(task);
            let sent = self.sent_at[self.slot(task)];
            if sent != UNSET {
                self.hists.transfer.observe(now - sent);
            }
        }
    }

    fn compute_start(&mut self, now: f64, task: usize, slave: usize) {
        self.advance(now);
        self.ensure_task(task);
        self.ensure_slave(slave);
        let slot = self.slot(task);
        self.started_at[slot] = now;
        self.computing[slave] = true;
    }

    fn compute_complete(&mut self, now: f64, task: usize, slave: usize) {
        self.advance(now);
        self.ensure_task(task);
        self.ensure_slave(slave);
        self.computing[slave] = false;
        // Read the slot before finalizing it — recycling may shift it.
        let slot = self.slot(task);
        let (rel, sent, started) = (
            self.released[slot],
            self.sent_at[slot],
            self.started_at[slot],
        );
        if started != UNSET {
            self.hists.compute.observe(now - started);
        }
        if rel != UNSET {
            self.hists.flow.observe(now - rel);
            if sent != UNSET {
                self.hists.wait.observe(sent - rel);
            }
        }
        self.tasks += 1;
        self.done[slot] = true;
        self.recycle();
    }

    fn slave_failed(&mut self, now: f64, slave: usize) {
        self.advance(now);
        self.ensure_slave(slave);
        self.computing[slave] = false;
    }

    fn task_lost(&mut self, now: f64, task: usize, _slave: usize) {
        self.advance(now);
        self.ensure_task(task);
        // The task re-enters the master's pending queue.
        self.bump_depth();
    }

    fn slave_recovered(&mut self, now: f64, _slave: usize) {
        self.advance(now);
    }

    fn budget_abort(&mut self, now: f64, _steps: u64) {
        self.advance(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the probe through a two-slave scenario by hand:
    ///
    /// ```text
    /// t=0   release task 0, task 1
    /// t=0   send 0 → slave 0      (1s transfer)
    /// t=1   compute 0 on slave 0  (3s)
    /// t=1   send 1 → slave 1      (2s transfer)
    /// t=3   compute 1 on slave 1  (1s)
    /// t=4   both complete
    /// ```
    fn scripted() -> (MetricsProbe, RunMetrics) {
        let mut p = MetricsProbe::new();
        p.preallocate(2);
        p.task_released(0.0, 0);
        p.task_released(0.0, 1);
        p.send_start(0.0, 0, 0);
        p.send_complete(1.0, 0, 0, true);
        p.compute_start(1.0, 0, 0);
        p.send_start(1.0, 1, 1);
        p.send_complete(3.0, 1, 1, true);
        p.compute_start(3.0, 1, 1);
        p.compute_complete(4.0, 0, 0);
        p.compute_complete(4.0, 1, 1);
        let m = p.finish(4.0);
        (p, m)
    }

    #[test]
    fn flow_wait_transfer_compute_are_recorded() {
        let (_, m) = scripted();
        assert_eq!(m.tasks, 2);
        assert_eq!(m.hists.flow.count(), 2);
        assert_eq!(m.hists.flow.max(), 4.0); // both finish at t=4
        assert_eq!(m.hists.transfer.min(), 1.0);
        assert_eq!(m.hists.transfer.max(), 2.0);
        assert_eq!(m.hists.wait.min(), 0.0); // task 0 sent at release
        assert_eq!(m.hists.wait.max(), 1.0); // task 1 waited 1s
        assert_eq!(m.hists.compute.min(), 1.0);
        assert_eq!(m.hists.compute.max(), 3.0);
    }

    #[test]
    fn utilization_partitions_the_run() {
        let (_, m) = scripted();
        assert_eq!(m.duration, 4.0);
        for j in 0..2 {
            let total = m.busy_secs[j] + m.blocked_secs[j] + m.idle_secs[j];
            assert!((total - 4.0).abs() < 1e-12, "slave {j} partition {total}");
        }
        // Slave 0 computes 1..4 → 3s busy; blocked 0..1 (port busy).
        assert_eq!(m.busy_secs[0], 3.0);
        assert_eq!(m.blocked_secs[0], 1.0);
        // Slave 1: blocked 0..1 (port to 0) and 1..3 (port to itself while
        // not yet computing), computing 3..4.
        assert_eq!(m.busy_secs[1], 1.0);
        assert_eq!(m.blocked_secs[1], 3.0);
        assert_eq!(m.recv_secs[1], 2.0);
        assert_eq!(m.busy_fraction(0), 0.75);
    }

    #[test]
    fn queue_depth_is_time_weighted() {
        let (_, m) = scripted();
        // Depth: 2 at t=0 (instantaneously), 1 on send of task 0 at t=0,
        // 0 from t=1. Integral = 1·(1-0) = 1.
        assert_eq!(m.queue_max, 2);
        assert_eq!(m.queue_depth_secs, 1.0);
        assert_eq!(m.queue_mean(), 0.25);
    }

    #[test]
    fn reset_reuses_cleanly() {
        let (mut p, first) = scripted();
        p.reset();
        p.task_released(0.0, 0);
        p.send_start(0.0, 0, 0);
        p.send_complete(1.0, 0, 0, true);
        p.compute_start(1.0, 0, 0);
        p.compute_complete(4.0, 0, 0);
        let second = p.finish(4.0);
        assert_eq!(second.tasks, 1);
        assert_eq!(second.hists.flow.count(), 1);
        assert_ne!(first, second);
        // A fresh probe driven the same way agrees exactly.
        let mut q = MetricsProbe::new();
        q.task_released(0.0, 0);
        q.send_start(0.0, 0, 0);
        q.send_complete(1.0, 0, 0, true);
        q.compute_start(1.0, 0, 0);
        q.compute_complete(4.0, 0, 0);
        assert_eq!(q.finish(4.0), second);
    }

    #[test]
    fn window_recycles_finalized_slots() {
        let mut p = MetricsProbe::new();
        p.preallocate(1);
        for t in 0..1000usize {
            let t0 = t as f64;
            p.task_released(t0, t);
            p.send_start(t0, t, 0);
            p.send_complete(t0 + 0.1, t, 0, true);
            p.compute_start(t0 + 0.1, t, 0);
            p.compute_complete(t0 + 0.5, t, 0);
        }
        let m = p.finish(1000.0);
        assert_eq!(m.tasks, 1000);
        assert_eq!(m.hists.flow.count(), 1000);
        // One task in flight at a time: the window must stay near the
        // compaction threshold, not grow with the task count.
        assert!(
            p.peak_task_slots() <= 2 * COMPACT_MIN,
            "peak {} slots for 1000 sequential tasks",
            p.peak_task_slots()
        );
    }

    #[test]
    fn merge_is_deterministic_in_order() {
        let (_, a) = scripted();
        let (_, b) = scripted();
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.tasks, 4);
        assert_eq!(ab.duration, 8.0);
        assert_eq!(ab.hists.flow.count(), 4);
        assert_eq!(ab.queue_max, 2);
    }
}
