//! Thread-local tallies of decision-kernel activity.
//!
//! The sublinear decision kernels (`mss_sim::kernel`) run *inside*
//! schedulers, which have no probe handle — so their instrumentation is a
//! set of plain thread-local counters instead of `Probe` hooks. Recording
//! is a handful of `Cell` adds per decision (no atomics, no allocation,
//! no branches on a feature flag), and reading is explicit: harnesses
//! call [`kernel_stats_reset`] before a measured region and
//! [`kernel_stats_snapshot`] after it.
//!
//! The counters are diagnostics only: nothing in any engine or scheduler
//! reads them back, so they cannot influence results (the instrumentation
//! purity contract).

use std::cell::Cell;

/// Counts of decision-kernel work performed on this thread since the last
/// [`kernel_stats_reset`]. Mergeable across threads by field-wise addition
/// ([`KernelStats::merge`]), like `SweepMetrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Tree-backed argmin queries answered from the tournament-tree root
    /// (O(1) after sync).
    pub queries: u64,
    /// Full O(m) tree rebuilds (first use, run change, platform-size
    /// change, or a journal lag past the ring capacity).
    pub rebuilds: u64,
    /// Journal entries replayed incrementally (one O(log m) leaf update
    /// each).
    pub replayed: u64,
    /// Decisions answered by the chunked linear-scan fallback (small m,
    /// scan-reference kernels, or views without a touch journal).
    pub scans: u64,
}

impl KernelStats {
    /// Field-wise accumulation, for folding per-thread tallies into one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.queries += other.queries;
        self.rebuilds += other.rebuilds;
        self.replayed += other.replayed;
        self.scans += other.scans;
    }

    /// Fraction of tree-backed queries that needed no rebuild — the
    /// kernel "hit" ratio. `None` until a tree query has run.
    pub fn hit_ratio(&self) -> Option<f64> {
        if self.queries == 0 {
            return None;
        }
        Some((self.queries - self.rebuilds.min(self.queries)) as f64 / self.queries as f64)
    }
}

thread_local! {
    static STATS: Cell<KernelStats> = const { Cell::new(KernelStats {
        queries: 0,
        rebuilds: 0,
        replayed: 0,
        scans: 0,
    }) };
}

/// Current tallies for this thread.
pub fn kernel_stats_snapshot() -> KernelStats {
    STATS.with(Cell::get)
}

/// Zeroes this thread's tallies and returns the values they held.
pub fn kernel_stats_reset() -> KernelStats {
    STATS.with(|s| s.replace(KernelStats::default()))
}

/// Records one tree-backed query. Called by the kernel, not by harnesses.
#[inline]
pub fn record_kernel_query() {
    STATS.with(|s| {
        let mut v = s.get();
        v.queries += 1;
        s.set(v);
    });
}

/// Records one full tree rebuild.
#[inline]
pub fn record_kernel_rebuild() {
    STATS.with(|s| {
        let mut v = s.get();
        v.rebuilds += 1;
        s.set(v);
    });
}

/// Records `n` journal entries replayed into the tree.
#[inline]
pub fn record_kernel_replayed(n: u64) {
    STATS.with(|s| {
        let mut v = s.get();
        v.replayed += n;
        s.set(v);
    });
}

/// Records one chunked linear-scan fallback decision.
#[inline]
pub fn record_kernel_scan() {
    STATS.with(|s| {
        let mut v = s.get();
        v.scans += 1;
        s.set(v);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        kernel_stats_reset();
        record_kernel_query();
        record_kernel_query();
        record_kernel_rebuild();
        record_kernel_replayed(5);
        record_kernel_scan();
        let s = kernel_stats_snapshot();
        assert_eq!(
            s,
            KernelStats {
                queries: 2,
                rebuilds: 1,
                replayed: 5,
                scans: 1
            }
        );
        assert_eq!(s.hit_ratio(), Some(0.5));
        let prev = kernel_stats_reset();
        assert_eq!(prev, s);
        assert_eq!(kernel_stats_snapshot(), KernelStats::default());
        assert_eq!(KernelStats::default().hit_ratio(), None);
    }

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = KernelStats {
            queries: 1,
            rebuilds: 2,
            replayed: 3,
            scans: 4,
        };
        let b = KernelStats {
            queries: 10,
            rebuilds: 20,
            replayed: 30,
            scans: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            KernelStats {
                queries: 11,
                rebuilds: 22,
                replayed: 33,
                scans: 44
            }
        );
    }
}
