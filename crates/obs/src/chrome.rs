//! Chrome Trace Event Format (Perfetto-loadable) JSON builder.
//!
//! Emits the object-wrapped flavor `{"traceEvents": [...]}` with complete
//! (`"ph":"X"`) spans, instant (`"ph":"i"`) markers, and `thread_name`
//! metadata events, which both `chrome://tracing` and
//! <https://ui.perfetto.dev> load directly. JSON is rendered by hand (this
//! crate is dependency-free); all strings pass through a JSON escaper.
//!
//! The builder is schedule-agnostic: callers lay out their own
//! process/thread ids. [`crate::TraceRecorder`] maps a simulation run onto
//! per-slave tracks; the sweep profiler maps workers onto tracks.

use std::fmt::Write as _;

/// Accumulates Chrome trace events and renders the final JSON document.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

/// Escapes `s` into `out` as a JSON string literal (without quotes).
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats a microsecond timestamp: trim to integer when exact (the common
/// case — Perfetto sorts numerically either way).
fn fmt_us(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names thread (track) `tid` of process `pid` in trace viewers.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut e = String::with_capacity(96);
        e.push_str(r#"{"name":"thread_name","ph":"M","pid":"#);
        let _ = write!(e, "{pid},\"tid\":{tid},\"args\":{{\"name\":\"");
        escape_into(&mut e, name);
        e.push_str("\"}}");
        self.events.push(e);
    }

    /// Names process `pid` in trace viewers.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut e = String::with_capacity(96);
        e.push_str(r#"{"name":"process_name","ph":"M","pid":"#);
        let _ = write!(e, "{pid},\"tid\":0,\"args\":{{\"name\":\"");
        escape_into(&mut e, name);
        e.push_str("\"}}");
        self.events.push(e);
    }

    /// A complete span (`"ph":"X"`) on track `(pid, tid)`. `ts_us` and
    /// `dur_us` are microseconds.
    pub fn complete(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts_us: f64, dur_us: f64) {
        let mut e = String::with_capacity(128);
        e.push_str(r#"{"name":""#);
        escape_into(&mut e, name);
        e.push_str("\",\"cat\":\"");
        escape_into(&mut e, cat);
        let _ = write!(
            e,
            "\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{}}}",
            fmt_us(ts_us),
            fmt_us(dur_us)
        );
        self.events.push(e);
    }

    /// A thread-scoped instant marker (`"ph":"i"`) on track `(pid, tid)`.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts_us: f64) {
        let mut e = String::with_capacity(128);
        e.push_str(r#"{"name":""#);
        escape_into(&mut e, name);
        e.push_str("\",\"cat\":\"");
        escape_into(&mut e, cat);
        let _ = write!(
            e,
            "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}}}",
            fmt_us(ts_us)
        );
        self.events.push(e);
    }

    /// A counter sample (`"ph":"C"`): trace viewers render consecutive
    /// samples of the same `name` as a stepped area chart. `series` names
    /// the value inside the counter's `args` object (one series per
    /// counter track is plenty here).
    pub fn counter(&mut self, pid: u64, name: &str, series: &str, ts_us: f64, value: f64) {
        let mut e = String::with_capacity(128);
        e.push_str(r#"{"name":""#);
        escape_into(&mut e, name);
        let _ = write!(
            e,
            "\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"",
            fmt_us(ts_us)
        );
        escape_into(&mut e, series);
        let _ = write!(e, "\":{}}}}}", fmt_us(value));
        self.events.push(e);
    }

    /// Renders the final `{"traceEvents": [...]}` document.
    pub fn render(&self) -> String {
        let body: usize = self.events.iter().map(|e| e.len() + 1).sum();
        let mut out = String::with_capacity(body + 32);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_wrapped_event_array() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "sim");
        t.thread_name(1, 3, "P0 compute");
        t.complete(1, 3, "task 7", "compute", 1_000_000.0, 500_000.0);
        t.instant(1, 3, "fail", "platform", 1_250_000.0);
        let s = t.render();
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.trim_end().ends_with("]}"));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"dur\":500000"));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("P0 compute"));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn counter_events_carry_args_values() {
        let mut t = ChromeTrace::new();
        t.counter(1, "master queue depth", "depth", 0.0, 3.0);
        t.counter(1, "master queue depth", "depth", 1_500_000.0, 2.0);
        let s = t.render();
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"args\":{\"depth\":3}"), "{s}");
        assert!(s.contains("\"ts\":1500000"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = ChromeTrace::new();
        t.complete(1, 1, "quote \" back\\slash\nnl", "c", 0.0, 1.0);
        let s = t.render();
        assert!(s.contains(r#"quote \" back\\slash\nnl"#));
    }

    #[test]
    fn fractional_timestamps_survive() {
        let mut t = ChromeTrace::new();
        t.complete(1, 1, "x", "c", 0.5, 1.25);
        let s = t.render();
        assert!(s.contains("\"ts\":0.5"), "{s}");
        assert!(s.contains("\"dur\":1.25"), "{s}");
    }
}
