//! The [`Probe`] trait: the engine's instrumentation boundary.
//!
//! The simulator is generic over a `P: Probe` and invokes a hook at every
//! engine boundary. All hooks have empty default bodies, so the default
//! [`NoopProbe`] monomorphizes to *nothing* — the instrumented engine with
//! probes disabled is instruction-for-instruction the uninstrumented one,
//! which is how the zero-allocation contract and the artifact byte-identity
//! hold verbatim (see `docs/ARCHITECTURE.md`, contract #11).
//!
//! Hooks deliberately speak in raw `usize`/`f64` so this crate depends on
//! nothing: `task`/`slave` are the engine's dense indices (`TaskId.0`,
//! `SlaveId.0`) and `now` is simulation seconds.

/// Engine instrumentation hooks. Every method defaults to a no-op; a probe
/// overrides only what it wants to observe. Probes are observers **only**:
/// the engine's behavior must be independent of what a probe does (the
/// purity half of contract #11), which holds structurally because no hook
/// returns anything the engine reads.
///
/// # Examples
/// ```
/// use mss_obs::Probe;
///
/// /// Counts completed computations.
/// #[derive(Default)]
/// struct Completions(u64);
///
/// impl Probe for Completions {
///     fn compute_complete(&mut self, _now: f64, _task: usize, _slave: usize) {
///         self.0 += 1;
///     }
/// }
///
/// let mut p = Completions::default();
/// // The engine drives the hooks; shown here by hand:
/// p.compute_start(0.5, 0, 1);
/// p.compute_complete(2.0, 0, 1);
/// assert_eq!(p.0, 1);
/// ```
#[allow(unused_variables)]
pub trait Probe {
    /// `task` was released: its arrival event dispatched and the task
    /// entered the master's pending queue. Fires for initial releases and
    /// never for failure re-releases (those fire [`task_lost`]).
    ///
    /// [`task_lost`]: Probe::task_lost
    fn task_released(&mut self, now: f64, task: usize) {}
    /// A send of `task` towards `slave` started occupying the port.
    fn send_start(&mut self, now: f64, task: usize, slave: usize) {}
    /// The send of `task` to `slave` released the port. `delivered` is
    /// `false` when the task arrived at a failed slave and was lost (it
    /// re-enters the master's pending queue).
    fn send_complete(&mut self, now: f64, task: usize, slave: usize, delivered: bool) {}
    /// `slave` started computing `task`.
    fn compute_start(&mut self, now: f64, task: usize, slave: usize) {}
    /// `slave` finished computing `task`.
    fn compute_complete(&mut self, now: f64, task: usize, slave: usize) {}
    /// A scheduler callback is about to be delivered.
    fn callback(&mut self, now: f64) {}
    /// A scheduler callback was elided under the `poll_driven` contract
    /// (the engine proved its answer would be `Idle` with no state change).
    fn callback_elided(&mut self, now: f64) {}
    /// The cached view of `slave` was recomputed from scratch. Debug builds
    /// may report more recomputations than release builds: the
    /// `debug_assertions` elision oracle refreshes views on callbacks that
    /// release builds skip.
    fn view_recompute(&mut self, now: f64, slave: usize) {}
    /// A learned rate estimate of `slave` absorbed an observation
    /// (sub-clairvoyant information tiers only).
    fn estimator_update(&mut self, now: f64, slave: usize) {}
    /// `slave` failed.
    fn slave_failed(&mut self, now: f64, slave: usize) {}
    /// `slave` recovered (restarts empty).
    fn slave_recovered(&mut self, now: f64, slave: usize) {}
    /// `task` was lost to the failure of `slave` (queued, computing, or in
    /// flight) and re-released to the master's pending queue.
    fn task_lost(&mut self, now: f64, task: usize, slave: usize) {}
    /// The run aborted: the step budget of `max_steps` was exhausted after
    /// `steps` charged steps.
    fn budget_abort(&mut self, now: f64, steps: u64) {}
    /// The scheduler answered a (non-elided) callback. The decision is
    /// flattened into the dependency-free encoding `(tag, a, b)`:
    ///
    /// | decision    | `tag` | `a`    | `b`              |
    /// |-------------|-------|--------|------------------|
    /// | `Idle`      | 0     | 0      | 0                |
    /// | `Send`      | 1     | task   | slave            |
    /// | `WakeAt(t)` | 2     | 0      | `t.to_bits()`    |
    ///
    /// Fires identically in debug and release builds: the engine's
    /// `debug_assertions` elision oracle does **not** report its shadow
    /// answers here, so decision streams (and digests of them) are
    /// build-invariant.
    fn decision(&mut self, now: f64, tag: u8, a: usize, b: u64) {}
}

/// The default probe: observes nothing, compiles to nothing.
///
/// A unit struct using every default hook body — after monomorphization the
/// probed engine contains no trace of it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Probes compose: `(A, B)` forwards every hook to both members, so e.g. a
/// counter and a trace recorder can observe one run together.
impl<A: Probe, B: Probe> Probe for (A, B) {
    fn task_released(&mut self, now: f64, task: usize) {
        self.0.task_released(now, task);
        self.1.task_released(now, task);
    }
    fn send_start(&mut self, now: f64, task: usize, slave: usize) {
        self.0.send_start(now, task, slave);
        self.1.send_start(now, task, slave);
    }
    fn send_complete(&mut self, now: f64, task: usize, slave: usize, delivered: bool) {
        self.0.send_complete(now, task, slave, delivered);
        self.1.send_complete(now, task, slave, delivered);
    }
    fn compute_start(&mut self, now: f64, task: usize, slave: usize) {
        self.0.compute_start(now, task, slave);
        self.1.compute_start(now, task, slave);
    }
    fn compute_complete(&mut self, now: f64, task: usize, slave: usize) {
        self.0.compute_complete(now, task, slave);
        self.1.compute_complete(now, task, slave);
    }
    fn callback(&mut self, now: f64) {
        self.0.callback(now);
        self.1.callback(now);
    }
    fn callback_elided(&mut self, now: f64) {
        self.0.callback_elided(now);
        self.1.callback_elided(now);
    }
    fn view_recompute(&mut self, now: f64, slave: usize) {
        self.0.view_recompute(now, slave);
        self.1.view_recompute(now, slave);
    }
    fn estimator_update(&mut self, now: f64, slave: usize) {
        self.0.estimator_update(now, slave);
        self.1.estimator_update(now, slave);
    }
    fn slave_failed(&mut self, now: f64, slave: usize) {
        self.0.slave_failed(now, slave);
        self.1.slave_failed(now, slave);
    }
    fn slave_recovered(&mut self, now: f64, slave: usize) {
        self.0.slave_recovered(now, slave);
        self.1.slave_recovered(now, slave);
    }
    fn task_lost(&mut self, now: f64, task: usize, slave: usize) {
        self.0.task_lost(now, task, slave);
        self.1.task_lost(now, task, slave);
    }
    fn budget_abort(&mut self, now: f64, steps: u64) {
        self.0.budget_abort(now, steps);
        self.1.budget_abort(now, steps);
    }
    fn decision(&mut self, now: f64, tag: u8, a: usize, b: u64) {
        self.0.decision(now, tag, a, b);
        self.1.decision(now, tag, a, b);
    }
}

/// A mutable reference is itself a probe (forwards to the referent), so a
/// caller can keep ownership while handing the engine `&mut probe`.
impl<P: Probe> Probe for &mut P {
    fn task_released(&mut self, now: f64, task: usize) {
        (**self).task_released(now, task);
    }
    fn send_start(&mut self, now: f64, task: usize, slave: usize) {
        (**self).send_start(now, task, slave);
    }
    fn send_complete(&mut self, now: f64, task: usize, slave: usize, delivered: bool) {
        (**self).send_complete(now, task, slave, delivered);
    }
    fn compute_start(&mut self, now: f64, task: usize, slave: usize) {
        (**self).compute_start(now, task, slave);
    }
    fn compute_complete(&mut self, now: f64, task: usize, slave: usize) {
        (**self).compute_complete(now, task, slave);
    }
    fn callback(&mut self, now: f64) {
        (**self).callback(now);
    }
    fn callback_elided(&mut self, now: f64) {
        (**self).callback_elided(now);
    }
    fn view_recompute(&mut self, now: f64, slave: usize) {
        (**self).view_recompute(now, slave);
    }
    fn estimator_update(&mut self, now: f64, slave: usize) {
        (**self).estimator_update(now, slave);
    }
    fn slave_failed(&mut self, now: f64, slave: usize) {
        (**self).slave_failed(now, slave);
    }
    fn slave_recovered(&mut self, now: f64, slave: usize) {
        (**self).slave_recovered(now, slave);
    }
    fn task_lost(&mut self, now: f64, task: usize, slave: usize) {
        (**self).task_lost(now, task, slave);
    }
    fn budget_abort(&mut self, now: f64, steps: u64) {
        (**self).budget_abort(now, steps);
    }
    fn decision(&mut self, now: f64, tag: u8, a: usize, b: u64) {
        (**self).decision(now, tag, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountAll(u64);
    impl Probe for CountAll {
        fn send_start(&mut self, _now: f64, _task: usize, _slave: usize) {
            self.0 += 1;
        }
        fn callback(&mut self, _now: f64) {
            self.0 += 1;
        }
    }

    #[test]
    fn noop_probe_accepts_every_hook() {
        let mut p = NoopProbe;
        p.task_released(0.0, 0);
        p.send_start(0.0, 0, 0);
        p.send_complete(1.0, 0, 0, true);
        p.compute_start(1.0, 0, 0);
        p.compute_complete(2.0, 0, 0);
        p.callback(2.0);
        p.callback_elided(2.0);
        p.view_recompute(2.0, 0);
        p.estimator_update(2.0, 0);
        p.slave_failed(3.0, 0);
        p.slave_recovered(4.0, 0);
        p.task_lost(3.0, 0, 0);
        p.budget_abort(5.0, 100);
        p.decision(5.0, 1, 0, 0);
    }

    #[test]
    fn tuple_probe_forwards_to_both() {
        let mut pair = (CountAll::default(), CountAll::default());
        pair.send_start(0.0, 1, 2);
        pair.callback(1.0);
        pair.compute_start(1.0, 1, 2); // default: counted by neither
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);
    }

    #[test]
    fn mut_ref_probe_forwards() {
        let mut p = CountAll::default();
        {
            let r = &mut (&mut p);
            r.send_start(0.0, 0, 0);
            r.callback(0.0);
        }
        assert_eq!(p.0, 2);
    }
}
