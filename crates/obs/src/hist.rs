//! Deterministic log-bucketed mergeable histograms.
//!
//! The sweep's determinism contract (ARCHITECTURE contract #4) promises
//! bit-identical aggregates for any `--threads` value, and the metrics
//! layer must not be the first thing to break it. Floating-point *sums*
//! cannot honour that promise across nondeterministic merge orders —
//! `(a + b) + c != a + (b + c)` in general — so [`Histogram`] stores only
//! operations that are **exactly associative and commutative**:
//!
//! * integer bucket counts (`u64` addition),
//! * exact running `min`/`max` (IEEE-754 min/max of non-NaN values).
//!
//! Merging two histograms is therefore the same mathematical object
//! regardless of grouping or order, and a sweep can fold per-cell
//! histograms in whatever order its workers finish without perturbing the
//! result.
//!
//! # Bucketing
//!
//! Buckets are fixed at compile time (no per-instance configuration to
//! disagree about): logarithmic with [`SUB_BUCKETS`] sub-buckets per
//! power of two, covering `[2^-64, 2^64)` — relative bucket width
//! `2^(1/32) - 1 ≈ 2.2%`, plenty for p50/p90/p99 reporting. The bucket
//! index of a positive normal `f64` is read straight off its bit pattern
//! (for positive floats, integer ordering of the bits *is* float
//! ordering): the exponent selects the octave and the top mantissa bits
//! the sub-bucket. Values outside the range land in dedicated `zero`
//! (`v <= 0`, `NaN`), `under` (`0 < v < 2^-64`, incl. subnormals) and
//! `over` (`v >= 2^64`, incl. `+inf`) buckets, so every observation is
//! counted exactly once and `count` always equals the number of
//! [`observe`](Histogram::observe) calls.
//!
//! Quantiles report the *upper bound* of the bucket holding the target
//! rank, clamped to the exact observed maximum — so `quantile(1.0)` is
//! the exact max and the quantile function is monotone in `q`.

/// Log₂ of the number of sub-buckets per power of two.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32 → ≤ 2.2% relative bucket width).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Raw (biased) exponent of the smallest bucketed value, `2^-64`.
const EXP_LO: u64 = 1023 - 64;
/// Raw (biased) exponent one past the largest bucketed octave (`2^63`).
const EXP_HI: u64 = 1023 + 64;
/// Number of regular logarithmic buckets (128 octaves × 32).
pub const BUCKETS: usize = ((EXP_HI - EXP_LO) as usize) << SUB_BITS;

/// A fixed-boundary logarithmic histogram whose merge is exact.
///
/// See the [module docs](self) for the bucketing scheme and why the type
/// deliberately has no floating-point sum. The bucket array is allocated
/// lazily on the first observation, so an empty histogram is a handful of
/// scalars.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// Dense regular bucket counts (empty until first regular sample).
    counts: Vec<u64>,
    /// Samples with `v <= 0` or `v` NaN.
    zero: u64,
    /// Samples in `(0, 2^-64)`.
    under: u64,
    /// Samples in `[2^64, +inf]`.
    over: u64,
    /// Total samples observed (sum of all buckets).
    total: u64,
    /// Exact minimum observed (`0.0` placeholder while empty).
    min: f64,
    /// Exact maximum observed (`0.0` placeholder while empty).
    max: f64,
}

/// Equality is semantic, not structural: an unallocated bucket array
/// equals an allocated all-zero one, and extremes compare bit-for-bit.
impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        let n = self.counts.len().max(other.counts.len());
        self.zero == other.zero
            && self.under == other.under
            && self.over == other.over
            && self.total == other.total
            && self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
            && (0..n).all(|i| {
                self.counts.get(i).copied().unwrap_or(0)
                    == other.counts.get(i).copied().unwrap_or(0)
            })
    }
}

/// Bucket index of a positive normal value within `[2^-64, 2^64)`.
#[inline]
fn bucket_of(v: f64) -> usize {
    let bits = v.to_bits();
    // Top SUB_BITS mantissa bits + exponent, re-based to EXP_LO.
    let idx = (bits >> (52 - SUB_BITS)) - (EXP_LO << SUB_BITS);
    idx as usize
}

/// Upper bound of regular bucket `idx` (exclusive), computed by integer
/// arithmetic on the bit pattern — the carry out of the sub-bucket field
/// rolls into the exponent exactly when the bucket is the last of its
/// octave.
#[inline]
fn bucket_upper(idx: usize) -> f64 {
    f64::from_bits((idx as u64 + (EXP_LO << SUB_BITS) + 1) << (52 - SUB_BITS))
}

impl Histogram {
    /// An empty histogram (no allocation until the first sample).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        self.total += 1;
        if v <= 0.0 || v.is_nan() {
            // Covers 0, negatives and NaN: deterministic and counted.
            // NaN and -0.0 normalize to +0.0 so min/max folding stays
            // exactly commutative (IEEE min/max of signed zeros is not).
            self.zero += 1;
            let v = if v.is_nan() || v == 0.0 { 0.0 } else { v };
            self.fold_extremes(v);
            return;
        }
        self.fold_extremes(v);
        let bits = v.to_bits();
        if bits < (EXP_LO << 52) {
            self.under += 1;
        } else if bits >= (EXP_HI << 52) {
            self.over += 1;
        } else {
            if self.counts.is_empty() {
                self.counts.resize(BUCKETS, 0);
            }
            self.counts[bucket_of(v)] += 1;
        }
    }

    #[inline]
    fn fold_extremes(&mut self, v: f64) {
        if self.total == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Merges another histogram into this one. Exact: integer bucket
    /// addition plus min/max folding, so merging is associative and
    /// commutative bit-for-bit.
    pub fn merge(&mut self, other: &Histogram) {
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.zero += other.zero;
        self.under += other.under;
        self.over += other.over;
        self.total += other.total;
        if !other.counts.is_empty() {
            if self.counts.is_empty() {
                self.counts.resize(BUCKETS, 0);
            }
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += *b;
            }
        }
    }

    /// Clears all samples in place, retaining the bucket allocation (for
    /// probe reuse across runs). Equality is semantic — a cleared
    /// histogram equals a fresh one — so reuse is unobservable.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.zero = 0;
        self.under = 0;
        self.over = 0;
        self.total = 0;
        self.min = 0.0;
        self.max = 0.0;
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples were observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum observed sample (0.0 if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum observed sample (0.0 if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the upper bound of the bucket
    /// containing rank `ceil(q·count)`, clamped to the exact max — so
    /// `quantile(1.0) == max()`, `quantile(0.0)` is the smallest bucket
    /// bound ≥ the minimum, and the function is monotone in `q`.
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = self.zero;
        if cum >= target {
            return 0.0;
        }
        cum += self.under;
        if cum >= target {
            // Upper bound of the underflow bucket.
            return f64::from_bits(EXP_LO << 52).min(self.max);
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(idx).min(self.max);
            }
        }
        // Rank falls in the overflow bucket.
        self.max
    }

    /// Sparse export as parallel `(bucket index, count)` arrays, the
    /// serialization format used by the sweep store. Regular buckets use
    /// their index directly; the three boundary buckets get the reserved
    /// indices [`BUCKETS`] (zero), `BUCKETS + 1` (under), `BUCKETS + 2`
    /// (over).
    pub fn to_sparse(&self) -> (Vec<u32>, Vec<u64>) {
        let mut idx = Vec::new();
        let mut cnt = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                idx.push(i as u32);
                cnt.push(c);
            }
        }
        for (off, c) in [self.zero, self.under, self.over].into_iter().enumerate() {
            if c > 0 {
                idx.push((BUCKETS + off) as u32);
                cnt.push(c);
            }
        }
        (idx, cnt)
    }

    /// Rebuilds a histogram from [`to_sparse`](Self::to_sparse) output
    /// plus the exact extremes. Unknown indices are ignored (forward
    /// compatibility); `min`/`max` are trusted as-is.
    pub fn from_sparse(idx: &[u32], cnt: &[u64], min: f64, max: f64) -> Self {
        let mut h = Histogram::new();
        for (&i, &c) in idx.iter().zip(cnt) {
            let i = i as usize;
            if i < BUCKETS {
                if h.counts.is_empty() {
                    h.counts.resize(BUCKETS, 0);
                }
                h.counts[i] += c;
            } else if i == BUCKETS {
                h.zero += c;
            } else if i == BUCKETS + 1 {
                h.under += c;
            } else if i == BUCKETS + 2 {
                h.over += c;
            }
            h.total += c;
        }
        if h.total > 0 {
            h.min = min;
            h.max = max;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_observation_once() {
        let mut h = Histogram::new();
        for v in [0.0, -1.0, f64::NAN, 1e-300, 1e300, 0.5, 3.7, f64::INFINITY] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        let (idx, cnt) = h.to_sparse();
        assert_eq!(cnt.iter().sum::<u64>(), 8);
        assert_eq!(idx.len(), cnt.len());
    }

    #[test]
    fn bucket_bounds_bracket_samples() {
        for v in [1e-12, 0.03, 1.0, 1.5, 7.25, 1234.5, 9.9e12] {
            let idx = bucket_of(v);
            let hi = bucket_upper(idx);
            let lo = if idx == 0 {
                f64::from_bits(EXP_LO << 52)
            } else {
                bucket_upper(idx - 1)
            };
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi})");
            // Bucket width is at most 2^(1/32)-ish of the value.
            assert!(hi / lo < 1.0 + 2.0 / SUB_BUCKETS as f64);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_pinned_at_extremes() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 / 10.0);
        }
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.min(), 0.1);
        let mut prev = 0.0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at {i}%");
            prev = q;
        }
        // p50 is within one bucket of the true median (50.05).
        let p50 = h.quantile(0.5);
        assert!((p50 / 50.05 - 1.0).abs() < 0.05, "p50 = {p50}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..500 {
            let v = (i as f64 * 0.77).exp() % 1e9;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sparse_roundtrip_is_exact() {
        let mut h = Histogram::new();
        for v in [0.0, 0.5, 0.5, 42.0, 1e300, 1e-300] {
            h.observe(v);
        }
        let (idx, cnt) = h.to_sparse();
        let back = Histogram::from_sparse(&idx, &cnt, h.min(), h.max());
        assert_eq!(back, h);
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(back.quantile(q).to_bits(), h.quantile(q).to_bits());
        }
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
        let mut other = Histogram::new();
        other.observe(2.0);
        let snapshot = other.clone();
        other.merge(&h);
        assert_eq!(other, snapshot);
    }
}
