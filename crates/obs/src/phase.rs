//! Scoped wall-clock phase timers and the `profile.json` / `profile.csv`
//! renderers behind `ms-lab profile`.

use std::fmt::Write as _;
use std::time::Instant;

/// Accumulates wall-clock seconds into named phases, preserving first-use
/// order. Phases may be re-entered; times add up.
///
/// # Examples
/// ```
/// use mss_obs::PhaseProfile;
///
/// let mut p = PhaseProfile::new();
/// p.add("simulate", 9.6);
/// p.add("store", 0.4);
/// assert!((p.fraction("simulate") - 0.96).abs() < 1e-12);
/// assert!(p.to_json().contains("\"simulate\""));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    phases: Vec<(String, f64)>,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    /// Adds `secs` to phase `name` (creating it on first use).
    pub fn add(&mut self, name: &str, secs: f64) {
        if let Some((_, t)) = self.phases.iter_mut().find(|(n, _)| n == name) {
            *t += secs;
        } else {
            self.phases.push((name.to_string(), secs));
        }
    }

    /// Runs `f`, charging its wall-clock time to phase `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(name, t0.elapsed().as_secs_f64());
        out
    }

    /// Phases in first-use order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Seconds accumulated in phase `name` (`0.0` if absent).
    pub fn secs(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, t)| *t)
    }

    /// Total seconds across all phases.
    pub fn total(&self) -> f64 {
        self.phases.iter().map(|(_, t)| t).sum()
    }

    /// Fraction of the total spent in phase `name` (`0.0` on an empty
    /// profile).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.secs(name) / total
        }
    }

    /// Renders `{"total_secs":…,"phases":[{"name":…,"secs":…,"fraction":…}]}`.
    pub fn to_json(&self) -> String {
        let total = self.total();
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"total_secs\": {total},\n  \"phases\": [");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let frac = if total == 0.0 { 0.0 } else { secs / total };
            let _ = write!(
                out,
                "\n    {{\"name\": \"{name}\", \"secs\": {secs}, \"fraction\": {frac}}}"
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders `phase,secs,fraction` CSV rows.
    pub fn to_csv(&self) -> String {
        let total = self.total();
        let mut out = String::from("phase,secs,fraction\n");
        for (name, secs) in &self.phases {
            let frac = if total == 0.0 { 0.0 } else { secs / total };
            let _ = writeln!(out, "{name},{secs},{frac}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_in_first_use_order() {
        let mut p = PhaseProfile::new();
        p.add("b", 1.0);
        p.add("a", 2.0);
        p.add("b", 0.5);
        assert_eq!(p.phases()[0].0, "b");
        assert_eq!(p.secs("b"), 1.5);
        assert_eq!(p.total(), 3.5);
        assert!((p.fraction("a") - 2.0 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn time_charges_the_closure() {
        let mut p = PhaseProfile::new();
        let v = p.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(p.secs("work") >= 0.0);
        assert_eq!(p.phases().len(), 1);
    }

    #[test]
    fn renders_json_and_csv() {
        let mut p = PhaseProfile::new();
        p.add("simulate", 3.0);
        p.add("store", 1.0);
        let json = p.to_json();
        assert!(json.contains("\"total_secs\": 4"));
        assert!(json.contains("\"fraction\": 0.75"));
        let csv = p.to_csv();
        assert!(csv.starts_with("phase,secs,fraction\n"));
        assert!(csv.contains("simulate,3,0.75\n"));
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = PhaseProfile::new();
        assert_eq!(p.total(), 0.0);
        assert_eq!(p.fraction("x"), 0.0);
        assert!(p.to_json().contains("\"phases\": [\n  ]"));
    }
}
