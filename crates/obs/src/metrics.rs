//! Sweep-level metrics: per-worker tallies merged into a run summary.

use crate::chrome::ChromeTrace;
use crate::counters::RunCounters;
use crate::metrics_probe::RunHistograms;

/// One batch executed by a sweep worker, as an interval in seconds from the
/// sweep's shared epoch. Feeds the per-worker tracks of the sweep trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchSpan {
    /// Seconds from the sweep epoch when the batch started.
    pub start: f64,
    /// Seconds from the sweep epoch when the batch finished.
    pub end: f64,
    /// Cells executed in the batch.
    pub cells: usize,
}

/// What one sweep worker did: cells, batches, phase time, and its batch
/// timeline. Aggregated thread-locally (no synchronization on the worker's
/// hot path) and merged into [`SweepMetrics`] at join.
#[derive(Clone, Debug, Default)]
pub struct WorkerMetrics {
    /// Cells this worker executed (including errored/aborted ones).
    pub cells: u64,
    /// Batches this worker claimed.
    pub batches: u64,
    /// Instances this worker materialized (once per batch).
    pub materializations: u64,
    /// Cells that ended in an abort (budget/stall/…) rather than metrics.
    pub aborted: u64,
    /// Seconds spent materializing instances.
    pub materialize_secs: f64,
    /// Seconds spent simulating (scheduling + engine).
    pub simulate_secs: f64,
    /// Seconds this worker spent in the result store (serializing its
    /// results into per-worker shard buffers and flushing them under the
    /// per-shard locks).
    pub store_secs: f64,
    /// This worker's batch timeline, offsets from the sweep epoch.
    pub spans: Vec<BatchSpan>,
    /// Engine event counters accumulated across this worker's cells
    /// (populated only when the sweep runs with counting probes).
    pub counters: RunCounters,
    /// Per-task duration histograms merged across this worker's cells
    /// (populated only when the sweep collects run metrics). Histograms
    /// are the *only* statistic allowed to cross the worker-merge
    /// boundary: workers finish in nondeterministic order, and histogram
    /// merging is the one operation that is exact regardless (contract
    /// #12) — per-cell `f64` telemetry merges lab-side in cell order.
    pub hists: RunHistograms,
}

impl WorkerMetrics {
    /// A zeroed tally.
    pub fn new() -> Self {
        WorkerMetrics::default()
    }
}

/// Number of result-store shards (`shard_00.jsonl` … `shard_0f.jsonl`);
/// [`StoreStats::shard_contended`] carries one slot per shard.
pub const STORE_SHARDS: usize = 16;

/// Store I/O statistics for one sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Flush operations that wrote at least one record.
    pub appends: u64,
    /// Bytes appended across all shards.
    pub bytes: u64,
    /// Times any shard lock was contended (first `try_lock` failed) —
    /// the sum of [`StoreStats::shard_contended`].
    pub lock_contended: u64,
    /// Per-shard contention counts: how often each shard's lock was
    /// already held when a worker arrived to flush. A hot shard here means
    /// the key space hashes unevenly or too many workers flush at once.
    pub shard_contended: [u64; STORE_SHARDS],
}

impl StoreStats {
    /// Contended flushes per append — `lock_contended / appends` (`0.0`
    /// when nothing was appended). The scaling curve reports this as the
    /// store-contention ratio: near zero means the sharded store never
    /// made a worker wait.
    pub fn contention_ratio(&self) -> f64 {
        if self.appends == 0 {
            0.0
        } else {
            self.lock_contended as f64 / self.appends as f64
        }
    }
}

/// Summary of one sweep run: totals plus the per-worker breakdown.
///
/// # Examples
/// ```
/// use mss_obs::{SweepMetrics, WorkerMetrics};
///
/// let mut m = SweepMetrics::default();
/// let mut w = WorkerMetrics::new();
/// w.cells = 10;
/// w.batches = 4;
/// w.materializations = 4;
/// m.absorb_worker(w);
/// m.cached = 5;
/// assert_eq!(m.executed, 10);
/// assert!((m.batch_reuse_ratio() - 0.6).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SweepMetrics {
    /// Total cells requested.
    pub cells: u64,
    /// Cells actually executed this run.
    pub executed: u64,
    /// Cells served from the result store.
    pub cached: u64,
    /// Executed cells that ended in an abort rather than metrics.
    pub aborted: u64,
    /// Batches executed across all workers.
    pub batches: u64,
    /// Instance materializations across all workers.
    pub materializations: u64,
    /// Seconds spent materializing, summed across workers.
    pub materialize_secs: f64,
    /// Seconds spent simulating, summed across workers.
    pub simulate_secs: f64,
    /// Wall-clock seconds for the execution phase.
    pub wall_secs: f64,
    /// Seconds spent in the result store: loading the cache on open (wall
    /// time, serial) plus each worker's serialize-and-flush time (CPU
    /// seconds summed across workers, like `simulate_secs`).
    pub store_secs: f64,
    /// Store I/O statistics.
    pub store: StoreStats,
    /// Merged engine counters (populated only under counting probes).
    pub counters: RunCounters,
    /// Merged per-task duration histograms (populated only when the sweep
    /// collects run metrics); exact for any worker count and merge order.
    pub hists: RunHistograms,
    /// The per-worker breakdown, in worker order.
    pub workers: Vec<WorkerMetrics>,
}

impl SweepMetrics {
    /// Folds one worker's tally into the totals and keeps the breakdown.
    pub fn absorb_worker(&mut self, w: WorkerMetrics) {
        self.executed += w.cells;
        self.aborted += w.aborted;
        self.batches += w.batches;
        self.materializations += w.materializations;
        self.materialize_secs += w.materialize_secs;
        self.simulate_secs += w.simulate_secs;
        self.store_secs += w.store_secs;
        self.counters.merge(&w.counters);
        self.hists.merge(&w.hists);
        self.workers.push(w);
    }

    /// Fraction of executed cells that *reused* a batch-mate's
    /// materialization: `1 - materializations / executed` (`0.0` when
    /// nothing ran). The instance-major batching win in one number.
    pub fn batch_reuse_ratio(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            1.0 - self.materializations as f64 / self.executed as f64
        }
    }

    /// Exports the workers' batch timelines as a Chrome trace: one track
    /// per worker, one span per batch — plus, when the sweep stored
    /// anything, a "store shard contention" counter track with one series
    /// per shard (final contended-lock counts, sampled at the end of the
    /// sweep wall clock).
    pub fn to_chrome(&self, process: &str) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        let pid = 1;
        t.process_name(pid, process);
        for (w, wm) in self.workers.iter().enumerate() {
            t.thread_name(pid, w as u64, &format!("worker {w}"));
            for s in &wm.spans {
                t.complete(
                    pid,
                    w as u64,
                    &format!("batch ({} cells)", s.cells),
                    "sweep",
                    s.start * 1e6,
                    (s.end - s.start) * 1e6,
                );
            }
        }
        if self.store.appends > 0 {
            let ts = self.wall_secs * 1e6;
            for (i, &contended) in self.store.shard_contended.iter().enumerate() {
                t.counter(
                    pid,
                    "store shard contention",
                    &format!("shard_{i:02x}"),
                    ts,
                    contended as f64,
                );
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_and_keeps_breakdown() {
        let mut m = SweepMetrics::default();
        let mut a = WorkerMetrics::new();
        a.cells = 6;
        a.batches = 2;
        a.materializations = 2;
        a.simulate_secs = 0.5;
        a.counters.callbacks = 10;
        let mut b = WorkerMetrics::new();
        b.cells = 4;
        b.batches = 1;
        b.materializations = 1;
        b.aborted = 1;
        b.counters.callbacks_elided = 30;
        m.absorb_worker(a);
        m.absorb_worker(b);
        assert_eq!(m.executed, 10);
        assert_eq!(m.batches, 3);
        assert_eq!(m.aborted, 1);
        assert_eq!(m.workers.len(), 2);
        assert!((m.batch_reuse_ratio() - 0.7).abs() < 1e-12);
        assert!((m.counters.elided_callback_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_sweep_has_zero_reuse() {
        assert_eq!(SweepMetrics::default().batch_reuse_ratio(), 0.0);
    }

    #[test]
    fn store_contention_ratio_handles_empty_and_counts() {
        assert_eq!(StoreStats::default().contention_ratio(), 0.0);
        let mut s = StoreStats {
            appends: 8,
            bytes: 1024,
            ..StoreStats::default()
        };
        s.shard_contended[0] = 1;
        s.shard_contended[9] = 1;
        s.lock_contended = s.shard_contended.iter().sum();
        assert!((s.contention_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn worker_trace_has_one_track_per_worker() {
        let mut m = SweepMetrics::default();
        for i in 0..2 {
            let mut w = WorkerMetrics::new();
            w.spans.push(BatchSpan {
                start: i as f64,
                end: i as f64 + 0.5,
                cells: 3,
            });
            m.absorb_worker(w);
        }
        let s = m.to_chrome("sweep").render();
        assert!(s.contains("worker 0"));
        assert!(s.contains("worker 1"));
        assert!(s.contains("batch (3 cells)"));
        // No store activity: no contention counter track.
        assert!(!s.contains("store shard contention"));

        m.store.appends = 3;
        m.store.shard_contended[2] = 5;
        m.store.lock_contended = 5;
        let s = m.to_chrome("sweep").render();
        assert!(s.contains("store shard contention"));
        assert!(s.contains("\"args\":{\"shard_02\":5}"), "{s}");
        assert!(s.contains("\"args\":{\"shard_0f\":0}"), "{s}");
    }
}
