//! # mss-obs — zero-cost observability for the master-slave simulator
//!
//! Instrumentation primitives shared by `mss-sim`, `mss-sweep`, and
//! `ms-lab`, with one governing rule (`docs/ARCHITECTURE.md`, contract
//! #11): **instrumentation is zero-cost when disabled and observationally
//! pure always**.
//!
//! - [`Probe`] — the engine's hook trait. Every method defaults to a no-op;
//!   the engine is generic over `P: Probe`, so the default [`NoopProbe`]
//!   monomorphizes away completely and the uninstrumented hot path is
//!   unchanged, instruction for instruction.
//! - [`RunCounters`] — a probe tallying engine events per kind (elided
//!   callbacks, view recomputes, estimator updates, failures, …).
//! - [`Histogram`] — deterministic log-bucketed mergeable histograms: the
//!   only statistic the sweep lets cross a nondeterministic merge
//!   boundary, because merging is exactly associative and commutative.
//! - [`MetricsProbe`] / [`RunMetrics`] — distributional run telemetry:
//!   per-task flow/wait/transfer/compute histograms, per-slave
//!   busy/blocked/idle seconds, time-weighted master queue depth.
//! - [`DigestProbe`] — folds every engine decision into a running FNV-1a
//!   digest (optionally with a per-event ledger) so two runs can be
//!   compared event-by-event; powers `ms-lab diff`.
//! - [`TraceRecorder`] — a probe capturing per-slave send/compute/downtime
//!   spans, exportable as a Chrome trace.
//! - [`ChromeTrace`] — the Chrome Trace Event Format (Perfetto-loadable)
//!   JSON builder behind `ms-lab trace`.
//! - [`SweepMetrics`] / [`WorkerMetrics`] — sweep-level accounting (batch
//!   reuse, per-worker timelines, store I/O), aggregated thread-locally and
//!   merged at join.
//! - [`PhaseProfile`] — scoped wall-clock phase timers behind
//!   `ms-lab profile`.
//! - [`Progress`] — a TTY-gated live progress line for sweeps.
//!
//! The crate is deliberately **dependency-free** (std only): it sits below
//! `mss-sim` in the build graph, so the simulator can be generic over
//! [`Probe`] without a dependency cycle, and enabling it can never change
//! what the simulator links against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod counters;
pub mod digest;
pub mod hist;
pub mod kernel_stats;
pub mod metrics;
pub mod metrics_probe;
pub mod phase;
pub mod probe;
pub mod progress;
pub mod recorder;

pub use chrome::ChromeTrace;
pub use counters::RunCounters;
pub use digest::{DigestEvent, DigestProbe};
pub use hist::Histogram;
pub use kernel_stats::{kernel_stats_reset, kernel_stats_snapshot, KernelStats};
pub use metrics::{BatchSpan, StoreStats, SweepMetrics, WorkerMetrics, STORE_SHARDS};
pub use metrics_probe::{MetricsProbe, RunHistograms, RunMetrics};
pub use phase::PhaseProfile;
pub use probe::{NoopProbe, Probe};
pub use progress::Progress;
pub use recorder::{Marker, MarkerKind, Span, SpanKind, TraceRecorder};
