//! [`TraceRecorder`]: a [`Probe`] that captures a run as timeline spans and
//! exports it as a Chrome trace.

use crate::chrome::ChromeTrace;
use crate::probe::Probe;

/// What a [`Span`] covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// The port transferring a task to the slave.
    Send,
    /// The slave computing a task.
    Compute,
    /// The slave failed (downtime).
    Down,
}

/// One closed interval on a slave's timeline, in simulation seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// What the interval covers.
    pub kind: SpanKind,
    /// Task id, for `Send`/`Compute` spans (`usize::MAX` for downtime).
    pub task: usize,
    /// Slave id.
    pub slave: usize,
    /// Start instant, simulation seconds.
    pub start: f64,
    /// End instant, simulation seconds.
    pub end: f64,
    /// `false` when the interval was cut short (a lost send, a computation
    /// killed by a failure) rather than completing.
    pub completed: bool,
}

/// An instant marker on a slave's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Marker {
    /// Marker label (`"fail"`, `"recover"`, `"task N lost"`…).
    pub kind: MarkerKind,
    /// Task id for task markers, `usize::MAX` otherwise.
    pub task: usize,
    /// Slave id.
    pub slave: usize,
    /// Instant, simulation seconds.
    pub at: f64,
}

/// What a [`Marker`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// The slave failed.
    Fail,
    /// The slave recovered.
    Recover,
    /// A task was lost (failure or lost-on-arrival send).
    TaskLost,
}

#[derive(Clone, Copy, Debug, Default)]
struct OpenSlot {
    task: usize,
    start: f64,
    open: bool,
}

/// Records a simulation run as per-slave send/compute/downtime spans plus
/// failure/recovery/loss markers, for Chrome-trace export (see
/// [`TraceRecorder::to_chrome`]) or programmatic inspection.
///
/// Tracks are laid out so spans on one track never overlap (the model
/// guarantees it: the port is serial per slave, computes are serial, and
/// downtime alternates with uptime), which is the nesting property trace
/// viewers need.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    /// Closed spans, in closing order.
    pub spans: Vec<Span>,
    /// Instant markers, in order.
    pub markers: Vec<Marker>,
    /// `(instant, depth)` samples of the master's pending-queue depth:
    /// one sample per change (release, send start, failure re-release).
    /// Rendered as a `"ph":"C"` counter track by [`to_chrome`].
    ///
    /// [`to_chrome`]: TraceRecorder::to_chrome
    pub queue_samples: Vec<(f64, u64)>,
    /// `(instant, count)` samples of in-flight sends (0 or 1 — the master
    /// has one port; the track makes port occupancy legible at a glance).
    pub inflight_samples: Vec<(f64, u64)>,
    open_send: Vec<OpenSlot>,
    open_compute: Vec<OpenSlot>,
    down_since: Vec<OpenSlot>,
    queue_depth: u64,
    inflight: u64,
    end: f64,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    fn ensure(&mut self, slave: usize) {
        if self.open_send.len() <= slave {
            let n = slave + 1;
            self.open_send.resize(n, OpenSlot::default());
            self.open_compute.resize(n, OpenSlot::default());
            self.down_since.resize(n, OpenSlot::default());
        }
    }

    fn observe(&mut self, now: f64) {
        if now > self.end {
            self.end = now;
        }
    }

    /// Number of slaves that appeared in any hook.
    pub fn num_slaves(&self) -> usize {
        self.open_send.len()
    }

    fn sample_queue(&mut self, now: f64) {
        self.queue_samples.push((now, self.queue_depth));
    }

    fn sample_inflight(&mut self, now: f64) {
        self.inflight_samples.push((now, self.inflight));
    }

    /// Latest instant observed by any hook (a lower bound on the makespan).
    pub fn end_time(&self) -> f64 {
        self.end
    }

    /// Closes every still-open span at `end` (e.g. a slave down at the end
    /// of the run) and returns the recorder ready for export. Call once
    /// after the run; reusing the recorder afterwards is not supported.
    pub fn finalize(&mut self, end: f64) {
        self.observe(end);
        let end = self.end;
        for j in 0..self.open_send.len() {
            if self.open_send[j].open {
                let s = std::mem::take(&mut self.open_send[j]);
                self.push_span(SpanKind::Send, s.task, j, s.start, end, false);
            }
            if self.open_compute[j].open {
                let s = std::mem::take(&mut self.open_compute[j]);
                self.push_span(SpanKind::Compute, s.task, j, s.start, end, false);
            }
            if self.down_since[j].open {
                let s = std::mem::take(&mut self.down_since[j]);
                self.push_span(SpanKind::Down, usize::MAX, j, s.start, end, false);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_span(
        &mut self,
        kind: SpanKind,
        task: usize,
        slave: usize,
        start: f64,
        end: f64,
        completed: bool,
    ) {
        self.spans.push(Span {
            kind,
            task,
            slave,
            start,
            end,
            completed,
        });
    }

    /// Exports the run as a Chrome trace: per slave `j`, track `3j` holds
    /// send spans, `3j+1` compute spans, and `3j+2` downtime spans with the
    /// failure/recovery/loss markers; two process-wide `"ph":"C"` counter
    /// tracks chart the master queue depth and in-flight sends.
    /// `seconds_per_us` scales simulation seconds to trace microseconds;
    /// `1e6` renders one simulated second as one viewer second.
    pub fn to_chrome(&self, process: &str, us_per_sec: f64) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        let pid = 1;
        t.process_name(pid, process);
        for j in 0..self.num_slaves() {
            t.thread_name(pid, (3 * j) as u64, &format!("P{j} send"));
            t.thread_name(pid, (3 * j + 1) as u64, &format!("P{j} compute"));
            t.thread_name(pid, (3 * j + 2) as u64, &format!("P{j} state"));
        }
        for s in &self.spans {
            let (tid, name, cat) = match s.kind {
                SpanKind::Send => (
                    3 * s.slave,
                    format!(
                        "send task {}{}",
                        s.task,
                        if s.completed { "" } else { " (aborted)" }
                    ),
                    "send",
                ),
                SpanKind::Compute => (
                    3 * s.slave + 1,
                    format!(
                        "compute task {}{}",
                        s.task,
                        if s.completed { "" } else { " (killed)" }
                    ),
                    "compute",
                ),
                SpanKind::Down => (3 * s.slave + 2, "down".to_string(), "platform"),
            };
            t.complete(
                pid,
                tid as u64,
                &name,
                cat,
                s.start * us_per_sec,
                (s.end - s.start) * us_per_sec,
            );
        }
        for m in &self.markers {
            let tid = (3 * m.slave + 2) as u64;
            let name = match m.kind {
                MarkerKind::Fail => "fail".to_string(),
                MarkerKind::Recover => "recover".to_string(),
                MarkerKind::TaskLost => format!("task {} lost", m.task),
            };
            t.instant(pid, tid, &name, "platform", m.at * us_per_sec);
        }
        for &(at, depth) in &self.queue_samples {
            t.counter(
                pid,
                "master queue depth",
                "depth",
                at * us_per_sec,
                depth as f64,
            );
        }
        for &(at, n) in &self.inflight_samples {
            t.counter(pid, "in-flight sends", "sends", at * us_per_sec, n as f64);
        }
        t
    }
}

impl Probe for TraceRecorder {
    fn task_released(&mut self, now: f64, task: usize) {
        let _ = task;
        self.observe(now);
        self.queue_depth += 1;
        self.sample_queue(now);
    }

    fn send_start(&mut self, now: f64, task: usize, slave: usize) {
        self.ensure(slave);
        self.observe(now);
        self.queue_depth = self.queue_depth.saturating_sub(1);
        self.sample_queue(now);
        self.inflight += 1;
        self.sample_inflight(now);
        self.open_send[slave] = OpenSlot {
            task,
            start: now,
            open: true,
        };
    }

    fn send_complete(&mut self, now: f64, task: usize, slave: usize, delivered: bool) {
        self.ensure(slave);
        self.observe(now);
        self.inflight = self.inflight.saturating_sub(1);
        self.sample_inflight(now);
        if self.open_send[slave].open && self.open_send[slave].task == task {
            let s = std::mem::take(&mut self.open_send[slave]);
            self.push_span(SpanKind::Send, task, slave, s.start, now, delivered);
        }
        if !delivered {
            self.markers.push(Marker {
                kind: MarkerKind::TaskLost,
                task,
                slave,
                at: now,
            });
        }
    }

    fn compute_start(&mut self, now: f64, task: usize, slave: usize) {
        self.ensure(slave);
        self.observe(now);
        self.open_compute[slave] = OpenSlot {
            task,
            start: now,
            open: true,
        };
    }

    fn compute_complete(&mut self, now: f64, task: usize, slave: usize) {
        self.ensure(slave);
        self.observe(now);
        if self.open_compute[slave].open && self.open_compute[slave].task == task {
            let s = std::mem::take(&mut self.open_compute[slave]);
            self.push_span(SpanKind::Compute, task, slave, s.start, now, true);
        }
    }

    fn slave_failed(&mut self, now: f64, slave: usize) {
        self.ensure(slave);
        self.observe(now);
        self.down_since[slave] = OpenSlot {
            task: usize::MAX,
            start: now,
            open: true,
        };
        self.markers.push(Marker {
            kind: MarkerKind::Fail,
            task: usize::MAX,
            slave,
            at: now,
        });
    }

    fn slave_recovered(&mut self, now: f64, slave: usize) {
        self.ensure(slave);
        self.observe(now);
        if self.down_since[slave].open {
            let s = std::mem::take(&mut self.down_since[slave]);
            self.push_span(SpanKind::Down, usize::MAX, slave, s.start, now, true);
        }
        self.markers.push(Marker {
            kind: MarkerKind::Recover,
            task: usize::MAX,
            slave,
            at: now,
        });
    }

    fn task_lost(&mut self, now: f64, task: usize, slave: usize) {
        self.ensure(slave);
        self.observe(now);
        // The lost task re-enters the master's pending queue.
        self.queue_depth += 1;
        self.sample_queue(now);
        // A failure kills whatever the lost task was doing on the slave:
        // close its computation (if it was computing) or its in-flight
        // transfer (if the port gamble was aborted) as incomplete.
        if self.open_compute[slave].open && self.open_compute[slave].task == task {
            let s = std::mem::take(&mut self.open_compute[slave]);
            self.push_span(SpanKind::Compute, task, slave, s.start, now, false);
        }
        if self.open_send[slave].open && self.open_send[slave].task == task {
            let s = std::mem::take(&mut self.open_send[slave]);
            self.push_span(SpanKind::Send, task, slave, s.start, now, false);
        }
        self.markers.push(Marker {
            kind: MarkerKind::TaskLost,
            task,
            slave,
            at: now,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_send_compute_lifecycle() {
        let mut r = TraceRecorder::new();
        r.send_start(0.0, 0, 1);
        r.send_complete(0.5, 0, 1, true);
        r.compute_start(0.5, 0, 1);
        r.compute_complete(2.5, 0, 1);
        r.finalize(2.5);
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].kind, SpanKind::Send);
        assert_eq!(r.spans[1].kind, SpanKind::Compute);
        assert!(r.spans.iter().all(|s| s.completed));
        assert_eq!(r.end_time(), 2.5);
    }

    #[test]
    fn failure_closes_compute_and_opens_downtime() {
        let mut r = TraceRecorder::new();
        r.send_start(0.0, 7, 0);
        r.send_complete(1.0, 7, 0, true);
        r.compute_start(1.0, 7, 0);
        r.slave_failed(1.5, 0);
        r.task_lost(1.5, 7, 0);
        r.slave_recovered(3.0, 0);
        r.finalize(4.0);
        let kinds: Vec<SpanKind> = r.spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::Down));
        let compute = r
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Compute)
            .unwrap();
        assert!(!compute.completed);
        assert_eq!(compute.end, 1.5);
        assert_eq!(r.markers.len(), 3); // fail, task lost, recover
    }

    #[test]
    fn lost_on_arrival_send_is_marked() {
        let mut r = TraceRecorder::new();
        r.slave_failed(0.0, 2);
        r.send_start(0.1, 3, 2);
        r.send_complete(0.6, 3, 2, false);
        r.finalize(1.0);
        let send = r.spans.iter().find(|s| s.kind == SpanKind::Send).unwrap();
        assert!(!send.completed);
        assert!(r
            .markers
            .iter()
            .any(|m| m.kind == MarkerKind::TaskLost && m.task == 3));
    }

    #[test]
    fn queue_and_inflight_counters_track_hooks() {
        let mut r = TraceRecorder::new();
        r.task_released(0.0, 0);
        r.task_released(0.0, 1);
        r.send_start(0.5, 0, 1);
        r.send_complete(1.0, 0, 1, true);
        r.slave_failed(1.2, 1);
        r.task_lost(1.2, 0, 1);
        r.finalize(2.0);
        // Depth: 1, 2 (releases), 1 (send), 2 (loss re-release).
        let depths: Vec<u64> = r.queue_samples.iter().map(|&(_, d)| d).collect();
        assert_eq!(depths, [1, 2, 1, 2]);
        // In-flight: 1 at send start, 0 at completion.
        let sends: Vec<u64> = r.inflight_samples.iter().map(|&(_, n)| n).collect();
        assert_eq!(sends, [1, 0]);
        let s = r.to_chrome("run", 1e6).render();
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("master queue depth"));
        assert!(s.contains("in-flight sends"));
        assert!(s.contains("\"args\":{\"depth\":2}"));
    }

    #[test]
    fn chrome_export_has_tracks_and_markers() {
        let mut r = TraceRecorder::new();
        r.send_start(0.0, 0, 1);
        r.send_complete(0.5, 0, 1, true);
        r.compute_start(0.5, 0, 1);
        r.slave_failed(0.7, 1);
        r.task_lost(0.7, 0, 1);
        r.finalize(1.0);
        let t = r.to_chrome("run", 1e6);
        let s = t.render();
        assert!(s.contains("P1 send"));
        assert!(s.contains("P1 compute"));
        assert!(s.contains("P1 state"));
        assert!(s.contains("compute task 0 (killed)"));
        assert!(s.contains("\"ph\":\"i\""));
    }
}
