//! Per-run event counters: a [`Probe`] that tallies every engine boundary.

use crate::probe::Probe;

/// Event counts of one (or several merged) simulation runs.
///
/// A plain field-per-kind tally — incrementing is a single add, so counting
/// a run costs a few percent, not a reshape of the hot path. Counters from
/// per-worker probes [`merge`](RunCounters::merge) associatively, so
/// parallel sweeps aggregate thread-locally and combine at join without
/// ordering sensitivity.
///
/// # Examples
/// ```
/// use mss_obs::{Probe, RunCounters};
///
/// let mut c = RunCounters::default();
/// // The engine drives the hooks; shown here by hand:
/// c.send_start(0.0, 0, 1);
/// c.send_complete(0.3, 0, 1, true);
/// c.compute_start(0.3, 0, 1);
/// c.compute_complete(1.3, 0, 1);
/// c.callback(1.3);
/// c.callback_elided(1.3);
/// assert_eq!(c.sends_started, 1);
/// assert_eq!(c.events(), 4);
/// assert_eq!(c.elided_callback_ratio(), 0.5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Sends that started occupying the port.
    pub sends_started: u64,
    /// Sends that released the port with the task delivered.
    pub sends_delivered: u64,
    /// Sends that released the port onto a failed slave (task lost on
    /// arrival).
    pub sends_lost: u64,
    /// Computations started.
    pub computes_started: u64,
    /// Computations completed.
    pub computes_completed: u64,
    /// Scheduler callbacks delivered.
    pub callbacks: u64,
    /// Scheduler callbacks elided under the `poll_driven` contract.
    pub callbacks_elided: u64,
    /// Cached slave views recomputed from scratch.
    pub view_recomputes: u64,
    /// Learned-estimate observations absorbed (sub-clairvoyant tiers only).
    pub estimator_updates: u64,
    /// Slave failures applied.
    pub failures: u64,
    /// Slave recoveries applied.
    pub recoveries: u64,
    /// Tasks lost to failures and re-released.
    pub tasks_lost: u64,
    /// Runs aborted on an exhausted step budget.
    pub budget_aborts: u64,
}

impl RunCounters {
    /// A zeroed tally.
    pub fn new() -> Self {
        RunCounters::default()
    }

    /// Total *engine events* counted: sends and computes at both boundaries,
    /// plus platform failures/recoveries. (Callbacks, view recomputes and
    /// estimator updates are engine *work*, not events, and are excluded.)
    pub fn events(&self) -> u64 {
        self.sends_started
            + self.sends_delivered
            + self.sends_lost
            + self.computes_started
            + self.computes_completed
            + self.failures
            + self.recoveries
    }

    /// Fraction of scheduler callbacks the `poll_driven` contract elided:
    /// `elided / (delivered + elided)`, `0.0` when no callbacks occurred.
    pub fn elided_callback_ratio(&self) -> f64 {
        let total = self.callbacks + self.callbacks_elided;
        if total == 0 {
            0.0
        } else {
            self.callbacks_elided as f64 / total as f64
        }
    }

    /// Adds another tally into this one (associative and commutative — the
    /// merge order of per-worker counters cannot change the total).
    pub fn merge(&mut self, other: &RunCounters) {
        self.sends_started += other.sends_started;
        self.sends_delivered += other.sends_delivered;
        self.sends_lost += other.sends_lost;
        self.computes_started += other.computes_started;
        self.computes_completed += other.computes_completed;
        self.callbacks += other.callbacks;
        self.callbacks_elided += other.callbacks_elided;
        self.view_recomputes += other.view_recomputes;
        self.estimator_updates += other.estimator_updates;
        self.failures += other.failures;
        self.recoveries += other.recoveries;
        self.tasks_lost += other.tasks_lost;
        self.budget_aborts += other.budget_aborts;
    }
}

impl Probe for RunCounters {
    fn send_start(&mut self, _now: f64, _task: usize, _slave: usize) {
        self.sends_started += 1;
    }
    fn send_complete(&mut self, _now: f64, _task: usize, _slave: usize, delivered: bool) {
        if delivered {
            self.sends_delivered += 1;
        } else {
            self.sends_lost += 1;
        }
    }
    fn compute_start(&mut self, _now: f64, _task: usize, _slave: usize) {
        self.computes_started += 1;
    }
    fn compute_complete(&mut self, _now: f64, _task: usize, _slave: usize) {
        self.computes_completed += 1;
    }
    fn callback(&mut self, _now: f64) {
        self.callbacks += 1;
    }
    fn callback_elided(&mut self, _now: f64) {
        self.callbacks_elided += 1;
    }
    fn view_recompute(&mut self, _now: f64, _slave: usize) {
        self.view_recomputes += 1;
    }
    fn estimator_update(&mut self, _now: f64, _slave: usize) {
        self.estimator_updates += 1;
    }
    fn slave_failed(&mut self, _now: f64, _slave: usize) {
        self.failures += 1;
    }
    fn slave_recovered(&mut self, _now: f64, _slave: usize) {
        self.recoveries += 1;
    }
    fn task_lost(&mut self, _now: f64, _task: usize, _slave: usize) {
        self.tasks_lost += 1;
    }
    fn budget_abort(&mut self, _now: f64, _steps: u64) {
        self.budget_aborts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ratios() {
        let mut c = RunCounters::new();
        c.send_start(0.0, 0, 0);
        c.send_complete(1.0, 0, 0, true);
        c.send_start(1.0, 1, 1);
        c.send_complete(2.0, 1, 1, false);
        c.compute_start(1.0, 0, 0);
        c.compute_complete(3.0, 0, 0);
        c.callback(1.0);
        c.callback(2.0);
        c.callback_elided(3.0);
        c.slave_failed(2.0, 1);
        c.task_lost(2.0, 1, 1);
        c.slave_recovered(4.0, 1);
        assert_eq!(c.sends_started, 2);
        assert_eq!(c.sends_delivered, 1);
        assert_eq!(c.sends_lost, 1);
        assert_eq!(c.events(), 2 + 1 + 1 + 1 + 1 + 1 + 1);
        assert!((c.elided_callback_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = RunCounters::new();
        a.callback(0.0);
        a.send_start(0.0, 0, 0);
        let mut b = RunCounters::new();
        b.callback_elided(0.0);
        b.view_recompute(0.0, 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.callbacks, 1);
        assert_eq!(ab.callbacks_elided, 1);
        assert_eq!(ab.view_recomputes, 1);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(RunCounters::new().elided_callback_ratio(), 0.0);
    }
}
