//! `ScenarioSpec` — the declarative description of a dynamic platform.

use crate::generators;
use mss_sim::{PlatformEvent, PlatformEventKind, SlaveId, Time, Timeline};

/// A malformed or uncompilable scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// One scripted platform event.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventSpec {
    /// When the event fires (seconds).
    pub at: f64,
    /// Zero-based slave index.
    pub slave: usize,
    /// `"fail"`, `"recover"`, `"link"` (set link factor), or `"speed"`
    /// (set speed factor).
    pub kind: String,
    /// Required for `link`/`speed`: the factor on the nominal `c_j`/`p_j`.
    pub factor: Option<f64>,
}

/// One event generator, expanded over the scenario horizon.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GeneratorSpec {
    /// `"poisson-failures"`, `"maintenance"`, `"speed-drift"`, or
    /// `"link-drift"`.
    pub kind: String,
    /// Zero-based slave indices the generator applies to (default: all).
    pub slaves: Option<Vec<usize>>,
    /// Poisson failures: mean time between failures while up (seconds).
    pub mtbf: Option<f64>,
    /// Poisson failures: repair distribution, `"exp"` (default) or
    /// `"weibull"`.
    pub repair: Option<String>,
    /// Poisson failures, `exp` repair: mean repair time (seconds).
    pub repair_mean: Option<f64>,
    /// Poisson failures, `weibull` repair: scale parameter (seconds).
    pub repair_scale: Option<f64>,
    /// Poisson failures, `weibull` repair: shape parameter (`< 1` is
    /// heavy-tailed, `1` is exponential).
    pub shape: Option<f64>,
    /// Maintenance: window period (seconds, window-start to window-start).
    pub period: Option<f64>,
    /// Maintenance: window length (seconds); must be below `period`.
    pub duration: Option<f64>,
    /// Maintenance: start of the first window (default 0). Each slave is
    /// additionally shifted by `stagger ×` its index.
    pub offset: Option<f64>,
    /// Maintenance: per-slave extra offset so windows do not align
    /// (default: `period / num_slaves`, which keeps windows disjoint).
    pub stagger: Option<f64>,
    /// Drift: seconds between random-walk steps.
    pub step: Option<f64>,
    /// Drift: half-width of the uniform log-factor increment per step.
    pub sigma: Option<f64>,
    /// Drift: lower clamp on the factor (default 0.25).
    pub min_factor: Option<f64>,
    /// Drift: upper clamp on the factor (default 4.0).
    pub max_factor: Option<f64>,
}

/// The declarative scenario description (TOML/JSON schema of
/// `examples/failure_scenario.toml`).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Optional name, used in report labels.
    pub name: Option<String>,
    /// Master seed for every generator stream.
    pub seed: u64,
    /// Generators stop emitting at this time (required when `generators`
    /// is non-empty; scripted events may lie beyond it).
    pub horizon: Option<f64>,
    /// Never let the number of up slaves drop below this (default 1):
    /// failure events that would violate it are dropped at compile time,
    /// together with their paired recovery. `0` allows full blackouts.
    pub min_up: Option<usize>,
    /// Scripted one-off events.
    pub events: Option<Vec<EventSpec>>,
    /// Event generators.
    pub generators: Option<Vec<GeneratorSpec>>,
}

impl ScenarioSpec {
    /// The empty (static-platform) scenario.
    pub fn static_spec() -> Self {
        ScenarioSpec {
            name: None,
            seed: 0,
            horizon: None,
            min_up: None,
            events: None,
            generators: None,
        }
    }

    /// `true` iff the scenario contains no event source (compiles to the
    /// empty timeline for every platform).
    pub fn is_static(&self) -> bool {
        self.events.as_ref().is_none_or(Vec::is_empty)
            && self.generators.as_ref().is_none_or(Vec::is_empty)
    }

    /// Short label for report rows.
    pub fn label(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        if self.is_static() {
            return "static".into();
        }
        let n_events = self.events.as_ref().map_or(0, Vec::len);
        let kinds: Vec<&str> = self
            .generators
            .iter()
            .flatten()
            .map(|g| g.kind.as_str())
            .collect();
        if kinds.is_empty() {
            format!("scripted({n_events})")
        } else {
            format!("{}(seed={})", kinds.join("+"), self.seed)
        }
    }

    fn scripted_events(&self, num_slaves: usize) -> Result<Vec<PlatformEvent>, ScenarioError> {
        let mut out = Vec::new();
        for (i, e) in self.events.iter().flatten().enumerate() {
            if e.slave >= num_slaves {
                return Err(ScenarioError(format!(
                    "event {i}: slave index {} out of range (platform has {num_slaves} slaves)",
                    e.slave
                )));
            }
            if !(e.at.is_finite() && e.at >= 0.0) {
                return Err(ScenarioError(format!("event {i}: invalid time {}", e.at)));
            }
            let kind = match e.kind.to_ascii_lowercase().as_str() {
                "fail" => PlatformEventKind::Fail,
                "recover" => PlatformEventKind::Recover,
                "link" | "speed" => {
                    let f = e.factor.ok_or_else(|| {
                        ScenarioError(format!("event {i}: `{}` requires `factor`", e.kind))
                    })?;
                    if !(f.is_finite() && f > 0.0) {
                        return Err(ScenarioError(format!("event {i}: invalid factor {f}")));
                    }
                    if e.kind.eq_ignore_ascii_case("link") {
                        PlatformEventKind::SetLinkFactor(f)
                    } else {
                        PlatformEventKind::SetSpeedFactor(f)
                    }
                }
                other => {
                    return Err(ScenarioError(format!(
                        "event {i}: unknown kind `{other}` (fail, recover, link, speed)"
                    )))
                }
            };
            out.push(PlatformEvent {
                time: Time::new(e.at),
                slave: SlaveId(e.slave),
                kind,
            });
        }
        Ok(out)
    }

    /// Checks the platform-independent structure: generator kinds and
    /// their required parameters, the horizon (required with generators),
    /// and scripted event kinds/factors. Slave indices are checked against
    /// the platform at [`ScenarioSpec::compile`] time.
    ///
    /// `compile` calls this first; spec loaders call it eagerly so a
    /// malformed generator fails at parse time with a located error rather
    /// than mid-sweep in a worker thread (or only for the seeds that
    /// happen to reach the malformed parameter).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let gens: &[GeneratorSpec] = self.generators.as_deref().unwrap_or(&[]);
        if !gens.is_empty() {
            let horizon = self.horizon.ok_or_else(|| {
                ScenarioError("`horizon` is required when generators are present".into())
            })?;
            if !(horizon.is_finite() && horizon > 0.0) {
                return Err(ScenarioError(format!("invalid horizon {horizon}")));
            }
            for (gi, g) in gens.iter().enumerate() {
                generators::validate(g, gi)?;
            }
        }
        // Kind/factor validity of scripted events (slave range is
        // platform-dependent): compile against an unbounded platform.
        self.scripted_events(usize::MAX).map(|_| ())
    }

    /// Compiles the scenario for a platform of `num_slaves` slaves into the
    /// timeline the engine consumes.
    ///
    /// A pure function of `(self, num_slaves)` — see the crate docs for the
    /// determinism contract.
    ///
    /// `min_up` is enforced as a *state filter* over the merged,
    /// time-sorted stream: a failure that would drop the number of up
    /// slaves below the floor is dropped, a recovery is kept exactly when
    /// the slave is effectively down, and redundant events are dropped. A
    /// recovery from *any* source therefore brings a slave back (kept
    /// failures are never left stranded); when failure windows from
    /// different sources overlap on one slave, the downtime ends at the
    /// earliest recovery after the kept failure.
    pub fn compile(&self, num_slaves: usize) -> Result<Timeline, ScenarioError> {
        if num_slaves == 0 {
            return Err(ScenarioError("platform has no slaves".into()));
        }
        self.validate()?;
        let mut events = self.scripted_events(num_slaves)?;

        let gens: &[GeneratorSpec] = self.generators.as_deref().unwrap_or(&[]);
        if !gens.is_empty() {
            let horizon = self.horizon.expect("validated above");
            for (gi, g) in gens.iter().enumerate() {
                events.extend(generators::expand(g, gi, self.seed, num_slaves, horizon)?);
            }
        }

        // Stable sort by time (insertion order breaks ties), then the
        // min_up state filter described above.
        events.sort_by_key(|e| e.time);
        let min_up = self.min_up.unwrap_or(1).min(num_slaves);
        let mut up_count = num_slaves;
        let mut down = vec![false; num_slaves];
        let mut kept = Vec::with_capacity(events.len());
        for e in events {
            let j = e.slave.0;
            match e.kind {
                PlatformEventKind::Fail => {
                    if down[j] || up_count <= min_up {
                        continue; // redundant, or would sink below the floor
                    }
                    down[j] = true;
                    up_count -= 1;
                    kept.push(e);
                }
                PlatformEventKind::Recover => {
                    if !down[j] {
                        continue; // redundant, or pairs a dropped failure
                    }
                    down[j] = false;
                    up_count += 1;
                    kept.push(e);
                }
                _ => kept.push(e),
            }
        }
        Ok(Timeline::new(kept))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_spec_compiles_to_empty_timeline() {
        let spec = ScenarioSpec::static_spec();
        assert!(spec.is_static());
        assert_eq!(spec.compile(5).unwrap(), Timeline::EMPTY);
        assert_eq!(spec.label(), "static");
    }

    #[test]
    fn scripted_events_compile_in_order() {
        let spec = ScenarioSpec {
            events: Some(vec![
                EventSpec {
                    at: 10.0,
                    slave: 1,
                    kind: "recover".into(),
                    factor: None,
                },
                EventSpec {
                    at: 5.0,
                    slave: 1,
                    kind: "fail".into(),
                    factor: None,
                },
                EventSpec {
                    at: 2.0,
                    slave: 0,
                    kind: "speed".into(),
                    factor: Some(2.0),
                },
            ]),
            ..ScenarioSpec::static_spec()
        };
        let tl = spec.compile(2).unwrap();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.events()[0].kind, PlatformEventKind::SetSpeedFactor(2.0));
        assert_eq!(tl.events()[1].kind, PlatformEventKind::Fail);
        assert_eq!(tl.events()[2].kind, PlatformEventKind::Recover);
    }

    #[test]
    fn rejects_bad_scripted_events() {
        let mut spec = ScenarioSpec::static_spec();
        spec.events = Some(vec![EventSpec {
            at: 1.0,
            slave: 7,
            kind: "fail".into(),
            factor: None,
        }]);
        assert!(spec.compile(2).is_err());

        spec.events = Some(vec![EventSpec {
            at: 1.0,
            slave: 0,
            kind: "melt".into(),
            factor: None,
        }]);
        assert!(spec.compile(2).is_err());

        spec.events = Some(vec![EventSpec {
            at: 1.0,
            slave: 0,
            kind: "speed".into(),
            factor: None, // missing
        }]);
        assert!(spec.compile(2).is_err());
    }

    #[test]
    fn generators_require_horizon() {
        let spec = ScenarioSpec {
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(10.0),
                repair_mean: Some(2.0),
                ..GeneratorSpec::default()
            }]),
            ..ScenarioSpec::static_spec()
        };
        let err = spec.compile(3).unwrap_err();
        assert!(err.0.contains("horizon"), "{err}");
    }

    #[test]
    fn min_up_is_enforced() {
        // Script a simultaneous blackout of both slaves; min_up = 1 must
        // keep one alive (the second failure and its recovery are dropped).
        let spec = ScenarioSpec {
            min_up: Some(1),
            events: Some(vec![
                EventSpec {
                    at: 1.0,
                    slave: 0,
                    kind: "fail".into(),
                    factor: None,
                },
                EventSpec {
                    at: 1.0,
                    slave: 1,
                    kind: "fail".into(),
                    factor: None,
                },
                EventSpec {
                    at: 2.0,
                    slave: 0,
                    kind: "recover".into(),
                    factor: None,
                },
                EventSpec {
                    at: 2.0,
                    slave: 1,
                    kind: "recover".into(),
                    factor: None,
                },
            ]),
            ..ScenarioSpec::static_spec()
        };
        let tl = spec.compile(2).unwrap();
        assert_eq!(tl.len(), 2);
        assert!(
            tl.events().iter().all(|e| e.slave == SlaveId(0)),
            "{:?}",
            tl.events()
        );

        // min_up = 0 keeps the full blackout.
        let mut blackout = spec.clone();
        blackout.min_up = Some(0);
        assert_eq!(blackout.compile(2).unwrap().len(), 4);
    }

    #[test]
    fn min_up_never_strands_a_kept_failure() {
        // Interleaved sources on one slave: P1 is busy failing [40, 55];
        // P2's first failure (at 50) is dropped by min_up = 1, and its
        // recovery at 80 must NOT be consumed in place of the kept
        // failure's own recovery: P2's kept window is [60, 70].
        let ev = |at: f64, slave: usize, kind: &str| EventSpec {
            at,
            slave,
            kind: kind.into(),
            factor: None,
        };
        let spec = ScenarioSpec {
            min_up: Some(1),
            events: Some(vec![
                ev(40.0, 0, "fail"),
                ev(55.0, 0, "recover"),
                ev(50.0, 1, "fail"),    // dropped: would leave zero up
                ev(80.0, 1, "recover"), // pairs the dropped failure
                ev(60.0, 1, "fail"),    // kept: P1 is back by then
                ev(70.0, 1, "recover"), // must end the kept window
            ]),
            ..ScenarioSpec::static_spec()
        };
        let tl = spec.compile(2).unwrap();
        let downs = tl.downtime_intervals(2, 100.0);
        assert_eq!(downs[0], vec![(40.0, 55.0)]);
        assert_eq!(downs[1], vec![(60.0, 70.0)]);
        // Kept fail/recover events strictly alternate per slave.
        for j in 0..2 {
            let kinds: Vec<_> = tl
                .events()
                .iter()
                .filter(|e| e.slave.0 == j)
                .map(|e| e.kind)
                .collect();
            for (i, k) in kinds.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    PlatformEventKind::Fail
                } else {
                    PlatformEventKind::Recover
                };
                assert_eq!(*k, expect, "slave {j} event {i}");
            }
        }
    }

    #[test]
    fn validate_catches_structural_errors_without_a_platform() {
        // Missing horizon with generators.
        let spec = ScenarioSpec {
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(10.0),
                repair_mean: Some(2.0),
                ..GeneratorSpec::default()
            }]),
            ..ScenarioSpec::static_spec()
        };
        assert!(spec.validate().unwrap_err().0.contains("horizon"));

        // Repair typo is caught unconditionally, not only for the seeds
        // that happen to draw a failure before the horizon.
        let rare = ScenarioSpec {
            horizon: Some(100.0),
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(1e9), // essentially never fires
                repair: Some("weibul".into()),
                ..GeneratorSpec::default()
            }]),
            ..ScenarioSpec::static_spec()
        };
        let err = rare.validate().unwrap_err();
        assert!(err.0.contains("weibul"), "{err}");
        assert!(rare.compile(3).is_err(), "compile validates too");

        // A valid spec validates.
        assert!(ScenarioSpec::static_spec().validate().is_ok());
    }

    #[test]
    fn round_trips_through_json() {
        let spec = ScenarioSpec {
            name: Some("unit".into()),
            seed: 9,
            horizon: Some(100.0),
            min_up: Some(1),
            events: Some(vec![EventSpec {
                at: 3.0,
                slave: 0,
                kind: "fail".into(),
                factor: None,
            }]),
            generators: Some(vec![GeneratorSpec {
                kind: "maintenance".into(),
                period: Some(50.0),
                duration: Some(5.0),
                ..GeneratorSpec::default()
            }]),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
