//! Generator expansion: Poisson failures, maintenance windows, drift walks.
//!
//! Each `(generator, slave)` pair draws from its own RNG stream derived
//! from the scenario seed and both indices, so streams never interfere:
//! adding a generator, or growing the platform, leaves every other stream's
//! draws untouched. Expansion is therefore a pure function of
//! `(spec, generator index, seed, num_slaves, horizon)`.

use crate::spec::{GeneratorSpec, ScenarioError};
use mss_sim::{PlatformEvent, PlatformEventKind, SlaveId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// splitmix64 finalizer — decorrelates the per-stream seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn stream_rng(seed: u64, generator: usize, slave: usize) -> StdRng {
    StdRng::seed_from_u64(mix(seed
        ^ (generator as u64).wrapping_mul(0x9e37_79b9)
        ^ (slave as u64).rotate_left(32)))
}

/// Exponential draw with the given mean (inverse CDF).
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Weibull draw (inverse CDF): `scale · (−ln u)^(1/shape)`.
fn weibull(rng: &mut StdRng, scale: f64, shape: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    scale * (-u.ln()).powf(1.0 / shape)
}

fn positive(value: Option<f64>, name: &str, gi: usize, kind: &str) -> Result<f64, ScenarioError> {
    match value {
        Some(v) if v.is_finite() && v > 0.0 => Ok(v),
        Some(v) => Err(ScenarioError(format!(
            "generator {gi} (`{kind}`): `{name}` must be positive and finite, got {v}"
        ))),
        None => Err(ScenarioError(format!(
            "generator {gi} (`{kind}`): missing required `{name}`"
        ))),
    }
}

/// The slaves a generator targets (validated against the platform size).
fn target_slaves(
    g: &GeneratorSpec,
    gi: usize,
    num_slaves: usize,
) -> Result<Vec<usize>, ScenarioError> {
    match &g.slaves {
        None => Ok((0..num_slaves).collect()),
        Some(list) => {
            for &j in list {
                if j >= num_slaves {
                    return Err(ScenarioError(format!(
                        "generator {gi}: slave index {j} out of range \
                         (platform has {num_slaves} slaves)"
                    )));
                }
            }
            Ok(list.clone())
        }
    }
}

/// Validates a generator's kind and required parameters unconditionally —
/// unlike `expand`, whose repair-parameter checks only run when a failure
/// is actually drawn, this catches malformed specs for every seed.
pub(crate) fn validate(g: &GeneratorSpec, gi: usize) -> Result<(), ScenarioError> {
    let kind = g.kind.to_ascii_lowercase();
    match kind.as_str() {
        "poisson-failures" => {
            positive(g.mtbf, "mtbf", gi, &kind)?;
            match g.repair.as_deref().unwrap_or("exp") {
                "exp" => {
                    positive(g.repair_mean, "repair_mean", gi, &kind)?;
                }
                "weibull" => {
                    positive(g.repair_scale, "repair_scale", gi, &kind)?;
                    positive(g.shape, "shape", gi, &kind)?;
                }
                other => {
                    return Err(ScenarioError(format!(
                        "generator {gi}: unknown repair distribution `{other}` (exp, weibull)"
                    )))
                }
            }
        }
        "maintenance" => {
            let period = positive(g.period, "period", gi, &kind)?;
            let duration = positive(g.duration, "duration", gi, &kind)?;
            if duration >= period {
                return Err(ScenarioError(format!(
                    "generator {gi}: maintenance `duration` {duration} must be \
                     below `period` {period}"
                )));
            }
        }
        "speed-drift" | "link-drift" => {
            positive(g.step, "step", gi, &kind)?;
            positive(g.sigma, "sigma", gi, &kind)?;
            let min_factor = g.min_factor.unwrap_or(0.25);
            let max_factor = g.max_factor.unwrap_or(4.0);
            if !(min_factor > 0.0 && min_factor <= max_factor && max_factor.is_finite()) {
                return Err(ScenarioError(format!(
                    "generator {gi}: invalid factor clamps [{min_factor}, {max_factor}]"
                )));
            }
        }
        other => {
            return Err(ScenarioError(format!(
                "generator {gi}: unknown kind `{other}` (poisson-failures, \
                 maintenance, speed-drift, link-drift)"
            )))
        }
    }
    Ok(())
}

/// Expands one generator over `[0, horizon]`. Callers run [`validate`]
/// first (via `ScenarioSpec::validate`), so the parameter errors below are
/// defensive only.
pub(crate) fn expand(
    g: &GeneratorSpec,
    gi: usize,
    seed: u64,
    num_slaves: usize,
    horizon: f64,
) -> Result<Vec<PlatformEvent>, ScenarioError> {
    let kind = g.kind.to_ascii_lowercase();
    let slaves = target_slaves(g, gi, num_slaves)?;
    let mut out = Vec::new();
    match kind.as_str() {
        "poisson-failures" => {
            let mtbf = positive(g.mtbf, "mtbf", gi, &kind)?;
            let repair = g.repair.as_deref().unwrap_or("exp");
            for &j in &slaves {
                let mut rng = stream_rng(seed, gi, j);
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, mtbf);
                    if t >= horizon {
                        break;
                    }
                    out.push(fail(t, j));
                    let r = match repair {
                        "exp" => exponential(
                            &mut rng,
                            positive(g.repair_mean, "repair_mean", gi, &kind)?,
                        ),
                        "weibull" => weibull(
                            &mut rng,
                            positive(g.repair_scale, "repair_scale", gi, &kind)?,
                            positive(g.shape, "shape", gi, &kind)?,
                        ),
                        other => {
                            return Err(ScenarioError(format!(
                                "generator {gi}: unknown repair distribution `{other}` \
                                 (exp, weibull)"
                            )))
                        }
                    };
                    t += r;
                    if t < horizon {
                        out.push(recover(t, j));
                    } else {
                        break; // down past the horizon: stays down
                    }
                }
            }
        }
        "maintenance" => {
            let period = positive(g.period, "period", gi, &kind)?;
            let duration = positive(g.duration, "duration", gi, &kind)?;
            if duration >= period {
                return Err(ScenarioError(format!(
                    "generator {gi}: maintenance `duration` {duration} must be \
                     below `period` {period}"
                )));
            }
            let offset = g.offset.unwrap_or(0.0);
            let stagger = g.stagger.unwrap_or(period / num_slaves as f64);
            for &j in &slaves {
                let mut start = offset + stagger * j as f64;
                while start < horizon {
                    out.push(fail(start, j));
                    let end = start + duration;
                    if end < horizon {
                        out.push(recover(end, j));
                    }
                    start += period;
                }
            }
        }
        "speed-drift" | "link-drift" => {
            let step = positive(g.step, "step", gi, &kind)?;
            let sigma = positive(g.sigma, "sigma", gi, &kind)?;
            let min_factor = g.min_factor.unwrap_or(0.25);
            let max_factor = g.max_factor.unwrap_or(4.0);
            if !(min_factor > 0.0 && min_factor <= max_factor && max_factor.is_finite()) {
                return Err(ScenarioError(format!(
                    "generator {gi}: invalid factor clamps [{min_factor}, {max_factor}]"
                )));
            }
            for &j in &slaves {
                let mut rng = stream_rng(seed, gi, j);
                let mut log_f = 0.0f64;
                let mut t = step;
                while t < horizon {
                    log_f += rng.gen_range(-sigma..=sigma);
                    let f = log_f.exp().clamp(min_factor, max_factor);
                    let ev = if kind == "speed-drift" {
                        PlatformEventKind::SetSpeedFactor(f)
                    } else {
                        PlatformEventKind::SetLinkFactor(f)
                    };
                    out.push(PlatformEvent {
                        time: Time::new(t),
                        slave: SlaveId(j),
                        kind: ev,
                    });
                    t += step;
                }
            }
        }
        other => {
            return Err(ScenarioError(format!(
                "generator {gi}: unknown kind `{other}` (poisson-failures, \
                 maintenance, speed-drift, link-drift)"
            )))
        }
    }
    Ok(out)
}

fn fail(t: f64, j: usize) -> PlatformEvent {
    PlatformEvent {
        time: Time::new(t),
        slave: SlaveId(j),
        kind: PlatformEventKind::Fail,
    }
}

fn recover(t: f64, j: usize) -> PlatformEvent {
    PlatformEvent {
        time: Time::new(t),
        slave: SlaveId(j),
        kind: PlatformEventKind::Recover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioSpec;

    fn poisson(seed: u64, mtbf: f64) -> ScenarioSpec {
        ScenarioSpec {
            seed,
            horizon: Some(1000.0),
            min_up: Some(1),
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(mtbf),
                repair_mean: Some(10.0),
                ..GeneratorSpec::default()
            }]),
            ..ScenarioSpec::static_spec()
        }
    }

    #[test]
    fn poisson_failures_alternate_and_are_deterministic() {
        let tl = poisson(42, 100.0).compile(4).unwrap();
        assert_eq!(tl, poisson(42, 100.0).compile(4).unwrap());
        assert!(!tl.is_empty(), "1000s at mtbf 100 should see failures");
        assert_ne!(tl, poisson(43, 100.0).compile(4).unwrap());
        // Per-slave alternation: fail, recover, fail, recover ...
        for j in 0..4 {
            let kinds: Vec<_> = tl
                .events()
                .iter()
                .filter(|e| e.slave == SlaveId(j))
                .map(|e| e.kind)
                .collect();
            for (i, k) in kinds.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    PlatformEventKind::Fail
                } else {
                    PlatformEventKind::Recover
                };
                assert_eq!(*k, expect, "slave {j} event {i}");
            }
        }
    }

    #[test]
    fn higher_rate_means_more_failures() {
        let calm = poisson(42, 500.0).compile(4).unwrap().len();
        let stormy = poisson(42, 50.0).compile(4).unwrap().len();
        assert!(stormy > calm, "{stormy} vs {calm}");
    }

    #[test]
    fn adding_a_slave_preserves_other_streams() {
        // min_up can drop different events on different platforms, so
        // compare the raw per-slave streams with enforcement disabled.
        let mut relaxed = poisson(42, 100.0);
        relaxed.min_up = Some(0);
        let raw4 = relaxed.compile(4).unwrap();
        let raw5 = relaxed.compile(5).unwrap();
        for j in 0..4 {
            let a: Vec<_> = raw4
                .events()
                .iter()
                .filter(|e| e.slave == SlaveId(j))
                .collect();
            let b: Vec<_> = raw5
                .events()
                .iter()
                .filter(|e| e.slave == SlaveId(j))
                .collect();
            assert_eq!(a, b, "slave {j} stream changed with platform size");
        }
    }

    #[test]
    fn weibull_repair_is_supported() {
        let spec = ScenarioSpec {
            seed: 7,
            horizon: Some(500.0),
            generators: Some(vec![GeneratorSpec {
                kind: "poisson-failures".into(),
                mtbf: Some(50.0),
                repair: Some("weibull".into()),
                repair_scale: Some(8.0),
                shape: Some(0.7),
                ..GeneratorSpec::default()
            }]),
            ..ScenarioSpec::static_spec()
        };
        let tl = spec.compile(3).unwrap();
        assert!(!tl.is_empty());
        // Missing Weibull parameters are a clear error.
        let mut broken = spec.clone();
        broken.generators.as_mut().unwrap()[0].repair_scale = None;
        assert!(broken.compile(3).unwrap_err().0.contains("repair_scale"));
    }

    #[test]
    fn maintenance_windows_are_periodic_and_staggered() {
        let spec = ScenarioSpec {
            seed: 0,
            horizon: Some(100.0),
            min_up: Some(0),
            generators: Some(vec![GeneratorSpec {
                kind: "maintenance".into(),
                period: Some(40.0),
                duration: Some(5.0),
                offset: Some(10.0),
                stagger: Some(20.0),
                ..GeneratorSpec::default()
            }]),
            ..ScenarioSpec::static_spec()
        };
        let tl = spec.compile(2).unwrap();
        let downs = tl.downtime_intervals(2, 100.0);
        assert_eq!(downs[0], vec![(10.0, 15.0), (50.0, 55.0), (90.0, 95.0)]);
        assert_eq!(downs[1], vec![(30.0, 35.0), (70.0, 75.0)]);
    }

    #[test]
    fn drift_emits_clamped_positive_factors() {
        let spec = ScenarioSpec {
            seed: 3,
            horizon: Some(200.0),
            generators: Some(vec![
                GeneratorSpec {
                    kind: "speed-drift".into(),
                    step: Some(10.0),
                    sigma: Some(0.5),
                    ..GeneratorSpec::default()
                },
                GeneratorSpec {
                    kind: "link-drift".into(),
                    step: Some(25.0),
                    sigma: Some(0.2),
                    min_factor: Some(0.5),
                    max_factor: Some(2.0),
                    ..GeneratorSpec::default()
                },
            ]),
            ..ScenarioSpec::static_spec()
        };
        let tl = spec.compile(3).unwrap();
        let mut speed = 0;
        let mut link = 0;
        for e in tl.events() {
            match e.kind {
                PlatformEventKind::SetSpeedFactor(f) => {
                    speed += 1;
                    assert!((0.25..=4.0).contains(&f));
                }
                PlatformEventKind::SetLinkFactor(f) => {
                    link += 1;
                    assert!((0.5..=2.0).contains(&f));
                }
                _ => panic!("unexpected event {e:?}"),
            }
        }
        // 19 steps × 3 slaves and 7 steps × 3 slaves.
        assert_eq!(speed, 19 * 3);
        assert_eq!(link, 7 * 3);
    }

    #[test]
    fn unknown_generator_kind_is_rejected() {
        let spec = ScenarioSpec {
            seed: 0,
            horizon: Some(10.0),
            generators: Some(vec![GeneratorSpec {
                kind: "solar-flares".into(),
                ..GeneratorSpec::default()
            }]),
            ..ScenarioSpec::static_spec()
        };
        assert!(spec.compile(2).unwrap_err().0.contains("solar-flares"));
    }
}
