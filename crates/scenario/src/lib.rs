//! # mss-scenario — deterministic dynamic-platform scenarios
//!
//! The paper (and the seed reproduction) models a *static* heterogeneous
//! platform: each slave's `(c_j, p_j)` is fixed for the whole run. Real
//! master-slave deployments see slaves crash, recover, and drift in speed —
//! the regime the speed-oblivious on-line scheduling literature treats as
//! the central difficulty. This crate describes such dynamics as data.
//!
//! ## The event-timeline model
//!
//! A [`ScenarioSpec`] — written programmatically or parsed from TOML/JSON
//! (see `examples/failure_scenario.toml`) — is *compiled* against a
//! platform size into an [`mss_sim::Timeline`]: a finite, time-ordered list
//! of platform events the engine consumes alongside the task events:
//!
//! * **`Fail`** — the slave goes down; queued and in-flight work on it is
//!   lost and re-enters the master's pending queue;
//! * **`Recover`** — the slave comes back up, empty;
//! * **`SetLinkFactor` / `SetSpeedFactor`** — the slave's effective
//!   `c_j` / `p_j` becomes `factor ×` nominal for operations starting from
//!   that instant.
//!
//! Events come from two sources that freely combine: **scripted** one-off
//! events ([`EventSpec`]) and **generators** ([`GeneratorSpec`]) — Poisson
//! failures with exponential or Weibull repair, periodic maintenance
//! windows, and random-walk link/speed drift — expanded over a bounded
//! `horizon`.
//!
//! ## The determinism contract
//!
//! Compilation is a pure function of `(spec, num_slaves)`: every generator
//! draws from its own RNG stream seeded from `spec.seed` and the generator
//! and slave indices, so adding a generator or a slave never perturbs the
//! other streams, and the same `(seed, spec)` compiles to the same timeline
//! on any thread count. Downstream, the engine processes timeline events in
//! `(time, insertion-seq)` order, so a fixed `(platform, tasks, spec,
//! scheduler)` quadruple replays bit-for-bit — adversary games and the
//! sweep cache rely on this. An **empty scenario compiles to the empty
//! timeline**, under which the engine is bit-identical to the static model.
//!
//! ```
//! use mss_scenario::{GeneratorSpec, ScenarioSpec};
//!
//! let spec = ScenarioSpec {
//!     horizon: Some(500.0),
//!     seed: 7,
//!     min_up: Some(1),
//!     generators: Some(vec![GeneratorSpec {
//!         kind: "poisson-failures".into(),
//!         mtbf: Some(120.0),
//!         repair_mean: Some(15.0),
//!         ..GeneratorSpec::default()
//!     }]),
//!     ..ScenarioSpec::static_spec()
//! };
//! let timeline = spec.compile(5).unwrap();
//! assert_eq!(timeline, spec.compile(5).unwrap()); // pure function
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generators;
mod spec;

pub use spec::{EventSpec, GeneratorSpec, ScenarioError, ScenarioSpec};
