//! The full Round-Robin configuration matrix: every (ordering × dispatch ×
//! buffer) combination must be a well-behaved scheduler, and the
//! configuration must be visible in the reported name (the ablation tables
//! key on it).

use mss_core::{
    bag_of_tasks, simulate, validate, Platform, RoundRobin, RrDispatch, RrOrder, SimConfig,
};

const ORDERS: [RrOrder; 3] = [RrOrder::SumCp, RrOrder::CommOnly, RrOrder::ProcOnly];
const DISPATCHES: [RrDispatch; 2] = [RrDispatch::Priority, RrDispatch::Cyclic];

fn platform() -> Platform {
    Platform::from_vectors(&[0.2, 0.6, 0.9], &[1.5, 3.0, 6.0])
}

#[test]
fn every_configuration_completes_and_validates() {
    let pf = platform();
    let tasks = bag_of_tasks(40);
    for order in ORDERS {
        for dispatch in DISPATCHES {
            for buffer in [0usize, 1, 3, 10] {
                let mut rr = RoundRobin::new(order, dispatch, buffer);
                let trace = simulate(&pf, &tasks, &SimConfig::default(), &mut rr)
                    .unwrap_or_else(|e| panic!("{order:?}/{dispatch:?}/B{buffer}: {e}"));
                let violations = validate(&trace, &pf);
                assert!(
                    violations.is_empty(),
                    "{order:?}/{dispatch:?}/B{buffer}: {violations:?}"
                );
                assert_eq!(trace.len(), tasks.len());
                // Buffer bound respected: at any send start, the target
                // slave has at most `buffer` other unfinished tasks whose
                // sends started earlier.
                for r in trace.records() {
                    let outstanding = trace
                        .records()
                        .iter()
                        .filter(|o| {
                            o.slave == r.slave
                                && o.task != r.task
                                && o.send_start < r.send_start
                                && o.compute_end.as_f64() > r.send_start.as_f64() + 1e-9
                        })
                        .count();
                    assert!(
                        outstanding <= buffer + 1,
                        "{order:?}/{dispatch:?}/B{buffer}: task {:?} sent with {outstanding} outstanding",
                        r.task
                    );
                }
            }
        }
    }
}

#[test]
fn every_configuration_is_deterministic() {
    let pf = platform();
    let tasks = bag_of_tasks(25);
    for order in ORDERS {
        for dispatch in DISPATCHES {
            let run = || {
                let mut rr = RoundRobin::new(order, dispatch, 1);
                simulate(&pf, &tasks, &SimConfig::default(), &mut rr).unwrap()
            };
            assert_eq!(run(), run(), "{order:?}/{dispatch:?}");
        }
    }
}

#[test]
fn names_encode_the_configuration() {
    use mss_sim::OnlineScheduler;
    assert_eq!(RoundRobin::rr().name(), "RR");
    assert_eq!(RoundRobin::rrc().name(), "RRC");
    assert_eq!(RoundRobin::rrp().name(), "RRP");
    assert_eq!(
        RoundRobin::new(RrOrder::SumCp, RrDispatch::Priority, 4).name(),
        "RR(B=4)"
    );
    assert_eq!(
        RoundRobin::new(RrOrder::CommOnly, RrDispatch::Cyclic, 1).name(),
        "RRC(cyclic,B=1)"
    );
}

#[test]
fn orders_differ_only_when_the_key_differs() {
    // On a platform where c-order and p-order coincide, RRC == RRP.
    let aligned = Platform::from_vectors(&[0.1, 0.5, 0.9], &[1.0, 3.0, 7.0]);
    let tasks = bag_of_tasks(30);
    let run = |mut s: RoundRobin, pf: &Platform| {
        simulate(pf, &tasks, &SimConfig::default(), &mut s).unwrap()
    };
    assert_eq!(
        run(RoundRobin::rrc(), &aligned),
        run(RoundRobin::rrp(), &aligned)
    );
    // On a platform where they anti-align, the traces must differ.
    let opposed = Platform::from_vectors(&[0.1, 0.5, 0.9], &[7.0, 3.0, 1.0]);
    assert_ne!(
        run(RoundRobin::rrc(), &opposed),
        run(RoundRobin::rrp(), &opposed)
    );
}
