//! The decision-kernel contract, property-tested end to end: every
//! kernel-backed heuristic produces **bit-identical traces** to its
//! linear-scan reference, across platform shapes, arrival patterns,
//! information tiers, fault/drift timelines, Redispatch wrapping, and
//! scheduler reuse across runs (the sweep regime).
//!
//! The tree is forced on with `with_tree_threshold(0)` so even tiny
//! random platforms exercise the incremental path rather than the
//! small-`m` scan fallback.

use mss_core::{
    simulate_with_events, Platform, PlatformEvent, PlatformEventKind, Redispatch, RoundRobin,
    SimConfig, Srpt, TaskArrival, Time, Timeline, Trace,
};
use mss_sim::{chunked_argmin, scan_argmin, InfoTier, OnlineScheduler, SlaveId};
use proptest::prelude::*;

fn arb_platform() -> impl Strategy<Value = Platform> {
    // 1..40 slaves spans both sides of every chunk boundary (8 lanes) and
    // forces non-trivial trees (padding leaves, single-leaf trees).
    proptest::collection::vec((0.01f64..2.0, 0.1f64..8.0), 1..40).prop_map(|specs| {
        let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
        Platform::from_vectors(&c, &p)
    })
}

fn arb_tasks() -> impl Strategy<Value = Vec<TaskArrival>> {
    proptest::collection::vec((0.0f64..25.0, 0.9f64..1.1, 0.9f64..1.1), 1..30).prop_map(|ts| {
        ts.into_iter()
            .map(|(r, sc, sp)| TaskArrival {
                release: Time::new(r),
                size_c: sc,
                size_p: sp,
            })
            .collect()
    })
}

fn arb_tier() -> impl Strategy<Value = InfoTier> {
    prop_oneof![
        Just(InfoTier::Clairvoyant),
        Just(InfoTier::SpeedOblivious),
        Just(InfoTier::NonClairvoyant),
    ]
}

/// One raw entry of a fault/drift plan; `kind_sel % 3` picks
/// crash-and-recover, link drift, or speed drift. The slave index is a
/// free selector, reduced modulo the platform size when the timeline is
/// materialized (the vendored proptest has no `prop_flat_map`, so the
/// plan cannot depend on the drawn platform).
type FaultPlanEntry = (u8, usize, f64, f64);

fn arb_fault_plan() -> impl Strategy<Value = Vec<FaultPlanEntry>> {
    proptest::collection::vec((0u8..3, 0usize..64, 0.0f64..30.0, 0.5f64..8.0), 0..4)
}

/// Materializes a plan against a concrete platform size. Crashes never
/// target slave 0 and always recover, so Redispatch-wrapped runs stay
/// live on any platform.
fn build_timeline(plan: &[FaultPlanEntry], m: usize) -> Timeline {
    let mut events = Vec::new();
    for &(kind_sel, slave_sel, t, x) in plan {
        match kind_sel % 3 {
            0 if m >= 2 => {
                let j = SlaveId(1 + slave_sel % (m - 1));
                events.push(PlatformEvent {
                    time: Time::new(t),
                    slave: j,
                    kind: PlatformEventKind::Fail,
                });
                events.push(PlatformEvent {
                    time: Time::new(t + x),
                    slave: j,
                    kind: PlatformEventKind::Recover,
                });
            }
            1 => events.push(PlatformEvent {
                time: Time::new(t),
                slave: SlaveId(slave_sel % m),
                kind: PlatformEventKind::SetLinkFactor(0.25 * x), // 0.125..2.0
            }),
            2 => events.push(PlatformEvent {
                time: Time::new(t),
                slave: SlaveId(slave_sel % m),
                kind: PlatformEventKind::SetSpeedFactor(0.25 * x),
            }),
            _ => {}
        }
    }
    Timeline::new(events)
}

/// The kernel-backed / scan-reference scheduler pairs under test. The
/// tree-indexable heuristics are forced onto the tree; the closure-key
/// heuristics (LS, SLJF, SLJFWC) share `chunked_argmin`, whose scan
/// equivalence is proven separately below.
fn kernel_scan_pairs() -> Vec<(Box<dyn OnlineScheduler>, Box<dyn OnlineScheduler>)> {
    vec![
        (
            Box::new(Srpt::new().with_tree_threshold(0)),
            Box::new(Srpt::scan_reference()),
        ),
        (
            Box::new(RoundRobin::rr().with_tree_threshold(0)),
            Box::new(RoundRobin::rr().with_scan_kernel()),
        ),
        (
            Box::new(RoundRobin::rrc().with_tree_threshold(0)),
            Box::new(RoundRobin::rrc().with_scan_kernel()),
        ),
        (
            Box::new(RoundRobin::rrp().with_tree_threshold(0)),
            Box::new(RoundRobin::rrp().with_scan_kernel()),
        ),
    ]
}

fn run(
    sched: &mut dyn OnlineScheduler,
    platform: &Platform,
    tasks: &[TaskArrival],
    timeline: &Timeline,
    tier: InfoTier,
) -> Result<Trace, mss_sim::SimError> {
    let cfg = SimConfig {
        horizon_hint: Some(tasks.len()),
        info: tier,
        ..SimConfig::default()
    };
    simulate_with_events(platform, tasks, &cfg, timeline, sched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chunked 8-lane argmin is the historical sequential scan, bit
    /// for bit, on arbitrary key arrays (duplicates, infinities, lane
    /// boundaries).
    #[test]
    fn chunked_argmin_is_scan_argmin(
        keys in proptest::collection::vec(
            prop_oneof![
                (0.0f64..100.0).prop_map(|k| (k * 4.0).floor()), // force duplicates
                Just(f64::INFINITY),
            ],
            0..70,
        ),
    ) {
        prop_assert_eq!(
            chunked_argmin(keys.len(), |j| keys[j]),
            scan_argmin(keys.len(), |j| keys[j]),
            "winner diverges on {keys:?}"
        );
    }

    /// Static platforms, every information tier: tree-backed decisions
    /// are trace-identical to the linear scan.
    #[test]
    fn kernel_matches_scan_static(
        platform in arb_platform(),
        tasks in arb_tasks(),
        tier in arb_tier(),
    ) {
        for (mut kernel, mut scan) in kernel_scan_pairs() {
            let a = run(kernel.as_mut(), &platform, &tasks, &Timeline::EMPTY, tier)
                .expect("kernel run completes");
            let b = run(scan.as_mut(), &platform, &tasks, &Timeline::EMPTY, tier)
                .expect("scan run completes");
            prop_assert_eq!(a, b, "{} diverged from its scan reference", kernel.name());
        }
    }

    /// Fault + drift timelines (Redispatch-wrapped for liveness): the
    /// kernel replays crash/recovery/drift invalidations from the touch
    /// journal and still matches the scan bit for bit.
    #[test]
    fn kernel_matches_scan_under_faults(
        platform in arb_platform(),
        plan in arb_fault_plan(),
        tasks in arb_tasks(),
        tier in arb_tier(),
    ) {
        let timeline = build_timeline(&plan, platform.num_slaves());
        for (kernel, scan) in kernel_scan_pairs() {
            let mut kernel = Redispatch::new(kernel);
            let mut scan = Redispatch::new(scan);
            let a = run(&mut kernel, &platform, &tasks, &timeline, tier)
                .expect("wrapped kernel run completes");
            let b = run(&mut scan, &platform, &tasks, &timeline, tier)
                .expect("wrapped scan run completes");
            prop_assert_eq!(a, b, "{} diverged under faults", kernel.name());
        }
    }

    /// The sweep regime: one scheduler instance reused across *different*
    /// instances must behave exactly like fresh instances each time — the
    /// journal's run nonce forces a rebuild at every workspace reset, so
    /// nothing leaks from the previous run's tree.
    #[test]
    fn scheduler_reuse_across_runs_is_fresh(
        platform_a in arb_platform(),
        platform_b in arb_platform(),
        tasks in arb_tasks(),
        tier in arb_tier(),
    ) {
        for (mut reused, _) in kernel_scan_pairs() {
            let first = run(reused.as_mut(), &platform_a, &tasks, &Timeline::EMPTY, tier)
                .expect("first run completes");
            let second = run(reused.as_mut(), &platform_b, &tasks, &Timeline::EMPTY, tier)
                .expect("reused run completes");
            let (mut fresh, _) = kernel_scan_pairs()
                .into_iter()
                .find(|(k, _)| k.name() == reused.name())
                .expect("same pair exists");
            let fresh_first = run(fresh.as_mut(), &platform_a, &tasks, &Timeline::EMPTY, tier)
                .expect("fresh first run completes");
            let fresh_second = run(fresh.as_mut(), &platform_b, &tasks, &Timeline::EMPTY, tier)
                .expect("fresh second run completes");
            prop_assert_eq!(first, fresh_first);
            prop_assert_eq!(second, fresh_second, "{} leaked state across runs", reused.name());
        }
    }
}
