//! Information-model properties.
//!
//! 1. **The `Clairvoyant` tier is the pre-refactor view path, bit for
//!    bit.** An oracle wrapper recomputes, at every delivered callback,
//!    each facade accessor the pre-refactor `SimView` exposed — nominal
//!    platform values, the cached per-slave ready estimate, the historical
//!    completion-estimate formula `max(link_free + c_j, ready_j) + p_j` —
//!    and asserts bitwise equality with what the tier-filtering facade
//!    answers. Run over arbitrary instances *including fault/drift
//!    timelines*, for all seven paper heuristics (plain and
//!    `Redispatch`-wrapped), wrapped and unwrapped runs must also agree
//!    exactly (including errors).
//! 2. **Learned estimates converge to the true per-task times on a static
//!    platform.** With exact task sizes every observed duration *is* the
//!    nominal value, so the running means must match it to float-sum
//!    accuracy on every slave that received work.

use mss_core::{Algorithm, Redispatch};
use mss_sim::{
    bag_of_tasks, simulate, simulate_with_events, Decision, InfoTier, OnlineScheduler, Platform,
    PlatformEvent, PlatformEventKind, SchedulerEvent, SimConfig, SimView, SlaveId, TaskArrival,
    Time, Timeline,
};
use proptest::prelude::*;

/// Forwards every call to the inner scheduler, but first asserts that the
/// clairvoyant facade's answers are bitwise those of the pre-refactor view
/// path (recomputed here from the raw platform and cached slave views).
struct LegacyOracle<S> {
    inner: S,
}

impl<S: OnlineScheduler> OnlineScheduler for LegacyOracle<S> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn init(&mut self, view: &SimView<'_>) {
        self.inner.init(view);
    }

    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision {
        assert_eq!(view.info_tier(), InfoTier::Clairvoyant);
        let platform = view.platform(); // not gated at Clairvoyant
        assert_eq!(view.num_slaves(), platform.num_slaves());
        let link_free = view.link_free_at();
        for j in view.slave_ids() {
            // Believed values are the nominal ones, bit for bit.
            assert_eq!(view.believed_c(j).to_bits(), platform.c(j).to_bits());
            assert_eq!(view.believed_p(j).to_bits(), platform.p(j).to_bits());
            // The facade's ready estimate is the cached slave-view field.
            let slave = view.slave(j);
            assert_eq!(
                view.ready_estimate(j).as_f64().to_bits(),
                slave.ready_estimate.as_f64().to_bits()
            );
            // The historical completion-estimate formula, recomputed.
            let legacy = (link_free + platform.c(j)).max(slave.ready_estimate) + platform.p(j);
            assert_eq!(
                view.completion_estimate(j).as_f64().to_bits(),
                legacy.as_f64().to_bits(),
                "slave {j:?}: completion estimate diverged from the legacy formula"
            );
        }
        self.inner.on_event(view, event)
    }

    fn poll_driven(&self) -> bool {
        self.inner.poll_driven()
    }

    fn min_tier(&self) -> InfoTier {
        self.inner.min_tier()
    }
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    proptest::collection::vec((0.01f64..2.0, 0.1f64..8.0), 1..6).prop_map(|specs| {
        let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
        Platform::from_vectors(&c, &p)
    })
}

fn arb_tasks() -> impl Strategy<Value = Vec<TaskArrival>> {
    proptest::collection::vec((0.0f64..20.0, 0.9f64..1.1, 0.9f64..1.1), 1..25).prop_map(|ts| {
        ts.into_iter()
            .map(|(r, sc, sp)| TaskArrival {
                release: Time::new(r),
                size_c: sc,
                size_p: sp,
            })
            .collect()
    })
}

/// Crash/recover pairs plus speed drift (out-of-range slave indices are
/// deliberately kept: the engine must ignore them).
fn arb_timeline() -> impl Strategy<Value = Timeline> {
    proptest::collection::vec((0usize..8, 0.0f64..25.0, 0.1f64..10.0, 0.25f64..3.0), 0..5).prop_map(
        |faults| {
            let mut events = Vec::new();
            for &(j, at, up_after, factor) in &faults {
                events.push(PlatformEvent {
                    time: Time::new(at),
                    slave: SlaveId(j),
                    kind: PlatformEventKind::Fail,
                });
                events.push(PlatformEvent {
                    time: Time::new(at + up_after),
                    slave: SlaveId(j),
                    kind: PlatformEventKind::Recover,
                });
                events.push(PlatformEvent {
                    time: Time::new(at / 2.0),
                    slave: SlaveId(j),
                    kind: PlatformEventKind::SetSpeedFactor(factor),
                });
            }
            Timeline::new(events)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1 (see module docs): for arbitrary specs — fault/drift
    /// timelines included — every paper heuristic, plain and
    /// redispatch-wrapped, behaves under the clairvoyant facade exactly as
    /// under the pre-refactor view semantics, and the oracle wrapper never
    /// observes a facade answer diverging from the legacy recomputation.
    #[test]
    fn clairvoyant_tier_is_bit_identical_to_the_legacy_view_path(
        platform in arb_platform(),
        tasks in arb_tasks(),
        timeline in arb_timeline(),
    ) {
        // Fault-oblivious heuristics may livelock against a down slave; a
        // tight budget turns that into a deterministic error, which both
        // runs must then report identically.
        let cfg = SimConfig { max_steps: 100_000, ..SimConfig::default() };
        for a in Algorithm::ALL {
            let plain = simulate_with_events(
                &platform, &tasks, &cfg, &timeline, &mut a.build());
            let oracled = simulate_with_events(
                &platform, &tasks, &cfg, &timeline,
                &mut LegacyOracle { inner: a.build() });
            prop_assert_eq!(&plain, &oracled, "{} diverged under the oracle", a);

            let wrapped = simulate_with_events(
                &platform, &tasks, &cfg, &timeline, &mut Redispatch::wrap(a));
            let wrapped_oracled = simulate_with_events(
                &platform, &tasks, &cfg, &timeline,
                &mut LegacyOracle { inner: Redispatch::wrap(a) });
            prop_assert_eq!(&wrapped, &wrapped_oracled, "{}+RD diverged", a);
        }
    }
}

/// Captures the final believed values per slave while delegating to RR
/// (whose demand-driven ring spreads work over every slave).
struct EstimateProbe<S> {
    inner: S,
    seen: Vec<(f64, f64, usize, usize)>,
}

impl<S: OnlineScheduler> OnlineScheduler for EstimateProbe<S> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn init(&mut self, view: &SimView<'_>) {
        self.inner.init(view);
    }
    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision {
        self.seen.clear();
        for j in view.slave_ids() {
            let e = view.slave_estimate(j);
            self.seen.push((
                view.believed_c(j),
                view.believed_p(j),
                e.c_observations(),
                e.p_observations(),
            ));
        }
        self.inner.on_event(view, event)
    }
    fn min_tier(&self) -> InfoTier {
        self.inner.min_tier()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 2 (see module docs): on a static platform with exact task
    /// sizes, the speed-oblivious estimators converge to the true
    /// effective per-task times on every slave that received work.
    #[test]
    fn estimates_converge_to_true_speeds_on_static_platforms(
        platform in arb_platform(),
        tasks_per_slave in 3usize..8,
    ) {
        let n = platform.num_slaves() * tasks_per_slave;
        let cfg = SimConfig { info: InfoTier::SpeedOblivious, ..SimConfig::default() };
        // Cyclic dispatch guarantees the first round touches every slave,
        // so every estimator gets at least one observation.
        let mut probe = EstimateProbe {
            inner: mss_core::RoundRobin::new(
                mss_core::RrOrder::SumCp,
                mss_core::RrDispatch::Cyclic,
                1,
            ),
            seen: Vec::new(),
        };
        simulate(&platform, &bag_of_tasks(n), &cfg, &mut probe).expect("RR completes");

        let mut observed_slaves = 0;
        for (j, &(c_hat, p_hat, c_obs, p_obs)) in probe.seen.iter().enumerate() {
            let j = SlaveId(j);
            if c_obs > 0 {
                prop_assert!(
                    (c_hat - platform.c(j)).abs() <= 1e-9 * platform.c(j).max(1.0),
                    "slave {j:?}: learned c {} vs true {}", c_hat, platform.c(j));
            }
            if p_obs > 0 {
                observed_slaves += 1;
                prop_assert!(
                    (p_hat - platform.p(j)).abs() <= 1e-9 * platform.p(j).max(1.0),
                    "slave {j:?}: learned p {} vs true {}", p_hat, platform.p(j));
            }
        }
        // RR's first round touches every slave, so everything was observed.
        prop_assert_eq!(observed_slaves, platform.num_slaves());
    }
}

#[test]
fn engine_refuses_underinformed_runs() {
    /// A scheduler that (defaultly) declares it needs clairvoyance.
    struct NeedsEverything;
    impl OnlineScheduler for NeedsEverything {
        fn name(&self) -> String {
            "needs-everything".into()
        }
        fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            match (view.link_idle(), view.pending_tasks().first()) {
                (true, Some(&task)) => Decision::Send {
                    task,
                    slave: SlaveId(0),
                },
                _ => Decision::Idle,
            }
        }
    }
    let platform = Platform::from_vectors(&[1.0], &[2.0]);
    let cfg = SimConfig {
        info: InfoTier::SpeedOblivious,
        ..SimConfig::default()
    };
    let err = simulate(&platform, &bag_of_tasks(2), &cfg, &mut NeedsEverything).unwrap_err();
    assert!(
        matches!(
            err,
            mss_sim::SimError::InsufficientInformation {
                granted: InfoTier::SpeedOblivious,
                required: InfoTier::Clairvoyant,
            }
        ),
        "{err:?}"
    );
    // At its declared tier the same scheduler runs.
    simulate(
        &platform,
        &bag_of_tasks(2),
        &SimConfig::default(),
        &mut NeedsEverything,
    )
    .unwrap();
}

#[test]
fn all_paper_heuristics_complete_at_every_tier() {
    let platform = Platform::from_vectors(&[0.4, 1.0, 0.2], &[2.0, 5.0, 7.0]);
    let tasks = bag_of_tasks(25);
    for tier in InfoTier::ALL {
        for a in Algorithm::ALL {
            let cfg = SimConfig {
                horizon_hint: Some(tasks.len()),
                info: tier,
                ..SimConfig::default()
            };
            let trace = simulate(&platform, &tasks, &cfg, &mut a.build())
                .unwrap_or_else(|e| panic!("{a} at {tier}: {e}"));
            assert_eq!(trace.len(), tasks.len());
            assert!(
                mss_sim::validate(&trace, &platform).is_empty(),
                "{a} at {tier}"
            );
        }
    }
}
