//! Cross-heuristic property tests: every algorithm of the paper produces a
//! valid, complete, deterministic schedule on arbitrary instances, and the
//! structural relationships the paper relies on hold.

use mss_core::{bag_of_tasks, simulate, validate, Algorithm, Platform, SimConfig, TaskArrival};
use mss_sim::Time;
use proptest::prelude::*;

fn arb_platform() -> impl Strategy<Value = Platform> {
    // The paper's ranges: c ∈ [0.01, 1], p ∈ [0.1, 8], m up to 5.
    proptest::collection::vec((0.01f64..1.0, 0.1f64..8.0), 1..6).prop_map(|specs| {
        let (c, p): (Vec<f64>, Vec<f64>) = specs.into_iter().unzip();
        Platform::from_vectors(&c, &p)
    })
}

fn arb_tasks() -> impl Strategy<Value = Vec<TaskArrival>> {
    proptest::collection::vec(0.0f64..30.0, 1..30).prop_map(|mut rs| {
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rs.into_iter().map(TaskArrival::at).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_produce_valid_traces(platform in arb_platform(), tasks in arb_tasks()) {
        let cfg = SimConfig::with_horizon(tasks.len());
        for a in Algorithm::ALL {
            let trace = simulate(&platform, &tasks, &cfg, &mut a.build())
                .unwrap_or_else(|e| panic!("{a} failed: {e}"));
            let violations = validate(&trace, &platform);
            prop_assert!(violations.is_empty(), "{}: {:?}", a, violations);
            prop_assert_eq!(trace.len(), tasks.len());
        }
    }

    #[test]
    fn all_algorithms_are_deterministic(platform in arb_platform(), tasks in arb_tasks()) {
        let cfg = SimConfig::with_horizon(tasks.len());
        for a in Algorithm::ALL {
            let t1 = simulate(&platform, &tasks, &cfg, &mut a.build()).unwrap();
            let t2 = simulate(&platform, &tasks, &cfg, &mut a.build()).unwrap();
            prop_assert_eq!(t1, t2, "{} not replayable", a);
        }
    }

    #[test]
    fn rr_variants_coincide_on_fully_homogeneous(
        m in 1usize..6, c in 0.01f64..1.0, p in 0.1f64..8.0, n in 1usize..40
    ) {
        // With a single (c, p) all three orderings are the identity, so the
        // three RR variants must produce identical traces.
        let platform = Platform::homogeneous(m, c, p);
        let tasks = bag_of_tasks(n);
        let cfg = SimConfig::with_horizon(n);
        let rr = simulate(&platform, &tasks, &cfg, &mut Algorithm::RoundRobin.build()).unwrap();
        let rrc = simulate(&platform, &tasks, &cfg, &mut Algorithm::RoundRobinComm.build()).unwrap();
        let rrp = simulate(&platform, &tasks, &cfg, &mut Algorithm::RoundRobinProc.build()).unwrap();
        prop_assert_eq!(&rr, &rrc);
        prop_assert_eq!(&rr, &rrp);
    }

    #[test]
    fn statics_beat_srpt_on_homogeneous_bags(
        m in 2usize..6, c in 0.05f64..0.5, pmul in 4.0f64..10.0, n in 20usize..60
    ) {
        // Figure 1(a): on homogeneous platforms with p > m·c (compute-bound)
        // the pipelining statics beat SRPT on makespan. The flooding
        // planners (LS, SLJF, SLJFWC — provably optimal here) win strictly;
        // the buffer-bounded RR family can pay a one-task end-game penalty
        // on *small* bags (proptest found n = 20, m = 5, where RR trails
        // SRPT by ~1 %), so it gets a matching tolerance — at the paper's
        // n = 1000 the gap vanishes (see fig1a in EXPERIMENTS.md).
        let p = c * pmul * m as f64;
        let platform = Platform::homogeneous(m, c, p);
        let tasks = bag_of_tasks(n);
        let cfg = SimConfig::with_horizon(n);
        let srpt = simulate(&platform, &tasks, &cfg, &mut Algorithm::Srpt.build()).unwrap();
        for a in [Algorithm::ListScheduling, Algorithm::Sljf, Algorithm::Sljfwc] {
            let t = simulate(&platform, &tasks, &cfg, &mut a.build()).unwrap();
            prop_assert!(
                t.makespan() < srpt.makespan() + 1e-9,
                "{} makespan {} vs SRPT {}", a, t.makespan(), srpt.makespan()
            );
        }
        let rr = simulate(&platform, &tasks, &cfg, &mut Algorithm::RoundRobin.build()).unwrap();
        prop_assert!(
            rr.makespan() < srpt.makespan() * (1.0 + p / (n as f64 * p / m as f64)),
            "RR makespan {} vs SRPT {} beyond the end-game allowance",
            rr.makespan(), srpt.makespan()
        );
    }

    #[test]
    fn makespan_never_below_trivial_lower_bounds(
        platform in arb_platform(), n in 1usize..30
    ) {
        // Any schedule: the k-th send cannot complete before k·min_c, and
        // every task needs c_j + p_j somewhere, so
        // makespan >= max(n·min_c, min_j(c_j + p_j)).
        let tasks = bag_of_tasks(n);
        let cfg = SimConfig::with_horizon(n);
        let min_c = platform.iter().map(|(_, s)| s.c).fold(f64::INFINITY, f64::min);
        let min_cp = platform.iter().map(|(_, s)| s.c + s.p).fold(f64::INFINITY, f64::min);
        let lb = (n as f64 * min_c).max(min_cp);
        for a in Algorithm::ALL {
            let t = simulate(&platform, &tasks, &cfg, &mut a.build()).unwrap();
            prop_assert!(
                t.makespan() >= lb - 1e-9,
                "{} beat the physical lower bound: {} < {}", a, t.makespan(), lb
            );
        }
    }

    #[test]
    fn flows_dominated_by_makespan_for_bags(platform in arb_platform(), n in 1usize..20) {
        // With all releases at 0: max-flow == makespan and
        // sum-flow <= n · makespan.
        let tasks = bag_of_tasks(n);
        let cfg = SimConfig::with_horizon(n);
        for a in Algorithm::ALL {
            let t = simulate(&platform, &tasks, &cfg, &mut a.build()).unwrap();
            prop_assert!((t.max_flow() - t.makespan()).abs() < 1e-9);
            prop_assert!(t.sum_flow() <= n as f64 * t.makespan() + 1e-6);
        }
    }

    #[test]
    fn srpt_tasks_start_on_receipt(platform in arb_platform(), tasks in arb_tasks()) {
        // SRPT's defining property: it only targets idle slaves, so every
        // task starts computing the moment it is fully received.
        let cfg = SimConfig::default();
        let trace = simulate(&platform, &tasks, &cfg, &mut Algorithm::Srpt.build()).unwrap();
        for r in trace.records() {
            prop_assert!(Time::approx_eq(r.compute_start, r.send_end));
        }
    }
}
