//! The catalogue of the paper's seven on-line algorithms (§4.1).
//!
//! All static per-algorithm metadata — display name, paper figure index,
//! poll-driven contract, minimum information tier — lives in **one**
//! table, [`static@META`], indexed directly by the algorithm's discriminant
//! (`figure_index - 1`). Accessors are O(1) lookups; a unit test pins the
//! table against the built scheduler instances so the two can never
//! drift apart.

use crate::heuristics::{ListScheduling, Planned, RoundRobin, Srpt};
use mss_sim::{InfoTier, OnlineScheduler};
use std::fmt;

/// One of the seven algorithms compared in the paper's experiments, in the
/// order of its figures (1 = SRPT … 7 = SLJFWC).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// Dynamic baseline: fastest free slave, no queueing.
    Srpt,
    /// List Scheduling: eager earliest-estimated-completion.
    ListScheduling,
    /// Round Robin ordered by `p_j + c_j`.
    RoundRobin,
    /// Round Robin ordered by `c_j`.
    RoundRobinComm,
    /// Round Robin ordered by `p_j`.
    RoundRobinProc,
    /// Scheduling the Last Job First.
    Sljf,
    /// Scheduling the Last Job First With Communication.
    Sljfwc,
}

/// Static metadata of one algorithm: everything that used to live in
/// separate `match` arms and O(n) scans, in one row of [`static@META`].
#[derive(Clone, Copy, Debug)]
pub struct AlgorithmMeta {
    /// The algorithm this row describes (`META[a as usize].algorithm == a`).
    pub algorithm: Algorithm,
    /// The display name used in the paper.
    pub name: &'static str,
    /// Whether the built scheduler honors the poll-driven contract
    /// ([`OnlineScheduler::poll_driven`]) — recorded here so harnesses can
    /// reason about callback elision without building an instance.
    pub poll_driven: bool,
    /// The weakest [`InfoTier`] the built scheduler stays live under
    /// ([`OnlineScheduler::min_tier`]).
    pub min_tier: InfoTier,
}

/// The one static metadata table, in the paper's figure order —
/// `META[i].algorithm.figure_index() == i + 1`, and every accessor on
/// [`Algorithm`] indexes it directly by discriminant. A unit test asserts
/// each row against the scheduler instance [`Algorithm::build`] returns.
pub static META: [AlgorithmMeta; 7] = {
    const fn row(algorithm: Algorithm, name: &'static str) -> AlgorithmMeta {
        AlgorithmMeta {
            algorithm,
            name,
            // All seven paper heuristics are poll-driven and live on
            // believed values at every tier (pinned by `table_matches_
            // built_schedulers`).
            poll_driven: true,
            min_tier: InfoTier::NonClairvoyant,
        }
    }
    [
        row(Algorithm::Srpt, "SRPT"),
        row(Algorithm::ListScheduling, "LS"),
        row(Algorithm::RoundRobin, "RR"),
        row(Algorithm::RoundRobinComm, "RRC"),
        row(Algorithm::RoundRobinProc, "RRP"),
        row(Algorithm::Sljf, "SLJF"),
        row(Algorithm::Sljfwc, "SLJFWC"),
    ]
};

impl Algorithm {
    /// All seven, in the paper's figure order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Srpt,
        Algorithm::ListScheduling,
        Algorithm::RoundRobin,
        Algorithm::RoundRobinComm,
        Algorithm::RoundRobinProc,
        Algorithm::Sljf,
        Algorithm::Sljfwc,
    ];

    /// This algorithm's [`static@META`] row (O(1): the discriminant is the
    /// index).
    pub fn meta(self) -> &'static AlgorithmMeta {
        &META[self as usize]
    }

    /// The algorithm's display name as used in the paper.
    pub fn name(self) -> &'static str {
        self.meta().name
    }

    /// Its 1-based index in the paper's figures (`self as usize + 1`; the
    /// same index addresses [`static@META`]).
    pub fn figure_index(self) -> usize {
        self as usize + 1
    }

    /// Whether the built scheduler honors the poll-driven contract.
    pub fn poll_driven(self) -> bool {
        self.meta().poll_driven
    }

    /// The weakest [`InfoTier`] the built scheduler stays live under.
    pub fn min_tier(self) -> InfoTier {
        self.meta().min_tier
    }

    /// Builds a fresh scheduler instance. Every instance is deterministic
    /// and independent, so adversary games can replay runs from scratch.
    pub fn build(self) -> Box<dyn OnlineScheduler> {
        match self {
            Algorithm::Srpt => Box::new(Srpt::new()),
            Algorithm::ListScheduling => Box::new(ListScheduling),
            Algorithm::RoundRobin => Box::new(RoundRobin::rr()),
            Algorithm::RoundRobinComm => Box::new(RoundRobin::rrc()),
            Algorithm::RoundRobinProc => Box::new(RoundRobin::rrp()),
            Algorithm::Sljf => Box::new(Planned::sljf()),
            Algorithm::Sljfwc => Box::new(Planned::sljfwc()),
        }
    }

    /// Parses a paper name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Algorithm> {
        META.iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
            .map(|m| m.algorithm)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{bag_of_tasks, simulate, validate, Platform, SimConfig};

    #[test]
    fn names_round_trip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
            assert_eq!(Algorithm::from_name(&a.name().to_lowercase()), Some(a));
        }
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn figure_indices_are_1_to_7() {
        let idx: Vec<_> = Algorithm::ALL.iter().map(|a| a.figure_index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn table_matches_built_schedulers() {
        // The static table is the single source of truth, so it must agree
        // with what the built scheduler instances actually declare.
        for (i, (a, m)) in Algorithm::ALL.iter().zip(META.iter()).enumerate() {
            assert_eq!(m.algorithm, *a, "row {i} describes the wrong algorithm");
            assert_eq!(*a as usize, i, "discriminant must index the table");
            assert_eq!(a.figure_index(), i + 1);
            let sched = a.build();
            assert_eq!(sched.name(), m.name);
            assert_eq!(sched.poll_driven(), m.poll_driven, "{a}");
            assert_eq!(sched.min_tier(), m.min_tier, "{a}");
            assert_eq!(a.poll_driven(), m.poll_driven);
            assert_eq!(a.min_tier(), m.min_tier);
        }
    }

    #[test]
    fn every_algorithm_completes_and_validates() {
        let pf = Platform::from_vectors(&[0.4, 1.0, 0.2], &[2.0, 5.0, 7.0]);
        let tasks = bag_of_tasks(25);
        for a in Algorithm::ALL {
            let mut sched = a.build();
            assert_eq!(sched.name(), a.name());
            let trace = simulate(
                &pf,
                &tasks,
                &SimConfig::with_horizon(tasks.len()),
                &mut sched,
            )
            .unwrap_or_else(|e| panic!("{a} failed: {e}"));
            let violations = validate(&trace, &pf);
            assert!(violations.is_empty(), "{a}: {violations:?}");
            assert_eq!(trace.len(), tasks.len());
        }
    }

    #[test]
    fn builds_are_independent() {
        // Two instances of the same planned algorithm must not share state.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let t1 = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut Algorithm::Sljf.build(),
        )
        .unwrap();
        let t2 = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut Algorithm::Sljf.build(),
        )
        .unwrap();
        assert_eq!(t1, t2);
    }
}
