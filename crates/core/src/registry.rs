//! The catalogue of the paper's seven on-line algorithms (§4.1).

use crate::heuristics::{ListScheduling, Planned, RoundRobin, Srpt};
use mss_sim::OnlineScheduler;
use std::fmt;

/// One of the seven algorithms compared in the paper's experiments, in the
/// order of its figures (1 = SRPT … 7 = SLJFWC).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// Dynamic baseline: fastest free slave, no queueing.
    Srpt,
    /// List Scheduling: eager earliest-estimated-completion.
    ListScheduling,
    /// Round Robin ordered by `p_j + c_j`.
    RoundRobin,
    /// Round Robin ordered by `c_j`.
    RoundRobinComm,
    /// Round Robin ordered by `p_j`.
    RoundRobinProc,
    /// Scheduling the Last Job First.
    Sljf,
    /// Scheduling the Last Job First With Communication.
    Sljfwc,
}

impl Algorithm {
    /// All seven, in the paper's figure order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Srpt,
        Algorithm::ListScheduling,
        Algorithm::RoundRobin,
        Algorithm::RoundRobinComm,
        Algorithm::RoundRobinProc,
        Algorithm::Sljf,
        Algorithm::Sljfwc,
    ];

    /// The algorithm's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Srpt => "SRPT",
            Algorithm::ListScheduling => "LS",
            Algorithm::RoundRobin => "RR",
            Algorithm::RoundRobinComm => "RRC",
            Algorithm::RoundRobinProc => "RRP",
            Algorithm::Sljf => "SLJF",
            Algorithm::Sljfwc => "SLJFWC",
        }
    }

    /// Its 1-based index in the paper's figures.
    pub fn figure_index(self) -> usize {
        Algorithm::ALL
            .iter()
            .position(|&a| a == self)
            .expect("algorithm is in ALL")
            + 1
    }

    /// Builds a fresh scheduler instance. Every instance is deterministic
    /// and independent, so adversary games can replay runs from scratch.
    pub fn build(self) -> Box<dyn OnlineScheduler> {
        match self {
            Algorithm::Srpt => Box::new(Srpt),
            Algorithm::ListScheduling => Box::new(ListScheduling),
            Algorithm::RoundRobin => Box::new(RoundRobin::rr()),
            Algorithm::RoundRobinComm => Box::new(RoundRobin::rrc()),
            Algorithm::RoundRobinProc => Box::new(RoundRobin::rrp()),
            Algorithm::Sljf => Box::new(Planned::sljf()),
            Algorithm::Sljfwc => Box::new(Planned::sljfwc()),
        }
    }

    /// Parses a paper name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Algorithm> {
        let lower = name.to_ascii_lowercase();
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().to_ascii_lowercase() == lower)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{bag_of_tasks, simulate, validate, Platform, SimConfig};

    #[test]
    fn names_round_trip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
            assert_eq!(Algorithm::from_name(&a.name().to_lowercase()), Some(a));
        }
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn figure_indices_are_1_to_7() {
        let idx: Vec<_> = Algorithm::ALL.iter().map(|a| a.figure_index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn every_algorithm_completes_and_validates() {
        let pf = Platform::from_vectors(&[0.4, 1.0, 0.2], &[2.0, 5.0, 7.0]);
        let tasks = bag_of_tasks(25);
        for a in Algorithm::ALL {
            let mut sched = a.build();
            assert_eq!(sched.name(), a.name());
            let trace = simulate(
                &pf,
                &tasks,
                &SimConfig::with_horizon(tasks.len()),
                &mut sched,
            )
            .unwrap_or_else(|e| panic!("{a} failed: {e}"));
            let violations = validate(&trace, &pf);
            assert!(violations.is_empty(), "{a}: {violations:?}");
            assert_eq!(trace.len(), tasks.len());
        }
    }

    #[test]
    fn builds_are_independent() {
        // Two instances of the same planned algorithm must not share state.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let t1 = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut Algorithm::Sljf.build(),
        )
        .unwrap();
        let t2 = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut Algorithm::Sljf.build(),
        )
        .unwrap();
        assert_eq!(t1, t2);
    }
}
