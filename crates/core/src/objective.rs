//! The three objective functions of the paper (γ field of α|β|γ).

use mss_sim::Trace;
use std::fmt;

/// An objective function over completed schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// Makespan, `max C_i` — total execution time.
    Makespan,
    /// Max-flow, `max (C_i − r_i)` — maximum response time.
    MaxFlow,
    /// Sum-flow, `Σ (C_i − r_i)` — sum of response times (equivalent to
    /// `Σ C_i` up to the constant `Σ r_i`).
    SumFlow,
}

impl Objective {
    /// All three objectives, in the paper's column order.
    pub const ALL: [Objective; 3] = [Objective::Makespan, Objective::MaxFlow, Objective::SumFlow];

    /// Evaluates this objective on a finished trace.
    pub fn evaluate(self, trace: &Trace) -> f64 {
        match self {
            Objective::Makespan => trace.makespan(),
            Objective::MaxFlow => trace.max_flow(),
            Objective::SumFlow => trace.sum_flow(),
        }
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Objective::Makespan => "makespan",
            Objective::MaxFlow => "max-flow",
            Objective::SumFlow => "sum-flow",
        }
    }

    /// The paper's α|β|γ notation for the objective.
    pub fn notation(self) -> &'static str {
        match self {
            Objective::Makespan => "max Ci",
            Objective::MaxFlow => "max (Ci - ri)",
            Objective::SumFlow => "sum (Ci - ri)",
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{SlaveId, TaskId, TaskRecord, Time, Trace};

    fn trace() -> Trace {
        let rec = |task, release: f64, end: f64| TaskRecord {
            task: TaskId(task),
            release: Time::new(release),
            slave: SlaveId(0),
            send_start: Time::new(release),
            send_end: Time::new(release + 1.0),
            compute_start: Time::new(release + 1.0),
            compute_end: Time::new(end),
            size_c: 1.0,
            size_p: 1.0,
        };
        Trace::new(vec![rec(0, 0.0, 4.0), rec(1, 2.0, 9.0)])
    }

    #[test]
    fn evaluate_all() {
        let t = trace();
        assert!((Objective::Makespan.evaluate(&t) - 9.0).abs() < 1e-12);
        assert!((Objective::MaxFlow.evaluate(&t) - 7.0).abs() < 1e-12);
        assert!((Objective::SumFlow.evaluate(&t) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn labels_and_notation() {
        assert_eq!(Objective::Makespan.label(), "makespan");
        assert_eq!(Objective::SumFlow.notation(), "sum (Ci - ri)");
        assert_eq!(Objective::ALL.len(), 3);
        assert_eq!(Objective::MaxFlow.to_string(), "max-flow");
    }
}
