//! # mss-core — model, objectives and heuristics for master-slave on-line scheduling
//!
//! The core library of the reproduction of Pineau, Robert & Vivien,
//! *"The impact of heterogeneity on master-slave on-line scheduling"*
//! (IPPS 2006 / INRIA RR-5732). It builds on the [`mss_sim`] discrete-event
//! engine and provides:
//!
//! * the three [`Objective`] functions of the paper (makespan, max-flow,
//!   sum-flow);
//! * the seven on-line [`heuristics`] of Section 4.1 (SRPT, LS, RR, RRC,
//!   RRP, SLJF, SLJFWC), each an [`OnlineScheduler`];
//! * the [`Algorithm`] registry that names and constructs them;
//! * the [`Redispatch`] fault-aware wrapper that makes any of them live on
//!   dynamic platforms (slave failures/recoveries, see `mss-scenario`).
//!
//! ```
//! use mss_core::{Algorithm, Objective};
//! use mss_sim::{bag_of_tasks, simulate, Platform, SimConfig};
//!
//! let platform = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
//! let tasks = bag_of_tasks(10);
//! let mut ls = Algorithm::ListScheduling.build();
//! let trace = simulate(&platform, &tasks, &SimConfig::default(), &mut ls).unwrap();
//! let makespan = Objective::Makespan.evaluate(&trace);
//! assert!(makespan > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heuristics;
mod objective;
mod redispatch;
mod registry;

pub use heuristics::{ListScheduling, PlanKind, Planned, RoundRobin, RrDispatch, RrOrder, Srpt};
pub use objective::Objective;
pub use redispatch::Redispatch;
pub use registry::{Algorithm, AlgorithmMeta, META};

// Re-export the simulation vocabulary so downstream crates can depend on
// `mss-core` alone for the common case.
pub use mss_sim::{
    bag_of_tasks, released_at, simulate, simulate_in, simulate_objectives_in,
    simulate_objectives_with_probe_in, simulate_streamed, simulate_streamed_objectives_in,
    simulate_streamed_objectives_with_probe_in, simulate_streamed_with_probe_in,
    simulate_with_events, simulate_with_events_in, simulate_with_probe_in, validate, Decision,
    InfoTier, NoopProbe, OnlineScheduler, Platform, PlatformClass, PlatformEvent,
    PlatformEventKind, Probe, RunCounters, RunObjectives, SchedulerEvent, SimConfig, SimError,
    SimView, SimWorkspace, SlaveEstimate, SlaveEstimates, SlaveId, SlaveSpec, StreamStats,
    TaskArrival, TaskId, TaskRecord, TaskSource, Time, Timeline, Trace, TraceRecorder,
    TraceViolation,
};
