//! The Round-Robin family — RR, RRC, RRP (§4.1, algorithms 3–5).
//!
//! The paper specifies the three *orderings*:
//!
//! * **RR** — "first choose the slave with the smallest `p_i + c_i`, then
//!   the slave with the second smallest value, etc.";
//! * **RRC** — "starting from the slave with the smallest `c_i` up to the
//!   slave with the largest one";
//! * **RRP** — "starting from the slave with the smallest `p_i` up to the
//!   slave with the largest one";
//!
//! but not the dispatch rule. A pure cyclic, equal-share interpretation
//! makes the three variants provably identical whenever the ordering key is
//! constant (e.g. RRC on a communication-homogeneous platform), which
//! contradicts Figure 1(b) where RRC is clearly the worst. We therefore use
//! a **buffer-bounded demand-driven** dispatch (see `DESIGN.md`): a slave is
//! *eligible* when it has at most `buffer` outstanding tasks, and the master
//! sends the oldest pending task to the first eligible slave in the
//! prescribed order. `buffer = 1` keeps one task queued behind the one
//! computing — enough to overlap communication with computation (so the RR
//! family beats SRPT on homogeneous platforms) while keeping the ordering
//! decisive (so RRC/RRP degrade exactly where Figure 1 says they do).
//!
//! A strict-cyclic mode is provided for the ablation study (`DESIGN.md`
//! A1): it walks the prescribed ring one slave at a time, skipping
//! ineligible slaves.

use crate::heuristics::util::oldest_pending;
use mss_sim::{
    Decision, IncrementalArgmin, InfoTier, OnlineScheduler, SchedulerEvent, SimView, SlaveId,
};

/// Which key orders the slaves (all ascending, ties by slave index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RrOrder {
    /// `p_j + c_j` — the paper's RR.
    SumCp,
    /// `c_j` — the paper's RRC.
    CommOnly,
    /// `p_j` — the paper's RRP.
    ProcOnly,
}

impl RrOrder {
    fn key(self, c: f64, p: f64) -> f64 {
        match self {
            RrOrder::SumCp => c + p,
            RrOrder::CommOnly => c,
            RrOrder::ProcOnly => p,
        }
    }
}

/// How the prescribed order is consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RrDispatch {
    /// Send to the first *eligible* slave in the prescribed order
    /// (default; reproduces the Figure 1 shapes).
    Priority,
    /// Walk the prescribed ring cyclically, skipping ineligible slaves
    /// (ablation mode).
    Cyclic,
}

/// A Round-Robin scheduler (RR / RRC / RRP by choice of [`RrOrder`]).
///
/// Tier-portable: the ring keys are read through
/// [`SimView::believed_c`] / [`SimView::believed_p`], so below
/// `Clairvoyant` the prescribed order is over *learned* rates — the ring
/// starts in index order (all slaves look identical under the prior) and
/// re-sorts itself whenever an estimate absorbs a new observation
/// (tracked via [`SimView::estimate_version`]; at `Clairvoyant` the
/// version never moves and the ring is computed exactly once, as before).
#[derive(Clone, Debug)]
pub struct RoundRobin {
    order_by: RrOrder,
    dispatch: RrDispatch,
    /// A slave is eligible while `outstanding <= buffer`.
    buffer: usize,
    /// Slave indices in prescribed order; computed on first use and
    /// re-derived when the estimates it was sorted by have changed.
    ring: Vec<SlaveId>,
    /// `estimate_version` the ring was sorted at.
    ring_version: u64,
    /// Next ring position (cyclic mode only).
    cursor: usize,
    /// Inverse of `ring`: `ring_pos[j]` is slave `j`'s position in the
    /// prescribed order, as an `f64` kernel key. Refilled on every ring
    /// rebuild (which also invalidates the kernel — the keys moved).
    ring_pos: Vec<f64>,
    /// Decision kernel answering "first eligible slave in prescribed
    /// order" as an argmin over `ring_pos` gated by eligibility — a pure
    /// function of journaled per-slave state (`outstanding`), so the
    /// tournament tree can index it (Priority dispatch only).
    kernel: IncrementalArgmin,
}

impl RoundRobin {
    /// The paper's RR (order by `p + c`), default dispatch and buffer 1.
    pub fn rr() -> Self {
        Self::new(RrOrder::SumCp, RrDispatch::Priority, 1)
    }

    /// The paper's RRC (order by `c`).
    pub fn rrc() -> Self {
        Self::new(RrOrder::CommOnly, RrDispatch::Priority, 1)
    }

    /// The paper's RRP (order by `p`).
    pub fn rrp() -> Self {
        Self::new(RrOrder::ProcOnly, RrDispatch::Priority, 1)
    }

    /// Fully parameterized constructor (used by the ablation benches).
    pub fn new(order_by: RrOrder, dispatch: RrDispatch, buffer: usize) -> Self {
        RoundRobin {
            order_by,
            dispatch,
            buffer,
            ring: Vec::new(),
            ring_version: 0,
            cursor: 0,
            ring_pos: Vec::new(),
            kernel: IncrementalArgmin::new(),
        }
    }

    /// Same scheduler on the linear-scan reference kernel — the
    /// historical decision path, kept executable for equivalence tests
    /// and the `kernel-vs-scan` benchmarks.
    pub fn with_scan_kernel(mut self) -> Self {
        self.kernel = IncrementalArgmin::scan_reference();
        self
    }

    /// Overrides the kernel's small-`m` scan threshold (tests force the
    /// tree on tiny platforms with a threshold of 0).
    pub fn with_tree_threshold(mut self, threshold: usize) -> Self {
        self.kernel = IncrementalArgmin::new().with_threshold(threshold);
        self
    }

    fn ensure_ring(&mut self, view: &SimView<'_>) {
        if self.ring.is_empty() || self.ring_version != view.estimate_version() {
            self.ring_version = view.estimate_version();
            self.ring.clear();
            self.ring.extend(view.slave_ids());
            let order = self.order_by;
            self.ring.sort_by(|&a, &b| {
                let ka = order.key(view.believed_c(a), view.believed_p(a));
                let kb = order.key(view.believed_c(b), view.believed_p(b));
                ka.partial_cmp(&kb).unwrap().then(a.0.cmp(&b.0))
            });
            // Version-gated rebuild: the prescribed order moved, so the
            // ring-position keys the kernel indexes are stale — refill the
            // inverse permutation and drop the tree.
            self.ring_pos.clear();
            self.ring_pos.resize(self.ring.len(), f64::INFINITY);
            for (pos, &slave) in self.ring.iter().enumerate() {
                self.ring_pos[slave.0] = pos as f64;
            }
            self.kernel.invalidate();
        }
    }

    fn eligible(&self, view: &SimView<'_>, j: SlaveId) -> bool {
        view.slave(j).outstanding <= self.buffer
    }

    fn pick(&mut self, view: &SimView<'_>) -> Option<SlaveId> {
        match self.dispatch {
            RrDispatch::Priority => {
                // First eligible slave in prescribed order == argmin of
                // ring position over eligible slaves (ineligible → +∞;
                // every position is distinct so index tie-breaks never
                // fire). All-∞ makes the kernel report slave 0, which the
                // eligibility re-check below maps to `None` — exactly the
                // historical `find`.
                let ring_pos = &self.ring_pos;
                let buffer = self.buffer;
                let winner = self.kernel.argmin(view, |j| {
                    if view.slave(SlaveId(j)).outstanding <= buffer {
                        ring_pos[j]
                    } else {
                        f64::INFINITY
                    }
                });
                self.eligible(view, winner).then_some(winner)
            }
            RrDispatch::Cyclic => {
                let m = self.ring.len();
                for step in 0..m {
                    let pos = (self.cursor + step) % m;
                    let j = self.ring[pos];
                    if self.eligible(view, j) {
                        self.cursor = (pos + 1) % m;
                        return Some(j);
                    }
                }
                None
            }
        }
    }
}

impl OnlineScheduler for RoundRobin {
    fn name(&self) -> String {
        let base = match self.order_by {
            RrOrder::SumCp => "RR",
            RrOrder::CommOnly => "RRC",
            RrOrder::ProcOnly => "RRP",
        };
        match (self.dispatch, self.buffer) {
            (RrDispatch::Priority, 1) => base.to_string(),
            (RrDispatch::Priority, b) => format!("{base}(B={b})"),
            (RrDispatch::Cyclic, b) => format!("{base}(cyclic,B={b})"),
        }
    }

    fn init(&mut self, view: &SimView<'_>) {
        self.ring.clear();
        self.ring_version = 0;
        self.cursor = 0;
        self.ring_pos.clear();
        self.kernel.invalidate();
        self.ensure_ring(view);
    }

    fn on_event(&mut self, view: &SimView<'_>, _event: SchedulerEvent) -> Decision {
        self.ensure_ring(view);
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(task) = oldest_pending(view) else {
            return Decision::Idle;
        };
        match self.pick(view) {
            Some(slave) => Decision::Send { task, slave },
            None => Decision::Idle, // every slave saturated; wait for a completion
        }
    }

    fn poll_driven(&self) -> bool {
        // The ring is a pure function of the current view (it re-derives
        // from the believed keys whenever the estimate version moved), and
        // the cyclic cursor only advances when a send is issued — so
        // busy-port/empty-pending callbacks are observably pure.
        true
    }

    fn min_tier(&self) -> InfoTier {
        InfoTier::NonClairvoyant // ring keys re-derive from learned rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{bag_of_tasks, simulate, validate, Platform, SimConfig, TaskId};

    #[test]
    fn orderings_sort_as_specified() {
        // c = (2, 1, 3), p = (5, 9, 1):
        //   RR  key c+p = (7, 10, 4) → P3, P1, P2
        //   RRC key c   = (2, 1, 3)  → P2, P1, P3
        //   RRP key p   = (5, 9, 1)  → P3, P1, P2
        let pf = Platform::from_vectors(&[2.0, 1.0, 3.0], &[5.0, 9.0, 1.0]);
        let probe = |mut rr: RoundRobin| {
            let trace = simulate(&pf, &bag_of_tasks(1), &SimConfig::default(), &mut rr).unwrap();
            trace.record(TaskId(0)).slave
        };
        assert_eq!(probe(RoundRobin::rr()), SlaveId(2));
        assert_eq!(probe(RoundRobin::rrc()), SlaveId(1));
        assert_eq!(probe(RoundRobin::rrp()), SlaveId(2));
    }

    #[test]
    fn buffer_bounds_queueing() {
        // Single slave, buffer 1: at most 2 outstanding → the 3rd send waits
        // for the 1st completion.
        let pf = Platform::from_vectors(&[0.1], &[10.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut RoundRobin::rr(),
        )
        .unwrap();
        let r2 = trace.record(TaskId(2));
        // First completion at 0.1 + 10 = 10.1; third send may only start then.
        assert!(
            (r2.send_start.as_f64() - 10.1).abs() < 1e-9,
            "third send at {}",
            r2.send_start
        );
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn pipelines_and_beats_srpt_on_homogeneous() {
        use crate::heuristics::srpt::Srpt;
        let pf = Platform::homogeneous(3, 0.5, 2.0);
        let tasks = bag_of_tasks(30);
        let rr = simulate(&pf, &tasks, &SimConfig::default(), &mut RoundRobin::rr()).unwrap();
        let srpt = simulate(&pf, &tasks, &SimConfig::default(), &mut Srpt::new()).unwrap();
        assert!(rr.makespan() < srpt.makespan(), "Figure 1(a) shape");
    }

    #[test]
    fn rr_variants_identical_on_homogeneous() {
        let pf = Platform::homogeneous(4, 0.3, 2.5);
        let tasks = bag_of_tasks(20);
        let m = |mut s: RoundRobin| {
            simulate(&pf, &tasks, &SimConfig::default(), &mut s)
                .unwrap()
                .makespan()
        };
        let (rr, rrc, rrp) = (
            m(RoundRobin::rr()),
            m(RoundRobin::rrc()),
            m(RoundRobin::rrp()),
        );
        assert!((rr - rrc).abs() < 1e-9);
        assert!((rr - rrp).abs() < 1e-9);
    }

    #[test]
    fn rrc_ignores_speed_heterogeneity() {
        // Communication-homogeneous, p = (0.2, 8.0): RRP prefers the fast
        // slave; RRC's order is the index order and keeps feeding the slow
        // P1... except here P1 is fast. Make P1 slow to expose RRC.
        let pf = Platform::from_vectors(&[0.5, 0.5], &[8.0, 0.2]);
        let tasks = bag_of_tasks(40);
        let rrp = simulate(&pf, &tasks, &SimConfig::default(), &mut RoundRobin::rrp()).unwrap();
        let rrc = simulate(&pf, &tasks, &SimConfig::default(), &mut RoundRobin::rrc()).unwrap();
        assert!(
            rrp.makespan() <= rrc.makespan() + 1e-9,
            "RRP {} should not lose to RRC {} on comm-homogeneous platforms",
            rrp.makespan(),
            rrc.makespan()
        );
        // RRP sends the overwhelming majority to the fast slave.
        let counts = rrp.counts_per_slave(2);
        assert!(counts[1] > counts[0] * 3, "counts {counts:?}");
    }

    #[test]
    fn cyclic_mode_rotates() {
        let pf = Platform::homogeneous(3, 0.1, 10.0);
        let mut rr = RoundRobin::new(RrOrder::SumCp, RrDispatch::Cyclic, 1);
        let trace = simulate(&pf, &bag_of_tasks(3), &SimConfig::default(), &mut rr).unwrap();
        let slaves: Vec<_> = (0..3).map(|i| trace.record(TaskId(i)).slave.0).collect();
        assert_eq!(slaves, vec![0, 1, 2], "cyclic mode spreads the first round");
    }

    #[test]
    fn priority_mode_fills_first_slave_first() {
        let pf = Platform::homogeneous(3, 0.1, 10.0);
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut RoundRobin::rr(),
        )
        .unwrap();
        let slaves: Vec<_> = (0..3).map(|i| trace.record(TaskId(i)).slave.0).collect();
        // Buffer 1: P1 takes two tasks (computing + one queued), then P2.
        assert_eq!(slaves, vec![0, 0, 1]);
    }
}
