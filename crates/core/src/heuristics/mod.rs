//! The seven on-line heuristics of the paper's Section 4.1.
//!
//! | # | name | idea | knowledge used |
//! |---|------|------|----------------|
//! | 1 | [`Srpt`] | fastest *free* slave, no queueing | `p_j`, slave busyness |
//! | 2 | [`ListScheduling`] | eager earliest-estimated-completion | `c_j`, `p_j`, loads |
//! | 3 | [`RoundRobin::rr`] | demand-driven ring ordered by `p_j + c_j` | `c_j + p_j` |
//! | 4 | [`RoundRobin::rrc`] | ring ordered by `c_j` | `c_j` |
//! | 5 | [`RoundRobin::rrp`] | ring ordered by `p_j` | `p_j` |
//! | 6 | [`Planned::sljf`] | backward plan, communications ignored | `p_j`, `n` |
//! | 7 | [`Planned::sljfwc`] | backward plan on the reversed problem | `c_j`, `p_j`, `n` |

pub mod list_scheduling;
pub mod planning;
pub mod round_robin;
pub mod sljf;
pub mod srpt;
pub(crate) mod util;

pub use list_scheduling::ListScheduling;
pub use round_robin::{RoundRobin, RrDispatch, RrOrder};
pub use sljf::{PlanKind, Planned};
pub use srpt::Srpt;
