//! Small shared helpers for heuristic implementations.

use mss_sim::{chunked_argmin, SimView, SlaveId};

/// Returns the slave minimizing `key(j)`, ties broken by the lowest index.
/// Keys must not be NaN (debug-asserted inside the kernel; a
/// contract-violating NaN key can only be skipped in release builds,
/// never propagated as the winner — strict `<` comparisons).
///
/// This is the closure-key entry point of the decision-kernel layer: it
/// answers through [`mss_sim::chunked_argmin`], the exact 8-lane scan
/// whose winner is bit-identical to the historical sequential pass
/// ([`mss_sim::scan_argmin`]). Heuristics whose keys are journal-stable
/// (SRPT, RR eligibility) hold an [`mss_sim::IncrementalArgmin`] instead
/// and go sublinear in the slave count.
pub(crate) fn argmin_slave<F: FnMut(SlaveId) -> f64>(view: &SimView<'_>, mut key: F) -> SlaveId {
    debug_assert!(view.num_slaves() > 0, "platform has at least one slave");
    SlaveId(chunked_argmin(view.num_slaves(), |j| key(SlaveId(j))))
}

/// The oldest pending task (FIFO by release then id), if any.
pub(crate) fn oldest_pending(view: &SimView<'_>) -> Option<mss_sim::TaskId> {
    view.pending_tasks().first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{
        bag_of_tasks, simulate, Decision, OnlineScheduler, Platform, SchedulerEvent, SimConfig,
        SimView,
    };

    /// Exercises the helpers from inside a scheduler callback.
    struct HelperProbe;

    impl OnlineScheduler for HelperProbe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            let fastest = argmin_slave(view, |j| view.believed_p(j));
            assert_eq!(fastest, SlaveId(0), "P1 has the smallest p");
            let cheapest = argmin_slave(view, |j| view.believed_c(j));
            assert_eq!(cheapest, SlaveId(1), "P2 has the smallest c");
            match (view.link_idle(), oldest_pending(view)) {
                (true, Some(task)) => Decision::Send {
                    task,
                    slave: fastest,
                },
                _ => Decision::Idle,
            }
        }
    }

    #[test]
    fn helpers_pick_expected_slaves() {
        let pf = Platform::from_vectors(&[2.0, 1.0], &[3.0, 7.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(2),
            &SimConfig::default(),
            &mut HelperProbe,
        )
        .expect("probe completes");
        assert_eq!(trace.counts_per_slave(2), vec![2, 0]);
    }
}
