//! Small shared helpers for heuristic implementations.

use mss_sim::{SimView, SlaveId};

/// Returns the slave minimizing `key(j)`, ties broken by the lowest index.
/// Keys must not be NaN. Single pass, one key evaluation per slave (this
/// sits on every heuristic's per-decision hot path).
pub(crate) fn argmin_slave<F: FnMut(SlaveId) -> f64>(view: &SimView<'_>, mut key: F) -> SlaveId {
    let mut ids = view.slave_ids();
    let first = ids.next().expect("platform has at least one slave");
    let mut best = first;
    let mut best_key = key(first);
    debug_assert!(!best_key.is_nan(), "heuristic key must not be NaN");
    for j in ids {
        let k = key(j);
        debug_assert!(!k.is_nan(), "heuristic key must not be NaN");
        // Strict `<` keeps the lowest index on ties; NaN never wins here,
        // so even in release builds a (contract-violating) NaN key can
        // only be skipped, never propagated as the winner.
        if k < best_key {
            best = j;
            best_key = k;
        }
    }
    best
}

/// The oldest pending task (FIFO by release then id), if any.
pub(crate) fn oldest_pending(view: &SimView<'_>) -> Option<mss_sim::TaskId> {
    view.pending_tasks().first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{
        bag_of_tasks, simulate, Decision, OnlineScheduler, Platform, SchedulerEvent, SimConfig,
        SimView,
    };

    /// Exercises the helpers from inside a scheduler callback.
    struct HelperProbe;

    impl OnlineScheduler for HelperProbe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            let fastest = argmin_slave(view, |j| view.believed_p(j));
            assert_eq!(fastest, SlaveId(0), "P1 has the smallest p");
            let cheapest = argmin_slave(view, |j| view.believed_c(j));
            assert_eq!(cheapest, SlaveId(1), "P2 has the smallest c");
            match (view.link_idle(), oldest_pending(view)) {
                (true, Some(task)) => Decision::Send {
                    task,
                    slave: fastest,
                },
                _ => Decision::Idle,
            }
        }
    }

    #[test]
    fn helpers_pick_expected_slaves() {
        let pf = Platform::from_vectors(&[2.0, 1.0], &[3.0, 7.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(2),
            &SimConfig::default(),
            &mut HelperProbe,
        )
        .expect("probe completes");
        assert_eq!(trace.counts_per_slave(2), vec![2, 0]);
    }
}
