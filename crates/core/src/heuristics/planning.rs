//! Backward ("last job first") plan construction for SLJF and SLJFWC.
//!
//! The companion report the paper cites for these two algorithms (\[23\],
//! RR-2005-31) is not available; the constructions below follow the
//! description in the paper itself — "it calculates, before scheduling the
//! first task, the assignment of all tasks, starting with the last one" —
//! and are validated against the exhaustive optimum in `mss-opt`'s tests
//! (DESIGN.md, ablation A2).
//!
//! * [`sljf_dispatch`] ignores communications (the algorithm is designed for
//!   communication-homogeneous platforms): it first chooses how many tasks
//!   each slave executes by assigning tasks *from the last to the first* to
//!   the slave minimizing the resulting computation tail, then releases the
//!   task slots in earliest-computation-deadline order.
//! * [`sljfwc_dispatch`] ("With Communication") plans on the time-reversed
//!   problem, where distributing tasks becomes *collecting* them: in
//!   reversed time each task is computed on its slave for `p_j` and then
//!   shipped back over the one-port link for `c_j`. A greedy that always
//!   gives the next reversed task to the slave completing its reverse
//!   shipment first yields a reversed schedule; flipping it produces the
//!   dispatch order for the original problem. On communication-homogeneous
//!   platforms this degenerates exactly to SLJF's plan.

use mss_sim::{Platform, SlaveId};

/// How many tasks each slave executes under the backward greedy that
/// assigns tasks, last first, to the slave minimizing `(count_j + 1)·p_j`
/// (the optimal distribution of identical tasks over uniform machines when
/// communications are free).
pub fn backward_counts(platform: &Platform, n: usize) -> Vec<usize> {
    let m = platform.num_slaves();
    let mut counts = vec![0usize; m];
    for _ in 0..n {
        let j = (0..m)
            .min_by(|&a, &b| {
                let ka = (counts[a] + 1) as f64 * platform.p(SlaveId(a));
                let kb = (counts[b] + 1) as f64 * platform.p(SlaveId(b));
                ka.total_cmp(&kb).then(a.cmp(&b))
            })
            .expect("at least one slave");
        counts[j] += 1;
    }
    counts
}

/// SLJF dispatch order: `result[k]` is the slave of the `k`-th task sent.
///
/// Slot `(j, i)` (the `i`-th-from-last task of slave `j`) must start
/// computing `i·p_j` before the common finish line, so slots are released in
/// decreasing `i·p_j` — the most constrained computation gets the earliest
/// communication.
pub fn sljf_dispatch(platform: &Platform, n: usize) -> Vec<SlaveId> {
    let counts = backward_counts(platform, n);
    let mut slots: Vec<(f64, usize)> = Vec::with_capacity(n);
    for (j, &cnt) in counts.iter().enumerate() {
        let p = platform.p(SlaveId(j));
        for i in 1..=cnt {
            slots.push((i as f64 * p, j));
        }
    }
    slots.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    slots.into_iter().map(|(_, j)| SlaveId(j)).collect()
}

/// SLJFWC dispatch order via the time-reversed (collection) greedy.
///
/// In reversed time each task is *computed* on its slave for `p_j` and then
/// *shipped* back over the master's one-port link for `c_j`. As in the
/// paper's own schedules (e.g. the interval arithmetic of Theorem 4), a
/// slave may overlap communication with the computation of its next task —
/// only the master's port serializes. Reversed state: `ready[j]` is when
/// slave `j`'s compute unit frees, `port` when the master's reverse-port
/// frees. The greedy hands the next reversed task to the slave whose
/// reverse shipment `max(ready_j + p_j, port) + c_j` completes first and
/// charges only the computation to the slave. Reversing the resulting
/// sequence yields the original dispatch order.
pub fn sljfwc_dispatch(platform: &Platform, n: usize) -> Vec<SlaveId> {
    let m = platform.num_slaves();
    let mut ready = vec![0.0f64; m];
    let mut port = 0.0f64;
    let mut reversed: Vec<SlaveId> = Vec::with_capacity(n);
    for _ in 0..n {
        let (mut best_j, mut best_end) = (0usize, f64::INFINITY);
        for (j, &rj) in ready.iter().enumerate() {
            let p = platform.p(SlaveId(j));
            let c = platform.c(SlaveId(j));
            let end = (rj + p).max(port) + c;
            let better = end < best_end - 1e-15
                || ((end - best_end).abs() <= 1e-15 && c < platform.c(SlaveId(best_j)));
            if better {
                best_j = j;
                best_end = end;
            }
        }
        let j = SlaveId(best_j);
        // Compute occupies the slave; the shipment only occupies the port.
        ready[best_j] += platform.p(j);
        port = best_end;
        reversed.push(j);
    }
    reversed.reverse();
    reversed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::Platform;

    #[test]
    fn backward_counts_prefer_fast_slaves() {
        // p = (3, 7): for 3 tasks the greedy yields (2, 1) — the Theorem 1
        // platform, where the optimal schedule indeed runs two tasks on P1.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        assert_eq!(backward_counts(&pf, 3), vec![2, 1]);
        // A single task goes to the fastest slave ("the last job first").
        assert_eq!(backward_counts(&pf, 1), vec![1, 0]);
    }

    #[test]
    fn backward_counts_balance_equal_speeds() {
        let pf = Platform::homogeneous(3, 1.0, 5.0);
        assert_eq!(backward_counts(&pf, 7), vec![3, 2, 2]);
    }

    #[test]
    fn sljf_dispatch_sends_heaviest_backlog_first() {
        // Counts (2, 1) on p = (3, 7): slot keys P1: {3, 6}, P2: {7}.
        // Dispatch order: P2 (7), P1 (6), P1 (3).
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let plan = sljf_dispatch(&pf, 3);
        assert_eq!(plan, vec![SlaveId(1), SlaveId(0), SlaveId(0)]);
    }

    #[test]
    fn sljfwc_matches_sljf_on_comm_homogeneous() {
        // The two constructions may break ties differently (e.g. counts
        // (7,2) vs (6,3) at n = 9 on p = (3,7)), but on a
        // communication-homogeneous platform they must achieve the same
        // makespan when the plan is executed eagerly.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        for n in 1..12 {
            let eval = |plan: &[SlaveId]| {
                // Eager execution of a dispatch order: send k at k·c; each
                // slave computes FIFO back-to-back.
                let mut ready = vec![0.0f64; pf.num_slaves()];
                let mut makespan = 0.0f64;
                for (k, &j) in plan.iter().enumerate() {
                    let recv = (k + 1) as f64 * pf.c(j);
                    let start = ready[j.0].max(recv);
                    ready[j.0] = start + pf.p(j);
                    makespan = makespan.max(ready[j.0]);
                }
                makespan
            };
            let a = eval(&sljf_dispatch(&pf, n));
            let b = eval(&sljfwc_dispatch(&pf, n));
            assert!(
                (a - b).abs() < 1e-9,
                "makespans diverge at n = {n}: SLJF {a} vs SLJFWC {b}"
            );
        }
    }

    #[test]
    fn sljfwc_prefers_cheap_links_when_port_bound() {
        // p = 1 everywhere; c = (0.1, 2.0). The port is the bottleneck, so
        // the plan should route most tasks through the cheap link.
        let pf = Platform::from_vectors(&[0.1, 2.0], &[1.0, 1.0]);
        let plan = sljfwc_dispatch(&pf, 20);
        let cheap = plan.iter().filter(|j| j.0 == 0).count();
        assert!(cheap >= 15, "only {cheap}/20 tasks on the cheap link");
    }

    #[test]
    fn dispatch_lengths_match_n() {
        let pf = Platform::from_vectors(&[0.5, 1.0, 0.2], &[2.0, 3.0, 8.0]);
        for n in [0, 1, 5, 17] {
            assert_eq!(sljf_dispatch(&pf, n).len(), n);
            assert_eq!(sljfwc_dispatch(&pf, n).len(), n);
        }
    }

    #[test]
    fn theorem6_platform_dispatch() {
        // Thm 6 platform: c = (1, 2), p = 3. The proof's best schedule for
        // four tasks alternates P2, P1, P2, P1.
        let pf = Platform::from_vectors(&[1.0, 2.0], &[3.0, 3.0]);
        let plan = sljfwc_dispatch(&pf, 4);
        assert_eq!(
            plan,
            vec![SlaveId(1), SlaveId(0), SlaveId(1), SlaveId(0)],
            "expected the proof's alternating schedule"
        );
    }
}
