//! Backward ("last job first") plan construction for SLJF and SLJFWC.
//!
//! The companion report the paper cites for these two algorithms (\[23\],
//! RR-2005-31) is not available; the constructions below follow the
//! description in the paper itself — "it calculates, before scheduling the
//! first task, the assignment of all tasks, starting with the last one" —
//! and are validated against the exhaustive optimum in `mss-opt`'s tests
//! (DESIGN.md, ablation A2).
//!
//! * [`sljf_dispatch`] ignores communications (the algorithm is designed for
//!   communication-homogeneous platforms): it first chooses how many tasks
//!   each slave executes by assigning tasks *from the last to the first* to
//!   the slave minimizing the resulting computation tail, then releases the
//!   task slots in earliest-computation-deadline order.
//! * [`sljfwc_dispatch`] ("With Communication") plans on the time-reversed
//!   problem, where distributing tasks becomes *collecting* them: in
//!   reversed time each task is computed on its slave for `p_j` and then
//!   shipped back over the one-port link for `c_j`. A greedy that always
//!   gives the next reversed task to the slave completing its reverse
//!   shipment first yields a reversed schedule; flipping it produces the
//!   dispatch order for the original problem. On communication-homogeneous
//!   platforms this degenerates exactly to SLJF's plan.

use mss_sim::{Platform, SlaveId};

/// Reusable scratch state for the backward plan constructions.
///
/// Plan construction used to allocate four vectors per (re)plan — the
/// believed `c`/`p` rate snapshots, the per-slave counts, and the slot /
/// reverse-ready work arrays. A [`Planned`](super::Planned) scheduler now
/// owns one `PlanScratch` and replans into it, so a scheduler reused
/// across sweep cells (or replanning after drift) touches the allocator
/// only until the high-water capacity is reached. The arithmetic and
/// tie-breaking are unchanged — plans are bit-identical to the historical
/// allocating constructions, which survive below as thin wrappers.
#[derive(Clone, Debug, Default)]
pub struct PlanScratch {
    /// Communication rates the plan is built over (nominal or believed).
    c: Vec<f64>,
    /// Computation rates the plan is built over (nominal or believed).
    p: Vec<f64>,
    /// Backward-greedy tasks-per-slave counts.
    counts: Vec<usize>,
    /// SLJF slot keys `(i·p_j, j)` awaiting the deadline sort.
    slots: Vec<(f64, usize)>,
    /// SLJFWC reversed-time compute-ready instants.
    ready: Vec<f64>,
}

impl PlanScratch {
    /// Loads the rate snapshot the next plan will be built over.
    pub fn fill_rates<I: IntoIterator<Item = (f64, f64)>>(&mut self, rates: I) {
        self.c.clear();
        self.p.clear();
        for (c, p) in rates {
            self.c.push(c);
            self.p.push(p);
        }
    }

    /// Loads the platform's nominal rates.
    pub fn fill_nominal(&mut self, platform: &Platform) {
        self.fill_rates(platform.slave_ids().map(|j| (platform.c(j), platform.p(j))));
    }

    /// The backward greedy over `self.p`: assigns tasks, last first, to the
    /// slave minimizing `(count_j + 1)·p_j`, leaving the result in
    /// `self.counts`.
    fn backward_counts_inner(&mut self, n: usize) {
        let m = self.p.len();
        self.counts.clear();
        self.counts.resize(m, 0);
        let (counts, p) = (&mut self.counts, &self.p);
        for _ in 0..n {
            let j = (0..m)
                .min_by(|&a, &b| {
                    let ka = (counts[a] + 1) as f64 * p[a];
                    let kb = (counts[b] + 1) as f64 * p[b];
                    ka.total_cmp(&kb).then(a.cmp(&b))
                })
                .expect("at least one slave");
            counts[j] += 1;
        }
    }

    /// SLJF dispatch order into `out` (see [`sljf_dispatch`]).
    pub fn sljf_into(&mut self, n: usize, out: &mut Vec<SlaveId>) {
        self.backward_counts_inner(n);
        self.slots.clear();
        self.slots.reserve(n);
        for (j, &cnt) in self.counts.iter().enumerate() {
            let p = self.p[j];
            for i in 1..=cnt {
                self.slots.push((i as f64 * p, j));
            }
        }
        self.slots
            .sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        out.clear();
        out.extend(self.slots.iter().map(|&(_, j)| SlaveId(j)));
    }

    /// SLJFWC dispatch order into `out` (see [`sljfwc_dispatch`]).
    pub fn sljfwc_into(&mut self, n: usize, out: &mut Vec<SlaveId>) {
        let m = self.p.len();
        self.ready.clear();
        self.ready.resize(m, 0.0);
        let mut port = 0.0f64;
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            let (mut best_j, mut best_end) = (0usize, f64::INFINITY);
            for (j, &rj) in self.ready.iter().enumerate() {
                let end = (rj + self.p[j]).max(port) + self.c[j];
                let better = end < best_end - 1e-15
                    || ((end - best_end).abs() <= 1e-15 && self.c[j] < self.c[best_j]);
                if better {
                    best_j = j;
                    best_end = end;
                }
            }
            // Compute occupies the slave; the shipment only occupies the port.
            self.ready[best_j] += self.p[best_j];
            port = best_end;
            out.push(SlaveId(best_j));
        }
        out.reverse();
    }
}

/// How many tasks each slave executes under the backward greedy that
/// assigns tasks, last first, to the slave minimizing `(count_j + 1)·p_j`
/// (the optimal distribution of identical tasks over uniform machines when
/// communications are free).
pub fn backward_counts(platform: &Platform, n: usize) -> Vec<usize> {
    let mut scratch = PlanScratch::default();
    scratch.fill_nominal(platform);
    scratch.backward_counts_inner(n);
    scratch.counts
}

/// SLJF dispatch order: `result[k]` is the slave of the `k`-th task sent.
///
/// Slot `(j, i)` (the `i`-th-from-last task of slave `j`) must start
/// computing `i·p_j` before the common finish line, so slots are released in
/// decreasing `i·p_j` — the most constrained computation gets the earliest
/// communication.
pub fn sljf_dispatch(platform: &Platform, n: usize) -> Vec<SlaveId> {
    let mut scratch = PlanScratch::default();
    scratch.fill_nominal(platform);
    let mut out = Vec::new();
    scratch.sljf_into(n, &mut out);
    out
}

/// SLJFWC dispatch order via the time-reversed (collection) greedy.
///
/// In reversed time each task is *computed* on its slave for `p_j` and then
/// *shipped* back over the master's one-port link for `c_j`. As in the
/// paper's own schedules (e.g. the interval arithmetic of Theorem 4), a
/// slave may overlap communication with the computation of its next task —
/// only the master's port serializes. Reversed state: `ready[j]` is when
/// slave `j`'s compute unit frees, `port` when the master's reverse-port
/// frees. The greedy hands the next reversed task to the slave whose
/// reverse shipment `max(ready_j + p_j, port) + c_j` completes first and
/// charges only the computation to the slave. Reversing the resulting
/// sequence yields the original dispatch order.
pub fn sljfwc_dispatch(platform: &Platform, n: usize) -> Vec<SlaveId> {
    let mut scratch = PlanScratch::default();
    scratch.fill_nominal(platform);
    let mut out = Vec::new();
    scratch.sljfwc_into(n, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::Platform;

    #[test]
    fn backward_counts_prefer_fast_slaves() {
        // p = (3, 7): for 3 tasks the greedy yields (2, 1) — the Theorem 1
        // platform, where the optimal schedule indeed runs two tasks on P1.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        assert_eq!(backward_counts(&pf, 3), vec![2, 1]);
        // A single task goes to the fastest slave ("the last job first").
        assert_eq!(backward_counts(&pf, 1), vec![1, 0]);
    }

    #[test]
    fn backward_counts_balance_equal_speeds() {
        let pf = Platform::homogeneous(3, 1.0, 5.0);
        assert_eq!(backward_counts(&pf, 7), vec![3, 2, 2]);
    }

    #[test]
    fn sljf_dispatch_sends_heaviest_backlog_first() {
        // Counts (2, 1) on p = (3, 7): slot keys P1: {3, 6}, P2: {7}.
        // Dispatch order: P2 (7), P1 (6), P1 (3).
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let plan = sljf_dispatch(&pf, 3);
        assert_eq!(plan, vec![SlaveId(1), SlaveId(0), SlaveId(0)]);
    }

    #[test]
    fn sljfwc_matches_sljf_on_comm_homogeneous() {
        // The two constructions may break ties differently (e.g. counts
        // (7,2) vs (6,3) at n = 9 on p = (3,7)), but on a
        // communication-homogeneous platform they must achieve the same
        // makespan when the plan is executed eagerly.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        for n in 1..12 {
            let eval = |plan: &[SlaveId]| {
                // Eager execution of a dispatch order: send k at k·c; each
                // slave computes FIFO back-to-back.
                let mut ready = vec![0.0f64; pf.num_slaves()];
                let mut makespan = 0.0f64;
                for (k, &j) in plan.iter().enumerate() {
                    let recv = (k + 1) as f64 * pf.c(j);
                    let start = ready[j.0].max(recv);
                    ready[j.0] = start + pf.p(j);
                    makespan = makespan.max(ready[j.0]);
                }
                makespan
            };
            let a = eval(&sljf_dispatch(&pf, n));
            let b = eval(&sljfwc_dispatch(&pf, n));
            assert!(
                (a - b).abs() < 1e-9,
                "makespans diverge at n = {n}: SLJF {a} vs SLJFWC {b}"
            );
        }
    }

    #[test]
    fn sljfwc_prefers_cheap_links_when_port_bound() {
        // p = 1 everywhere; c = (0.1, 2.0). The port is the bottleneck, so
        // the plan should route most tasks through the cheap link.
        let pf = Platform::from_vectors(&[0.1, 2.0], &[1.0, 1.0]);
        let plan = sljfwc_dispatch(&pf, 20);
        let cheap = plan.iter().filter(|j| j.0 == 0).count();
        assert!(cheap >= 15, "only {cheap}/20 tasks on the cheap link");
    }

    #[test]
    fn dispatch_lengths_match_n() {
        let pf = Platform::from_vectors(&[0.5, 1.0, 0.2], &[2.0, 3.0, 8.0]);
        for n in [0, 1, 5, 17] {
            assert_eq!(sljf_dispatch(&pf, n).len(), n);
            assert_eq!(sljfwc_dispatch(&pf, n).len(), n);
        }
    }

    #[test]
    fn theorem6_platform_dispatch() {
        // Thm 6 platform: c = (1, 2), p = 3. The proof's best schedule for
        // four tasks alternates P2, P1, P2, P1.
        let pf = Platform::from_vectors(&[1.0, 2.0], &[3.0, 3.0]);
        let plan = sljfwc_dispatch(&pf, 4);
        assert_eq!(
            plan,
            vec![SlaveId(1), SlaveId(0), SlaveId(1), SlaveId(0)],
            "expected the proof's alternating schedule"
        );
    }
}
