//! SRPT — the paper's dynamic baseline (§4.1, algorithm 1).
//!
//! > "it sends a task to the fastest free slave; if no slave is currently
//! > free, it waits for the first slave to finish its task, and then sends
//! > it a new one."
//!
//! With identical tasks and no preemption this is all that remains of
//! Shortest Remaining Processing Time. The defining property is that it
//! never queues work on a busy slave: a slave therefore always sits idle
//! while its next task is being transferred, which is why the static
//! heuristics (which overlap communication with computation) beat it —
//! Figure 1(a).

use crate::heuristics::util::oldest_pending;
use mss_sim::{
    Decision, IncrementalArgmin, InfoTier, OnlineScheduler, SchedulerEvent, SimView, SlaveId,
};

/// The SRPT heuristic. Observationally stateless — decisions depend only
/// on the current view — but it carries an [`IncrementalArgmin`] decision
/// kernel, so "fastest free slave" is answered sublinearly in the slave
/// count: SRPT's key (`believed_p` if idle, `+∞` otherwise) is a pure
/// function of journaled per-slave state, exactly what the tournament
/// tree can index. The winner is bit-identical to the historical linear
/// scan at every slave count.
///
/// Tier-portable: "fastest" is read through
/// [`SimView::believed_p`], so below [`InfoTier::Clairvoyant`] SRPT ranks
/// slaves by their learned computation rates (all equal under the prior)
/// and sharpens as completions are observed.
#[derive(Clone, Debug, Default)]
pub struct Srpt {
    kernel: IncrementalArgmin,
}

impl Srpt {
    /// A kernel-backed SRPT (the production configuration).
    pub fn new() -> Self {
        Srpt::default()
    }

    /// SRPT on the linear-scan reference kernel — the historical
    /// decision path, kept executable for equivalence tests and the
    /// `kernel-vs-scan` benchmarks.
    pub fn scan_reference() -> Self {
        Srpt {
            kernel: IncrementalArgmin::scan_reference(),
        }
    }

    /// Overrides the kernel's small-`m` scan threshold (tests force the
    /// tree on tiny platforms with a threshold of 0).
    pub fn with_tree_threshold(mut self, threshold: usize) -> Self {
        self.kernel = IncrementalArgmin::new().with_threshold(threshold);
        self
    }
}

impl OnlineScheduler for Srpt {
    fn name(&self) -> String {
        "SRPT".into()
    }

    fn init(&mut self, _view: &SimView<'_>) {
        // The kernel also detects run changes by journal nonce; the
        // explicit drop just makes reuse across harnesses airtight.
        self.kernel.invalidate();
    }

    fn on_event(&mut self, view: &SimView<'_>, _event: SchedulerEvent) -> Decision {
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(task) = oldest_pending(view) else {
            return Decision::Idle;
        };
        // Fastest *free* slave; a slave is free when it has no outstanding
        // work at all (not computing, nothing queued, nothing in flight).
        // Allocation-free kernel query (ties go to the lowest index); when
        // no slave is free, wait for the next completion event — the engine
        // will call again.
        let slave = self.kernel.argmin(view, |j| {
            let j = SlaveId(j);
            if view.slave_idle(j) {
                view.believed_p(j)
            } else {
                f64::INFINITY
            }
        });
        if view.slave_idle(slave) {
            Decision::Send { task, slave }
        } else {
            Decision::Idle
        }
    }

    fn poll_driven(&self) -> bool {
        true // acts only on (idle port, pending task); kernel sync happens
             // after those guards, so elided callbacks observe no state change
    }

    fn min_tier(&self) -> InfoTier {
        InfoTier::NonClairvoyant // lives on believed values at any tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{bag_of_tasks, simulate, validate, Platform, SimConfig, SlaveId, TaskId};

    #[test]
    fn sends_to_fastest_free_slave_first() {
        // p = (3, 7): the first task must go to P1, the second to P2
        // (P1 is busy by then), the third waits for P1 to finish.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut Srpt::new(),
        )
        .unwrap();
        assert!(validate(&trace, &pf).is_empty());
        assert_eq!(trace.record(TaskId(0)).slave, SlaveId(0));
        assert_eq!(trace.record(TaskId(1)).slave, SlaveId(1));
        // Task 2: P1 finishes its first task at 1+3=4, so the send starts at 4.
        let r2 = trace.record(TaskId(2));
        assert_eq!(r2.slave, SlaveId(0));
        assert_eq!(r2.send_start.as_f64(), 4.0);
    }

    #[test]
    fn never_queues_on_busy_slaves() {
        let pf = Platform::from_vectors(&[0.5, 0.5, 0.5], &[2.0, 2.0, 2.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(9),
            &SimConfig::default(),
            &mut Srpt::new(),
        )
        .unwrap();
        // Each task's compute starts exactly when its send ends: the target
        // slave was idle when the send started (0.5s earlier) and stays idle.
        for r in trace.records() {
            assert_eq!(
                r.compute_start, r.send_end,
                "SRPT target slave must be idle on receipt"
            );
        }
    }

    #[test]
    fn no_overlap_penalty_visible_in_makespan() {
        // One slave: SRPT serializes c+p per task: makespan = n(c+p).
        let pf = Platform::from_vectors(&[1.0], &[3.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(4),
            &SimConfig::default(),
            &mut Srpt::new(),
        )
        .unwrap();
        assert!((trace.makespan() - 4.0 * 4.0).abs() < 1e-9);
    }
}
