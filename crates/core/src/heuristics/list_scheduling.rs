//! LS — List Scheduling (§4.1, algorithm 2), "the static version of SRPT".
//!
//! > "It uses its knowledge of the system and sends a task as soon as
//! > possible to the slave that would finish it first, according to the
//! > current load estimation (the number of tasks already waiting for
//! > execution on the slave)."
//!
//! LS is eager: whenever the port is idle and a task is pending, it sends it
//! to the slave minimizing the estimated completion time
//! `max(link_free + c_j, ready_j) + p_j`. On fully homogeneous platforms
//! this is the provably optimal FIFO strategy of the paper's introduction
//! (verified against the exhaustive optimum in `mss-opt`'s tests).

use crate::heuristics::util::{argmin_slave, oldest_pending};
use mss_sim::{Decision, InfoTier, OnlineScheduler, SchedulerEvent, SimView};

/// The List Scheduling heuristic. Stateless.
///
/// Tier-portable: [`SimView::completion_estimate`] already dispatches on
/// the view's information tier, so below `Clairvoyant` LS minimizes the
/// same formula over learned per-slave rates instead of nominal values.
#[derive(Clone, Copy, Debug, Default)]
pub struct ListScheduling;

impl OnlineScheduler for ListScheduling {
    fn name(&self) -> String {
        "LS".into()
    }

    fn on_event(&mut self, view: &SimView<'_>, _event: SchedulerEvent) -> Decision {
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(task) = oldest_pending(view) else {
            return Decision::Idle;
        };
        let slave = argmin_slave(view, |j| view.completion_estimate(j).as_f64());
        Decision::Send { task, slave }
    }

    fn poll_driven(&self) -> bool {
        true // stateless; acts only on (idle port, pending task)
    }

    fn min_tier(&self) -> InfoTier {
        InfoTier::NonClairvoyant // the tier-dispatched estimate suffices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{bag_of_tasks, simulate, validate, Platform, SimConfig, SlaveId, TaskId};

    #[test]
    fn overlaps_communication_with_computation() {
        // One slave, c=1, p=3: LS pipelines sends; makespan = c + n·p.
        let pf = Platform::from_vectors(&[1.0], &[3.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(4),
            &SimConfig::default(),
            &mut ListScheduling,
        )
        .unwrap();
        assert!((trace.makespan() - (1.0 + 4.0 * 3.0)).abs() < 1e-9);
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn prefers_earliest_finisher() {
        // p = (3, 7), c = 1, two tasks: both go to P1
        // (finish estimates: P1 then P1-queued beats P2).
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(2),
            &SimConfig::default(),
            &mut ListScheduling,
        )
        .unwrap();
        assert_eq!(trace.record(TaskId(0)).slave, SlaveId(0));
        // Task 1: est P1 = max(2·c, c+p1)+p1 = 4+3 = 7; est P2 = 2c+p2 = 9.
        assert_eq!(trace.record(TaskId(1)).slave, SlaveId(0));
        assert!((trace.makespan() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn accounts_for_communication_costs() {
        // Same speeds, very different links: LS must prefer the cheap link.
        let pf = Platform::from_vectors(&[0.1, 5.0], &[1.0, 1.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut ListScheduling,
        )
        .unwrap();
        let counts = trace.counts_per_slave(2);
        assert_eq!(counts[1], 0, "expensive link should be avoided entirely");
    }

    #[test]
    fn beats_srpt_on_homogeneous_platforms() {
        use crate::heuristics::srpt::Srpt;
        let pf = Platform::homogeneous(3, 0.5, 2.0);
        let tasks = bag_of_tasks(30);
        let ls = simulate(&pf, &tasks, &SimConfig::default(), &mut ListScheduling).unwrap();
        let srpt = simulate(&pf, &tasks, &SimConfig::default(), &mut Srpt::new()).unwrap();
        assert!(
            ls.makespan() < srpt.makespan(),
            "LS {} should beat SRPT {} (Figure 1a)",
            ls.makespan(),
            srpt.makespan()
        );
    }
}
