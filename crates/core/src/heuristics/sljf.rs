//! SLJF and SLJFWC — the paper's two plan-ahead heuristics (§4.1, 6–7).
//!
//! Both compute, before sending anything, the assignment of a whole window
//! of tasks *starting from the last one* (see
//! [`planning`](crate::heuristics::planning) for the constructions), then
//! dispatch arriving tasks to the planned slots in order. Tasks beyond the
//! planned window fall back to List Scheduling — exactly the paper's on-line
//! adaptation: *"Once the last assignment is done, we continue to send the
//! remaining tasks, each task being sent to the processor that would finish
//! it the earliest."*
//!
//! The planning window is, in order of preference: an explicit window given
//! at construction, the engine's horizon hint (the paper tells these
//! algorithms the total number of tasks), or the number of tasks released by
//! the time of the first decision (which covers the bag-of-tasks regime).

use crate::heuristics::list_scheduling::ListScheduling;
use crate::heuristics::planning::PlanScratch;
use crate::heuristics::util::oldest_pending;
use mss_sim::{Decision, InfoTier, OnlineScheduler, SchedulerEvent, SimView, SlaveId};

/// Which backward construction the scheduler plans with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Scheduling the Last Job First (ignores communications; designed for
    /// communication-homogeneous platforms).
    Sljf,
    /// Scheduling the Last Job First *With Communication* (time-reversed
    /// collection greedy; designed for computation-homogeneous platforms).
    Sljfwc,
}

impl PlanKind {
    fn plan_into(self, scratch: &mut PlanScratch, n: usize, out: &mut Vec<SlaveId>) {
        match self {
            PlanKind::Sljf => scratch.sljf_into(n, out),
            PlanKind::Sljfwc => scratch.sljfwc_into(n, out),
        }
    }
}

/// A plan-ahead scheduler (SLJF or SLJFWC by [`PlanKind`]).
///
/// Owns its [`PlanScratch`] and a reusable plan vector: replanning (a new
/// run in a sweep, or after `init`) rewrites the same buffers instead of
/// allocating per plan, so the scheduler's steady state is allocation-free
/// once every buffer has reached its high-water capacity.
#[derive(Clone, Debug)]
pub struct Planned {
    kind: PlanKind,
    window: Option<usize>,
    plan: Vec<SlaveId>,
    planned: bool,
    next: usize,
    scratch: PlanScratch,
    fallback: ListScheduling,
}

impl Planned {
    /// SLJF with the window taken from the horizon hint / first release batch.
    pub fn sljf() -> Self {
        Planned::new(PlanKind::Sljf, None)
    }

    /// SLJFWC with the window taken from the horizon hint / first release batch.
    pub fn sljfwc() -> Self {
        Planned::new(PlanKind::Sljfwc, None)
    }

    /// Fully parameterized constructor; `window` forces the plan size.
    pub fn new(kind: PlanKind, window: Option<usize>) -> Self {
        Planned {
            kind,
            window,
            plan: Vec::new(),
            planned: false,
            next: 0,
            scratch: PlanScratch::default(),
            fallback: ListScheduling,
        }
    }

    fn ensure_plan(&mut self, view: &SimView<'_>) {
        if !self.planned {
            let n = self
                .window
                .or(view.horizon())
                .unwrap_or(view.released_count())
                .max(1);
            match view.info_tier() {
                InfoTier::Clairvoyant => self.scratch.fill_nominal(view.platform()),
                // Below clairvoyance the plan is built over the *believed*
                // platform (learned per-slave rates; the neutral prior
                // before any observation spreads the plan evenly).
                _ => self.scratch.fill_rates(
                    view.slave_ids()
                        .map(|j| (view.believed_c(j), view.believed_p(j))),
                ),
            }
            self.kind.plan_into(&mut self.scratch, n, &mut self.plan);
            self.planned = true;
        }
    }

    /// The planned dispatch order (for tests and the lab); `None` before the
    /// first decision.
    pub fn plan(&self) -> Option<&[SlaveId]> {
        self.planned.then_some(self.plan.as_slice())
    }
}

impl OnlineScheduler for Planned {
    fn name(&self) -> String {
        match self.kind {
            PlanKind::Sljf => "SLJF".into(),
            PlanKind::Sljfwc => "SLJFWC".into(),
        }
    }

    fn init(&mut self, _view: &SimView<'_>) {
        // Buffers keep their capacity; only the logical plan is dropped.
        self.planned = false;
        self.next = 0;
    }

    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision {
        if !view.link_idle() {
            return Decision::Idle;
        }
        let Some(task) = oldest_pending(view) else {
            return Decision::Idle;
        };
        self.ensure_plan(view);
        if self.next < self.plan.len() {
            let slave = self.plan[self.next];
            self.next += 1;
            Decision::Send { task, slave }
        } else {
            // Window exhausted: list-scheduling tail, as in the paper.
            self.fallback.on_event(view, event)
        }
    }

    fn poll_driven(&self) -> bool {
        // The plan is only (lazily) built, and `next` only advances, after
        // the idle-port and pending-task guards pass.
        true
    }

    fn min_tier(&self) -> InfoTier {
        // Stays live at every tier: without the horizon hint
        // (NonClairvoyant) the window falls back to the released count,
        // and without nominal values the plan is built over learned rates.
        InfoTier::NonClairvoyant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_sim::{bag_of_tasks, simulate, validate, Platform, SimConfig, TaskArrival, TaskId};

    #[test]
    fn sljf_achieves_theorem1_optimum() {
        // Theorem 1 platform (c = 1, p = (3,7)) with three tasks at t = 0:
        // the proof's optimal schedule sends T0 to P2 then two tasks to P1,
        // for makespan 8. SLJF must reproduce it.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut Planned::sljf(),
        )
        .unwrap();
        assert!(validate(&trace, &pf).is_empty());
        assert!(
            (trace.makespan() - 8.0).abs() < 1e-9,
            "makespan {}",
            trace.makespan()
        );
        assert_eq!(trace.record(TaskId(0)).slave, mss_sim::SlaveId(1));
    }

    #[test]
    fn window_from_horizon_hint() {
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        // Tasks arrive over time; the horizon hint lets SLJF plan all four.
        let tasks = [
            TaskArrival::at(0.0),
            TaskArrival::at(0.5),
            TaskArrival::at(1.0),
            TaskArrival::at(1.5),
        ];
        let mut sched = Planned::sljf();
        let trace = simulate(&pf, &tasks, &SimConfig::with_horizon(4), &mut sched).unwrap();
        assert_eq!(sched.plan().unwrap().len(), 4);
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn tail_falls_back_to_list_scheduling() {
        // Explicit window of 1 on a 5-task instance: the remaining 4 tasks
        // are list-scheduled and the run still completes and validates.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let mut sched = Planned::new(PlanKind::Sljf, Some(1));
        let trace = simulate(&pf, &bag_of_tasks(5), &SimConfig::default(), &mut sched).unwrap();
        assert!(validate(&trace, &pf).is_empty());
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn sljfwc_handles_heterogeneous_links() {
        let pf = Platform::from_vectors(&[0.1, 2.0], &[1.0, 1.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(20),
            &SimConfig::default(),
            &mut Planned::sljfwc(),
        )
        .unwrap();
        assert!(validate(&trace, &pf).is_empty());
        let counts = trace.counts_per_slave(2);
        assert!(
            counts[0] > counts[1],
            "cheap link should dominate: {counts:?}"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let pf = Platform::from_vectors(&[0.3, 0.7, 1.0], &[2.0, 4.0, 8.0]);
        let tasks = bag_of_tasks(12);
        // The closure takes `&mut Planned` rather than `Planned` by value:
        // the by-value form is miscompiled at opt-level >= 2 on rustc 1.95.0
        // (the parameter's plan `Vec` is freed twice when the closure is
        // inlined at two call sites), SIGABRTing the release test run. See
        // docs/repro/closure_byvalue_double_free.rs for the pinned
        // dependency-free reproducer.
        let run = |s: &mut Planned| simulate(&pf, &tasks, &SimConfig::default(), s).unwrap();
        assert_eq!(run(&mut Planned::sljf()), run(&mut Planned::sljf()));
        assert_eq!(run(&mut Planned::sljfwc()), run(&mut Planned::sljfwc()));
    }
}
