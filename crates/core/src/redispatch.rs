//! `Redispatch` — a fault-aware wrapper around any on-line scheduler.
//!
//! None of the paper's seven algorithms knows about failures: on a dynamic
//! platform they happily target down slaves, wasting the master's port on
//! transfers that are lost on arrival (SRPT even livelocks: a down slave
//! looks permanently *free*). The engine already re-releases lost tasks
//! into the pending queue, so the missing piece is purely spatial:
//!
//! * a [`Decision::Send`] aimed at a **down** slave is *redirected* to the
//!   available slave with the earliest nominal completion estimate (the
//!   List-Scheduling criterion), so re-queued lost tasks always make
//!   progress;
//! * when **no** slave is available the wrapper answers [`Decision::Idle`]
//!   — the recovery event will wake the scheduler again;
//! * everything else passes through untouched, and on a static platform
//!   the wrapper is the identity (every slave is always available), so
//!   wrapped and unwrapped runs are bit-identical.
//!
//! The inner policy keeps its own counters (ring cursors, plans); a
//! redirection may therefore violate the inner policy's invariants (e.g.
//! queue on a busy slave under SRPT). That is deliberate: the wrapper
//! trades policy purity for liveness, which is the fault-tolerance contract.
//!
//! The wrapper sits on the engine's zero-allocation hot path: it reads the
//! same borrowed [`SimView`] it hands to the inner scheduler (the engine's
//! incrementally maintained per-slave state — see `mss_sim`'s engine docs)
//! and redirects without allocating, so wrapping adds only an O(m) argmin
//! to the per-decision cost.

use mss_sim::{
    chunked_argmin, Decision, InfoTier, OnlineScheduler, SchedulerEvent, SimView, SlaveId,
};

/// Fault-aware redispatch wrapper (see the module docs).
#[derive(Clone, Debug)]
pub struct Redispatch<S> {
    inner: S,
}

impl<S: OnlineScheduler> Redispatch<S> {
    /// Wraps a scheduler.
    pub fn new(inner: S) -> Self {
        Redispatch { inner }
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl Redispatch<Box<dyn OnlineScheduler>> {
    /// Wraps a fresh instance of a registry algorithm.
    pub fn wrap(algorithm: crate::Algorithm) -> Self {
        Redispatch::new(algorithm.build())
    }
}

/// The available slave finishing a new nominal task the earliest, if any.
///
/// Answers through the decision kernel's exact chunked scan: the
/// completion estimate depends on the current time and link occupation
/// (not journal-stable per-slave state), so it takes the closure-key
/// path rather than the tournament tree. Down slaves key to `+∞`; an
/// unavailable winner means *every* slave keyed to `+∞`, i.e. blackout.
fn best_available(view: &SimView<'_>) -> Option<SlaveId> {
    let winner = SlaveId(chunked_argmin(view.num_slaves(), |j| {
        let j = SlaveId(j);
        if view.slave_available(j) {
            view.completion_estimate(j).as_f64()
        } else {
            f64::INFINITY
        }
    }));
    view.slave_available(winner).then_some(winner)
}

impl<S: OnlineScheduler> OnlineScheduler for Redispatch<S> {
    fn name(&self) -> String {
        format!("{}+RD", self.inner.name())
    }

    fn init(&mut self, view: &SimView<'_>) {
        self.inner.init(view);
    }

    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision {
        match self.inner.on_event(view, event) {
            Decision::Send { task, slave } if !view.slave_available(slave) => {
                match best_available(view) {
                    Some(slave) => Decision::Send { task, slave },
                    None => Decision::Idle, // blackout: wait for a recovery
                }
            }
            other => other,
        }
    }

    fn poll_driven(&self) -> bool {
        // Pure decision transformer: quiescent exactly when the inner
        // scheduler is.
        self.inner.poll_driven()
    }

    fn min_tier(&self) -> InfoTier {
        // The redirection criterion is the tier-dispatched completion
        // estimate, so the wrapper needs nothing beyond what the inner
        // scheduler needs.
        self.inner.min_tier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use mss_sim::{
        bag_of_tasks, simulate, simulate_with_events, validate, Platform, PlatformEvent,
        PlatformEventKind, SimConfig, Time, Timeline,
    };

    fn platform() -> Platform {
        Platform::from_vectors(&[0.4, 1.0, 0.2], &[2.0, 5.0, 7.0])
    }

    fn crash_recover(j: usize, fail: f64, recover: f64) -> Timeline {
        Timeline::new(vec![
            PlatformEvent {
                time: Time::new(fail),
                slave: SlaveId(j),
                kind: PlatformEventKind::Fail,
            },
            PlatformEvent {
                time: Time::new(recover),
                slave: SlaveId(j),
                kind: PlatformEventKind::Recover,
            },
        ])
    }

    #[test]
    fn identity_on_static_platforms() {
        let pf = platform();
        let tasks = bag_of_tasks(25);
        let cfg = SimConfig::with_horizon(tasks.len());
        for a in Algorithm::ALL {
            let plain = simulate(&pf, &tasks, &cfg, &mut a.build()).unwrap();
            let wrapped = simulate(&pf, &tasks, &cfg, &mut Redispatch::wrap(a)).unwrap();
            assert_eq!(plain, wrapped, "{a}: wrapper must be identity when static");
        }
    }

    #[test]
    fn all_seven_survive_a_crash() {
        // P1 (the fastest) dies at t=4 and returns at t=30: every wrapped
        // algorithm must still complete a valid schedule.
        let pf = platform();
        let tasks = bag_of_tasks(25);
        let cfg = SimConfig::with_horizon(tasks.len());
        let tl = crash_recover(0, 4.0, 30.0);
        for a in Algorithm::ALL {
            let trace = simulate_with_events(&pf, &tasks, &cfg, &tl, &mut Redispatch::wrap(a))
                .unwrap_or_else(|e| panic!("{a}+RD failed: {e}"));
            assert_eq!(trace.len(), tasks.len());
            let violations = validate(&trace, &pf);
            assert!(violations.is_empty(), "{a}+RD: {violations:?}");
        }
    }

    #[test]
    fn redirection_avoids_the_down_slave() {
        // One fast, one slow slave. SRPT alone would resend to the down
        // fast slave forever; wrapped, the send goes to the slow one.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let tl = crash_recover(0, 0.5, 1000.0); // effectively never returns
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &tl,
            &mut Redispatch::wrap(Algorithm::Srpt),
        )
        .unwrap();
        for r in trace.records() {
            assert_eq!(r.slave, SlaveId(1), "all work lands on the survivor");
        }
        assert!(validate(&trace, &pf).is_empty());
    }

    #[test]
    fn unwrapped_srpt_livelocks_where_wrapped_completes() {
        // A permanent crash drives plain SRPT into an endless resend loop
        // against the down-but-free fast slave; the step budget catches it.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let tl = Timeline::new(vec![PlatformEvent {
            time: Time::new(0.5),
            slave: SlaveId(0),
            kind: PlatformEventKind::Fail,
        }]);
        let cfg = SimConfig {
            max_steps: 20_000,
            ..SimConfig::default()
        };
        let err = simulate_with_events(
            &pf,
            &bag_of_tasks(3),
            &cfg,
            &tl,
            &mut Algorithm::Srpt.build(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            mss_sim::SimError::BudgetExhausted { .. } | mss_sim::SimError::Stalled { .. }
        ));
    }

    #[test]
    fn blackout_waits_for_recovery() {
        // Both slaves down from t=1 to t=8 (min_up unenforced here: raw
        // timeline). The wrapper idles through the blackout and finishes.
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let tl = Timeline::new(
            [
                (1.0, 0, PlatformEventKind::Fail),
                (1.0, 1, PlatformEventKind::Fail),
                (8.0, 0, PlatformEventKind::Recover),
                (8.0, 1, PlatformEventKind::Recover),
            ]
            .into_iter()
            .map(|(t, j, kind)| PlatformEvent {
                time: Time::new(t),
                slave: SlaveId(j),
                kind,
            })
            .collect(),
        );
        let trace = simulate_with_events(
            &pf,
            &bag_of_tasks(4),
            &SimConfig::default(),
            &tl,
            &mut Redispatch::wrap(Algorithm::ListScheduling),
        )
        .unwrap();
        assert_eq!(trace.len(), 4);
        assert!(validate(&trace, &pf).is_empty());
        // Nothing was received during the blackout.
        for r in trace.records() {
            let mid = (r.send_end.as_f64() > 1.0 + 1e-9) && (r.send_end.as_f64() < 8.0 - 1e-9);
            assert!(!mid, "task delivered during blackout: {r:?}");
        }
    }
}
