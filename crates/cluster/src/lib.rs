//! # mss-cluster — a threaded master-worker cluster with real payloads
//!
//! The paper's experiments ran on "a small heterogeneous master-slave
//! platform with five different computers connected by a fast Ethernet
//! switch", with matrices as tasks and determinant computations as work
//! (§4.2). This crate is that testbed's stand-in (see DESIGN.md,
//! substitutions): one OS thread per slave, a literal one-port master that
//! blocks while a [`Matrix`] payload ships for `c_j` scaled seconds, and
//! workers that really LU-factorize what they receive, padded to `p_j`.
//!
//! It drives the *same* [`mss_core::OnlineScheduler`] implementations as
//! the discrete-event simulator and emits the same [`mss_core::Trace`]
//! type, so every experiment of the lab can be cross-checked end-to-end on
//! real concurrency (`examples/cluster_demo.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod matrix;

pub use executor::{execute, validate_loose, ClusterConfig, ClusterError, ClusterRun};
pub use matrix::Matrix;
