//! The threaded master–worker executor — the MPI-testbed substitute.
//!
//! One OS thread per slave plus the master (the calling thread). The
//! master's single port is realized literally: the master *blocks* for
//! `c_j · scale` wall seconds while "transferring" a [`Matrix`] payload to
//! worker `j`, so no two transfers can ever overlap. Workers compute the
//! real determinant of each received matrix and pad the computation to
//! `p_j · scale` wall seconds, mirroring the paper's `np_i` repetitions.
//!
//! The executor drives the *same* [`OnlineScheduler`] implementations as the
//! DES, through the same [`SimView`](mss_sim::SimView) window (maintained
//! here from real clocks and worker acknowledgements), and produces the same
//! [`Trace`] type with wall times mapped back to model seconds. OS jitter
//! means durations only approximate the platform spec; tests use
//! [`validate_loose`] instead of the DES's exact validator.

use crate::matrix::Matrix;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mss_core::{OnlineScheduler, Platform, SchedulerEvent, TaskArrival, TaskId, Trace};
use mss_sim::{Decision, SlaveId, TaskRecord, Time, ViewState};
use std::thread;
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Wall seconds per model second (e.g. `0.02` → a `p = 8 s` slave
    /// computes for 160 ms of wall time). Smaller is faster but noisier.
    pub time_scale: f64,
    /// Dimension of the matrix payloads (determinant cost must fit within
    /// the shortest scaled computation).
    pub matrix_dim: usize,
    /// Total-task-count hint passed to the scheduler (as the DES does).
    pub horizon_hint: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            time_scale: 0.02,
            matrix_dim: 32,
            horizon_hint: None,
        }
    }
}

/// A completed cluster run.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// The execution trace, in model seconds.
    pub trace: Trace,
    /// The determinant each worker computed, indexed by task — evidence the
    /// computation really happened.
    pub determinants: Vec<f64>,
}

/// Why a cluster run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// A worker thread disappeared.
    WorkerLost(usize),
    /// The scheduler idled while work remained for too long.
    Stalled {
        /// Model time at the stall.
        at: f64,
        /// Completed tasks at the stall.
        completed: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::WorkerLost(j) => write!(f, "worker {j} lost"),
            ClusterError::Stalled { at, completed } => {
                write!(f, "cluster stalled at {at:.3} with {completed} tasks done")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

enum ToWorker {
    Task {
        id: TaskId,
        matrix: Matrix,
        compute_wall: Duration,
    },
    Shutdown,
}

struct FromWorker {
    task: TaskId,
    slave: usize,
    compute_start_wall: f64,
    compute_end_wall: f64,
    determinant: f64,
}

fn worker_loop(slave: usize, t0: Instant, rx: Receiver<ToWorker>, tx: Sender<FromWorker>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Shutdown => return,
            ToWorker::Task {
                id,
                matrix,
                compute_wall,
            } => {
                let start = Instant::now();
                let determinant = matrix.determinant();
                // Pad the real work to the platform's p_j (the paper pads
                // with np_i determinant repetitions; padding with sleep
                // keeps the duration exact for any matrix size).
                let elapsed = start.elapsed();
                if elapsed < compute_wall {
                    thread::sleep(compute_wall - elapsed);
                }
                let done = FromWorker {
                    task: id,
                    slave,
                    compute_start_wall: (start - t0).as_secs_f64(),
                    compute_end_wall: t0.elapsed().as_secs_f64(),
                    determinant,
                };
                if tx.send(done).is_err() {
                    return;
                }
            }
        }
    }
}

/// Runs `scheduler` over real threads and real matrix payloads.
///
/// Semantics mirror [`mss_sim::simulate`]; timings carry OS jitter.
pub fn execute(
    platform: &Platform,
    tasks: &[TaskArrival],
    config: &ClusterConfig,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<ClusterRun, ClusterError> {
    let scale = config.time_scale;
    let m = platform.num_slaves();
    let n = tasks.len();
    let t0 = Instant::now();

    let (done_tx, done_rx) = unbounded::<FromWorker>();
    let mut to_workers: Vec<Sender<ToWorker>> = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for j in 0..m {
        let (tx, rx) = bounded::<ToWorker>(n.max(1));
        let done = done_tx.clone();
        handles.push(thread::spawn(move || worker_loop(j, t0, rx, done)));
        to_workers.push(tx);
    }

    // Observable state, maintained exactly like the DES engine does.
    let mut state = ViewState::new(platform.clone(), n, config.horizon_hint);
    let mut records: Vec<Option<TaskRecord>> = vec![None; n];
    // Predicted availability (nominal) per outstanding task, per slave.
    let mut outstanding: Vec<Vec<(TaskId, f64)>> = vec![Vec::new(); m];
    let mut last_anchor: Vec<f64> = vec![0.0; m];

    let mut release_order: Vec<usize> = (0..n).collect();
    release_order.sort_by(|&a, &b| tasks[a].release.cmp(&tasks[b].release).then(a.cmp(&b)));
    let mut next_release = 0usize;
    let mut link_free_model = 0.0f64;
    let mut last_progress = Instant::now();

    scheduler.init(&state.view());

    let now_model = |t0: &Instant| t0.elapsed().as_secs_f64() / scale;

    let refresh_estimates = |state: &mut ViewState,
                             outstanding: &[Vec<(TaskId, f64)>],
                             last_anchor: &[f64],
                             now: f64| {
        for j in 0..m {
            let p = state.platform.p(SlaveId(j));
            let mut t = now.max(last_anchor[j]);
            for &(_, avail) in &outstanding[j] {
                t = t.max(avail) + p;
            }
            state.slaves.outstanding[j] = outstanding[j].len();
            state.slaves.ready_estimate[j] = t;
        }
        state.now = Time::new(now);
        state.link_busy_until = Time::new(0.0f64.max(now.min(now))); // set below
    };

    let mut completed_dets = vec![0.0f64; n];

    while state.completed_count < n {
        let now = now_model(&t0);

        // 1. Releases due.
        let mut notifications: Vec<SchedulerEvent> = Vec::new();
        while next_release < n {
            let i = release_order[next_release];
            if tasks[i].release.as_f64() <= now + 1e-9 {
                state.pending.push(TaskId(i));
                state.releases[i] = tasks[i].release;
                state.released_count += 1;
                notifications.push(SchedulerEvent::Released(TaskId(i)));
                next_release += 1;
            } else {
                break;
            }
        }

        // 2. Worker completions.
        while let Ok(done) = done_rx.try_recv() {
            let j = done.slave;
            outstanding[j].retain(|&(id, _)| id != done.task);
            last_anchor[j] = done.compute_end_wall / scale;
            state.completed_count += 1;
            state.slaves.completed[j] += 1;
            let rec = records[done.task.0]
                .as_mut()
                .expect("completion for unsent task");
            rec.compute_start = Time::new(done.compute_start_wall / scale);
            rec.compute_end = Time::new(done.compute_end_wall / scale);
            completed_dets[done.task.0] = done.determinant;
            notifications.push(SchedulerEvent::ComputeCompleted(done.task, SlaveId(j)));
            last_progress = Instant::now();
        }

        // 3. Let the scheduler react, then poll while it keeps sending.
        let now = now_model(&t0);
        refresh_estimates(&mut state, &outstanding, &last_anchor, now);
        state.link_busy_until = Time::new(link_free_model);

        let mut queue: Vec<SchedulerEvent> = notifications;
        queue.push(SchedulerEvent::PortIdle);
        let mut sent_something = true;
        while sent_something {
            sent_something = false;
            for event in std::mem::take(&mut queue) {
                let decision = scheduler.on_event(&state.view(), event);
                if let Decision::Send { task, slave } = decision {
                    if link_free_model > now_model(&t0) || !state.pending.contains(&task) {
                        continue; // stale decision; the loop will re-poll
                    }
                    // The one-port transfer: block while the payload ships.
                    let send_start = now_model(&t0);
                    let c_wall = platform.c(slave) * tasks[task.0].size_c * scale;
                    thread::sleep(Duration::from_secs_f64(c_wall));
                    let send_end = now_model(&t0);
                    link_free_model = send_end;

                    let matrix = Matrix::seeded(config.matrix_dim, task.0 as u64);
                    let compute_wall =
                        Duration::from_secs_f64(platform.p(slave) * tasks[task.0].size_p * scale);
                    to_workers[slave.0]
                        .send(ToWorker::Task {
                            id: task,
                            matrix,
                            compute_wall,
                        })
                        .map_err(|_| ClusterError::WorkerLost(slave.0))?;

                    state.pending.retain(|&t| t != task);
                    outstanding[slave.0].push((task, send_start + platform.c(slave)));
                    records[task.0] = Some(TaskRecord {
                        task,
                        release: tasks[task.0].release,
                        slave,
                        send_start: Time::new(send_start),
                        send_end: Time::new(send_end),
                        compute_start: Time::ZERO,
                        compute_end: Time::ZERO,
                        size_c: tasks[task.0].size_c,
                        size_p: tasks[task.0].size_p,
                    });
                    let now = now_model(&t0);
                    refresh_estimates(&mut state, &outstanding, &last_anchor, now);
                    state.link_busy_until = Time::new(link_free_model);
                    queue.push(SchedulerEvent::PortIdle);
                    sent_something = true;
                    last_progress = Instant::now();
                }
            }
        }

        // 4. Wait for the next interesting instant.
        if state.completed_count < n {
            let mut timeout = Duration::from_millis(2);
            if next_release < n {
                let wait = tasks[release_order[next_release]].release.as_f64() * scale
                    - t0.elapsed().as_secs_f64();
                if wait > 0.0 {
                    timeout = timeout.min(Duration::from_secs_f64(wait.max(0.0005)));
                }
            }
            if let Ok(done) = done_rx.recv_timeout(timeout) {
                // Re-inject by handling on the next loop turn: emulate by
                // pushing back through the same handling path.
                let j = done.slave;
                outstanding[j].retain(|&(id, _)| id != done.task);
                last_anchor[j] = done.compute_end_wall / scale;
                state.completed_count += 1;
                state.slaves.completed[j] += 1;
                let rec = records[done.task.0]
                    .as_mut()
                    .expect("completion for unsent task");
                rec.compute_start = Time::new(done.compute_start_wall / scale);
                rec.compute_end = Time::new(done.compute_end_wall / scale);
                completed_dets[done.task.0] = done.determinant;
                let now = now_model(&t0);
                refresh_estimates(&mut state, &outstanding, &last_anchor, now);
                state.link_busy_until = Time::new(link_free_model);
                let _ = scheduler.on_event(
                    &state.view(),
                    SchedulerEvent::ComputeCompleted(done.task, SlaveId(j)),
                );
                last_progress = Instant::now();
                // Any Send decision will be handled on the next loop pass.
            }
            if last_progress.elapsed() > Duration::from_secs(30) {
                return Err(ClusterError::Stalled {
                    at: now_model(&t0),
                    completed: state.completed_count,
                });
            }
        }
    }

    for tx in &to_workers {
        let _ = tx.send(ToWorker::Shutdown);
    }
    for h in handles {
        let _ = h.join();
    }

    let trace = Trace::new(
        records
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} has no record")))
            .collect(),
    );
    Ok(ClusterRun {
        trace,
        determinants: completed_dets,
    })
}

/// Loose structural validation for cluster traces: the invariants of the
/// model must hold up to OS-jitter tolerance `tol` (model seconds):
/// one-port, compute-after-receive, send-after-release, durations at least
/// their nominal values (sleeps can overshoot, never undershoot).
pub fn validate_loose(trace: &Trace, platform: &Platform, tol: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for r in trace.records() {
        if r.send_start.as_f64() < r.release.as_f64() - tol {
            problems.push(format!("{:?} sent before release", r.task));
        }
        if r.compute_start.as_f64() < r.send_end.as_f64() - tol {
            problems.push(format!("{:?} computed before received", r.task));
        }
        let c = platform.c(r.slave) * r.size_c;
        if r.send_end - r.send_start < c - tol {
            problems.push(format!("{:?} send shorter than c_j", r.task));
        }
        let p = platform.p(r.slave) * r.size_p;
        if r.compute_end - r.compute_start < p - tol {
            problems.push(format!("{:?} compute shorter than p_j", r.task));
        }
    }
    let mut sends: Vec<_> = trace.records().iter().collect();
    sends.sort_by_key(|r| r.send_start);
    for w in sends.windows(2) {
        if w[1].send_start.as_f64() < w[0].send_end.as_f64() - tol {
            problems.push(format!(
                "one-port violated by {:?} and {:?}",
                w[0].task, w[1].task
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_core::{bag_of_tasks, Algorithm};

    fn small_platform() -> Platform {
        // Model seconds kept ≥ 0.25 so sleep granularity is ≪ durations.
        Platform::from_vectors(&[0.5, 0.25], &[2.0, 4.0])
    }

    #[test]
    fn runs_ls_and_matches_model_loosely() {
        let pf = small_platform();
        let tasks = bag_of_tasks(6);
        let cfg = ClusterConfig {
            time_scale: 0.01,
            matrix_dim: 24,
            horizon_hint: Some(6),
        };
        let mut ls = Algorithm::ListScheduling.build();
        let run = execute(&pf, &tasks, &cfg, &mut ls).expect("cluster run");
        assert_eq!(run.trace.len(), 6);
        let problems = validate_loose(&run.trace, &pf, 0.2);
        assert!(problems.is_empty(), "{problems:?}");
        // Real determinants were computed.
        assert!(run.determinants.iter().all(|d| d.abs() > 1e-12));
    }

    #[test]
    fn agrees_with_des_on_assignments() {
        // On a platform with clearly separated costs, decision sequences of
        // the DES and the cluster must coincide (jitter cannot flip them).
        let pf = Platform::from_vectors(&[0.5, 0.5], &[1.0, 8.0]);
        let tasks = bag_of_tasks(5);
        let cfg = ClusterConfig {
            time_scale: 0.01,
            matrix_dim: 24,
            horizon_hint: Some(5),
        };
        let des = mss_core::simulate(
            &pf,
            &tasks,
            &mss_core::SimConfig::with_horizon(5),
            &mut Algorithm::ListScheduling.build(),
        )
        .unwrap();
        let mut ls = Algorithm::ListScheduling.build();
        let cluster = execute(&pf, &tasks, &cfg, &mut ls).unwrap().trace;
        for i in 0..5 {
            assert_eq!(
                des.record(TaskId(i)).slave,
                cluster.record(TaskId(i)).slave,
                "task {i} assigned differently"
            );
        }
        // Makespans agree within jitter (50 % is generous; typical < 5 %).
        let rel = (des.makespan() - cluster.makespan()).abs() / des.makespan();
        assert!(
            rel < 0.5,
            "DES {} vs cluster {}",
            des.makespan(),
            cluster.makespan()
        );
    }

    #[test]
    fn respects_release_times() {
        let pf = small_platform();
        let tasks = [TaskArrival::at(0.0), TaskArrival::at(3.0)];
        let cfg = ClusterConfig {
            time_scale: 0.01,
            matrix_dim: 16,
            horizon_hint: None,
        };
        let mut srpt = Algorithm::Srpt.build();
        let run = execute(&pf, &tasks, &cfg, &mut srpt).unwrap();
        assert!(run.trace.record(TaskId(1)).send_start.as_f64() >= 3.0 - 0.05);
    }
}
