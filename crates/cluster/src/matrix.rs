//! Matrix payloads and the determinant kernel.
//!
//! The paper's tasks are matrices whose determinant each slave computes
//! (§4.2). The cluster executor ships real [`Matrix`] payloads and workers
//! really factorize them, so the "computation" phase of the model is backed
//! by actual arithmetic, not just a sleep.

/// A dense square matrix (row-major).
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    dim: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The `dim × dim` identity.
    pub fn identity(dim: usize) -> Self {
        let mut m = Matrix {
            dim,
            data: vec![0.0; dim * dim],
        };
        for i in 0..dim {
            m.data[i * dim + i] = 1.0;
        }
        m
    }

    /// A reproducible pseudo-random matrix with entries in `[-1, 1]`
    /// (multiplicative-congruential fill — cheap, deterministic, and
    /// independent of the `rand` crate so payload bytes never change).
    pub fn seeded(dim: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            // Upper 53 bits → [0, 1) → [-1, 1).
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        Matrix {
            dim,
            data: (0..dim * dim).map(|_| next()).collect(),
        }
    }

    /// Builds from explicit row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != dim²`.
    pub fn from_rows(dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), dim * dim, "Matrix::from_rows: bad length");
        Matrix { dim, data }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.dim + col]
    }

    /// Determinant via LU decomposition with partial pivoting, O(n³).
    /// Returns 0.0 for (numerically) singular matrices.
    pub fn determinant(&self) -> f64 {
        let n = self.dim;
        if n == 0 {
            return 1.0; // det of the empty matrix, by convention
        }
        let mut a = self.data.clone();
        let mut det = 1.0f64;
        for k in 0..n {
            // Pivot: largest |a[i][k]| for i >= k.
            let (mut piv, mut piv_val) = (k, a[k * n + k].abs());
            for i in k + 1..n {
                let v = a[i * n + k].abs();
                if v > piv_val {
                    piv = i;
                    piv_val = v;
                }
            }
            if piv_val == 0.0 {
                return 0.0;
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                det = -det;
            }
            let pivot = a[k * n + k];
            det *= pivot;
            for i in k + 1..n {
                let factor = a[i * n + k] / pivot;
                if factor != 0.0 {
                    for j in k + 1..n {
                        a[i * n + j] -= factor * a[k * n + j];
                    }
                }
            }
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_unit_determinant() {
        for dim in [1, 2, 5, 16] {
            assert_eq!(Matrix::identity(dim).determinant(), 1.0);
        }
    }

    #[test]
    fn two_by_two_closed_form() {
        let m = Matrix::from_rows(2, vec![3.0, 1.0, 4.0, 2.0]);
        assert!((m.determinant() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn three_by_three_with_pivoting() {
        // First pivot is zero → pivoting must kick in.
        let m = Matrix::from_rows(3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 4.0, -3.0, 8.0]);
        // det = 0·(0·8−3·(−3)) − 1·(1·8−3·4) + 2·(1·(−3)−0·4) = 4 − 6 = ...
        let expected = -(8.0 - 12.0) + 2.0 * (-3.0);
        assert!((m.determinant() - expected).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_zero() {
        let m = Matrix::from_rows(2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.determinant(), 0.0);
    }

    #[test]
    fn determinant_is_multiplicative_under_transpose_swap() {
        // Swapping two rows flips the sign.
        let a = Matrix::from_rows(2, vec![3.0, 1.0, 4.0, 2.0]);
        let b = Matrix::from_rows(2, vec![4.0, 2.0, 3.0, 1.0]);
        let (da, db) = (a.determinant(), b.determinant());
        assert!((da + db).abs() < 1e-12, "{da} vs {db}");
    }

    #[test]
    fn seeded_matrices_are_reproducible() {
        let a = Matrix::seeded(16, 99);
        let b = Matrix::seeded(16, 99);
        assert_eq!(a, b);
        assert_ne!(a, Matrix::seeded(16, 100));
        assert!(a.data.iter().all(|v| (-1.0..1.0).contains(v)));
        // A random matrix is almost surely nonsingular.
        assert!(a.determinant().abs() > 1e-12);
    }

    #[test]
    fn empty_matrix_convention() {
        assert_eq!(Matrix::identity(0).determinant(), 1.0);
    }
}
