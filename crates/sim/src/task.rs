//! Tasks: identical unit jobs, optionally with per-task size perturbations.
//!
//! The paper studies *same-size* tasks; its robustness experiment (Figure 2)
//! perturbs the matrix size of each task by up to ±10 %. We model this with
//! two per-task multipliers: `size_c` scales the communication time and
//! `size_p` scales the computation time. Schedulers always plan with the
//! *nominal* (unit) sizes — the engine bills the actual ones.

use crate::time::Time;
use std::fmt;

/// Index of a task (`T_0 … T_{n−1}`; the paper numbers from 1).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TaskId(pub usize);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One task of the (on-line) instance.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TaskArrival {
    /// Release time `r_i`: when the task becomes available on the master.
    pub release: Time,
    /// Actual communication-size multiplier (1.0 = nominal).
    pub size_c: f64,
    /// Actual computation-size multiplier (1.0 = nominal).
    pub size_p: f64,
}

impl TaskArrival {
    /// A nominal-size task released at `release`.
    pub fn at(release: impl Into<Time>) -> Self {
        TaskArrival {
            release: release.into(),
            size_c: 1.0,
            size_p: 1.0,
        }
    }

    /// A task with a common size multiplier for both phases.
    pub fn sized(release: impl Into<Time>, size: f64) -> Self {
        TaskArrival {
            release: release.into(),
            size_c: size,
            size_p: size,
        }
    }
}

/// Builds an instance of `n` nominal tasks all released at `t = 0`
/// (bag-of-tasks regime).
pub fn bag_of_tasks(n: usize) -> Vec<TaskArrival> {
    vec![TaskArrival::at(0.0); n]
}

/// Builds an instance of nominal tasks with the given release times.
pub fn released_at(times: &[f64]) -> Vec<TaskArrival> {
    times.iter().map(|&t| TaskArrival::at(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = TaskArrival::at(1.5);
        assert_eq!(t.release, Time::new(1.5));
        assert_eq!(t.size_c, 1.0);
        let s = TaskArrival::sized(0.0, 1.1);
        assert_eq!(s.size_p, 1.1);
    }

    #[test]
    fn bag_and_stream() {
        assert_eq!(bag_of_tasks(3).len(), 3);
        assert!(bag_of_tasks(2).iter().all(|t| t.release == Time::ZERO));
        let stream = released_at(&[0.0, 1.0, 2.0]);
        assert_eq!(stream[2].release, Time::new(2.0));
    }

    #[test]
    fn display() {
        assert_eq!(TaskId(3).to_string(), "T3");
    }
}
