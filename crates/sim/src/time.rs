//! Simulation time.
//!
//! Virtual time is an `f64` number of seconds wrapped in a newtype with a
//! *total* order (NaN is rejected at construction). The engine performs exact
//! floating-point arithmetic on event times; tolerance-based comparisons are
//! confined to [`Time::approx_eq`] and the trace validator.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Absolute tolerance used by trace validation and tests when comparing
/// times that were produced by different summation orders.
pub const TIME_EPS: f64 = 1e-9;

/// A point in virtual time (seconds since simulation start).
#[derive(Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Time(f64);

impl Time {
    /// Simulation origin.
    pub const ZERO: Time = Time(0.0);

    /// Builds a time point.
    ///
    /// # Panics
    /// Panics on NaN (a NaN time is always a bug upstream).
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "Time::new: NaN time");
        Time(t)
    }

    /// The raw number of seconds.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// `|self − other| <= TIME_EPS · (1 + max(|self|, |other|))`.
    pub fn approx_eq(self, other: Time) -> bool {
        (self.0 - other.0).abs() <= TIME_EPS * (1.0 + self.0.abs().max(other.0.abs()))
    }

    /// Pairwise maximum.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Pairwise minimum.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for Time {
    fn from(t: f64) -> Self {
        Time::new(t)
    }
}

impl Add<f64> for Time {
    type Output = Time;
    fn add(self, rhs: f64) -> Time {
        Time::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for Time {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    /// Difference in seconds.
    type Output = f64;
    fn sub(self, rhs: Time) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = Time::new(1.0);
        let b = Time::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    fn approx_eq_scales() {
        assert!(Time::new(1e6).approx_eq(Time::new(1e6 + 1e-4)));
        assert!(!Time::new(1.0).approx_eq(Time::new(1.001)));
    }

    #[test]
    fn arithmetic() {
        let t = Time::new(1.5) + 0.5;
        assert_eq!(t, Time::new(2.0));
        assert!((Time::new(3.0) - Time::new(1.0) - 2.0).abs() < 1e-15);
    }
}
