//! The on-line scheduler interface.
//!
//! A scheduler is driven by the engine through [`OnlineScheduler::on_event`]:
//! every time something observable happens (a task release, the completion of
//! a send, the completion of a computation, or a self-requested wake-up) the
//! engine processes *all* events at the current instant and then repeatedly
//! asks the scheduler for decisions while the master's port is idle.
//!
//! Schedulers observe the world only through [`SimView`](crate::SimView):
//! released-but-unassigned tasks, per-slave outstanding work, and
//! *nominal-size* completion estimates. They never see future releases or
//! actual (perturbed) task sizes — exactly the information model of the
//! paper's on-line setting.

use crate::platform::SlaveId;
use crate::task::TaskId;
use crate::time::Time;
use crate::view::SimView;

/// What happened; passed to the scheduler after the engine applied it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerEvent {
    /// Simulation starts (sent exactly once, before any other event).
    Start,
    /// Task `task` was released at the master.
    Released(TaskId),
    /// The send of `task` to `slave` completed; the port is free again.
    SendCompleted(TaskId, SlaveId),
    /// `slave` finished computing `task`.
    ComputeCompleted(TaskId, SlaveId),
    /// `slave` crashed (scenario timelines only). Its in-flight and queued
    /// tasks were lost and have re-entered the pending queue; a transfer
    /// that was in flight towards it was aborted (the port is free again).
    SlaveFailed(SlaveId),
    /// `slave` came back up, empty (scenario timelines only).
    SlaveRecovered(SlaveId),
    /// A wake-up previously requested via [`Decision::WakeAt`].
    Wake,
    /// No new information — the engine is polling because the port is idle
    /// and a previous decision may have changed the state.
    PortIdle,
}

/// A scheduler's answer to "the port is idle — what now?".
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Start sending `task` (released, unassigned) to `slave` right now.
    Send {
        /// The released, not-yet-assigned task to transfer.
        task: TaskId,
        /// The destination slave.
        slave: SlaveId,
    },
    /// Do nothing; the engine will ask again at the next event.
    Idle,
    /// Do nothing, but wake me at time `t` even if nothing else happens.
    WakeAt(Time),
}

/// A deterministic on-line scheduling algorithm.
///
/// Implementations must be deterministic functions of the observation
/// history: the adversary games of `mss-adversary` re-run schedulers from
/// scratch on extended instances and rely on identical decisions over
/// identical prefixes (this also makes every experiment replayable).
pub trait OnlineScheduler {
    /// Human-readable algorithm name (used in reports and figures).
    fn name(&self) -> String;

    /// Called once before the simulation starts.
    fn init(&mut self, _view: &SimView<'_>) {}

    /// Called after each batch of simultaneous events, and repeatedly after
    /// each accepted [`Decision::Send`], while the port is idle.
    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision;
}

impl<T: OnlineScheduler + ?Sized> OnlineScheduler for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn init(&mut self, view: &SimView<'_>) {
        (**self).init(view)
    }
    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision {
        (**self).on_event(view, event)
    }
}
