//! The on-line scheduler interface.
//!
//! A scheduler is driven by the engine through [`OnlineScheduler::on_event`]:
//! every time something observable happens (a task release, the completion of
//! a send, the completion of a computation, or a self-requested wake-up) the
//! engine processes *all* events at the current instant and then repeatedly
//! asks the scheduler for decisions while the master's port is idle.
//!
//! Schedulers observe the world only through [`SimView`](crate::SimView):
//! released-but-unassigned tasks, per-slave outstanding work, and
//! completion estimates. They never see future releases or actual
//! (perturbed) task sizes — exactly the information model of the paper's
//! on-line setting. How much *more* the view reveals (nominal platform
//! values, the horizon hint) is governed by the run's
//! [`InfoTier`](crate::InfoTier): schedulers declare the weakest tier they
//! stay live under via [`OnlineScheduler::min_tier`], and the engine
//! refuses to run a scheduler below it.

use crate::info::InfoTier;
use crate::platform::SlaveId;
use crate::task::TaskId;
use crate::time::Time;
use crate::view::SimView;

/// What happened; passed to the scheduler after the engine applied it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerEvent {
    /// Simulation starts (sent exactly once, before any other event).
    Start,
    /// Task `task` was released at the master.
    Released(TaskId),
    /// The send of `task` to `slave` completed; the port is free again.
    SendCompleted(TaskId, SlaveId),
    /// `slave` finished computing `task`.
    ComputeCompleted(TaskId, SlaveId),
    /// `slave` crashed (scenario timelines only). Its in-flight and queued
    /// tasks were lost and have re-entered the pending queue; a transfer
    /// that was in flight towards it was aborted (the port is free again).
    SlaveFailed(SlaveId),
    /// `slave` came back up, empty (scenario timelines only).
    SlaveRecovered(SlaveId),
    /// A wake-up previously requested via [`Decision::WakeAt`].
    Wake,
    /// No new information — the engine is polling because the port is idle
    /// and a previous decision may have changed the state.
    PortIdle,
}

/// A scheduler's answer to "the port is idle — what now?".
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Start sending `task` (released, unassigned) to `slave` right now.
    Send {
        /// The released, not-yet-assigned task to transfer.
        task: TaskId,
        /// The destination slave.
        slave: SlaveId,
    },
    /// Do nothing; the engine will ask again at the next event.
    Idle,
    /// Do nothing, but wake me at time `t` even if nothing else happens.
    WakeAt(Time),
}

/// A deterministic on-line scheduling algorithm.
///
/// Implementations must be deterministic functions of the observation
/// history: the adversary games of `mss-adversary` re-run schedulers from
/// scratch on extended instances and rely on identical decisions over
/// identical prefixes (this also makes every experiment replayable).
pub trait OnlineScheduler {
    /// Human-readable algorithm name (used in reports and figures).
    fn name(&self) -> String;

    /// Called once before the simulation starts. Implementations must
    /// fully reset any internal state here: executors may reuse one
    /// scheduler instance across many runs (as the sweep's batch workers
    /// do), and a run on a reused instance must be bit-identical to a run
    /// on a fresh one.
    fn init(&mut self, _view: &SimView<'_>) {}

    /// Called after each batch of simultaneous events, and repeatedly after
    /// each accepted [`Decision::Send`], while the port is idle.
    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision;

    /// Declares the *poll-driven* contract, which lets the engine skip
    /// notification callbacks that provably cannot matter. Returning `true`
    /// promises that whenever the port is busy **or** no task is pending,
    /// [`OnlineScheduler::on_event`] returns [`Decision::Idle`] without any
    /// observable state change — and that the scheduler never returns
    /// [`Decision::WakeAt`]. Under this contract the engine may elide such
    /// callbacks entirely (their decision is known), which removes most
    /// per-event scheduler work without changing a single bit of any trace;
    /// a `debug_assertions` oracle still performs the elided callbacks and
    /// asserts they answer `Idle`.
    ///
    /// The default is `false` (every callback is delivered). All seven paper
    /// heuristics satisfy the contract: they act only when the port is idle
    /// and a pending task exists, and mutate internal state only when
    /// acting.
    fn poll_driven(&self) -> bool {
        false
    }

    /// The weakest [`InfoTier`] under which this scheduler stays *live*
    /// (completes every valid instance). The engine checks
    /// `config.info >= min_tier()` before the first event and refuses the
    /// run otherwise, so a scheduler that genuinely reads nominal platform
    /// values through [`SimView::platform`] can declare
    /// [`InfoTier::Clairvoyant`] and never observe a gated panic.
    ///
    /// The default is `Clairvoyant` — the conservative choice for
    /// schedulers written against the historical, fully informed view. The
    /// paper's seven heuristics (and the `Redispatch` wrapper) override
    /// this to `NonClairvoyant`: they consume only believed values and
    /// degrade gracefully to learned-estimate decisions.
    fn min_tier(&self) -> InfoTier {
        InfoTier::Clairvoyant
    }
}

impl<T: OnlineScheduler + ?Sized> OnlineScheduler for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn init(&mut self, view: &SimView<'_>) {
        (**self).init(view)
    }
    fn on_event(&mut self, view: &SimView<'_>, event: SchedulerEvent) -> Decision {
        (**self).on_event(view, event)
    }
    fn poll_driven(&self) -> bool {
        (**self).poll_driven()
    }
    fn min_tier(&self) -> InfoTier {
        (**self).min_tier()
    }
}
