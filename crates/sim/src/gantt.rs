//! ASCII Gantt charts for traces.
//!
//! Renders the master's port row and one row per slave, with `-` for
//! communication and `#` for computation, so the one-port serialization and
//! the communication/computation overlap of a schedule can be inspected at
//! a glance:
//!
//! ```text
//! port |CCC--CC---
//! P1   |...###....
//! P2   |.....#####
//! ```
//!
//! For failure scenarios, [`render_with_downtime`] additionally shades the
//! intervals a slave was down with `x`, so lost work and re-dispatch are
//! visually debuggable (get the intervals from
//! [`Timeline::downtime_intervals`](crate::Timeline::downtime_intervals)).

use crate::platform::Platform;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Renders `trace` as an ASCII Gantt chart with `width` time columns.
///
/// Each column spans `makespan / width` seconds; a cell shows the activity
/// occupying the majority of the column (communication wins ties so short
/// sends stay visible). Returns a multi-line string.
pub fn render(trace: &Trace, platform: &Platform, width: usize) -> String {
    render_with_downtime(trace, platform, width, &[])
}

/// Like [`render`], with per-slave downtime intervals `[start, end)` drawn
/// as `x` wherever the slave was down for the majority of a column and not
/// computing. `downtime` may be empty or shorter than the slave count;
/// missing rows mean "always up".
pub fn render_with_downtime(
    trace: &Trace,
    platform: &Platform,
    width: usize,
    downtime: &[Vec<(f64, f64)>],
) -> String {
    assert!(width >= 10, "gantt: width must be at least 10 columns");
    let makespan = trace.makespan();
    if trace.is_empty() || makespan <= 0.0 {
        return "(empty trace)\n".to_string();
    }
    let m = platform.num_slaves();
    let col = makespan / width as f64;

    // Coverage per column: how much of it is spent communicating (port row)
    // or computing (per-slave rows).
    let mut port = vec![0.0f64; width];
    let mut slaves = vec![vec![0.0f64; width]; m];
    let overlap = |row: &mut Vec<f64>, start: f64, end: f64| {
        let first = ((start / col).floor() as usize).min(width - 1);
        let last = ((end / col).ceil() as usize).clamp(first + 1, width);
        for (k, cell) in row.iter_mut().enumerate().take(last).skip(first) {
            let cell_start = k as f64 * col;
            let cell_end = cell_start + col;
            let covered = (end.min(cell_end) - start.max(cell_start)).max(0.0);
            *cell += covered;
        }
    };

    for r in trace.records() {
        overlap(&mut port, r.send_start.as_f64(), r.send_end.as_f64());
        overlap(
            &mut slaves[r.slave.0],
            r.compute_start.as_f64(),
            r.compute_end.as_f64(),
        );
    }

    // Downtime coverage per slave row (empty when no scenario is given).
    let mut down = vec![vec![0.0f64; width]; m];
    for (j, intervals) in downtime.iter().enumerate().take(m) {
        for &(start, end) in intervals {
            overlap(&mut down[j], start, end.min(makespan));
        }
    }

    let label_width = format!("P{m}").len().max(4);
    let mut out = String::new();
    let mut row = |label: &str, data: &[f64], down: Option<&[f64]>, ch: char| {
        let _ = write!(out, "{label:<label_width$}|");
        for (k, &covered) in data.iter().enumerate() {
            out.push(if covered >= col * 0.5 {
                ch
            } else if covered > 0.0 {
                // Minority coverage still rendered, in lowercase-ish form.
                if ch == '#' {
                    '+'
                } else {
                    '.'
                }
            } else if down.is_some_and(|d| d[k] >= col * 0.5) {
                'x'
            } else {
                ' '
            });
        }
        out.push('\n');
    };
    row("port", &port, None, '-');
    for (j, data) in slaves.iter().enumerate() {
        row(&format!("P{}", j + 1), data, Some(&down[j]), '#');
    }
    let _ = writeln!(
        out,
        "{:<label_width$}|0 .. {makespan:.3}s ({width} cols)",
        "t"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::platform::SlaveId;
    use crate::scheduler::{Decision, OnlineScheduler, SchedulerEvent};
    use crate::task::bag_of_tasks;
    use crate::view::SimView;

    struct AllToFirst;
    impl OnlineScheduler for AllToFirst {
        fn name(&self) -> String {
            "all-to-first".into()
        }
        fn on_event(&mut self, view: &SimView<'_>, _e: SchedulerEvent) -> Decision {
            match (view.link_idle(), view.pending_tasks().first()) {
                (true, Some(&task)) => Decision::Send {
                    task,
                    slave: SlaveId(0),
                },
                _ => Decision::Idle,
            }
        }
    }

    #[test]
    fn renders_rows_for_port_and_slaves() {
        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        let chart = render(&trace, &pf, 40);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4); // port + P1 + P2 + time axis
        assert!(lines[0].starts_with("port"));
        assert!(lines[1].contains('#'), "P1 computes: {chart}");
        assert!(!lines[2].contains('#'), "P2 idle: {chart}");
        // Port activity happens before the last computation ends.
        assert!(lines[0].contains('-'));
    }

    #[test]
    fn downtime_rendered_as_x() {
        use crate::events::{PlatformEvent, PlatformEventKind, Timeline};
        use crate::time::Time;

        let pf = Platform::from_vectors(&[1.0, 1.0], &[3.0, 7.0]);
        let trace = simulate(
            &pf,
            &bag_of_tasks(3),
            &SimConfig::default(),
            &mut AllToFirst,
        )
        .unwrap();
        // P2 never computes here; mark it down over the middle of the run.
        let tl = Timeline::new(vec![
            PlatformEvent {
                time: Time::new(trace.makespan() * 0.25),
                slave: crate::platform::SlaveId(1),
                kind: PlatformEventKind::Fail,
            },
            PlatformEvent {
                time: Time::new(trace.makespan() * 0.75),
                slave: crate::platform::SlaveId(1),
                kind: PlatformEventKind::Recover,
            },
        ]);
        let downtime = tl.downtime_intervals(pf.num_slaves(), trace.makespan());
        let chart = render_with_downtime(&trace, &pf, 40, &downtime);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[2].contains('x'), "P2 downtime shaded: {chart}");
        assert!(!lines[1].contains('x'), "P1 never down: {chart}");
        // Without downtime info the same trace renders no shading.
        assert!(!render(&trace, &pf, 40).contains('x'));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let pf = Platform::from_vectors(&[1.0], &[1.0]);
        assert_eq!(render(&Trace::default(), &pf, 40), "(empty trace)\n");
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn narrow_width_rejected() {
        let pf = Platform::from_vectors(&[1.0], &[1.0]);
        let _ = render(&Trace::default(), &pf, 5);
    }
}
